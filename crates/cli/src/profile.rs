//! The profiler-facing subcommands: `profile`, `trace-report`, and
//! `bench-gate`.
//!
//! * `profile` runs one simulation with the CPI-stack classifier and
//!   the Perfetto trace exporter attached, prints the cycle-accounting
//!   report, and writes a `.trace.json` loadable in ui.perfetto.dev.
//!   Everything printed is simulation-deterministic — no wall times —
//!   so two runs of the same configuration are byte-identical.
//! * `trace-report` rebuilds the same report offline from a JSONL
//!   trace produced by `simulate --trace-out` (the CPI stacks ride in
//!   the trace as `cpi_leader_*`/`cpi_checker_*` counter samples).
//! * `bench-gate` compares two `RMT3D_BENCH_JSON` files and fails on
//!   wall-clock regressions beyond a tolerance or on any drift in a
//!   deterministic stat.

use crate::args::Args;
use crate::runctl;
use crate::{fail, parse_model};
use rmt3d::telemetry::json::{parse, JsonObject, JsonValue};
use rmt3d::telemetry::{
    CollectorSink, CpiComponent, CpiStack, MetricsRegistry, ParsedEvent, Sink, TraceEventSink,
};
use rmt3d::{simulate_traced, RunScale, SimConfig};
use rmt3d_workload::Benchmark;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;
use std::process::ExitCode;

/// `rmt3d profile --model M --benchmark B`: run with the profiler
/// sinks attached, print the CPI stacks and histograms, and export a
/// Perfetto trace.
pub fn run_profile_command(mut a: Args) -> ExitCode {
    let model = match a.opt("--model") {
        Ok(Some(m)) => match parse_model(&m) {
            Some(m) => m,
            None => return fail(&format!("unknown model: {m}")),
        },
        Ok(None) => return fail("--model is required"),
        Err(e) => return fail(&e),
    };
    let bench: Benchmark = match a.opt("--benchmark") {
        Ok(Some(b)) => match b.parse() {
            Ok(b) => b,
            Err(_) => return fail(&format!("unknown benchmark: {b}")),
        },
        Ok(None) => return fail("--benchmark is required"),
        Err(e) => return fail(&e),
    };
    let instructions = match a.parsed("--instructions") {
        Ok(n) => n.unwrap_or(200_000),
        Err(e) => return fail(&e),
    };
    let sample_interval = match a.parsed("--sample-interval") {
        Ok(n) => n.unwrap_or(1_000),
        Err(e) => return fail(&e),
    };
    let out_dir = match a.opt("--out-dir") {
        Ok(d) => PathBuf::from(d.unwrap_or_else(|| "target/profile".into())),
        Err(e) => return fail(&e),
    };
    let quiet = a.flag("--quiet");
    let ledger_opts = match runctl::LedgerOpts::from_args(&mut a) {
        Ok(l) => l,
        Err(e) => return fail(&e),
    };
    if let Err(e) = a.finish() {
        return fail(&e);
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        return fail(&format!("cannot create {}: {e}", out_dir.display()));
    }
    let trace_path = out_dir.join(format!("{model}-{bench}.trace.json"));
    let writer = match File::create(&trace_path) {
        Ok(f) => BufWriter::new(f),
        Err(e) => return fail(&format!("cannot create {}: {e}", trace_path.display())),
    };

    let cfg = SimConfig::nominal(
        model,
        RunScale {
            warmup_instructions: instructions / 10,
            instructions,
            thermal_grid: 50,
        },
    );
    let label = format!("{model}/{bench}");
    let canonical =
        format!("profile|{label}|instructions={instructions}|sample_interval={sample_interval}");
    let config = vec![
        ("model".to_string(), model.to_string()),
        ("benchmark".to_string(), bench.to_string()),
        ("instructions".to_string(), instructions.to_string()),
        ("sample_interval".to_string(), sample_interval.to_string()),
    ];
    let mut tracker = runctl::RunTracker::start(
        &ledger_opts,
        "profile",
        rmt3d_obs::spec_hash(std::iter::once(canonical.as_str())),
        1,
        &config,
        quiet,
    );
    // The profiler has no job pool; drive the run's single job through
    // the observer by hand so status.json reflects the simulation.
    if let Some(t) = tracker.as_mut() {
        t.observer.record(&rmt3d::telemetry::Event::JobStarted {
            job: 0,
            total: 1,
            label: label.clone(),
        });
    }

    let collector = CollectorSink::new();
    let mut trace = TraceEventSink::new(writer);
    let t0 = std::time::Instant::now();
    let r = simulate_traced(
        &cfg,
        bench,
        sample_interval,
        (collector.clone(), trace.clone()),
    );
    let wall_nanos = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    if let Err(e) = trace.finish() {
        return fail(&format!("trace write failed: {e}"));
    }
    let snapshot = collector.snapshot();
    if let Some(t) = tracker.as_mut() {
        t.observer.record(&rmt3d::telemetry::Event::JobFinished {
            job: 0,
            total: 1,
            ok: true,
            wall_nanos,
            eta_nanos: 0,
        });
    }

    println!(
        "profile: model {model} benchmark {bench} ({instructions} instructions, \
         sample interval {sample_interval})"
    );
    println!(
        "IPC {:.3} over {} cycles ({} committed)",
        r.ipc(),
        r.total_cycles,
        r.leader.committed
    );
    println!();
    print!(
        "{}",
        r.leader_cpi.format_table("leader", r.leader.committed)
    );
    debug_assert_eq!(r.leader_cpi.total(), r.total_cycles);
    if model.has_checker() {
        println!();
        print!(
            "{}",
            r.trailer_cpi.format_table("checker", r.leader.committed)
        );
        debug_assert_eq!(r.trailer_cpi.total(), r.total_cycles);
    }
    if !snapshot.registry.is_empty() {
        println!();
        println!("-- histograms --");
        print!("{}", snapshot.registry.format_histograms());
    }
    println!();
    println!("trace: {}", trace_path.display());
    if let Some(tracker) = tracker {
        // The collector's registry (CPI counters, occupancy histograms)
        // is the interesting snapshot for a profile run's dashboard.
        tracker.finish("ok", Some(&snapshot.registry));
    }
    if !quiet {
        eprintln!(
            "open the trace in ui.perfetto.dev, or re-derive this report with \
             `rmt3d trace-report` from a simulate --trace-out JSONL"
        );
    }
    ExitCode::SUCCESS
}

/// Maps an exported counter-series name back to its CPI component and
/// track (`true` = leader).
fn cpi_series(name: &str) -> Option<(bool, CpiComponent)> {
    for c in CpiComponent::ALL {
        if name == c.leader_counter_name() {
            return Some((true, c));
        }
        if name == c.checker_counter_name() {
            return Some((false, c));
        }
    }
    None
}

/// `rmt3d trace-report --in FILE [--chrome-out FILE]`: rebuild the
/// profile report from a JSONL event trace, offline. `--chrome-out`
/// additionally re-renders the events as a Chrome/Perfetto
/// `.trace.json` — the offline path for the daemon's
/// `daemon.trace.jsonl`, whose job spans become async timeline events.
pub fn run_trace_report_command(mut a: Args) -> ExitCode {
    let path = match a.opt("--in") {
        Ok(Some(p)) => p,
        Ok(None) => return fail("--in is required"),
        Err(e) => return fail(&e),
    };
    let chrome_out = match a.opt("--chrome-out") {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    if let Err(e) = a.finish() {
        return fail(&e);
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let mut chrome = match &chrome_out {
        Some(out) => match File::create(out) {
            Ok(f) => Some(TraceEventSink::new(BufWriter::new(f))),
            Err(e) => return fail(&format!("cannot create {out}: {e}")),
        },
        None => None,
    };

    let mut leader = CpiStack::new();
    let mut checker = CpiStack::new();
    let mut registry = MetricsRegistry::default();
    let mut counts: Vec<(&'static str, u64)> = Vec::new();
    let mut events = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let event = match ParsedEvent::from_json_line(line) {
            Ok(e) => e,
            Err(e) => return fail(&format!("{path}:{}: {e}", lineno + 1)),
        };
        events += 1;
        if let Some(chrome) = chrome.as_mut() {
            chrome.record_parsed(&event);
        }
        match counts.iter_mut().find(|(k, _)| *k == event.kind()) {
            Some((_, n)) => *n += 1,
            None => counts.push((event.kind(), 1)),
        }
        match &event {
            ParsedEvent::Counter { name, value, .. } => {
                // The stacks are exported once, post-measurement; keep
                // the last sample in case a file concatenates runs.
                match cpi_series(name) {
                    Some((true, c)) => leader.set(c, *value as u64),
                    Some((false, c)) => checker.set(c, *value as u64),
                    None => registry.record(name, *value),
                }
            }
            ParsedEvent::Interval(s) => {
                registry.record("interval_ipc", s.ipc);
                registry.record_hist("slack", u64::from(s.rvq));
                registry.record_hist("rob_occupancy", u64::from(s.rob));
                registry.record_hist("lsq_occupancy", u64::from(s.lsq));
                registry.record_hist("lvq_occupancy", u64::from(s.lvq));
                registry.record_hist("boq_occupancy", u64::from(s.boq));
                registry.record_hist("stb_occupancy", u64::from(s.stb));
            }
            ParsedEvent::CampaignTrial { detect_cycles, .. } if *detect_cycles > 0 => {
                registry.record_hist("detection_latency", *detect_cycles);
            }
            _ => {}
        }
    }

    if let Some(mut chrome) = chrome {
        if let Err(e) = chrome.finish() {
            return fail(&format!("chrome trace write failed: {e}"));
        }
        if let Some(out) = &chrome_out {
            println!("chrome trace: {out}");
        }
    }

    println!("trace report: {path} ({events} events)");
    for (kind, n) in &counts {
        println!("  {kind:16} {n:>10}");
    }
    if !leader.is_empty() {
        println!();
        print!("{}", leader.format_table("leader", 0));
    }
    if !checker.is_empty() {
        println!();
        print!("{}", checker.format_table("checker", 0));
    }
    if !registry.is_empty() {
        println!();
        println!("-- histograms --");
        print!("{}", registry.format_histograms());
    }
    ExitCode::SUCCESS
}

/// One record from an `RMT3D_BENCH_JSON` file: either a timed target
/// (minimum wall nanoseconds kept — the most noise-resistant statistic)
/// or a deterministic stat that must match the baseline exactly.
enum BenchRecord {
    Wall(f64),
    Stat(f64),
}

fn read_bench_file(path: &str) -> Result<Vec<(String, BenchRecord)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut records: Vec<(String, BenchRecord)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{path}:{}: record without \"name\"", lineno + 1))?
            .to_string();
        let record = if let Some(stat) = v.get("stat").and_then(JsonValue::as_f64) {
            BenchRecord::Stat(stat)
        } else if let Some(min) = v.get("min").and_then(JsonValue::as_f64) {
            BenchRecord::Wall(min)
        } else {
            return Err(format!(
                "{path}:{}: record has neither \"stat\" nor \"min\"",
                lineno + 1
            ));
        };
        // Re-runs append; the last record for a name wins.
        match records.iter_mut().find(|(n, _)| *n == name) {
            Some((_, slot)) => *slot = record,
            None => records.push((name, record)),
        }
    }
    Ok(records)
}

/// Looks up the deterministic stat `<target>/<stat>` in a bench record
/// set (e.g. `gate/2d-a/gzip` + `total_cycles`).
fn stat_of(records: &[(String, BenchRecord)], target: &str, stat: &str) -> Option<f64> {
    let key = format!("{target}/{stat}");
    records.iter().find_map(|(n, r)| match r {
        BenchRecord::Stat(s) if *n == key => Some(*s),
        _ => None,
    })
}

/// `rmt3d bench-gate --baseline FILE --current FILE [--tolerance PCT]
/// [--json]`: compare two bench JSONL files; exit non-zero on
/// regression. `--json` replaces the human table with one strict-JSON
/// result line for CI consumption.
pub fn run_bench_gate_command(mut a: Args) -> ExitCode {
    let baseline_path = match a.opt("--baseline") {
        Ok(Some(p)) => p,
        Ok(None) => return fail("--baseline is required"),
        Err(e) => return fail(&e),
    };
    let current_path = match a.opt("--current") {
        Ok(Some(p)) => p,
        Ok(None) => return fail("--current is required"),
        Err(e) => return fail(&e),
    };
    let tolerance = match a.parsed::<f64>("--tolerance") {
        Ok(t) => t.unwrap_or(10.0),
        Err(e) => return fail(&e),
    };
    let json = a.flag("--json");
    if let Err(e) = a.finish() {
        return fail(&e);
    }
    if !(0.0..1000.0).contains(&tolerance) {
        return fail("--tolerance must be a percentage in [0, 1000)");
    }
    let baseline = match read_bench_file(&baseline_path) {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    let current = match read_bench_file(&current_path) {
        Ok(c) => c,
        Err(e) => return fail(&e),
    };
    if baseline.is_empty() {
        return fail(&format!("{baseline_path} contains no records"));
    }

    let mut violations = 0u32;
    let (mut regressed, mut drifted_n, mut missing, mut kind_changed) = (0u32, 0u32, 0u32, 0u32);
    if !json {
        println!(
            "bench gate: {current_path} vs baseline {baseline_path} \
             (wall tolerance {tolerance}%)"
        );
    }
    for (name, base) in &baseline {
        let cur = current.iter().find(|(n, _)| n == name).map(|(_, r)| r);
        match (base, cur) {
            (_, None) => {
                violations += 1;
                missing += 1;
                if !json {
                    println!("  {name:44} MISSING from current run");
                }
            }
            (BenchRecord::Wall(b), Some(BenchRecord::Wall(c))) => {
                let delta = 100.0 * (c - b) / b;
                let over = *c > b * (1.0 + tolerance / 100.0);
                if over {
                    violations += 1;
                    regressed += 1;
                }
                if !json {
                    println!(
                        "  {name:44} wall {:>10.0} ns -> {:>10.0} ns  {delta:+6.1}%  {}",
                        b,
                        c,
                        if over { "REGRESSED" } else { "ok" }
                    );
                }
                // Throughput view: pair the wall time with the target's
                // own `<name>/total_cycles` deterministic stat when one
                // is recorded (positive delta = faster simulator).
                let base_cycles = stat_of(&baseline, name, "total_cycles");
                let cur_cycles = stat_of(&current, name, "total_cycles").or(base_cycles);
                if let (Some(bc), Some(cc)) = (base_cycles, cur_cycles) {
                    let base_rate = bc / (b * 1e-9);
                    let cur_rate = cc / (c * 1e-9);
                    let rate_delta = 100.0 * (cur_rate - base_rate) / base_rate;
                    if !json {
                        println!(
                            "  {:44}      {:>10.3} Mc/s -> {:>7.3} Mc/s  {rate_delta:+6.1}%",
                            "",
                            base_rate / 1e6,
                            cur_rate / 1e6
                        );
                    }
                }
            }
            (BenchRecord::Stat(b), Some(BenchRecord::Stat(c))) => {
                let drifted = b != c;
                if drifted {
                    violations += 1;
                    drifted_n += 1;
                }
                if !json {
                    println!(
                        "  {name:44} stat {b} -> {c}  {}",
                        if drifted { "DRIFTED" } else { "exact" }
                    );
                }
            }
            _ => {
                violations += 1;
                kind_changed += 1;
                if !json {
                    println!("  {name:44} record kind changed between runs");
                }
            }
        }
    }
    let mut new_targets = 0u32;
    for (name, _) in &current {
        if !baseline.iter().any(|(n, _)| n == name) {
            new_targets += 1;
            if !json {
                println!("  {name:44} new (not in baseline; re-bless to gate it)");
            }
        }
    }
    if json {
        // One strict-JSON result line for CI to parse and archive.
        let mut o = JsonObject::new();
        o.bool("ok", violations == 0)
            .u64("violations", u64::from(violations))
            .u64("regressed", u64::from(regressed))
            .u64("drifted", u64::from(drifted_n))
            .u64("missing", u64::from(missing))
            .u64("kind_changed", u64::from(kind_changed))
            .u64("new_targets", u64::from(new_targets))
            .u64("compared", baseline.len() as u64)
            .f64("tolerance_pct", tolerance)
            .str("baseline", &baseline_path)
            .str("current", &current_path);
        println!("{}", o.finish());
    } else if violations > 0 {
        println!("bench gate: {violations} violation(s)");
    } else {
        println!("bench gate: clean");
    }
    if violations > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// The subcommands above are exercised end-to-end by the CLI
// integration tests; `cpi_series` is the only pure helper worth
// pinning here.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_series_maps_both_tracks_and_rejects_noise() {
        assert_eq!(
            cpi_series("cpi_leader_base_issue"),
            Some((true, CpiComponent::BaseIssue))
        );
        assert_eq!(
            cpi_series("cpi_checker_dfs_throttled"),
            Some((false, CpiComponent::DfsThrottled))
        );
        assert_eq!(cpi_series("interval_ipc"), None);
        assert_eq!(cpi_series("cpi_leader_bogus"), None);
    }
}
