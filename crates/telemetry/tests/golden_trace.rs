//! Golden-file pin for the Perfetto trace-event export.
//!
//! The `.trace.json` schema is a published interface: any byte-level
//! change to how events render must be deliberate and reviewed. Feed a
//! fixed synthetic event sequence (one of every variant) through
//! [`TraceEventSink`] and compare against the checked-in golden.
//! Regenerate with `RMT3D_BLESS=1 cargo test -p rmt3d-telemetry`.

use rmt3d_telemetry::json::{parse, JsonValue};
use rmt3d_telemetry::{Event, Sink, TraceEventSink};
use std::cell::RefCell;
use std::io::{self, Write};
use std::path::PathBuf;
use std::rc::Rc;

#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("RMT3D_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with RMT3D_BLESS=1 cargo test -p rmt3d-telemetry",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "trace output drifted from {}; if intentional, regenerate with \
         RMT3D_BLESS=1 cargo test -p rmt3d-telemetry",
        path.display()
    );
}

fn render_synthetic_trace() -> String {
    let buf = SharedBuf::default();
    let mut sink = TraceEventSink::new(buf.clone());
    // One of every Event variant, in a fixed order; the example set is
    // exhaustiveness-checked, so new variants land here automatically.
    for event in Event::examples() {
        sink.record(&event);
    }
    sink.finish().unwrap();
    let bytes = buf.0.borrow().clone();
    String::from_utf8(bytes).unwrap()
}

#[test]
fn synthetic_trace_matches_golden() {
    assert_golden("synthetic.trace.json", &render_synthetic_trace());
}

#[test]
fn synthetic_trace_is_strict_json_with_expected_tracks() {
    let text = render_synthetic_trace();
    let doc = parse(&text).expect("trace must be strict JSON");
    let events = match doc.get("traceEvents") {
        Some(JsonValue::Arr(events)) => events,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    };
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
        .collect();
    for expected in [
        "process_name",
        "thread_name",
        "ipc",
        "slack_queues",
        "fault",
    ] {
        assert!(names.contains(&expected), "missing record {expected}");
    }
    // Every record carries the mandatory trace-event keys.
    for e in events {
        assert!(e.get("ph").is_some(), "record without ph: {e:?}");
        assert!(e.get("pid").is_some(), "record without pid: {e:?}");
    }
}
