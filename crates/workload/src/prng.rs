//! SplitMix64: tiny, fast, deterministic PRNG. Good enough statistical
//! quality for workload synthesis, fault injection and randomized tests,
//! and fully reproducible across platforms, which `rand`'s unseeded
//! entropy sources are not.
//!
//! This is the workspace's only randomness source: every consumer seeds
//! it explicitly, so any run can be replayed bit-for-bit.

/// The SplitMix64 generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds a generator. Distinct seeds yield uncorrelated streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: seed.wrapping_add(0x9e3779b97f4a7c15),
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0,1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, n).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiplicative range reduction; bias is negligible for our n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform usize in [0, n) — convenience for indexing.
    #[inline]
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform f64 in [lo, hi).
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform u64 in [lo, hi).
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// True with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let mut c = SplitMix64::new(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            let v = r.range_f64(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
            let n = r.below(17);
            assert!(n < 17);
            let m = r.range_u64(10, 20);
            assert!((10..20).contains(&m));
        }
    }
}
