//! Performance simulation of one (model, benchmark) pair.

use crate::model::{ProcessorModel, RunScale};
use rmt3d_cache::{CacheHierarchy, HierarchyStats, NucaPolicy, NucaStats};
use rmt3d_cpu::{ActivityCounters, CoreConfig, OooCore};
use rmt3d_rmt::{DfsConfig, RmtConfig, RmtSystem, DFS_LEVELS};
use rmt3d_telemetry::{
    emit, CpiComponent, CpiStack, Event, IntervalSample, NullSink, Sink, SpanTimer,
};
use rmt3d_units::Gigahertz;
use rmt3d_workload::{Benchmark, TraceGenerator};

/// Everything a performance run produces — the raw material for the
/// Fig. 4-7 and §3.3/§4 analyses.
#[derive(Debug, Clone)]
pub struct PerfResult {
    /// Model simulated.
    pub model: ProcessorModel,
    /// Benchmark simulated.
    pub benchmark: Benchmark,
    /// Leading-core clock used (2 GHz nominal).
    pub frequency: Gigahertz,
    /// Leading-core activity over the measured window.
    pub leader: ActivityCounters,
    /// Checker activity (zeroed for 2d-a).
    pub trailer: ActivityCounters,
    /// Cache-hierarchy counters.
    pub caches: HierarchyStats,
    /// L2 NUCA statistics (per-bank accesses for power maps).
    pub l2: NucaStats,
    /// DFS frequency histogram (Fig. 7); zeros for 2d-a.
    pub dfs_histogram: [f64; DFS_LEVELS],
    /// Mean normalized checker frequency.
    pub mean_checker_fraction: f64,
    /// Leader cycles including recovery stalls.
    pub total_cycles: u64,
    /// Leader CPI stack over the measured window. Zero under
    /// [`NullSink`] (classification is profiling-only); when populated
    /// its components sum exactly to [`PerfResult::total_cycles`].
    pub leader_cpi: CpiStack,
    /// Checker CPI stack lifted into the leader-cycle domain (zero for
    /// checker-less models and under [`NullSink`]); when populated it
    /// also sums to [`PerfResult::total_cycles`].
    pub trailer_cpi: CpiStack,
}

impl PerfResult {
    /// End-to-end instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.leader.committed as f64 / self.total_cycles as f64
        }
    }

    /// L2 misses per 10 000 instructions (§3.3 metric).
    pub fn l2_misses_per_10k(&self) -> f64 {
        self.caches.l2_misses_per_10k()
    }
}

/// Configuration for one run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Processor organization.
    pub model: ProcessorModel,
    /// Overrides the model's NUCA bank layout (used by the §4
    /// heterogeneous study, whose upper die holds only 4 banks).
    pub layout: Option<rmt3d_cache::NucaLayout>,
    /// NUCA placement policy (paper default: distributed sets).
    pub policy: NucaPolicy,
    /// Leading-core clock. Scaling this below 2 GHz models the §3.3
    /// iso-thermal DVFS point: memory latency is constant in
    /// nanoseconds, so the cycle-denominated latency shrinks.
    pub frequency: Gigahertz,
    /// Cap on the checker's normalized frequency (1.0 same-process;
    /// 0.7 for the §4 90 nm checker die).
    pub checker_peak_fraction: f64,
    /// Simulation lengths.
    pub scale: RunScale,
}

impl SimConfig {
    /// The paper's nominal configuration for a model.
    pub fn nominal(model: ProcessorModel, scale: RunScale) -> SimConfig {
        SimConfig {
            model,
            layout: None,
            policy: NucaPolicy::DistributedSets,
            frequency: Gigahertz(2.0),
            checker_peak_fraction: 1.0,
            scale,
        }
    }
}

/// Memory latency in leader cycles at clock `f` (150 ns constant).
fn memory_cycles(f: Gigahertz) -> u32 {
    (150.0 * f.value()).round() as u32
}

/// Runs one (model, benchmark) performance simulation with telemetry
/// disabled. Equivalent to [`simulate_traced`] with a
/// [`NullSink`] — and produces bit-identical results, since the
/// [`NullSink`] path compiles event construction out entirely.
pub fn simulate(cfg: &SimConfig, benchmark: Benchmark) -> PerfResult {
    simulate_traced(cfg, benchmark, 0, NullSink)
}

/// Strategy for producing [`PerfResult`]s.
///
/// Experiment drivers (`fig4`, `fig5`, `iso_thermal`, …) route every
/// simulation through this trait and submit independent
/// `(config, benchmark)` pairs as one batch, so an implementation may
/// fan the batch out over worker threads (see the `rmt3d-sweep` crate).
/// Because [`simulate`] is deterministic, any implementation that runs
/// each job through it yields results bit-identical to
/// [`SerialSimulator`], whatever the execution order.
pub trait Simulator {
    /// Produces the result of one `(config, benchmark)` run.
    fn simulate(&self, cfg: &SimConfig, benchmark: Benchmark) -> PerfResult;

    /// Produces results for a batch of independent runs, in input
    /// order. The default runs them serially through
    /// [`Simulator::simulate`]; parallel implementations override this.
    fn simulate_batch(&self, jobs: &[(SimConfig, Benchmark)]) -> Vec<PerfResult> {
        jobs.iter()
            .map(|(cfg, b)| Simulator::simulate(self, cfg, *b))
            .collect()
    }
}

/// The in-process, single-threaded [`Simulator`]: every job runs
/// through [`simulate`] on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialSimulator;

impl Simulator for SerialSimulator {
    fn simulate(&self, cfg: &SimConfig, benchmark: Benchmark) -> PerfResult {
        simulate(cfg, benchmark)
    }
}

/// Periodic machine-state snapshots: every `interval` cycles the run
/// loop reads occupancies/counters through accessors and emits an
/// [`Event::Interval`], so sampling never perturbs the simulation.
struct Sampler {
    interval: u64,
    index: u64,
    last_cycle: u64,
    last_committed: u64,
    last_stall: u64,
}

impl Sampler {
    fn new(interval: u64, cycle: u64, committed: u64, stall_cycles: u64) -> Sampler {
        Sampler {
            interval,
            index: 0,
            last_cycle: cycle,
            last_committed: committed,
            last_stall: stall_cycles,
        }
    }

    fn due(&self, cycle: u64) -> bool {
        self.interval != 0 && cycle - self.last_cycle >= self.interval
    }

    /// Builds the next sample's run-loop-level fields from cumulative
    /// counters; the caller fills in the structure occupancies.
    fn take(&mut self, cycle: u64, committed: u64, stall_cycles: u64) -> IntervalSample {
        let window = (cycle - self.last_cycle).max(1);
        let delta = committed - self.last_committed;
        let sample = IntervalSample {
            index: self.index,
            cycle,
            committed: delta,
            ipc: delta as f64 / window as f64,
            commit_stall_cycles: stall_cycles - self.last_stall,
            ..IntervalSample::default()
        };
        self.index += 1;
        self.last_cycle = cycle;
        self.last_committed = committed;
        self.last_stall = stall_cycles;
        sample
    }
}

/// Runs one (model, benchmark) performance simulation, streaming
/// telemetry to `sink`: `simulate`/`warmup`/`measure` spans, every
/// event the cores and the RMT system emit, and — when
/// `sample_interval > 0` — an [`Event::Interval`] snapshot of
/// pipeline/queue occupancies every `sample_interval` leader cycles of
/// the measured window.
pub fn simulate_traced<S: Sink + Clone + 'static>(
    cfg: &SimConfig,
    benchmark: Benchmark,
    sample_interval: u64,
    mut sink: S,
) -> PerfResult {
    let layout = cfg
        .layout
        .clone()
        .unwrap_or_else(|| cfg.model.nuca_layout());
    let mut hierarchy = CacheHierarchy::new(layout, cfg.policy);
    hierarchy.set_memory_cycles(memory_cycles(cfg.frequency));
    let leader = OooCore::with_sink(
        CoreConfig::leading_ev7_like(),
        TraceGenerator::new(benchmark.profile()),
        hierarchy,
        sink.clone(),
    );
    let run_span = SpanTimer::begin(&mut sink, "simulate", 0);

    let result = if cfg.model.has_checker() {
        let rmt_cfg = RmtConfig {
            dfs: DfsConfig::paper().with_frequency_cap(cfg.checker_peak_fraction),
            ..RmtConfig::paper()
        };
        let mut sys = RmtSystem::with_sink(leader, rmt_cfg, sink.clone());
        sys.prefill_caches();
        let warm_span = SpanTimer::begin(&mut sink, "warmup", 0);
        sys.run_instructions(cfg.scale.warmup_instructions);
        warm_span.end(&mut sink, sys.total_cycles());
        // Reset is not exposed on the composite; measure the delta
        // window instead.
        let start_leader = *sys.leader().activity();
        let start_trailer = *sys.trailer().activity();
        let start_leader_cpi = sys.leader_cpi_stack();
        let start_trailer_cpi = sys.trailer_cpi_stack();
        let start_cycles = sys.total_cycles();
        let measure_span = SpanTimer::begin(&mut sink, "measure", start_cycles);
        let mut sampler = Sampler::new(
            sample_interval,
            start_cycles,
            start_leader.committed,
            start_leader.commit_stall_cycles,
        );
        if sample_interval == 0 {
            // No interval snapshots wanted: let the system pick its
            // engine (threaded leader/checker when eligible) instead
            // of forcing the per-cycle sampling loop.
            sys.run_instructions(cfg.scale.instructions);
        }
        while sys.leader().activity().committed - start_leader.committed < cfg.scale.instructions {
            sys.step();
            let cycle = sys.total_cycles();
            if sampler.due(cycle) {
                let act = sys.leader().activity();
                let mut s = sampler.take(cycle, act.committed, act.commit_stall_cycles);
                s.rob = sys.leader().rob_occupancy();
                s.iq_int = sys.leader().iq_int_occupancy();
                s.iq_fp = sys.leader().iq_fp_occupancy();
                s.lsq = sys.leader().lsq_occupancy();
                let occ = sys.queues().occupancy();
                s.rvq = occ.rvq as u32;
                s.lvq = occ.lvq as u32;
                s.boq = occ.boq as u32;
                s.stb = occ.stb as u32;
                s.checker_fraction = sys.dfs().current().fraction();
                let stats = sys.leader().caches().stats();
                s.dl1_accesses = stats.l1d.accesses;
                s.dl1_misses = stats.l1d.misses;
                s.l2_accesses = stats.l2_accesses;
                s.l2_misses = stats.l2_misses;
                emit(&mut sink, || Event::Interval(s));
            }
        }
        measure_span.end(&mut sink, sys.total_cycles());
        let leader_act = sys.leader().activity().delta_since(&start_leader);
        let trailer_act = sys.trailer().activity().delta_since(&start_trailer);
        // The composed stacks fold in recovery/DFS cycles from system
        // stats, which advance even when the cores skip classification;
        // under a disabled sink the stacks must stay all-zero.
        let (leader_cpi, trailer_cpi) = if S::ENABLED {
            (
                sys.leader_cpi_stack().delta_since(&start_leader_cpi),
                sys.trailer_cpi_stack().delta_since(&start_trailer_cpi),
            )
        } else {
            (CpiStack::new(), CpiStack::new())
        };
        if S::ENABLED {
            // Export the stacks as counter samples so an offline
            // `trace-report` can rebuild them from the JSONL alone.
            let cycle = sys.total_cycles();
            for c in CpiComponent::ALL {
                let name = c.leader_counter_name();
                let value = leader_cpi.get(c) as f64;
                emit(&mut sink, || Event::Counter { name, cycle, value });
                let name = c.checker_counter_name();
                let value = trailer_cpi.get(c) as f64;
                emit(&mut sink, || Event::Counter { name, cycle, value });
            }
        }
        PerfResult {
            model: cfg.model,
            benchmark,
            frequency: cfg.frequency,
            leader: leader_act,
            trailer: trailer_act,
            caches: sys.leader().caches().stats(),
            l2: sys.leader().caches().l2().stats().clone(),
            dfs_histogram: sys.frequency_histogram(),
            mean_checker_fraction: sys.dfs().mean_fraction(),
            total_cycles: sys.total_cycles() - start_cycles,
            leader_cpi,
            trailer_cpi,
        }
    } else {
        let mut core = leader;
        core.prefill_caches();
        let warm_span = SpanTimer::begin(&mut sink, "warmup", 0);
        core.run_instructions(cfg.scale.warmup_instructions);
        core.reset_stats();
        warm_span.end(&mut sink, core.activity().cycles);
        let measure_span = SpanTimer::begin(&mut sink, "measure", 0);
        let mut sampler = Sampler::new(sample_interval, 0, 0, 0);
        let mut commit_buf = Vec::with_capacity(8);
        while core.activity().committed < cfg.scale.instructions {
            commit_buf.clear();
            core.step_cycle(&mut commit_buf);
            let cycle = core.activity().cycles;
            if sampler.due(cycle) {
                let act = core.activity();
                let mut s = sampler.take(cycle, act.committed, act.commit_stall_cycles);
                s.rob = core.rob_occupancy();
                s.iq_int = core.iq_int_occupancy();
                s.iq_fp = core.iq_fp_occupancy();
                s.lsq = core.lsq_occupancy();
                let stats = core.caches().stats();
                s.dl1_accesses = stats.l1d.accesses;
                s.dl1_misses = stats.l1d.misses;
                s.l2_accesses = stats.l2_accesses;
                s.l2_misses = stats.l2_misses;
                emit(&mut sink, || Event::Interval(s));
            }
        }
        measure_span.end(&mut sink, core.activity().cycles);
        // reset_stats() after warm-up cleared the stack, so the core's
        // accumulated stack is exactly the measured window.
        let leader_cpi = *core.cpi_stack();
        if S::ENABLED {
            let cycle = core.activity().cycles;
            for c in CpiComponent::ALL {
                let name = c.leader_counter_name();
                let value = leader_cpi.get(c) as f64;
                emit(&mut sink, || Event::Counter { name, cycle, value });
            }
        }
        PerfResult {
            model: cfg.model,
            benchmark,
            frequency: cfg.frequency,
            leader: *core.activity(),
            trailer: ActivityCounters::default(),
            caches: core.caches().stats(),
            l2: core.caches().l2().stats().clone(),
            dfs_histogram: [0.0; DFS_LEVELS],
            mean_checker_fraction: 0.0,
            total_cycles: core.activity().cycles,
            leader_cpi,
            trailer_cpi: CpiStack::new(),
        }
    };
    run_span.end(&mut sink, result.total_cycles);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RunScale;

    #[test]
    fn cpi_stacks_sum_to_total_cycles_when_traced() {
        use rmt3d_telemetry::RecordingSink;
        let quick = RunScale::quick();
        for model in [ProcessorModel::TwoDA, ProcessorModel::ThreeD2A] {
            let r = simulate_traced(
                &SimConfig::nominal(model, quick),
                Benchmark::Gzip,
                0,
                RecordingSink::new(),
            );
            assert_eq!(
                r.leader_cpi.total(),
                r.total_cycles,
                "{model:?} leader CPI stack must sum to total cycles"
            );
            if model.has_checker() {
                assert_eq!(
                    r.trailer_cpi.total(),
                    r.total_cycles,
                    "{model:?} checker CPI stack must sum to total cycles"
                );
                assert!(r.trailer_cpi.get(CpiComponent::DfsThrottled) > 0);
            } else {
                assert!(r.trailer_cpi.is_empty());
            }
        }
    }

    #[test]
    fn cpi_stacks_are_zero_untraced() {
        let r = simulate(
            &SimConfig::nominal(ProcessorModel::ThreeD2A, RunScale::quick()),
            Benchmark::Gzip,
        );
        assert!(r.leader_cpi.is_empty(), "NullSink does not classify");
        assert!(r.trailer_cpi.is_empty());
    }

    #[test]
    fn baseline_and_3d_have_similar_ipc() {
        // §3.3: the checker imposes negligible overhead; 3d-checker
        // matches 2d-a.
        let quick = RunScale::quick();
        let a = simulate(
            &SimConfig::nominal(ProcessorModel::TwoDA, quick),
            Benchmark::Gzip,
        );
        let b = simulate(
            &SimConfig::nominal(ProcessorModel::ThreeDChecker, quick),
            Benchmark::Gzip,
        );
        let loss = 1.0 - b.ipc() / a.ipc();
        assert!(
            loss.abs() < 0.05,
            "3d-checker IPC {} vs 2d-a {} (loss {loss})",
            b.ipc(),
            a.ipc()
        );
    }

    #[test]
    fn lower_frequency_costs_less_than_proportionally() {
        // Memory latency is constant in ns, so a 10% slower clock loses
        // less than 10% IPC-seconds (§3.3).
        let quick = RunScale::quick();
        let full = simulate(
            &SimConfig::nominal(ProcessorModel::TwoDA, quick),
            Benchmark::Mcf,
        );
        let slow_cfg = SimConfig {
            frequency: Gigahertz(1.8),
            ..SimConfig::nominal(ProcessorModel::TwoDA, quick)
        };
        let slow = simulate(&slow_cfg, Benchmark::Mcf);
        // Work per second = IPC * f.
        let perf_full = full.ipc() * 2.0;
        let perf_slow = slow.ipc() * 1.8;
        let loss = 1.0 - perf_slow / perf_full;
        assert!(
            loss < 0.10 && loss > -0.02,
            "mcf at 1.8 GHz loses {loss} (memory-bound programs lose least)"
        );
    }

    #[test]
    fn checker_histogram_produced_for_rmt_models() {
        let r = simulate(
            &SimConfig::nominal(ProcessorModel::ThreeD2A, RunScale::quick()),
            Benchmark::Gap,
        );
        let sum: f64 = r.dfs_histogram.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(r.mean_checker_fraction > 0.2);
        assert!(r.trailer.committed > 0);
    }

    #[test]
    fn frequency_capped_checker_still_keeps_up_mostly() {
        // §4: the 1.4 GHz-capped checker slows the leader only ~3%.
        let quick = RunScale::quick();
        let free = simulate(
            &SimConfig::nominal(ProcessorModel::ThreeD2A, quick),
            Benchmark::Gzip,
        );
        let capped_cfg = SimConfig {
            checker_peak_fraction: 0.7,
            ..SimConfig::nominal(ProcessorModel::ThreeD2A, quick)
        };
        let capped = simulate(&capped_cfg, Benchmark::Gzip);
        let slowdown = 1.0 - capped.ipc() / free.ipc();
        assert!(
            slowdown < 0.12,
            "frequency-capped checker slowdown {slowdown}"
        );
        assert!(capped.mean_checker_fraction <= 0.7 + 1e-9);
    }
}
