//! Time, frequency and cycle-count quantities.

use crate::Joules;
use crate::Watts;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Wall-clock time in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(pub f64);

/// Time in picoseconds (gate and pipeline-stage delays).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Picoseconds(pub f64);

/// Clock frequency in gigahertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Gigahertz(pub f64);

/// An integral count of clock cycles in a specific clock domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

/// A frequency expressed as a fraction of a peak frequency, in `[0, 1]`.
///
/// The paper's DFS controller steps the checker core through discrete
/// normalized frequency levels (Fig. 7 plots a histogram over `0.1f ..= f`).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct NormalizedFrequency(f64);

impl Seconds {
    /// Converts to picoseconds.
    #[inline]
    pub fn picoseconds(self) -> Picoseconds {
        Picoseconds(self.0 * 1e12)
    }

    /// Raw value in seconds.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Picoseconds {
    /// Converts to seconds.
    #[inline]
    pub fn seconds(self) -> Seconds {
        Seconds(self.0 * 1e-12)
    }

    /// Converts to nanoseconds.
    #[inline]
    pub fn nanoseconds(self) -> f64 {
        self.0 * 1e-3
    }
}

impl Gigahertz {
    /// The cycle time of this clock.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero or negative.
    #[inline]
    pub fn cycle_time(self) -> Picoseconds {
        assert!(self.0 > 0.0, "cycle time of non-positive frequency");
        Picoseconds(1000.0 / self.0)
    }

    /// Raw value in hertz.
    #[inline]
    pub fn hertz(self) -> f64 {
        self.0 * 1e9
    }

    /// Raw value in gigahertz.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }
}

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Raw count.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Wall-clock duration of this many cycles at frequency `f`.
    #[inline]
    pub fn duration_at(self, f: Gigahertz) -> Seconds {
        Seconds(self.0 as f64 / f.hertz())
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl NormalizedFrequency {
    /// Full speed (`1.0 f`).
    pub const FULL: NormalizedFrequency = NormalizedFrequency(1.0);

    /// Creates a normalized frequency, clamping into `[0, 1]`.
    #[inline]
    pub fn new(fraction: f64) -> NormalizedFrequency {
        NormalizedFrequency(fraction.clamp(0.0, 1.0))
    }

    /// The fraction of peak frequency.
    #[inline]
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// Converts back to an absolute frequency given the peak.
    #[inline]
    pub fn at_peak(self, peak: Gigahertz) -> Gigahertz {
        Gigahertz(peak.0 * self.0)
    }

    /// The discrete DFS level `1..=10` this frequency rounds to (one
    /// level per `0.1 f`, matching the paper's 10-level DFS).
    #[inline]
    pub fn level(self) -> u8 {
        ((self.0 * 10.0).round() as u8).clamp(1, 10)
    }

    /// Snaps to the nearest multiple of `step` (e.g. `0.1` for the
    /// paper's 10 discrete DFS levels), never exceeding 1.0 and never
    /// going below one step.
    #[inline]
    pub fn quantize(self, step: f64) -> NormalizedFrequency {
        assert!(step > 0.0 && step <= 1.0, "invalid quantization step");
        let snapped = (self.0 / step).round() * step;
        NormalizedFrequency(snapped.clamp(step, 1.0))
    }
}

impl Add for Seconds {
    type Output = Seconds;
    #[inline]
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    #[inline]
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    #[inline]
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Seconds>>(iter: I) -> Seconds {
        Seconds(iter.map(|s| s.0).sum())
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Add for Picoseconds {
    type Output = Picoseconds;
    #[inline]
    fn add(self, rhs: Picoseconds) -> Picoseconds {
        Picoseconds(self.0 + rhs.0)
    }
}

impl Sub for Picoseconds {
    type Output = Picoseconds;
    #[inline]
    fn sub(self, rhs: Picoseconds) -> Picoseconds {
        Picoseconds(self.0 - rhs.0)
    }
}

impl Mul<f64> for Picoseconds {
    type Output = Picoseconds;
    #[inline]
    fn mul(self, rhs: f64) -> Picoseconds {
        Picoseconds(self.0 * rhs)
    }
}

impl Div<Picoseconds> for Picoseconds {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Picoseconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Mul<f64> for Gigahertz {
    type Output = Gigahertz;
    #[inline]
    fn mul(self, rhs: f64) -> Gigahertz {
        Gigahertz(self.0 * rhs)
    }
}

impl Div<Gigahertz> for Gigahertz {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Gigahertz) -> f64 {
        self.0 / rhs.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`Cycles::saturating_sub`] when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6e} s", self.0)
    }
}

impl fmt::Display for Picoseconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ps", self.0)
    }
}

impl fmt::Display for Gigahertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GHz", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl fmt::Display for NormalizedFrequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}f", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_time_of_2ghz_is_500ps() {
        let ct = Gigahertz(2.0).cycle_time();
        assert!((ct.0 - 500.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-positive frequency")]
    fn cycle_time_of_zero_panics() {
        let _ = Gigahertz(0.0).cycle_time();
    }

    #[test]
    fn energy_power_time_triangle() {
        let e = Watts(10.0) * Seconds(2.0);
        assert_eq!(e, Joules(20.0));
        assert_eq!(e / Seconds(2.0), Watts(10.0));
    }

    #[test]
    fn cycles_duration() {
        // 2e9 cycles at 2 GHz is one second.
        let d = Cycles(2_000_000_000).duration_at(Gigahertz(2.0));
        assert!((d.0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_saturating_sub() {
        assert_eq!(Cycles(5).saturating_sub(Cycles(10)), Cycles(0));
        assert_eq!(Cycles(10).saturating_sub(Cycles(4)), Cycles(6));
    }

    #[test]
    fn normalized_frequency_clamps() {
        assert_eq!(NormalizedFrequency::new(1.5).fraction(), 1.0);
        assert_eq!(NormalizedFrequency::new(-0.5).fraction(), 0.0);
        assert_eq!(NormalizedFrequency::new(0.6).fraction(), 0.6);
    }

    #[test]
    fn normalized_frequency_quantizes_to_dfs_levels() {
        let q = NormalizedFrequency::new(0.63).quantize(0.1);
        assert!((q.fraction() - 0.6).abs() < 1e-12);
        // Never quantizes to zero.
        let q = NormalizedFrequency::new(0.01).quantize(0.1);
        assert!((q.fraction() - 0.1).abs() < 1e-12);
        // Never exceeds full speed.
        let q = NormalizedFrequency::new(0.99).quantize(0.1);
        assert!((q.fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_frequency_to_absolute() {
        let f = NormalizedFrequency::new(0.63).at_peak(Gigahertz(2.0));
        assert!((f.0 - 1.26).abs() < 1e-12);
    }

    #[test]
    fn picosecond_ratio() {
        // 90 nm vs 65 nm stage delay ratio from the paper: 714/500.
        let r = Picoseconds(714.0) / Picoseconds(500.0);
        assert!((r - 1.428).abs() < 1e-12);
    }
}
