//! Reusable SIGKILL scheduling for real-binary crash tests.
//!
//! A [`KillSchedule`] draws seeded random kill delays from a
//! [`SplitMix64`] stream, escalating the window on every attempt so a
//! victim that keeps getting killed early is guaranteed to eventually
//! outrun the killer and finish. [`kill_after`] does the dirty work:
//! poll the child until the delay elapses, then SIGKILL it
//! (`Child::kill` sends SIGKILL on unix — no graceful shutdown, no
//! atexit handlers, exactly the crash the journal must survive).

use rmt3d_workload::SplitMix64;
use std::process::{Child, ExitStatus};
use std::time::{Duration, Instant};

/// One seeded kill regime for a campaign under test.
pub struct KillSchedule {
    /// Names the work directory and failure messages.
    pub name: &'static str,
    /// Seed of the delay stream (the "seeded kill schedule" of the
    /// acceptance criteria: re-running reproduces the same kills).
    pub seed: u64,
    /// First-attempt delay window in milliseconds.
    pub min_ms: u64,
    pub max_ms: u64,
}

/// Three regimes aimed at different crash landings: almost immediately
/// (startup, header and first journal writes), mid-trial at full tilt,
/// and late (between aggregation checkpoints, report imminent).
pub const SCHEDULES: [KillSchedule; 3] = [
    KillSchedule {
        name: "rapid-fire",
        seed: 0xDEAD,
        min_ms: 10,
        max_ms: 120,
    },
    KillSchedule {
        name: "mid-trial",
        seed: 0xBEEF,
        min_ms: 150,
        max_ms: 600,
    },
    KillSchedule {
        name: "between-checkpoints",
        seed: 0xFEED,
        min_ms: 500,
        max_ms: 1500,
    },
];

impl KillSchedule {
    /// The delay before kill `attempt` (0-based): drawn uniformly from
    /// the window, which doubles every four attempts so progress per
    /// life grows until the campaign finishes.
    pub fn delay(&self, rng: &mut SplitMix64, attempt: u64) -> Duration {
        let scale = 1 << (attempt / 4).min(6);
        Duration::from_millis(self.min_ms * scale + rng.below((self.max_ms - self.min_ms) * scale))
    }
}

/// Polls `child` until `delay` elapses, then SIGKILLs it. Returns
/// `None` when the child was killed, `Some(status)` when it exited on
/// its own first.
pub fn kill_after(child: &mut Child, delay: Duration) -> Option<ExitStatus> {
    let deadline = Instant::now() + delay;
    loop {
        if let Some(status) = child.try_wait().expect("child waitable") {
            return Some(status);
        }
        if Instant::now() >= deadline {
            child.kill().expect("SIGKILL delivered");
            child.wait().expect("killed child reaped");
            return None;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}
