//! Property tests over the RMT machinery: queue conservation, DFS
//! boundedness, fault-injection coverage and recovery invariants.
//!
//! Cases are drawn from a seeded [`SplitMix64`] stream so every failure
//! replays deterministically without an external property-test crate.

use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
use rmt3d_cpu::{CoreConfig, OooCore};
use rmt3d_rmt::{
    DfsConfig, EccConfig, IntercoreQueues, QueueConfig, RmtConfig, RmtSystem, TmrSystem,
};
use rmt3d_workload::{ArchReg, Benchmark, MemRef, MicroOp, OpClass, SplitMix64, TraceGenerator};

fn item(seq: u64, kind: OpClass) -> rmt3d_cpu::CommittedOp {
    rmt3d_cpu::CommittedOp {
        op: MicroOp {
            seq,
            pc: 0x40_0000,
            kind,
            dest: kind.writes_register().then(|| ArchReg::new(1)),
            imm: seq,
            mem_addr: MicroOp::pack_mem(kind.is_memory().then_some(MemRef { addr: 64, size: 8 })),
            ..MicroOp::EMPTY
        },
        result: 0,
        src1_value: (kind == OpClass::Store) as u64 * 2,
        src2_value: 0,
        mem_value: (kind == OpClass::Load) as u64,
        commit_cycle: seq,
    }
}

#[test]
fn queue_occupancy_is_conserved() {
    let mut rng = SplitMix64::new(0x0cc);
    for _ in 0..32 {
        let n = rng.range_u64(1, 120) as usize;
        let kinds: Vec<OpClass> = (0..n).map(|_| OpClass::ALL[rng.below_usize(7)]).collect();
        let mut q = IntercoreQueues::new(QueueConfig::paper());
        let mut pushed = 0usize;
        for (i, &k) in kinds.iter().enumerate() {
            if q.can_accept(1) {
                q.push(item(i as u64, k));
                pushed += 1;
            }
        }
        assert_eq!(q.occupancy().rvq, pushed);
        // Draining the stream and reporting consumption empties every
        // logical queue.
        let drained: Vec<_> = q.stream_mut().drain(..).collect();
        for c in &drained {
            q.on_trailer_consumed(c.op.kind);
        }
        let o = q.occupancy();
        assert_eq!((o.rvq, o.lvq, o.boq, o.stb), (0, 0, 0, 0));
        // Peaks are monotone records.
        assert!(q.peak_occupancy().rvq >= 1 || pushed == 0);
    }
}

#[test]
fn dfs_histogram_mass_equals_decisions() {
    let mut rng = SplitMix64::new(0xd1f5);
    for _ in 0..32 {
        let n = rng.range_u64(1, 50) as usize;
        let mut d = rmt3d_rmt::DfsController::new(DfsConfig::paper());
        let mut ticks = 0u64;
        for _ in 0..n {
            let f = rng.next_f64();
            for _ in 0..250 {
                d.tick(f);
                ticks += 1;
            }
        }
        let decisions: u64 = d.histogram_counts().iter().sum();
        assert_eq!(decisions, d.intervals());
        assert_eq!(d.intervals(), ticks / DfsConfig::paper().interval);
    }
}

#[test]
fn rmt_recovers_at_any_fault_rate() {
    let mut rng = SplitMix64::new(0x4ec0);
    for _ in 0..8 {
        let seed = rng.below(1000);
        let rate_exp = rng.range_u64(1, 4) as u32;
        // Rates from 1e-4 to 1e-2: with the paper ECC set, golden state
        // must always be restored.
        let rate = 10f64.powi(-(rate_exp as i32 + 1));
        let leader = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(Benchmark::Gzip.profile()),
            CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
        );
        let mut sys = RmtSystem::new(leader, RmtConfig::paper()).with_fault_injection(
            seed,
            rate,
            EccConfig::paper(),
        );
        sys.prefill_caches();
        sys.run_instructions(12_000);
        sys.drain();
        assert_eq!(sys.stats().unrecoverable, 0);
        assert!(sys.leader_matches_golden());
        // Recovery squashes re-execute work architecturally, so at high
        // fault rates many instructions retire via replay instead of
        // normal verification; the invariant is golden-state equality,
        // not the verified count.
        assert!(sys.stats().verified_ok > 0);
    }
}

/// Promoted from `rmt_props.proptest-regressions` (case
/// `cc 795a865b…`, "shrinks to seed = 0, rate_exp = 1"): the shrunk
/// historical failure of [`rmt_recovers_at_any_fault_rate`], pinned as
/// a named test so it replays on every run — by name, with no seed
/// file — and never regresses silently.
#[test]
fn regression_seed0_rate_exp1_recovers_at_percent_fault_rate() {
    let seed = 0;
    let rate_exp: u32 = 1;
    let rate = 10f64.powi(-(rate_exp as i32 + 1)); // 1e-2: the harshest drawn rate
    let leader = OooCore::new(
        CoreConfig::leading_ev7_like(),
        TraceGenerator::new(Benchmark::Gzip.profile()),
        CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
    );
    let mut sys = RmtSystem::new(leader, RmtConfig::paper()).with_fault_injection(
        seed,
        rate,
        EccConfig::paper(),
    );
    sys.prefill_caches();
    sys.run_instructions(12_000);
    sys.drain();
    assert_eq!(sys.stats().unrecoverable, 0);
    assert!(sys.leader_matches_golden());
    assert!(sys.stats().verified_ok > 0);
    // The regression case strikes often enough to exercise recovery,
    // not just verification.
    assert!(sys.stats().recoveries > 0, "stats {:?}", sys.stats());
}

#[test]
fn tmr_masks_everything_without_ecc() {
    let mut rng = SplitMix64::new(0x73a);
    for _ in 0..6 {
        let seed = rng.below(500);
        let leader = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(Benchmark::Vpr.profile()),
            CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
        );
        let mut sys = TmrSystem::new(leader).with_fault_injection(seed, 2e-3, EccConfig::none());
        sys.prefill_caches();
        sys.run_instructions(10_000);
        assert!(sys.leader_matches_golden(), "stats {:?}", sys.stats());
    }
}
