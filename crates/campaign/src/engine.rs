//! Campaign execution on the `rmt3d-sweep` work-stealing pool.

use crate::grid::CampaignSpec;
use crate::report::{CampaignReport, TrialRecord};
use crate::trial::{run_trial, TrialResult};
use rmt3d_sweep::{run_pool, PoolEvent};
use rmt3d_telemetry::{emit, Event, Sink};

/// Runs every trial of `spec` on `jobs` worker threads (0 = available
/// parallelism) and aggregates the records in grid order.
///
/// Lifecycle events stream to `sink` while workers run
/// ([`Event::JobStarted`] / [`Event::JobFinished`], in completion
/// order, plus [`Event::JobStalled`] when `watchdog` is set); once the
/// pool drains it emits one [`Event::PoolStats`] utilization summary,
/// then one [`Event::CampaignTrial`] per trial in grid order, so a
/// deterministic sink sees the same trial stream regardless of worker
/// count.
///
/// # Errors
///
/// Returns an error when the spec fails [`CampaignSpec::validate`].
/// Trial panics are *not* errors — they surface as failed
/// [`TrialRecord`]s.
pub fn run_campaign<S: Sink>(
    spec: &CampaignSpec,
    jobs: usize,
    sink: &mut S,
) -> Result<CampaignReport, String> {
    run_campaign_watched(spec, jobs, None, sink)
}

/// [`run_campaign`] with an optional heartbeat watchdog flagging silent
/// trials as [`Event::JobStalled`].
///
/// # Errors
///
/// Returns an error when the spec fails [`CampaignSpec::validate`].
pub fn run_campaign_watched<S: Sink>(
    spec: &CampaignSpec,
    jobs: usize,
    watchdog: Option<rmt3d_obs::WatchdogConfig>,
    sink: &mut S,
) -> Result<CampaignReport, String> {
    spec.validate()?;
    let trials = spec.expand();
    let total = trials.len();
    let workers = if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    };
    let pool_records = run_pool(
        &trials,
        workers,
        |_| None::<TrialResult>,
        run_trial,
        |_, _| {},
        watchdog,
        |ev| match ev {
            PoolEvent::Started { index } => emit(sink, || Event::JobStarted {
                job: index as u64,
                total: total as u64,
                label: trials[index].label(),
            }),
            PoolEvent::Finished {
                index,
                ok,
                wall_nanos,
                eta_nanos,
            } => emit(sink, || Event::JobFinished {
                job: index as u64,
                total: total as u64,
                ok,
                wall_nanos,
                eta_nanos,
            }),
            PoolEvent::Stalled {
                index,
                elapsed_nanos,
                median_nanos,
            } => emit(sink, || Event::JobStalled {
                job: index as u64,
                total: total as u64,
                label: trials[index].label(),
                elapsed_nanos,
                median_nanos,
            }),
            PoolEvent::Drained { stats } => emit(sink, || Event::PoolStats {
                workers: stats.workers,
                executed: stats.executed,
                cache_hits: stats.cache_hits,
                failed: stats.failed,
                steals: stats.steals,
                busy_nanos: stats.busy_nanos,
                idle_nanos: stats.idle_nanos,
                wall_nanos: stats.wall_nanos,
            }),
            PoolEvent::CacheHit { .. } => {}
        },
    );
    let records: Vec<TrialRecord> = trials
        .into_iter()
        .zip(pool_records)
        .map(|(spec, r)| TrialRecord {
            spec,
            outcome: r.outcome,
        })
        .collect();
    for r in &records {
        emit(sink, || Event::CampaignTrial {
            trial: r.spec.index as u64,
            site: r.spec.site.name(),
            fate: r.outcome.as_ref().map_or("panicked", |t| t.fate.name()),
            detect_cycles: r.outcome.as_ref().map_or(0, |t| t.detect_cycles),
            ok: r.ok(),
        });
    }
    Ok(CampaignReport { records })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt3d_telemetry::{NullSink, RecordingSink};

    #[test]
    fn smoke_campaign_has_full_coverage() {
        let spec = CampaignSpec::smoke(11);
        let report = run_campaign(&spec, 0, &mut NullSink).expect("campaign runs");
        assert_eq!(report.records.len(), spec.total_trials());
        assert!(
            report.full_coverage(),
            "violations: {:?}",
            report
                .violations()
                .iter()
                .map(|r| (r.spec.label(), &r.outcome))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn campaign_trial_events_arrive_in_grid_order() {
        let spec = CampaignSpec::smoke(3);
        let mut sink = RecordingSink::new();
        run_campaign(&spec, 2, &mut sink).expect("campaign runs");
        let trial_ids: Vec<u64> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::CampaignTrial { trial, .. } => Some(*trial),
                _ => None,
            })
            .collect();
        let expected: Vec<u64> = (0..spec.total_trials() as u64).collect();
        assert_eq!(trial_ids, expected);
    }

    #[test]
    fn invalid_spec_is_an_error_not_a_panic() {
        let mut spec = CampaignSpec::smoke(1);
        spec.benchmarks.clear();
        assert!(run_campaign(&spec, 1, &mut NullSink).is_err());
    }
}
