//! CACTI-lite: analytic SRAM bank delay/energy/area model.
//!
//! The paper uses CACTI-4.0 \[39\] for cache power, delay and area. We
//! reproduce the *calibrated outputs* the paper actually consumes
//! (Table 2: a 1 MB bank occupies 5 mm² and draws 0.732 W dynamic when
//! accessed every cycle at 2 GHz plus 0.376 W static; a NUCA router is
//! 0.22 mm² and 0.296 W) and provide standard analytic scaling laws for
//! other capacities and technology nodes.

use rmt3d_units::{Picoseconds, SquareMillimeters, TechNode, Watts};

/// Costs of one cache bank produced by [`CactiLite`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankCosts {
    /// Random access time.
    pub access_time: Picoseconds,
    /// Energy per read access, in nanojoules.
    pub dynamic_energy_nj: f64,
    /// Standby leakage power.
    pub leakage: Watts,
    /// Silicon area.
    pub area: SquareMillimeters,
}

impl BankCosts {
    /// Dynamic power when the bank is accessed at `accesses_per_second`.
    pub fn dynamic_power(&self, accesses_per_second: f64) -> Watts {
        Watts(self.dynamic_energy_nj * 1e-9 * accesses_per_second)
    }

    /// Leakage at an elevated temperature. Sub-threshold leakage grows
    /// roughly exponentially with temperature; the nominal [`BankCosts`]
    /// leakage is quoted at 85 °C junction temperature (CACTI's
    /// default). The paper models this coupling for the L2 banks and
    /// finds it negligible (§3.2) — `rmt3d::experiments` verifies that
    /// with this model.
    pub fn leakage_at(&self, temperature_c: f64) -> Watts {
        // ~2x per 30 K, a standard first-order sub-threshold slope.
        let factor = 2f64.powf((temperature_c - 85.0) / 30.0);
        self.leakage * factor
    }
}

/// Analytic SRAM model calibrated to the paper's Table 2 at 65 nm.
///
/// # Examples
///
/// ```
/// use rmt3d_cache::CactiLite;
/// use rmt3d_units::TechNode;
///
/// let m = CactiLite::new(TechNode::N65);
/// let bank = m.bank_1mb();
/// assert!((bank.area.0 - 5.0).abs() < 1e-9); // Table 2
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CactiLite {
    node: TechNode,
}

/// Table 2 calibration point: 1 MB bank at 65 nm.
const BANK_1MB_AREA_MM2: f64 = 5.0;
/// 0.732 W at one access per cycle at 2 GHz -> 0.366 nJ/access.
const BANK_1MB_DYN_NJ: f64 = 0.732 / 2.0;
const BANK_1MB_LEAK_W: f64 = 0.376;
/// 1 MB bank access: 6 cycles at 2 GHz (NucaLayout::bank_cycles).
const BANK_1MB_ACCESS_PS: f64 = 3000.0;

/// Router calibration (Table 2, derived from Orion).
const ROUTER_AREA_MM2: f64 = 0.22;
const ROUTER_POWER_W: f64 = 0.296;

/// Supply voltage per node (ITRS, paper Table 7; extended for the SER
/// nodes of Fig. 8).
fn supply_voltage(node: TechNode) -> f64 {
    match node {
        TechNode::N180 => 1.8,
        TechNode::N130 => 1.5,
        TechNode::N90 => 1.2,
        TechNode::N80 => 1.2,
        TechNode::N65 => 1.1,
        TechNode::N45 => 1.0,
        TechNode::N32 => 0.9,
    }
}

impl CactiLite {
    /// Creates a model for one technology node.
    pub fn new(node: TechNode) -> CactiLite {
        CactiLite { node }
    }

    /// The node this model targets.
    pub fn node(&self) -> TechNode {
        self.node
    }

    /// Linear feature-scaling factor relative to the 65 nm calibration
    /// point.
    fn lambda(&self) -> f64 {
        self.node.feature_nm() / 65.0
    }

    /// Costs for an SRAM array of `size_bytes` capacity.
    ///
    /// Scaling laws (standard CACTI behaviour):
    /// * area ∝ capacity (SRAM is dominated by the cell array) and
    ///   ∝ feature², with a mild 0.93 density exponent for peripheral
    ///   overhead at small sizes;
    /// * access time ∝ sqrt(capacity) (wordline/bitline flight) and
    ///   ∝ feature;
    /// * dynamic energy ∝ sqrt(capacity) x C·V² (one set of bitlines and
    ///   sense amps switches per access) with C ∝ feature;
    /// * leakage ∝ capacity x V with an exponential improvement for
    ///   older (higher-Vth) nodes — the effect the paper exploits in §4.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn sram(&self, size_bytes: u64) -> BankCosts {
        assert!(size_bytes > 0, "SRAM capacity must be positive");
        let ratio = size_bytes as f64 / (1024.0 * 1024.0);
        let lam = self.lambda();
        let v = supply_voltage(self.node) / supply_voltage(TechNode::N65);
        // Leakage per transistor falls steeply with older nodes (higher
        // Vth, thicker oxide). Calibrated so 90-vs-65 matches Table 8's
        // 0.40 ratio: exp(-k * (lam - 1)) with k chosen below.
        let leak_tech = (-2.4 * (lam - 1.0)).exp() * v;
        BankCosts {
            access_time: Picoseconds(BANK_1MB_ACCESS_PS * ratio.sqrt() * lam),
            dynamic_energy_nj: BANK_1MB_DYN_NJ * ratio.sqrt().max(0.05) * lam * v * v,
            leakage: Watts(BANK_1MB_LEAK_W * ratio * leak_tech),
            area: SquareMillimeters(BANK_1MB_AREA_MM2 * ratio.powf(0.93) * lam * lam),
        }
    }

    /// Costs of the paper's standard 1 MB NUCA bank.
    pub fn bank_1mb(&self) -> BankCosts {
        self.sram(1024 * 1024)
    }

    /// Area of one NUCA grid router (Table 2), scaled by node.
    pub fn router_area(&self) -> SquareMillimeters {
        let lam = self.lambda();
        SquareMillimeters(ROUTER_AREA_MM2 * lam * lam)
    }

    /// Power of one NUCA grid router at full utilization (Table 2),
    /// scaled by node (C·V² with C ∝ feature).
    pub fn router_power(&self) -> Watts {
        let v = supply_voltage(self.node) / supply_voltage(TechNode::N65);
        Watts(ROUTER_POWER_W * self.lambda() * v * v)
    }

    /// How many 1 MB banks fit in `die_area`, after reserving
    /// `reserved` for other structures. This is the §4 calculation that
    /// shrinks the checker die's cache from 9 MB (65 nm) to 5 MB (90 nm).
    pub fn banks_fitting(&self, die_area: SquareMillimeters, reserved: SquareMillimeters) -> u32 {
        let bank = self.bank_1mb().area + self.router_area();
        let free = (die_area - reserved).max(SquareMillimeters::ZERO);
        (free / bank).floor() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_point_matches_table2() {
        let m = CactiLite::new(TechNode::N65);
        let b = m.bank_1mb();
        assert!((b.area.0 - 5.0).abs() < 1e-9);
        assert!((b.leakage.0 - 0.376).abs() < 1e-9);
        // 0.732 W at 2 GHz access rate.
        let p = b.dynamic_power(2e9);
        assert!((p.0 - 0.732).abs() < 1e-9);
        assert!((m.router_area().0 - 0.22).abs() < 1e-9);
        assert!((m.router_power().0 - 0.296).abs() < 1e-9);
    }

    #[test]
    fn area_scales_with_capacity_and_node() {
        let m65 = CactiLite::new(TechNode::N65);
        let m90 = CactiLite::new(TechNode::N90);
        assert!(m65.sram(2 << 20).area.0 > 1.8 * m65.sram(1 << 20).area.0);
        // Same capacity needs ~(90/65)^2 = 1.92x area in the older node.
        let r = m90.bank_1mb().area / m65.bank_1mb().area;
        assert!((r - (90.0f64 / 65.0).powi(2)).abs() < 1e-6);
    }

    #[test]
    fn older_node_leaks_less_but_switches_more() {
        let m65 = CactiLite::new(TechNode::N65);
        let m90 = CactiLite::new(TechNode::N90);
        assert!(m90.bank_1mb().leakage.0 < m65.bank_1mb().leakage.0);
        assert!(m90.bank_1mb().dynamic_energy_nj > m65.bank_1mb().dynamic_energy_nj);
    }

    #[test]
    fn leakage_ratio_near_table8() {
        // SRAM leakage 90-vs-65 should be in the neighbourhood of the
        // paper's 0.40 logic ratio.
        let l90 = CactiLite::new(TechNode::N90).bank_1mb().leakage.0;
        let l65 = CactiLite::new(TechNode::N65).bank_1mb().leakage.0;
        let r = l90 / l65;
        assert!(r > 0.3 && r < 0.55, "leakage ratio {r}");
    }

    #[test]
    fn checker_die_bank_count_shrinks_at_90nm() {
        // §4: the upper die holds 9 banks at 65 nm but only ~5 at 90 nm
        // (the checker core also grows). Upper die ~= 2d-a die area.
        let die = SquareMillimeters(52.0);
        let m65 = CactiLite::new(TechNode::N65);
        let m90 = CactiLite::new(TechNode::N90);
        // Checker core ~5 mm^2 at 65 nm, ~9.6 mm^2 at 90 nm.
        let n65 = m65.banks_fitting(die, SquareMillimeters(5.0));
        let n90 = m90.banks_fitting(die, SquareMillimeters(9.6));
        assert_eq!(n65, 9, "65 nm upper die holds 9 banks");
        assert!(
            (4..=5).contains(&n90),
            "90 nm upper die holds ~5 banks, got {n90}"
        );
    }

    #[test]
    fn access_time_grows_with_capacity() {
        let m = CactiLite::new(TechNode::N65);
        assert!(m.sram(4 << 20).access_time > m.sram(1 << 20).access_time);
        // 1 MB bank access ~6 cycles at 2 GHz.
        assert!((m.bank_1mb().access_time.0 - 3000.0).abs() < 1.0);
    }

    #[test]
    fn leakage_grows_exponentially_with_temperature() {
        let b = CactiLite::new(TechNode::N65).bank_1mb();
        // Doubling point: +30 K doubles leakage.
        let l85 = b.leakage_at(85.0);
        let l115 = b.leakage_at(115.0);
        assert!((l115.0 / l85.0 - 2.0).abs() < 1e-9);
        // Nominal quote is at 85 C.
        assert!((l85.0 - b.leakage.0).abs() < 1e-12);
        // Cooler than reference leaks less.
        assert!(b.leakage_at(55.0) < b.leakage);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = CactiLite::new(TechNode::N65).sram(0);
    }
}
