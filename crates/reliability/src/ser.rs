//! SRAM soft-error-rate scaling (paper Fig. 8) and multi-bit upsets
//! (Fig. 9), after Seifert et al. \[33\].

use rmt3d_units::TechNode;

/// Per-bit SER contributions at a node, normalized to the 180 nm total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerBitSer {
    /// Neutron-induced component (experimental curve of Fig. 8).
    pub neutron: f64,
    /// Alpha-particle component (simulated curve of Fig. 8).
    pub alpha: f64,
}

impl PerBitSer {
    /// Total per-bit SER.
    pub fn total(&self) -> f64 {
        self.neutron + self.alpha
    }
}

/// Fig. 8: per-bit SER falls with scaling (smaller collection volume)
/// even though critical charge also falls. Normalized to 180 nm = 1.0.
pub fn per_bit_ser(node: TechNode) -> PerBitSer {
    // Embedded curve shape from the published data: neutron dominates
    // and falls slowly; alpha falls faster with junction volume.
    let (neutron, alpha) = match node {
        TechNode::N180 => (0.70, 0.30),
        TechNode::N130 => (0.60, 0.22),
        TechNode::N90 => (0.52, 0.15),
        TechNode::N80 => (0.50, 0.14),
        TechNode::N65 => (0.46, 0.10),
        TechNode::N45 => (0.42, 0.08),
        TechNode::N32 => (0.40, 0.07),
    };
    PerBitSer { neutron, alpha }
}

/// Relative chip-level SER: per-bit rate times transistor count, which
/// roughly doubles per node (the paper: "even though single-bit error
/// rates per transistor are reducing, the overall error rate is
/// increasing because of higher transistor density").
pub fn relative_chip_ser(node: TechNode) -> f64 {
    // Density relative to 180 nm: ideal area shrink.
    let density = TechNode::N180.feature_nm() / node.feature_nm();
    per_bit_ser(node).total() * density * density
}

/// Critical charge (fC) of an SRAM cell per node — the x-axis of
/// Fig. 9. Older processes need more charge to flip a cell.
pub fn critical_charge_fc(node: TechNode) -> f64 {
    match node {
        TechNode::N180 => 8.0,
        TechNode::N130 => 5.0,
        TechNode::N90 => 3.0,
        TechNode::N80 => 2.7,
        TechNode::N65 => 2.0,
        TechNode::N45 => 1.4,
        TechNode::N32 => 1.0,
    }
}

/// Fig. 9: probability that an upset is a *multi-bit* upset, as a
/// function of critical charge. MBUs rise steeply as Qcrit falls — the
/// paper's argument that newer nodes threaten even ECC-protected
/// recovery state. Logistic fit to the published curve.
///
/// # Panics
///
/// Panics if `qcrit_fc` is not positive.
pub fn mbu_probability(qcrit_fc: f64) -> f64 {
    assert!(qcrit_fc > 0.0, "critical charge must be positive");
    // ~19% MBU at 1 fC, ~5% at 2 fC, <1% at 4 fC.
    let p = 0.45 / (1.0 + ((qcrit_fc - 0.8) / 0.6).exp());
    p.clamp(0.0, 1.0)
}

/// MBU probability at a node's nominal critical charge.
pub fn mbu_probability_at(node: TechNode) -> f64 {
    mbu_probability(critical_charge_fc(node))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_bit_ser_decreases_with_scaling() {
        let nodes = [TechNode::N180, TechNode::N130, TechNode::N90, TechNode::N65];
        for w in nodes.windows(2) {
            assert!(
                per_bit_ser(w[0]).total() > per_bit_ser(w[1]).total(),
                "per-bit SER must fall from {} to {}",
                w[0],
                w[1]
            );
        }
        // Normalized: 180 nm total is 1.0.
        assert!((per_bit_ser(TechNode::N180).total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chip_ser_increases_with_scaling() {
        // The paper's point: density wins over per-bit improvement.
        let nodes = [TechNode::N180, TechNode::N130, TechNode::N90, TechNode::N65];
        for w in nodes.windows(2) {
            assert!(
                relative_chip_ser(w[0]) < relative_chip_ser(w[1]),
                "chip SER must rise from {} to {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn older_process_has_higher_critical_charge() {
        assert!(critical_charge_fc(TechNode::N90) > critical_charge_fc(TechNode::N65));
    }

    #[test]
    fn mbu_rises_as_qcrit_falls() {
        assert!(mbu_probability(1.0) > mbu_probability(2.0));
        assert!(mbu_probability(2.0) > mbu_probability(4.0));
        assert!(mbu_probability(8.0) < 0.01, "old nodes barely see MBUs");
        assert!(mbu_probability(1.0) > 0.1, "32 nm-class cells see many");
    }

    #[test]
    fn heterogeneous_checker_argument() {
        // §4: a 90 nm checker die is markedly more MBU-resistant than a
        // 65 nm one.
        let improvement = mbu_probability_at(TechNode::N65) / mbu_probability_at(TechNode::N90);
        assert!(improvement > 2.0, "90nm MBU improvement {improvement}x");
    }

    #[test]
    fn probabilities_are_probabilities() {
        for q in [0.1, 0.5, 1.0, 2.0, 5.0, 20.0] {
            let p = mbu_probability(q);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_qcrit_panics() {
        let _ = mbu_probability(0.0);
    }
}
