//! `rmt3d` command-line interface.
//!
//! ```text
//! rmt3d list
//! rmt3d simulate  --model 3d-2a --benchmark mcf [--instructions N] [--ways]
//! rmt3d thermal   --model 3d-2a --benchmark gzip --checker-watts 15
//! rmt3d experiment <name> [--paper]
//! ```
//!
//! Experiment names: `tables`, `fig4`, `fig5`, `fig6`, `fig7`,
//! `iso-thermal`, `interconnect`, `heterogeneous`, `margins`,
//! `dfs-ablation`, `hard-error`, `summary`, `tmr`, `interrupts`,
//! `resilience`, `shared-cache`, `leakage`.

use rmt3d::experiments::{
    dfs_ablation, dtm, fig4, fig5, fig6, fig7, hard_error, heterogeneous, interconnect, interrupts,
    iso_thermal, leakage_feedback, margins, resilience, rmt_summary, shared_cache, tables,
    tmr_study,
};
use rmt3d::power::CheckerPowerModel;
use rmt3d::thermal::{solve, ThermalConfig};
use rmt3d::{
    build_power_map, override_checker_power, simulate, PowerMapConfig, ProcessorModel, RunScale,
    SimConfig,
};
use rmt3d_cache::NucaPolicy;
use rmt3d_units::{TechNode, Watts};
use rmt3d_workload::Benchmark;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rmt3d <command>\n\
         \n\
         commands:\n\
           list                               benchmarks and models\n\
           simulate   --model M --benchmark B [--instructions N] [--ways]\n\
           thermal    --model M --benchmark B [--checker-watts W]\n\
           experiment <name> [--paper]        regenerate a paper result\n\
         \n\
         models: 2d-a, 2d-2a, 3d-2a, 3d-checker\n\
         experiments: tables fig4 fig5 fig6 fig7 iso-thermal interconnect\n\
                      heterogeneous margins dfs-ablation hard-error summary\n\
                      tmr interrupts resilience shared-cache leakage dtm"
    );
    ExitCode::FAILURE
}

fn parse_model(s: &str) -> Option<ProcessorModel> {
    s.parse().ok()
}

/// Pulls `--flag value` out of the argument list.
fn opt(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "list" => {
            println!("models:");
            for m in ProcessorModel::ALL {
                println!(
                    "  {:11} {} MB L2, checker: {}",
                    m.name(),
                    m.nuca_layout().bank_count(),
                    if m.has_checker() { "yes" } else { "no" }
                );
            }
            println!("benchmarks:");
            for b in Benchmark::ALL {
                println!("  {:8} ({})", b.name(), b.suite());
            }
            ExitCode::SUCCESS
        }
        "simulate" => {
            let Some(model) = opt(&args, "--model").and_then(|m| parse_model(&m)) else {
                return usage();
            };
            let Some(bench) = opt(&args, "--benchmark").and_then(|b| b.parse().ok()) else {
                return usage();
            };
            let instructions = opt(&args, "--instructions")
                .and_then(|n| n.parse().ok())
                .unwrap_or(500_000);
            let mut cfg = SimConfig::nominal(
                model,
                RunScale {
                    warmup_instructions: instructions / 10,
                    instructions,
                    thermal_grid: 50,
                },
            );
            if args.iter().any(|a| a == "--ways") {
                cfg.policy = NucaPolicy::DistributedWays;
            }
            let r = simulate(&cfg, bench);
            println!(
                "model {} benchmark {} ({} instructions)",
                model, bench, instructions
            );
            println!("IPC: {:.3}", r.ipc());
            println!(
                "L2: {:.1}-cycle mean hit, {:.2} misses/10K",
                r.l2.mean_hit_cycles(),
                r.l2_misses_per_10k()
            );
            if model.has_checker() {
                println!("checker mean frequency: {:.2} f", r.mean_checker_fraction);
            }
            ExitCode::SUCCESS
        }
        "thermal" => {
            let Some(model) = opt(&args, "--model").and_then(|m| parse_model(&m)) else {
                return usage();
            };
            let Some(bench) = opt(&args, "--benchmark").and_then(|b| b.parse().ok()) else {
                return usage();
            };
            let watts = opt(&args, "--checker-watts")
                .and_then(|w| w.parse().ok())
                .unwrap_or(7.0);
            let perf = simulate(
                &SimConfig::nominal(
                    model,
                    RunScale {
                        warmup_instructions: 50_000,
                        instructions: 300_000,
                        thermal_grid: 50,
                    },
                ),
                bench,
            );
            let mut chip = build_power_map(
                &perf,
                &PowerMapConfig::with_checker(CheckerPowerModel::with_peak(Watts(watts))),
            );
            if model.has_checker() {
                override_checker_power(&mut chip, Watts(watts));
            }
            let r = solve(&model.floorplan(), &chip.map, &ThermalConfig::paper())
                .expect("thermal solve");
            println!("model {} benchmark {} checker {} W", model, bench, watts);
            println!("chip power: {:.1} W", chip.total().0);
            println!("peak temperature: {}", r.peak());
            for (d, _) in model.floorplan().dies.iter().enumerate() {
                println!("  die {d}: {}", r.die_peak(d));
            }
            ExitCode::SUCCESS
        }
        "experiment" => {
            let Some(name) = args.get(1) else {
                return usage();
            };
            let paper = args.iter().any(|a| a == "--paper");
            let (benchmarks, scale): (Vec<Benchmark>, RunScale) = if paper {
                (Benchmark::ALL.to_vec(), RunScale::paper())
            } else {
                (
                    vec![Benchmark::Gzip, Benchmark::Mcf, Benchmark::Swim],
                    RunScale {
                        warmup_instructions: 50_000,
                        instructions: 250_000,
                        thermal_grid: 50,
                    },
                )
            };
            match name.as_str() {
                "tables" => {
                    print!("{}", tables::table4_text());
                    print!("{}", tables::table5_text());
                    print!("{}", tables::table6_text());
                    print!("{}", tables::table7_text());
                    print!("{}", tables::table8_text());
                }
                "fig4" => print!(
                    "{}",
                    fig4::run(&benchmarks, scale).expect("fig4").to_table()
                ),
                "fig5" => print!(
                    "{}",
                    fig5::run(&benchmarks, scale).expect("fig5").to_table()
                ),
                "fig6" => print!("{}", fig6::run(&benchmarks, scale).to_table()),
                "fig7" => print!("{}", fig7::run(&benchmarks, scale).to_table()),
                "iso-thermal" => {
                    for w in [7.0, 15.0] {
                        let p = iso_thermal::run(w, &benchmarks, scale).expect("iso-thermal");
                        println!(
                            "{:4.0} W checker: {:.2} GHz, perf loss {:.1}%",
                            w,
                            p.matched_frequency.value(),
                            100.0 * p.performance_loss
                        );
                    }
                }
                "interconnect" => print!("{}", interconnect::run().to_table()),
                "heterogeneous" => print!(
                    "{}",
                    heterogeneous::run(&benchmarks, scale)
                        .expect("heterogeneous")
                        .to_table()
                ),
                "margins" => {
                    let f7 = fig7::run(&benchmarks, scale);
                    print!("{}", margins::run(&f7, TechNode::N65, 12).to_table());
                }
                "dfs-ablation" => print!("{}", dfs_ablation::run(&benchmarks, scale).to_table()),
                "hard-error" => print!("{}", hard_error::run(&benchmarks, scale).to_table()),
                "summary" => print!("{}", rmt_summary::run(&benchmarks, scale).to_table()),
                "tmr" => print!(
                    "{}",
                    tmr_study::run(Benchmark::Twolf, if paper { 20 } else { 6 }, 2e-3, 30_000)
                        .to_table()
                ),
                "interrupts" => {
                    print!("{}", interrupts::run(&benchmarks, 10_000, scale).to_table())
                }
                "resilience" => print!("{}", resilience::run(&benchmarks, scale).to_table()),
                "dtm" => print!(
                    "{}",
                    dtm::run(rmt3d_units::Celsius(82.0), &benchmarks, scale)
                        .expect("dtm study")
                        .to_table()
                ),
                "shared-cache" => print!(
                    "{}",
                    shared_cache::run(if paper { 400_000 } else { 80_000 }).to_table()
                ),
                "leakage" => {
                    let r = leakage_feedback::run(Benchmark::Gzip, scale).expect("coupled solve");
                    println!(
                        "leakage-temperature coupling: open-loop peak {:.2} C,                          closed-loop {:.2} C (shift {:+.3} C in {} iterations) — negligible,                          as the paper reports",
                        r.open_loop_peak.0,
                        r.closed_loop_peak.0,
                        r.peak_shift(),
                        r.iterations
                    );
                }
                _ => return usage(),
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
