//! Run ledger: a durable, append-only directory of runs.
//!
//! Layout under the runs root (default `target/runs`):
//!
//! ```text
//! runs/
//!   ledger.jsonl              append-only run_started/run_finished index
//!   latest                    name of the most recently created run
//!   <run_id>/
//!     manifest.json           spec hash, version, config, outcome, times
//!     status.json             live progress (see crate::status)
//!     metrics.json            final metrics snapshot (see crate::metricsio)
//!     report.html             optional rendered dashboard
//! ```
//!
//! `manifest.json` is written when the run is created (outcome
//! `"running"`) and atomically rewritten once on [`RunHandle::finish`],
//! so a manifest whose outcome is still `"running"` long after its
//! start stamp is itself a diagnostic: the process died without
//! finishing. All multi-writer files (`manifest.json`, `latest`) go
//! through temp-file + rename; `ledger.jsonl` is append-only, one JSON
//! document per line.
//!
//! Determinism: the manifest is deterministic for a given spec and
//! version except for `run_id` (embeds the start stamp) and the
//! `"wall"` object (start/finish clocks).

use crate::version_string;
use rmt3d_telemetry::json::{parse, JsonObject, JsonValue};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// File name of a run's manifest inside its run directory.
pub const MANIFEST_FILE: &str = "manifest.json";
/// File name of a run's live status document.
pub const STATUS_FILE: &str = "status.json";
/// File name of a run's final metrics snapshot.
pub const METRICS_FILE: &str = "metrics.json";
/// File name of a run's rendered HTML dashboard.
pub const REPORT_FILE: &str = "report.html";
/// File name of the append-only index at the runs root.
pub const LEDGER_FILE: &str = "ledger.jsonl";
/// File name of the latest-run pointer at the runs root.
pub const LATEST_FILE: &str = "latest";

/// Milliseconds since the Unix epoch, saturating at 0 for clocks set
/// before 1970.
pub fn unix_now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Writes `text` to `path` atomically: temp file in the same directory,
/// then rename. Readers either see the old document or the new one,
/// never a torn write. Temp names are unique per process *and* per
/// call, so concurrent writers cannot truncate each other's temp file.
pub fn write_atomic(path: &Path, text: &str) -> io::Result<()> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = path.parent().unwrap_or(Path::new("."));
    let base = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| String::from("file"));
    let tmp = dir.join(format!(".{base}.tmp.{}.{seq}", std::process::id()));
    fs::write(&tmp, text)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// `(year, month, day, hour, minute, second)` in UTC for a Unix
/// millisecond stamp. Days-to-civil conversion per Howard Hinnant's
/// public-domain `civil_from_days` algorithm.
fn utc_parts(unix_ms: u64) -> (i64, u32, u32, u32, u32, u32) {
    let secs = (unix_ms / 1000) as i64;
    let days = secs.div_euclid(86_400);
    let sod = secs.rem_euclid(86_400);
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let y = if m <= 2 { y + 1 } else { y };
    (
        y,
        m,
        d,
        (sod / 3600) as u32,
        (sod / 60 % 60) as u32,
        (sod % 60) as u32,
    )
}

/// `"2026-08-08 12:34:56 UTC"` for a Unix millisecond stamp; `"-"`
/// for 0 (the unset finish stamp of a live run).
pub fn format_unix_ms(unix_ms: u64) -> String {
    if unix_ms == 0 {
        return String::from("-");
    }
    let (y, mo, d, h, mi, s) = utc_parts(unix_ms);
    format!("{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02} UTC")
}

/// Everything recorded about a run in `manifest.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Unique run name; also the run directory name. Embeds the UTC
    /// start stamp and the low 32 bits of the spec hash.
    pub run_id: String,
    /// What kind of run this is: `sweep`, `campaign`, or `profile`.
    pub kind: String,
    /// Build that produced the run, from [`version_string`].
    pub version: String,
    /// FNV-1a hash over the run's canonical job specs, as 16 hex chars.
    pub spec_hash: String,
    /// Number of jobs this run was launched with.
    pub total_jobs: u64,
    /// Outcome: `running` until [`RunHandle::finish`], then `ok`,
    /// `failed`, or whatever the engine reports.
    pub outcome: String,
    /// Run configuration as ordered key/value pairs.
    pub config: Vec<(String, String)>,
    /// Wall clock: run start, Unix milliseconds.
    pub started_unix_ms: u64,
    /// Wall clock: run finish, Unix milliseconds; 0 while running.
    pub finished_unix_ms: u64,
}

impl Manifest {
    /// Serializes the manifest as one JSON document. Deterministic
    /// fields come first; clock-dependent fields live under `"wall"`.
    pub fn to_json(&self) -> String {
        let mut config = JsonObject::new();
        for (k, v) in &self.config {
            config.str(k, v);
        }
        let mut wall = JsonObject::new();
        wall.u64("started_unix_ms", self.started_unix_ms)
            .u64("finished_unix_ms", self.finished_unix_ms);
        let mut o = JsonObject::new();
        o.str("run_id", &self.run_id)
            .str("kind", &self.kind)
            .str("version", &self.version)
            .str("spec_hash", &self.spec_hash)
            .u64("total_jobs", self.total_jobs)
            .str("outcome", &self.outcome)
            .raw("config", &config.finish())
            .raw("wall", &wall.finish());
        o.finish()
    }

    /// Parses a manifest document written by [`Manifest::to_json`].
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let v = parse(text)?;
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest: missing string field '{key}'"))
        };
        let config = match v.get("config") {
            Some(JsonValue::Obj(map)) => map
                .iter()
                .map(|(k, val)| (k.clone(), val.as_str().unwrap_or_default().to_string()))
                .collect(),
            _ => Vec::new(),
        };
        let wall_u64 = |key: &str| -> u64 {
            v.get("wall")
                .and_then(|w| w.get(key))
                .and_then(JsonValue::as_u64)
                .unwrap_or(0)
        };
        Ok(Manifest {
            run_id: s("run_id")?,
            kind: s("kind")?,
            version: s("version")?,
            spec_hash: s("spec_hash")?,
            total_jobs: v
                .get("total_jobs")
                .and_then(JsonValue::as_u64)
                .ok_or("manifest: missing total_jobs")?,
            outcome: s("outcome")?,
            config,
            started_unix_ms: wall_u64("started_unix_ms"),
            finished_unix_ms: wall_u64("finished_unix_ms"),
        })
    }
}

/// One row of [`RunLedger::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// The run's name / directory.
    pub run_id: String,
    /// Run kind from the manifest.
    pub kind: String,
    /// Outcome from the manifest (`running` if the run is live or died).
    pub outcome: String,
    /// Job count from the manifest.
    pub total_jobs: u64,
    /// Start stamp, Unix milliseconds.
    pub started_unix_ms: u64,
}

/// Handle to the runs root directory; creates and enumerates runs.
#[derive(Debug, Clone)]
pub struct RunLedger {
    root: PathBuf,
}

impl RunLedger {
    /// Opens (creating if needed) a runs root.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<RunLedger> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(RunLedger { root })
    }

    /// The runs root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory of a run by name (whether or not it exists).
    pub fn run_dir(&self, run_id: &str) -> PathBuf {
        self.root.join(run_id)
    }

    /// The run the `latest` pointer names, if any.
    pub fn latest(&self) -> Option<String> {
        let text = fs::read_to_string(self.root.join(LATEST_FILE)).ok()?;
        let id = text.trim().to_string();
        if id.is_empty() {
            None
        } else {
            Some(id)
        }
    }

    /// Resolves a user-supplied run name: `None` or `"latest"` follow
    /// the latest pointer; anything else must be an existing run dir.
    pub fn resolve(&self, run_id: Option<&str>) -> Result<String, String> {
        let id = match run_id {
            None | Some("latest") => self
                .latest()
                .ok_or_else(|| format!("no runs recorded under {}", self.root.display()))?,
            Some(id) => id.to_string(),
        };
        if self.run_dir(&id).join(MANIFEST_FILE).is_file() {
            Ok(id)
        } else {
            Err(format!(
                "run '{id}' not found under {} (no manifest.json)",
                self.root.display()
            ))
        }
    }

    /// Creates a new run: makes its directory, writes the initial
    /// manifest (outcome `running`), appends a `run_started` ledger
    /// line, and repoints `latest`.
    pub fn create_run(
        &self,
        kind: &str,
        spec_hash: u64,
        total_jobs: u64,
        config: &[(String, String)],
    ) -> io::Result<RunHandle> {
        let started_unix_ms = unix_now_ms();
        let (y, mo, d, h, mi, s) = utc_parts(started_unix_ms);
        let base = format!(
            "{kind}-{y:04}{mo:02}{d:02}-{h:02}{mi:02}{s:02}-{:08x}",
            spec_hash as u32
        );
        // Uniquify via create_dir: two runs in the same second with the
        // same spec get `-2`, `-3`, ... suffixes.
        let mut run_id = base.clone();
        let mut attempt = 1u32;
        let dir = loop {
            let dir = self.run_dir(&run_id);
            match fs::create_dir(&dir) {
                Ok(()) => break dir,
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists && attempt < 1000 => {
                    attempt += 1;
                    run_id = format!("{base}-{attempt}");
                }
                Err(e) => return Err(e),
            }
        };
        let manifest = Manifest {
            run_id: run_id.clone(),
            kind: kind.to_string(),
            version: version_string(),
            spec_hash: format!("{spec_hash:016x}"),
            total_jobs,
            outcome: String::from("running"),
            config: config.to_vec(),
            started_unix_ms,
            finished_unix_ms: 0,
        };
        write_atomic(&dir.join(MANIFEST_FILE), &manifest.to_json())?;
        let mut line = JsonObject::new();
        line.str("event", "run_started")
            .str("run_id", &run_id)
            .str("kind", kind)
            .u64("total_jobs", total_jobs)
            .u64("unix_ms", started_unix_ms);
        self.append_ledger_line(&line.finish())?;
        write_atomic(&self.root.join(LATEST_FILE), &format!("{run_id}\n"))?;
        Ok(RunHandle {
            root: self.root.clone(),
            dir,
            manifest,
        })
    }

    /// Every run with a parseable manifest, sorted by run id (which
    /// sorts by start stamp for a fixed kind).
    pub fn list(&self) -> io::Result<Vec<RunSummary>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let Ok(text) = fs::read_to_string(entry.path().join(MANIFEST_FILE)) else {
                continue;
            };
            let Ok(m) = Manifest::from_json(&text) else {
                continue;
            };
            out.push(RunSummary {
                run_id: m.run_id,
                kind: m.kind,
                outcome: m.outcome,
                total_jobs: m.total_jobs,
                started_unix_ms: m.started_unix_ms,
            });
        }
        out.sort_by(|a, b| (a.started_unix_ms, &a.run_id).cmp(&(b.started_unix_ms, &b.run_id)));
        Ok(out)
    }

    fn append_ledger_line(&self, line: &str) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.root.join(LEDGER_FILE))?;
        writeln!(f, "{line}")
    }
}

/// A live run created by [`RunLedger::create_run`]; owns the run
/// directory until [`RunHandle::finish`].
#[derive(Debug)]
pub struct RunHandle {
    root: PathBuf,
    dir: PathBuf,
    manifest: Manifest,
}

impl RunHandle {
    /// The run's name.
    pub fn run_id(&self) -> &str {
        &self.manifest.run_id
    }

    /// The run's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest as currently recorded.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Path for this run's live status document.
    pub fn status_path(&self) -> PathBuf {
        self.dir.join(STATUS_FILE)
    }

    /// Path for this run's metrics snapshot.
    pub fn metrics_path(&self) -> PathBuf {
        self.dir.join(METRICS_FILE)
    }

    /// Seals the run: records the outcome and finish stamp in the
    /// manifest (atomic rewrite) and appends a `run_finished` ledger
    /// line.
    pub fn finish(&mut self, outcome: &str) -> io::Result<()> {
        self.manifest.outcome = outcome.to_string();
        self.manifest.finished_unix_ms = unix_now_ms();
        write_atomic(&self.dir.join(MANIFEST_FILE), &self.manifest.to_json())?;
        let mut line = JsonObject::new();
        line.str("event", "run_finished")
            .str("run_id", &self.manifest.run_id)
            .str("outcome", outcome)
            .u64("unix_ms", self.manifest.finished_unix_ms);
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.root.join(LEDGER_FILE))?;
        writeln!(f, "{}", line.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn tempdir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "rmt3d-obs-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn kv(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            run_id: "sweep-20260808-120000-00c0ffee".into(),
            kind: "sweep".into(),
            version: "rmt3d/0.1.0".into(),
            spec_hash: "00000000c0ffee00".into(),
            total_jobs: 76,
            outcome: "ok".into(),
            config: kv(&[("cache", "readwrite"), ("workers", "4")]),
            started_unix_ms: 1_700_000_000_000,
            finished_unix_ms: 1_700_000_060_000,
        };
        let text = m.to_json();
        assert_eq!(Manifest::from_json(&text).unwrap(), m);
    }

    #[test]
    fn create_finish_and_list() {
        let root = tempdir("ledger");
        let ledger = RunLedger::open(&root).unwrap();
        let mut run = ledger
            .create_run("sweep", 0xc0ffee, 7, &kv(&[("workers", "2")]))
            .unwrap();
        assert!(run.dir().join(MANIFEST_FILE).is_file());
        assert_eq!(ledger.latest().as_deref(), Some(run.run_id()));
        assert_eq!(
            ledger.resolve(None).unwrap(),
            run.run_id(),
            "no --run follows the latest pointer"
        );
        let m = Manifest::from_json(&fs::read_to_string(run.dir().join(MANIFEST_FILE)).unwrap())
            .unwrap();
        assert_eq!(m.outcome, "running");
        assert!(m.run_id.starts_with("sweep-"));
        assert!(m.run_id.ends_with("00c0ffee"));

        run.finish("ok").unwrap();
        let m = Manifest::from_json(&fs::read_to_string(run.dir().join(MANIFEST_FILE)).unwrap())
            .unwrap();
        assert_eq!(m.outcome, "ok");
        assert!(m.finished_unix_ms >= m.started_unix_ms);

        let runs = ledger.list().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].outcome, "ok");
        assert_eq!(runs[0].total_jobs, 7);

        let ledger_text = fs::read_to_string(root.join(LEDGER_FILE)).unwrap();
        let lines: Vec<_> = ledger_text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("run_started"));
        assert!(lines[1].contains("run_finished"));
        for line in lines {
            parse(line).unwrap();
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn same_second_same_spec_runs_get_distinct_ids() {
        let root = tempdir("dup");
        let ledger = RunLedger::open(&root).unwrap();
        let a = ledger.create_run("sweep", 1, 1, &[]).unwrap();
        let b = ledger.create_run("sweep", 1, 1, &[]).unwrap();
        assert_ne!(a.run_id(), b.run_id());
        assert_eq!(ledger.latest().as_deref(), Some(b.run_id()));
        assert_eq!(ledger.list().unwrap().len(), 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn resolve_rejects_unknown_runs() {
        let root = tempdir("resolve");
        let ledger = RunLedger::open(&root).unwrap();
        assert!(ledger.resolve(None).is_err(), "empty ledger has no latest");
        assert!(ledger.resolve(Some("nope")).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn utc_parts_known_stamps() {
        // 2026-08-08 00:00:00 UTC.
        assert_eq!(utc_parts(1_786_147_200_000), (2026, 8, 8, 0, 0, 0));
        // Epoch.
        assert_eq!(utc_parts(0), (1970, 1, 1, 0, 0, 0));
        // Leap-year boundary: 2024-02-29 23:59:59 UTC.
        assert_eq!(utc_parts(1_709_251_199_000), (2024, 2, 29, 23, 59, 59));
    }

    #[test]
    fn write_atomic_replaces_content() {
        let root = tempdir("atomic");
        let path = root.join("f.json");
        write_atomic(&path, "{\"a\":1}").unwrap();
        write_atomic(&path, "{\"a\":2}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"a\":2}");
        // No temp droppings left behind.
        let names: Vec<_> = fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["f.json"]);
        let _ = fs::remove_dir_all(&root);
    }
}
