//! Property tests: geometric invariants hold for every chip variant.
//!
//! Randomized cases come from a seeded [`SplitMix64`] stream for
//! deterministic replay without an external property-test dependency.

use rmt3d_floorplan::{BlockId, ChipFloorplan, Rect};
use rmt3d_workload::SplitMix64;

#[test]
fn all_variants_validate_and_cover_reasonable_area() {
    for plan in ChipFloorplan::all() {
        plan.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", plan.name));
        for die in &plan.dies {
            let used: f64 = die.blocks.iter().map(|b| b.rect.area().0).sum();
            let total = die.area().0;
            assert!(
                used <= total + 1e-6,
                "{}/{}: blocks {used} exceed die {total}",
                plan.name,
                die.name
            );
        }
    }
}

#[test]
fn bank_indices_are_dense_and_unique() {
    for plan in ChipFloorplan::all() {
        for (d, die) in plan.dies.iter().enumerate() {
            let mut idx: Vec<u8> = die
                .blocks
                .iter()
                .filter_map(|b| match b.id {
                    BlockId::L2Bank { die, index } => {
                        assert_eq!(die as usize, d, "{}: bank die tag", plan.name);
                        Some(index)
                    }
                    _ => None,
                })
                .collect();
            idx.sort_unstable();
            for (i, &v) in idx.iter().enumerate() {
                assert_eq!(v as usize, i, "{}: bank indices dense", plan.name);
            }
        }
    }
}

#[test]
fn overlap_is_symmetric_and_irreflexive() {
    let mut rng = SplitMix64::new(0x0e0);
    for _ in 0..64 {
        let a = Rect::new(
            rng.range_f64(-5.0, 5.0),
            rng.range_f64(-5.0, 5.0),
            rng.range_f64(0.1, 5.0),
            rng.range_f64(0.1, 5.0),
        );
        let b = Rect::new(
            rng.range_f64(-5.0, 5.0),
            rng.range_f64(-5.0, 5.0),
            rng.range_f64(0.1, 5.0),
            rng.range_f64(0.1, 5.0),
        );
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
        assert!(a.overlaps(&a), "positive-area rects self-overlap");
        assert!(a.within(&a));
    }
}

#[test]
fn containment_implies_overlap_or_zero_gap() {
    let mut rng = SplitMix64::new(0xc0a);
    for _ in 0..64 {
        let outer = Rect::new(0.0, 0.0, 6.0, 6.0);
        let inner = Rect::new(
            rng.range_f64(0.0, 3.0),
            rng.range_f64(0.0, 3.0),
            rng.range_f64(0.1, 2.0),
            rng.range_f64(0.1, 2.0),
        );
        assert!(inner.within(&outer));
        assert!(inner.overlaps(&outer));
        // Manhattan distance to self is zero.
        assert!(inner.manhattan_to(&inner).0.abs() < 1e-12);
    }
}

#[test]
fn manhattan_is_a_metric() {
    let mut rng = SplitMix64::new(0x3a4);
    for _ in 0..64 {
        let a = Rect::new(rng.range_f64(0.0, 10.0), rng.range_f64(0.0, 10.0), 1.0, 1.0);
        let b = Rect::new(rng.range_f64(0.0, 10.0), rng.range_f64(0.0, 10.0), 1.0, 1.0);
        let c = Rect::new(rng.range_f64(0.0, 10.0), rng.range_f64(0.0, 10.0), 1.0, 1.0);
        let ab = a.manhattan_to(&b).0;
        let ba = b.manhattan_to(&a).0;
        let ac = a.manhattan_to(&c).0;
        let cb = c.manhattan_to(&b).0;
        assert!((ab - ba).abs() < 1e-12, "symmetry");
        assert!(ab <= ac + cb + 1e-12, "triangle inequality");
    }
}
