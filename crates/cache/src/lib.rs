//! Cache hierarchy models for the `rmt3d` simulator.
//!
//! The paper's evaluation platform uses 32 KB 2-way L1 caches and a large
//! NUCA (non-uniform cache access) L2 built from 1 MB banks connected by a
//! grid network (§3.1, Tables 1-2): the 2d-a baseline has a 6-bank 6 MB
//! L2, the two-die models a 15-bank 15 MB L2. Banks are reached through
//! 4-cycle hops (1 link + 3 router) and two placement policies are
//! modelled: sets distributed across banks (default) and ways distributed
//! across banks with a centralized tag array.
//!
//! This crate provides:
//!
//! * [`SetAssocCache`] — a line-granular LRU set-associative cache model,
//! * [`NucaCache`] — the banked L2 with both NUCA policies and grid
//!   geometry for the paper's three processor models,
//! * [`CactiLite`] — an analytic bank delay/energy/area model calibrated
//!   to the paper's Table 2 constants,
//! * [`CacheHierarchy`] — the composed L1I/L1D/L2/memory stack used by
//!   the leading core.
//!
//! # Examples
//!
//! ```
//! use rmt3d_cache::{CacheConfig, SetAssocCache};
//!
//! let mut l1 = SetAssocCache::new(CacheConfig::l1_32k_2way());
//! assert!(!l1.access(0x1000, false)); // cold miss
//! assert!(l1.access(0x1000, false)); // now a hit
//! assert_eq!(l1.stats().misses, 1);
//! ```

mod cacti;
mod config;
mod hierarchy;
mod nuca;
mod set_assoc;

pub use cacti::{BankCosts, CactiLite};
pub use config::{CacheConfig, NucaLayout, NucaPolicy};
pub use hierarchy::{CacheHierarchy, DataAccess, HierarchyStats};
pub use nuca::{NucaAccess, NucaCache, NucaStats};
pub use set_assoc::{CacheStats, SetAssocCache};
