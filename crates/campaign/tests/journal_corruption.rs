//! Corruption paths of the campaign journal: a damaged journal must
//! degrade to re-running trials — never a panic, never a wrong
//! outcome in the resumed report.
//!
//! The journal of a real (small) campaign is attacked at three
//! layers, mirroring `crates/sweep/tests/codec_corruption.rs`:
//! truncation at every byte boundary, structured damage inside
//! well-formed lines (ill-typed fields, unknown labels, a lying
//! checkpoint), and header-level staleness (old journal version,
//! foreign spec). After every attack, [`journal::replay`] must either
//! resume with outcomes identical to the golden run or discard and
//! restart the affected trials.

use rmt3d_campaign::{journal, run_campaign_with, CampaignOptions, CampaignSpec, JOURNAL_FILE};
use rmt3d_telemetry::NullSink;
use std::fs;
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rmt3d-journal-corruption-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec() -> CampaignSpec {
    CampaignSpec::smoke(41)
}

/// Runs one journaled campaign and returns (journal text, golden
/// report JSONL).
fn golden(tag: &str) -> (String, String) {
    let dir = tmp(tag);
    let opts = CampaignOptions {
        jobs: 2,
        journal: Some(dir.join(JOURNAL_FILE)),
        ..CampaignOptions::default()
    };
    let run = run_campaign_with(&spec(), &opts, &mut NullSink).expect("golden campaign");
    let text = fs::read_to_string(dir.join(JOURNAL_FILE)).expect("journal written");
    let _ = fs::remove_dir_all(&dir);
    (text, run.report.to_jsonl())
}

/// `replay` must survive a truncation at *every* byte boundary — a
/// SIGKILL can stop the journal anywhere — and every outcome it does
/// recover must match the golden run exactly.
#[test]
fn replay_never_panics_on_any_truncation() {
    let (text, _) = golden("truncate");
    let full = journal::replay(&text, &spec());
    assert!(full.discarded.is_none(), "{:?}", full.discarded);
    assert_eq!(full.completed.len(), spec().total_trials());

    let bytes = text.as_bytes();
    for cut in 0..bytes.len() {
        let torn = String::from_utf8_lossy(&bytes[..cut]);
        let replay = journal::replay(&torn, &spec());
        if replay.discarded.is_some() {
            // Tore into the header: nothing may be recovered.
            assert!(replay.completed.is_empty(), "cut at byte {cut}");
            assert!(replay.in_flight.is_empty(), "cut at byte {cut}");
            continue;
        }
        for (index, outcome) in &replay.completed {
            assert!(*index < spec().total_trials(), "cut at byte {cut}");
            assert_eq!(
                outcome,
                full.completed.get(index).expect("golden outcome"),
                "cut at byte {cut}: recovered outcome for trial {index} \
                 differs from the uninterrupted journal"
            );
        }
        // At most the torn trailing line is unaccounted for.
        assert!(replay.skipped_lines <= 1, "cut at byte {cut}");
    }
}

/// End-to-end recovery from sampled truncation points: resume a
/// campaign whose journal was cut mid-file and the final report must
/// be byte-identical to the golden uninterrupted run.
#[test]
fn resume_from_truncated_journals_reproduces_the_golden_report() {
    let (text, report) = golden("resume");
    let step = text.len() / 7;
    for cut in (0..text.len()).step_by(step.max(1)) {
        let dir = tmp(&format!("resume-{cut}"));
        let path = dir.join(JOURNAL_FILE);
        fs::create_dir_all(&dir).expect("work dir");
        fs::write(&path, &text.as_bytes()[..cut]).expect("torn journal");
        let opts = CampaignOptions {
            jobs: 2,
            journal: Some(path),
            resume: true,
            ..CampaignOptions::default()
        };
        let run = run_campaign_with(&spec(), &opts, &mut NullSink).expect("resumed campaign");
        assert_eq!(
            run.report.to_jsonl(),
            report,
            "cut at byte {cut}: resumed report differs from golden \
             (resumed {}, requeued {}, discarded {:?})",
            run.resumed,
            run.requeued,
            run.journal_discarded
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Structured damage inside well-formed lines: each mutant must be
/// skipped (its trial re-runs) without disturbing the other entries.
///
/// Checkpoint lines are stripped first — they vouch for every
/// completion before them, so damaging a vouched-for line rightly
/// discards the whole journal (proven in the test below). This test
/// attacks the segment a checkpoint has not yet covered.
#[test]
fn replay_skips_ill_typed_lines_and_keeps_the_rest() {
    let (text, _) = golden("mutate");
    let text: String = text
        .lines()
        .filter(|l| !l.contains("\"event\":\"checkpoint\""))
        .map(|l| format!("{l}\n"))
        .collect();
    let full = journal::replay(&text, &spec());
    for (from, to) in [
        // Trial index replaced by a string, then by a negative number.
        (
            "\"event\":\"trial_done\",\"trial\":0,",
            "\"event\":\"trial_done\",\"trial\":\"zero\",",
        ),
        (
            "\"event\":\"trial_done\",\"trial\":0,",
            "\"event\":\"trial_done\",\"trial\":-1,",
        ),
        // A fate label the parser cannot resolve.
        ("\"fate\":\"", "\"fate\":\"vaporised-"),
        // A counter replaced by a string.
        ("\"detect_cycles\":", "\"detect_cycles\":\"some\",\"x\":"),
    ] {
        let mangled = text.replacen(from, to, 1);
        assert_ne!(mangled, text, "pattern {from:?} not found in journal");
        let replay = journal::replay(&mangled, &spec());
        assert!(
            replay.discarded.is_none(),
            "{from:?}: {:?}",
            replay.discarded
        );
        assert!(replay.skipped_lines >= 1, "{from:?} was not skipped");
        for (index, outcome) in &replay.completed {
            assert_eq!(
                outcome,
                full.completed.get(index).expect("golden outcome"),
                "mutant {from:?} disturbed trial {index}"
            );
        }
    }
}

/// Header-level staleness and a lying checkpoint must discard the
/// whole journal — replay never trusts a file it cannot vouch for.
#[test]
fn replay_discards_stale_headers_and_lying_checkpoints() {
    let (text, _) = golden("discard");
    let header_end = text.find('\n').expect("header line") + 1;

    // A journal written by an older (or newer) build.
    let stale = text.replacen("-journal/", "-journal/archaic-", 1);
    assert_ne!(stale, text);
    assert!(journal::replay(&stale, &spec()).discarded.is_some());

    // A journal for a different campaign grid.
    let foreign = text.replacen("seed=41", "seed=42", 1);
    assert_ne!(foreign, text);
    assert!(journal::replay(&foreign, &spec()).discarded.is_some());

    // Damage to a completion an existing checkpoint already vouched
    // for: the checkpoint's count no longer adds up, so the whole
    // journal is distrusted.
    let vouched = text.replacen("\"fate\":\"", "\"fate\":\"vaporised-", 1);
    assert_ne!(vouched, text);
    assert!(journal::replay(&vouched, &spec()).discarded.is_some());

    // A checkpoint claiming more completions than the journal shows at
    // that point: the journal is lying, nothing in it can be trusted.
    let lying = format!(
        "{}{{\"event\":\"checkpoint\",\"done\":{},\"corrected\":0,\"detected\":0,\
         \"masked\":0,\"not_injected\":0,\"violations\":0,\"failed\":0}}\n{}",
        &text[..header_end],
        spec().total_trials(),
        &text[header_end..]
    );
    let replay = journal::replay(&lying, &spec());
    assert!(replay.discarded.is_some(), "lying checkpoint accepted");
    assert!(replay.completed.is_empty());
}
