//! HotSpot-lite: steady-state thermal modelling of 2D and 3D-stacked
//! chips (paper §3.1-3.2, Table 3).
//!
//! The model follows HotSpot-3.1's grid mode: each layer of the package
//! stack is discretized into a 50×50 grid of finite-volume cells with
//! lateral conduction inside layers, vertical conduction between them,
//! and convection from the bottom face into a 47 °C ambient. Layer
//! thicknesses and resistivities are the paper's Table 3 values; the
//! single calibrated constant is the effective sink coefficient
//! (`ThermalConfig::sink_h`).
//!
//! # Examples
//!
//! ```
//! use rmt3d_thermal::{solve, PowerMap, ThermalConfig};
//! use rmt3d_floorplan::{BlockId, ChipFloorplan};
//! use rmt3d_units::Watts;
//!
//! let plan = ChipFloorplan::three_d_2a();
//! let mut power = PowerMap::new();
//! power.set(BlockId::Checker, Watts(7.0));
//! let result = solve(&plan, &power, &ThermalConfig::fast())?;
//! assert!(result.peak().0 > 47.0);
//! # Ok::<(), rmt3d_thermal::ThermalError>(())
//! ```

mod model;
mod result;
mod solver;

pub use model::{layer_stack, table3, LayerSpec, PowerMap, ThermalConfig};
pub use result::ThermalResult;
pub use solver::{solve, ThermalError};
