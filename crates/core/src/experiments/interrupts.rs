//! §2 interrupt-service synchronization cost.
//!
//! "When external interrupts or exceptions are raised, the leading
//! thread must wait for the trailing thread to catch up before servicing
//! the interrupt." The wait is bounded by the slack, which the DFS
//! controller keeps modest — this experiment measures the latency
//! distribution across periodic interrupt arrivals.

use crate::model::{ProcessorModel, RunScale};
use rmt3d_cache::{CacheHierarchy, NucaPolicy};
use rmt3d_cpu::{CoreConfig, OooCore};
use rmt3d_rmt::{RmtConfig, RmtSystem};
use rmt3d_workload::{Benchmark, TraceGenerator};

/// Interrupt-latency statistics for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterruptRow {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Interrupts serviced.
    pub count: u64,
    /// Mean synchronization latency (leader cycles).
    pub mean_cycles: f64,
    /// Worst observed latency.
    pub max_cycles: u64,
    /// Mean RVQ slack when the interrupt arrived.
    pub mean_slack: f64,
}

/// The interrupt study.
#[derive(Debug, Clone)]
pub struct InterruptReport {
    /// Per-benchmark rows.
    pub rows: Vec<InterruptRow>,
}

impl InterruptReport {
    /// Formats as text.
    pub fn to_table(&self) -> String {
        let mut s = String::from(
            "Sec 2 Interrupt-service synchronization latency\n\
             benchmark   count  mean(cyc)  max(cyc)  mean-slack\n",
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{:10} {:6} {:10.1} {:9} {:11.1}\n",
                r.benchmark.name(),
                r.count,
                r.mean_cycles,
                r.max_cycles,
                r.mean_slack
            ));
        }
        s
    }
}

/// Runs periodic interrupts (`every` committed instructions) against
/// the 3d-2a system.
pub fn run(benchmarks: &[Benchmark], every: u64, scale: RunScale) -> InterruptReport {
    let rows = benchmarks
        .iter()
        .map(|&b| {
            let leader = OooCore::new(
                CoreConfig::leading_ev7_like(),
                TraceGenerator::new(b.profile()),
                CacheHierarchy::new(
                    ProcessorModel::ThreeD2A.nuca_layout(),
                    NucaPolicy::DistributedSets,
                ),
            );
            let mut sys = RmtSystem::new(leader, RmtConfig::paper());
            sys.prefill_caches();
            sys.run_instructions(scale.warmup_instructions);
            let mut latencies = Vec::new();
            let mut slacks = Vec::new();
            let n_interrupts = (scale.instructions / every).max(1);
            for _ in 0..n_interrupts {
                sys.run_instructions(every);
                slacks.push(sys.queues().occupancy().rvq as f64);
                latencies.push(sys.service_interrupt());
            }
            InterruptRow {
                benchmark: b,
                count: latencies.len() as u64,
                mean_cycles: latencies.iter().sum::<u64>() as f64 / latencies.len() as f64,
                max_cycles: latencies.iter().copied().max().unwrap_or(0),
                mean_slack: slacks.iter().sum::<f64>() / slacks.len() as f64,
            }
        })
        .collect();
    InterruptReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interrupt_latency_is_bounded_by_queue_capacity() {
        let r = run(
            &[Benchmark::Gzip, Benchmark::Mcf],
            10_000,
            RunScale::quick(),
        );
        for row in &r.rows {
            assert!(row.count >= 10, "{}", row.benchmark);
            // The checker drains at up to verify_ports/cycle at full
            // speed: worst case is bounded by RVQ capacity plus pipeline
            // depth at ~1 cycle/instruction.
            assert!(
                row.max_cycles < 300,
                "{}: max sync {} cycles",
                row.benchmark,
                row.max_cycles
            );
            assert!(row.mean_cycles <= row.max_cycles as f64);
        }
        assert!(r.to_table().contains("mean-slack"));
    }
}
