//! Golden-file pin of campaign determinism under resume.
//!
//! The whole crash-safety story rests on one property: a resumed
//! campaign is indistinguishable from an uninterrupted one. This test
//! pins the smoke-grid report to a committed golden file, then
//! interrupts the journal at several depths and proves every resumed
//! report matches that same golden byte for byte. Any intentional
//! change to trial semantics or the report format is reviewed through
//! this file's diff. Regenerate with
//! `RMT3D_BLESS=1 cargo test -p rmt3d-campaign`.

use rmt3d_campaign::{run_campaign_with, CampaignOptions, CampaignSpec, JOURNAL_FILE};
use rmt3d_telemetry::NullSink;
use std::fs;
use std::path::PathBuf;

const GOLDEN: &str = "smoke_campaign.jsonl";

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(GOLDEN)
}

fn tmp(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rmt3d-golden-resume-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec() -> CampaignSpec {
    CampaignSpec::smoke(13)
}

fn run(dir: &std::path::Path, resume: bool) -> rmt3d_campaign::CampaignRun {
    let opts = CampaignOptions {
        jobs: 2,
        journal: Some(dir.join(JOURNAL_FILE)),
        resume,
        ..CampaignOptions::default()
    };
    run_campaign_with(&spec(), &opts, &mut NullSink).expect("campaign runs")
}

#[test]
fn resumed_reports_match_the_committed_golden() {
    // Uninterrupted journaled run, pinned to the committed golden.
    let dir = tmp("fresh");
    let report = run(&dir, false).report.to_jsonl();
    let journal = fs::read_to_string(dir.join(JOURNAL_FILE)).expect("journal written");
    let _ = fs::remove_dir_all(&dir);

    let path = golden_path();
    if std::env::var_os("RMT3D_BLESS").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &report).unwrap();
    } else {
        let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {}: {e}\nregenerate with RMT3D_BLESS=1 cargo test -p rmt3d-campaign",
                path.display()
            )
        });
        assert_eq!(
            report,
            expected,
            "campaign report drifted from {}; if intentional, regenerate \
             with RMT3D_BLESS=1 cargo test -p rmt3d-campaign",
            path.display()
        );
    }

    // Interrupt the journal at several depths — just the header, a few
    // trials in, all-but-one done — and resume each. Every resumed
    // report must match the same golden bytes.
    let lines: Vec<&str> = journal.lines().collect();
    let total = spec().total_trials();
    for keep in [1, 2, lines.len() / 2, lines.len() - 1] {
        let dir = tmp(&format!("resume-{keep}"));
        fs::create_dir_all(&dir).unwrap();
        let partial: String = lines[..keep].iter().map(|l| format!("{l}\n")).collect();
        fs::write(dir.join(JOURNAL_FILE), partial).unwrap();
        let resumed = run(&dir, true);
        assert_eq!(
            resumed.report.to_jsonl(),
            report,
            "journal cut to {keep} lines: resumed report differs \
             (resumed {}, requeued {})",
            resumed.resumed,
            resumed.requeued
        );
        assert!(resumed.journal_discarded.is_none());
        assert!(
            resumed.resumed <= total,
            "resumed {} of {total} trials",
            resumed.resumed
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
