//! Pipeline-depth power model (paper §3.5, Table 5), after Srinivasan et
//! al. \[38\].
//!
//! Deep pipelining gives each stage more timing slack at a fixed clock
//! (the §3.5 idea for a noise-resilient checker), but latch count and
//! bypass complexity grow power super-linearly. The paper's Table 5
//! reports relative power versus stage depth in FO4 gate delays; this
//! module embeds that table and interpolates between its points.

/// One row of Table 5: power relative to the 18 FO4 baseline's dynamic
/// power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelinePowerRow {
    /// Useful logic depth per stage, in FO4 delays.
    pub fo4: f64,
    /// Dynamic power relative to baseline dynamic.
    pub dynamic: f64,
    /// Leakage power relative to baseline dynamic.
    pub leakage: f64,
}

impl PipelinePowerRow {
    /// Total relative power (the paper's right-hand column).
    pub fn total(&self) -> f64 {
        self.dynamic + self.leakage
    }
}

/// Table 5 of the paper.
pub const PIPELINE_POWER_TABLE: [PipelinePowerRow; 4] = [
    PipelinePowerRow {
        fo4: 18.0,
        dynamic: 1.0,
        leakage: 0.3,
    },
    PipelinePowerRow {
        fo4: 14.0,
        dynamic: 1.65,
        leakage: 0.32,
    },
    PipelinePowerRow {
        fo4: 10.0,
        dynamic: 1.76,
        leakage: 0.36,
    },
    PipelinePowerRow {
        fo4: 6.0,
        dynamic: 3.45,
        leakage: 0.53,
    },
];

/// Relative power of a pipeline whose stages carry `fo4` gate delays of
/// useful logic, interpolated linearly between Table 5 rows and clamped
/// to the table's range.
///
/// # Panics
///
/// Panics if `fo4` is not positive.
pub fn relative_power(fo4: f64) -> PipelinePowerRow {
    assert!(fo4 > 0.0, "FO4 depth must be positive");
    let table = &PIPELINE_POWER_TABLE;
    if fo4 >= table[0].fo4 {
        return table[0];
    }
    if fo4 <= table[table.len() - 1].fo4 {
        return table[table.len() - 1];
    }
    for w in table.windows(2) {
        let (hi, lo) = (w[0], w[1]);
        if fo4 <= hi.fo4 && fo4 >= lo.fo4 {
            let t = (hi.fo4 - fo4) / (hi.fo4 - lo.fo4);
            return PipelinePowerRow {
                fo4,
                dynamic: hi.dynamic + t * (lo.dynamic - hi.dynamic),
                leakage: hi.leakage + t * (lo.leakage - hi.leakage),
            };
        }
    }
    unreachable!("table covers the interpolation range")
}

/// Timing slack fraction of a stage clocked with `cycle_fo4` worth of
/// time but only `logic_fo4` of logic — e.g. the checker running at
/// 0.6 f has `1/0.6 = 1.67x` its logic depth available, a 40% slack.
///
/// # Panics
///
/// Panics if either depth is non-positive.
pub fn stage_slack_fraction(logic_fo4: f64, cycle_fo4: f64) -> f64 {
    assert!(
        logic_fo4 > 0.0 && cycle_fo4 > 0.0,
        "depths must be positive"
    );
    ((cycle_fo4 - logic_fo4) / cycle_fo4).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_totals() {
        let totals: Vec<f64> = PIPELINE_POWER_TABLE.iter().map(|r| r.total()).collect();
        let expect = [1.3, 1.97, 2.12, 3.98];
        for (t, e) in totals.iter().zip(expect) {
            assert!((t - e).abs() < 1e-9, "total {t} vs paper {e}");
        }
    }

    #[test]
    fn exact_rows_at_table_points() {
        for row in PIPELINE_POWER_TABLE {
            let r = relative_power(row.fo4);
            assert!((r.dynamic - row.dynamic).abs() < 1e-12);
            assert!((r.leakage - row.leakage).abs() < 1e-12);
        }
    }

    #[test]
    fn interpolation_is_monotone_between_14_and_18() {
        let a = relative_power(16.0);
        assert!(a.dynamic > 1.0 && a.dynamic < 1.65);
        assert!(a.total() > 1.3 && a.total() < 1.97);
    }

    #[test]
    fn clamps_outside_range() {
        assert_eq!(relative_power(30.0).dynamic, 1.0);
        assert_eq!(relative_power(2.0).dynamic, 3.45);
    }

    #[test]
    fn paper_conclusion_14fo4_costs_about_50_percent_more() {
        // §3.5: "even if circuits take 14 FO4, power increases by ~50%".
        let r = relative_power(14.0);
        assert!((r.total() / 1.3 - 1.515).abs() < 0.02);
    }

    #[test]
    fn slack_fraction() {
        // Checker at 0.6 f: cycle time stretches from 18 to 30 FO4.
        let s = stage_slack_fraction(18.0, 30.0);
        assert!((s - 0.4).abs() < 1e-12);
        assert_eq!(stage_slack_fraction(18.0, 18.0), 0.0);
        assert_eq!(stage_slack_fraction(20.0, 18.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fo4_panics() {
        let _ = relative_power(0.0);
    }
}
