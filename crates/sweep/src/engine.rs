//! The parallel execution engine.
//!
//! Jobs are pulled from a shared atomic cursor by `--jobs` worker
//! threads (default: available parallelism), each running
//! `rmt3d::simulate` with telemetry disabled — the traced path is
//! bit-identical to the untraced one, so workers lose nothing. Results
//! stream back to the coordinator (the calling thread), which owns the
//! caller's [`Sink`], emits job lifecycle events with an ETA, and
//! aggregates records in **spec order**, so parallel output is
//! bit-identical to a 1-thread run. A panicking job is caught,
//! reported as failed, and the sweep completes.

use crate::pool::{run_pool, PoolEvent};
use crate::spec::JobSpec;
use crate::store::ResultStore;
use rmt3d::{simulate, PerfResult};
use rmt3d_obs::WatchdogConfig;
use rmt3d_telemetry::{emit, Event, Sink};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Where cached results live.
#[derive(Debug, Clone, Default)]
pub enum CacheMode {
    /// No cache: every job simulates, nothing is persisted.
    #[default]
    Disabled,
    /// Read and write entries under this directory. Completed jobs are
    /// skipped on re-runs, which is also how an interrupted sweep
    /// resumes.
    Dir(PathBuf),
}

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; 0 means [`std::thread::available_parallelism`].
    pub jobs: usize,
    /// Result-cache policy.
    pub cache: CacheMode,
    /// Heartbeat watchdog; `None` (the default) disables stall
    /// detection and keeps the coordinator on a blocking `recv`.
    pub watchdog: Option<WatchdogConfig>,
    /// Cooperative cancellation flag. When set to `true` mid-sweep,
    /// jobs not yet started fail fast with a `"cancelled"` panic
    /// message instead of simulating; jobs already simulating run to
    /// completion (and are cached), so a cancelled sweep still makes
    /// resumable progress. `None` (the default) disables the check.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl SweepOptions {
    /// Serial execution, no cache — the reference configuration.
    pub fn serial() -> SweepOptions {
        SweepOptions {
            jobs: 1,
            cache: CacheMode::Disabled,
            watchdog: None,
            cancel: None,
        }
    }

    /// The worker count after resolving the 0-means-auto default.
    pub fn worker_count(&self) -> usize {
        if self.jobs > 0 {
            self.jobs
        } else {
            thread::available_parallelism().map_or(1, usize::from)
        }
    }
}

/// One job's outcome, in spec order inside [`SweepReport`].
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job that produced this record.
    pub job: JobSpec,
    /// The result, or the panic message of a failed job.
    pub outcome: Result<PerfResult, String>,
    /// True when the result came from the cache without simulating.
    pub cached: bool,
    /// Wall-clock nanoseconds spent simulating (0 for cache hits).
    pub wall_nanos: u64,
}

/// Aggregated output of one sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One record per job, in spec order — independent of execution
    /// order and worker count.
    pub records: Vec<JobRecord>,
    /// Wall-clock nanoseconds for the whole sweep.
    pub wall_nanos: u64,
    /// Jobs that actually simulated.
    pub executed: usize,
    /// Jobs served from the cache.
    pub cache_hits: usize,
    /// Jobs that panicked.
    pub failures: usize,
}

impl SweepReport {
    /// The results in spec order, or the first failure's message.
    ///
    /// # Errors
    ///
    /// Returns the label and panic message of the first failed job.
    pub fn results(&self) -> Result<Vec<PerfResult>, String> {
        self.records
            .iter()
            .map(|r| {
                r.outcome
                    .clone()
                    .map_err(|e| format!("job {} ({}) failed: {e}", r.job.index, r.job.label()))
            })
            .collect()
    }

    /// One-line completion summary (`simulated N, cache-hit M, failed K`).
    pub fn summary(&self) -> String {
        format!(
            "{} jobs in {:.1} s: simulated {}, cache-hit {}, failed {}",
            self.records.len(),
            self.wall_nanos as f64 / 1e9,
            self.executed,
            self.cache_hits,
            self.failures
        )
    }
}

/// Runs every job and aggregates the records in spec order.
///
/// Events emitted to `sink`: [`Event::JobStarted`] when a worker begins
/// simulating a job, [`Event::JobFinished`] (with wall time and an ETA
/// extrapolated from the mean executed-job wall time) when it
/// completes, and [`Event::JobCacheHit`] when the cache satisfies a job
/// without simulation. When [`SweepOptions::watchdog`] is set, silent
/// jobs surface as [`Event::JobStalled`]. After the pool drains, one
/// [`Event::PoolStats`] reports utilization totals, and — when a cache
/// directory is configured — one [`Event::CacheStats`] reports lookup
/// counters plus on-disk entry totals (the usage index is also flushed,
/// best-effort).
///
/// # Errors
///
/// Returns an error when the cache directory cannot be created; job
/// panics are *not* errors — they surface as failed [`JobRecord`]s.
pub fn run_sweep<S: Sink>(
    jobs: Vec<JobSpec>,
    opts: &SweepOptions,
    sink: &mut S,
) -> Result<SweepReport, String> {
    let store = match &opts.cache {
        CacheMode::Disabled => None,
        CacheMode::Dir(dir) => {
            Some(ResultStore::open(dir).map_err(|e| format!("cannot open cache {dir:?}: {e}"))?)
        }
    };
    let total = jobs.len();
    let t0 = Instant::now();
    let store = store.as_ref();
    let pool_records = run_pool(
        &jobs,
        opts.worker_count(),
        |job: &JobSpec| store.and_then(|s| s.load(job)),
        |job: &JobSpec| {
            // Cancellation rides the pool's existing panic channel: the
            // worker's catch_unwind turns this into a failed record
            // with message "cancelled", and the sweep still drains.
            if let Some(flag) = &opts.cancel {
                if flag.load(Ordering::SeqCst) {
                    panic!("cancelled");
                }
            }
            simulate(&job.cfg, job.benchmark)
        },
        |job: &JobSpec, result: &PerfResult| {
            // Cache writes are best-effort: a full disk must not fail
            // the sweep, only cost the resume.
            if let Some(store) = store {
                let _ = store.save(job, result);
            }
        },
        opts.watchdog,
        |_, _, _| {},
        |ev| match ev {
            PoolEvent::Started { index } => emit(sink, || Event::JobStarted {
                job: index as u64,
                total: total as u64,
                label: jobs[index].label(),
            }),
            PoolEvent::CacheHit { index } => emit(sink, || Event::JobCacheHit {
                job: index as u64,
                total: total as u64,
                label: jobs[index].label(),
            }),
            PoolEvent::Finished {
                index,
                ok,
                wall_nanos,
                eta_nanos,
            } => emit(sink, || Event::JobFinished {
                job: index as u64,
                total: total as u64,
                ok,
                wall_nanos,
                eta_nanos,
            }),
            PoolEvent::Stalled {
                index,
                elapsed_nanos,
                median_nanos,
            } => emit(sink, || Event::JobStalled {
                job: index as u64,
                total: total as u64,
                label: jobs[index].label(),
                elapsed_nanos,
                median_nanos,
            }),
            PoolEvent::Drained { stats } => emit(sink, || Event::PoolStats {
                workers: stats.workers,
                executed: stats.executed,
                cache_hits: stats.cache_hits,
                failed: stats.failed,
                steals: stats.steals,
                busy_nanos: stats.busy_nanos,
                idle_nanos: stats.idle_nanos,
                wall_nanos: stats.wall_nanos,
            }),
        },
    );
    if let Some(store) = store {
        // The usage index is advisory; a failed flush costs only the
        // eviction metadata.
        let _ = store.flush_index();
        let counters = store.stats();
        let (entries, bytes) = store.totals().unwrap_or((0, 0));
        emit(sink, || Event::CacheStats {
            hits: counters.hits,
            misses: counters.misses,
            verify_failures: counters.verify_failures,
            entries,
            bytes,
        });
    }

    let mut executed = 0usize;
    let mut cache_hits = 0usize;
    let mut failures = 0usize;
    let records: Vec<JobRecord> = jobs
        .iter()
        .zip(pool_records)
        .map(|(job, r)| {
            if r.cached {
                cache_hits += 1;
            } else {
                executed += 1;
                if r.outcome.is_err() {
                    failures += 1;
                }
            }
            JobRecord {
                job: job.clone(),
                outcome: r.outcome,
                cached: r.cached,
                wall_nanos: r.wall_nanos,
            }
        })
        .collect();
    Ok(SweepReport {
        records,
        wall_nanos: t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        executed,
        cache_hits,
        failures,
    })
}

/// A [`rmt3d::Simulator`] that fans batches out through [`run_sweep`],
/// letting the experiment drivers (`fig4::run_with`, `fig5::run_with`,
/// `iso_thermal::run_with`, …) overlap their independent simulations.
///
/// # Panics
///
/// [`rmt3d::Simulator::simulate_batch`] panics when a job fails, since
/// the experiment drivers' signatures have no failure channel for
/// individual runs — matching the serial behaviour, where a panicking
/// `simulate` unwinds through the driver.
#[derive(Debug, Clone, Default)]
pub struct ParallelSimulator {
    opts: SweepOptions,
}

impl ParallelSimulator {
    /// A simulator with `jobs` workers (0 = available parallelism) and
    /// no cache.
    pub fn new(jobs: usize) -> ParallelSimulator {
        ParallelSimulator {
            opts: SweepOptions {
                jobs,
                ..SweepOptions::default()
            },
        }
    }

    /// Attaches a result cache so repeated experiment invocations skip
    /// completed simulations.
    #[must_use]
    pub fn with_cache(mut self, dir: PathBuf) -> ParallelSimulator {
        self.opts.cache = CacheMode::Dir(dir);
        self
    }
}

impl rmt3d::Simulator for ParallelSimulator {
    fn simulate(&self, cfg: &rmt3d::SimConfig, benchmark: rmt3d_workload::Benchmark) -> PerfResult {
        simulate(cfg, benchmark)
    }

    fn simulate_batch(
        &self,
        batch: &[(rmt3d::SimConfig, rmt3d_workload::Benchmark)],
    ) -> Vec<PerfResult> {
        let jobs: Vec<JobSpec> = batch
            .iter()
            .enumerate()
            .map(|(index, (cfg, benchmark))| JobSpec {
                index,
                cfg: cfg.clone(),
                benchmark: *benchmark,
            })
            .collect();
        let report = run_sweep(jobs, &self.opts, &mut rmt3d_telemetry::NullSink)
            .unwrap_or_else(|e| panic!("sweep engine: {e}"));
        report.results().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use rmt3d::{ProcessorModel, RunScale};
    use rmt3d_telemetry::NullSink;
    use rmt3d_workload::Benchmark;

    fn tiny() -> RunScale {
        RunScale {
            warmup_instructions: 2_000,
            instructions: 15_000,
            thermal_grid: 25,
        }
    }

    #[test]
    fn panicking_job_is_isolated_and_reported() {
        let mut jobs = SweepSpec::new(
            &[ProcessorModel::TwoDA],
            &[Benchmark::Gzip, Benchmark::Mcf],
            tiny(),
        )
        .expand();
        // An empty NUCA layout makes the cache model panic on first
        // access; the engine must report that job failed and still
        // complete the other.
        jobs[0].cfg.layout = Some(rmt3d_cache::NucaLayout {
            banks: vec![],
            ..rmt3d_cache::NucaLayout::two_d_a()
        });
        let report = run_sweep(
            jobs,
            &SweepOptions {
                jobs: 2,
                ..SweepOptions::default()
            },
            &mut NullSink,
        )
        .expect("engine runs");
        assert_eq!(report.failures, 1);
        assert!(report.records[0].outcome.is_err());
        assert!(report.records[1].outcome.is_ok());
        assert!(report.results().is_err());
        assert!(report.summary().contains("failed 1"));
    }

    #[test]
    fn worker_count_resolves_auto() {
        assert!(SweepOptions::default().worker_count() >= 1);
        assert_eq!(
            SweepOptions {
                jobs: 3,
                ..Default::default()
            }
            .worker_count(),
            3
        );
    }
}
