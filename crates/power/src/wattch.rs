//! Wattch-lite: activity-based core power (paper §3.1).
//!
//! The paper extends Wattch's 90 nm model to 65 nm (2 GHz, 1 V), assumes
//! aggressive cc3 clock gating, and uses a 0.2 turn-off factor for 65 nm
//! leakage. We reproduce that methodology: each architectural block has
//! a peak dynamic power; its dynamic draw scales with measured per-cycle
//! activity, gated blocks idle at 10% of peak (cc3), and leakage adds a
//! 0.2 x peak floor. The per-block peaks are calibrated so the Table 1
//! leading core averages ~35 W across the SPEC2k-like suite (Table 2).

use crate::dvfs::DvfsPoint;
use rmt3d_cpu::ActivityCounters;
use rmt3d_units::Watts;
use std::fmt;

/// Architectural blocks of a core — the granularity of the power
/// breakdown and of the floorplan/thermal power map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoreBlock {
    /// L1 I-cache + fetch datapath.
    IcacheFetch,
    /// Branch predictor tables + BTB.
    Bpred,
    /// Decode/rename.
    Rename,
    /// Integer issue queue (wakeup/select).
    IqInt,
    /// FP issue queue.
    IqFp,
    /// Integer register file.
    RegfileInt,
    /// FP register file.
    RegfileFp,
    /// Integer execution units.
    ExecInt,
    /// FP execution units.
    ExecFp,
    /// Load/store queue.
    Lsq,
    /// L1 D-cache.
    Dcache,
    /// ROB + commit logic.
    Rob,
    /// Clock distribution (partially gated).
    Clock,
}

impl CoreBlock {
    /// All blocks, in breakdown order.
    pub const ALL: [CoreBlock; 13] = [
        CoreBlock::IcacheFetch,
        CoreBlock::Bpred,
        CoreBlock::Rename,
        CoreBlock::IqInt,
        CoreBlock::IqFp,
        CoreBlock::RegfileInt,
        CoreBlock::RegfileFp,
        CoreBlock::ExecInt,
        CoreBlock::ExecFp,
        CoreBlock::Lsq,
        CoreBlock::Dcache,
        CoreBlock::Rob,
        CoreBlock::Clock,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            CoreBlock::IcacheFetch => "icache",
            CoreBlock::Bpred => "bpred",
            CoreBlock::Rename => "rename",
            CoreBlock::IqInt => "iq-int",
            CoreBlock::IqFp => "iq-fp",
            CoreBlock::RegfileInt => "regfile-int",
            CoreBlock::RegfileFp => "regfile-fp",
            CoreBlock::ExecInt => "exec-int",
            CoreBlock::ExecFp => "exec-fp",
            CoreBlock::Lsq => "lsq",
            CoreBlock::Dcache => "dcache",
            CoreBlock::Rob => "rob",
            CoreBlock::Clock => "clock",
        }
    }
}

impl fmt::Display for CoreBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-block peak dynamic power at 65 nm / 2 GHz / 1 V, in watts.
///
/// Calibration target: mean leading-core total ≈ 35 W over the 19
/// SPEC2k-like profiles (paper Table 2); pinned by a test in
/// `rmt3d::experiments`.
const PEAK_W: [(CoreBlock, f64); 13] = [
    (CoreBlock::IcacheFetch, 5.6),
    (CoreBlock::Bpred, 3.7),
    (CoreBlock::Rename, 4.7),
    (CoreBlock::IqInt, 5.6),
    (CoreBlock::IqFp, 2.8),
    (CoreBlock::RegfileInt, 4.7),
    (CoreBlock::RegfileFp, 2.3),
    (CoreBlock::ExecInt, 7.0),
    (CoreBlock::ExecFp, 4.7),
    (CoreBlock::Lsq, 3.7),
    (CoreBlock::Dcache, 5.6),
    (CoreBlock::Rob, 4.7),
    (CoreBlock::Clock, 2.3),
];

/// cc3 clock gating: idle blocks still draw this fraction of peak.
const CC3_IDLE_FRACTION: f64 = 0.10;
/// Turn-off factor: leakage is this fraction of peak dynamic at 65 nm
/// (paper §3.1).
const TURN_OFF_FACTOR: f64 = 0.2;

/// A per-block power breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBreakdown {
    /// `(block, dynamic, leakage)` triples in [`CoreBlock::ALL`] order.
    pub blocks: Vec<(CoreBlock, Watts, Watts)>,
}

impl PowerBreakdown {
    /// Total power.
    pub fn total(&self) -> Watts {
        self.blocks.iter().map(|&(_, d, l)| d + l).sum()
    }

    /// Total dynamic power.
    pub fn dynamic(&self) -> Watts {
        self.blocks.iter().map(|&(_, d, _)| d).sum()
    }

    /// Total leakage power.
    pub fn leakage(&self) -> Watts {
        self.blocks.iter().map(|&(_, _, l)| l).sum()
    }

    /// Power of one block (dynamic + leakage).
    pub fn block(&self, b: CoreBlock) -> Watts {
        self.blocks
            .iter()
            .find(|&&(bb, _, _)| bb == b)
            .map(|&(_, d, l)| d + l)
            .unwrap_or(Watts::ZERO)
    }

    /// The hottest block and its power.
    pub fn hottest(&self) -> (CoreBlock, Watts) {
        self.blocks
            .iter()
            .map(|&(b, d, l)| (b, d + l))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("power is finite"))
            .expect("breakdown is non-empty")
    }
}

/// Wattch-lite model for the out-of-order leading core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorePowerModel {
    /// Global calibration multiplier applied to every peak.
    scale: f64,
}

impl CorePowerModel {
    /// The paper's 65 nm EV7-like leading core.
    pub fn ev7_like_65nm() -> CorePowerModel {
        CorePowerModel { scale: 1.0 }
    }

    /// Returns a model with all peaks scaled (e.g. for a narrower core).
    pub fn scaled(self, factor: f64) -> CorePowerModel {
        CorePowerModel {
            scale: self.scale * factor,
        }
    }

    /// Per-block activity factor (0..1) derived from counters.
    fn activity(b: CoreBlock, a: &ActivityCounters) -> f64 {
        if a.cycles == 0 {
            return 0.0;
        }
        let c = a.cycles as f64;
        let f = |n: u64, width: f64| (n as f64 / (width * c)).min(1.0);
        match b {
            CoreBlock::IcacheFetch => f(a.fetched, 4.0),
            CoreBlock::Bpred => f(a.bpred_accesses, 1.0),
            CoreBlock::Rename => f(a.dispatched, 4.0),
            CoreBlock::IqInt => f(a.int_alu_ops + a.int_mul_ops, 4.0),
            CoreBlock::IqFp => f(a.fp_alu_ops + a.fp_mul_ops, 2.0),
            CoreBlock::RegfileInt => f(a.regfile_reads + a.regfile_writes, 8.0),
            CoreBlock::RegfileFp => f(a.fp_alu_ops + a.fp_mul_ops, 3.0),
            CoreBlock::ExecInt => f(a.int_alu_ops + a.int_mul_ops, 4.0),
            CoreBlock::ExecFp => f(a.fp_alu_ops + a.fp_mul_ops, 2.0),
            CoreBlock::Lsq => f(a.lsq_accesses, 2.0),
            CoreBlock::Dcache => f(a.dcache_accesses, 2.0),
            CoreBlock::Rob => f(a.dispatched + a.committed, 8.0),
            CoreBlock::Clock => 0.5 + 0.5 * f(a.issued, 4.0),
        }
    }

    /// Computes the per-block breakdown for an activity window at a DVFS
    /// operating point.
    pub fn breakdown(&self, a: &ActivityCounters, dvfs: DvfsPoint) -> PowerBreakdown {
        let blocks = PEAK_W
            .iter()
            .map(|&(b, peak)| {
                let peak = peak * self.scale;
                let act = Self::activity(b, a);
                let gated = act + CC3_IDLE_FRACTION * (1.0 - act);
                let dynamic = Watts(peak * gated * dvfs.dynamic_factor());
                let leakage = Watts(peak * TURN_OFF_FACTOR * dvfs.leakage_factor());
                (b, dynamic, leakage)
            })
            .collect();
        PowerBreakdown { blocks }
    }

    /// Sum of the calibrated per-block peaks (dynamic at full activity).
    pub fn peak_total(&self) -> Watts {
        Watts(PEAK_W.iter().map(|&(_, p)| p * self.scale).sum())
    }
}

impl Default for CorePowerModel {
    fn default() -> CorePowerModel {
        CorePowerModel::ev7_like_65nm()
    }
}

/// Power model for the in-order checker core (§3.2).
///
/// The paper treats checker power as a design parameter — 7 W for an
/// optimistic low-power implementation (Niagara-like), 15 W for a
/// pessimistic one — and additionally throttles it with DFS. We model
/// the checker's draw as `leakage + dynamic x utilization x f/V scaling`
/// where the peak split mirrors the leading core's (dynamic-dominated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckerPowerModel {
    /// Power when running flat-out at peak frequency.
    pub peak: Watts,
    /// Fraction of `peak` that is leakage at full voltage.
    pub leakage_fraction: f64,
}

impl CheckerPowerModel {
    /// The optimistic 7 W checker.
    pub fn optimistic_7w() -> CheckerPowerModel {
        CheckerPowerModel {
            peak: Watts(7.0),
            leakage_fraction: 0.25,
        }
    }

    /// The pessimistic 15 W checker.
    pub fn pessimistic_15w() -> CheckerPowerModel {
        CheckerPowerModel {
            peak: Watts(15.0),
            leakage_fraction: 0.25,
        }
    }

    /// A checker with arbitrary peak power (Fig. 4's x-axis sweep).
    pub fn with_peak(peak: Watts) -> CheckerPowerModel {
        CheckerPowerModel {
            peak,
            leakage_fraction: 0.25,
        }
    }

    /// Power drawn when the DFS has the checker at `freq_fraction` of
    /// peak frequency (dynamic scales linearly with f under pure DFS —
    /// the paper scales frequency only, not voltage, on the checker).
    pub fn at_frequency(&self, freq_fraction: f64) -> Watts {
        let f = freq_fraction.clamp(0.0, 1.0);
        let leak = self.peak.0 * self.leakage_fraction;
        let dynamic = self.peak.0 * (1.0 - self.leakage_fraction) * f;
        Watts(leak + dynamic)
    }

    /// Dynamic/leakage split at full speed, for technology remapping.
    pub fn split(&self) -> (Watts, Watts) {
        (
            Watts(self.peak.0 * (1.0 - self.leakage_fraction)),
            Watts(self.peak.0 * self.leakage_fraction),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_counters() -> ActivityCounters {
        ActivityCounters {
            cycles: 1000,
            fetched: 3200,
            dispatched: 3000,
            issued: 2800,
            committed: 2600,
            int_alu_ops: 2000,
            int_mul_ops: 100,
            fp_alu_ops: 500,
            fp_mul_ops: 200,
            bpred_accesses: 500,
            icache_accesses: 800,
            dcache_accesses: 900,
            lsq_accesses: 900,
            regfile_reads: 4000,
            regfile_writes: 2200,
            bypass_transfers: 2800,
            commit_stall_cycles: 0,
            branch_mispredicts: 10,
        }
    }

    #[test]
    fn breakdown_total_is_positive_and_bounded() {
        let m = CorePowerModel::ev7_like_65nm();
        let b = m.breakdown(&busy_counters(), DvfsPoint::nominal());
        let total = b.total().0;
        assert!(total > 20.0 && total < 60.0, "busy core total {total}");
        assert!(b.dynamic().0 > b.leakage().0, "65nm is dynamic-dominated");
    }

    #[test]
    fn idle_core_draws_gating_floor_plus_leakage() {
        let m = CorePowerModel::ev7_like_65nm();
        let idle = ActivityCounters {
            cycles: 1000,
            ..Default::default()
        };
        let b = m.breakdown(&idle, DvfsPoint::nominal());
        let peak = m.peak_total().0;
        let total = b.total().0;
        // cc3 floor (10%) + clock-base + leakage (20%).
        assert!(
            total > 0.25 * peak && total < 0.45 * peak,
            "idle {total} of peak {peak}"
        );
    }

    #[test]
    fn busier_is_hotter() {
        let m = CorePowerModel::ev7_like_65nm();
        let idle = ActivityCounters {
            cycles: 1000,
            ..Default::default()
        };
        assert!(
            m.breakdown(&busy_counters(), DvfsPoint::nominal()).total()
                > m.breakdown(&idle, DvfsPoint::nominal()).total()
        );
    }

    #[test]
    fn dvfs_scales_power_down_superlinearly() {
        let m = CorePowerModel::ev7_like_65nm();
        let a = busy_counters();
        let full = m.breakdown(&a, DvfsPoint::nominal()).total().0;
        let slow = m
            .breakdown(&a, DvfsPoint::from_frequency_linear_vdd(0.9))
            .total()
            .0;
        assert!(slow < full * 0.9, "f*V^2 scaling: {slow} vs {full}");
    }

    #[test]
    fn hottest_block_is_a_busy_one() {
        let m = CorePowerModel::ev7_like_65nm();
        let (b, p) = m
            .breakdown(&busy_counters(), DvfsPoint::nominal())
            .hottest();
        assert!(p.0 > 0.0);
        // With these counters the integer exec or icache should lead.
        assert!(
            matches!(
                b,
                CoreBlock::ExecInt | CoreBlock::IcacheFetch | CoreBlock::Dcache
            ),
            "hottest {b}"
        );
    }

    #[test]
    fn checker_power_scales_with_frequency() {
        let c = CheckerPowerModel::pessimistic_15w();
        assert!((c.at_frequency(1.0).0 - 15.0).abs() < 1e-9);
        let at_06 = c.at_frequency(0.6).0;
        // leak 3.75 + dyn 11.25*0.6 = 10.5
        assert!((at_06 - 10.5).abs() < 1e-9);
        assert!(c.at_frequency(0.0).0 > 0.0, "leakage floor remains");
    }

    #[test]
    fn scaled_model() {
        let m = CorePowerModel::ev7_like_65nm().scaled(0.5);
        assert!(
            (m.peak_total().0 - 0.5 * CorePowerModel::ev7_like_65nm().peak_total().0).abs() < 1e-9
        );
    }

    #[test]
    fn block_lookup_and_names() {
        let m = CorePowerModel::ev7_like_65nm();
        let b = m.breakdown(&busy_counters(), DvfsPoint::nominal());
        for blk in CoreBlock::ALL {
            assert!(b.block(blk).0 > 0.0, "{blk} has power");
            assert!(!blk.name().is_empty());
        }
    }
}
