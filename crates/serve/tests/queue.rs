//! Persistent-queue semantics: priority order, cancellation of queued
//! vs in-flight jobs, duplicate-spec dedup, journal replay after a
//! restart (graceful or not), and corrupt-journal tolerance.

use rmt3d_serve::{Cancelled, JobOutcome, JobQueue, JobState, JOURNAL_FILE};
use rmt3d_telemetry::json::parse;
use std::fs;
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rmt3d-queue-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec(text: &str) -> rmt3d_telemetry::json::JsonValue {
    parse(text).expect("test spec parses")
}

fn submit(q: &mut JobQueue, bench: &str, priority: u64) -> String {
    let (id, deduped) = q
        .submit(
            "sweep",
            &spec(&format!(
                r#"{{"models":["2d-a"],"benchmarks":["{bench}"],"instructions":20000}}"#
            )),
            priority,
        )
        .expect("submit accepted");
    assert!(!deduped);
    id
}

#[test]
fn priority_order_then_fifo() {
    let dir = tmp("priority");
    let mut q = JobQueue::open(&dir).unwrap();
    let low = submit(&mut q, "gzip", 0);
    let high_a = submit(&mut q, "mcf", 5);
    let high_b = submit(&mut q, "vpr", 5);
    let mid = submit(&mut q, "bzip2", 3);

    let mut order = Vec::new();
    while let Some(seq) = q.next_ready() {
        let id = q.iter().find(|j| j.seq == seq).unwrap().id.clone();
        q.mark_started(&id, None);
        q.mark_finished(&id, JobState::Done, JobOutcome::default(), None);
        order.push(id);
    }
    // Highest priority first; FIFO within a priority.
    assert_eq!(order, vec![high_a, high_b, mid, low]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn dedup_joins_live_jobs_but_not_finished_ones() {
    let dir = tmp("dedup");
    let mut q = JobQueue::open(&dir).unwrap();
    let one = spec(r#"{"models":["2d-a"],"benchmarks":["gzip"],"instructions":20000}"#);
    let (a, deduped) = q.submit("sweep", &one, 0).unwrap();
    assert!(!deduped);
    // Identical spec while the first is live: joined, not re-queued.
    let (b, deduped) = q.submit("sweep", &one, 7).unwrap();
    assert!(deduped);
    assert_eq!(a, b);
    assert_eq!(q.count(JobState::Queued), 1);
    // The hash is content-addressed: a differing field (here the
    // instruction count, falling back to its 250k default) is a
    // different job, not a duplicate.
    let (c, deduped) = q
        .submit(
            "sweep",
            &spec(r#"{"models":["2d-a"],"benchmarks":["gzip"]}"#),
            0,
        )
        .unwrap();
    assert!(!deduped);
    assert_ne!(c, a);

    // Once terminal, the same spec is a fresh job (the all-cache-hit
    // re-run path).
    q.mark_started(&a, None);
    q.mark_finished(&a, JobState::Done, JobOutcome::default(), None);
    let (d, deduped) = q.submit("sweep", &one, 0).unwrap();
    assert!(!deduped);
    assert_ne!(d, a);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cancel_queued_is_terminal_cancel_running_is_a_request() {
    let dir = tmp("cancel");
    let mut q = JobQueue::open(&dir).unwrap();
    let running = submit(&mut q, "gzip", 0);
    let queued = submit(&mut q, "mcf", 0);
    q.mark_started(&running, Some("run-1"));

    assert_eq!(q.cancel(&queued), Ok(Cancelled::Queued));
    assert_eq!(q.get(&queued).unwrap().state, JobState::Cancelled);
    assert!(q.next_ready().is_none(), "cancelled job left the queue");

    assert_eq!(q.cancel(&running), Ok(Cancelled::InFlight));
    assert_eq!(
        q.get(&running).unwrap().state,
        JobState::Running,
        "in-flight cancel is cooperative; the scheduler records the terminal state"
    );
    // The scheduler then drains the pool and marks it cancelled.
    q.mark_finished(
        &running,
        JobState::Cancelled,
        JobOutcome {
            executed: 1,
            cache_hits: 0,
            failures: 1,
        },
        None,
    );

    // Terminal jobs reject further cancellation, unknown ids error.
    assert!(q.cancel(&queued).is_err());
    assert!(q.cancel("job-999999").is_err());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn replay_resumes_the_remainder_deterministically() {
    let dir = tmp("replay");
    {
        let mut q = JobQueue::open(&dir).unwrap();
        let finished = submit(&mut q, "gzip", 0);
        let running = submit(&mut q, "mcf", 2);
        let queued = submit(&mut q, "vpr", 1);
        let cancelled = submit(&mut q, "bzip2", 0);
        q.mark_started(&finished, Some("run-1"));
        q.mark_finished(
            &finished,
            JobState::Done,
            JobOutcome {
                executed: 1,
                cache_hits: 0,
                failures: 0,
            },
            None,
        );
        q.mark_started(&running, Some("run-2"));
        q.cancel(&cancelled).unwrap();
        let _ = queued;
        // Daemon dies here: `running` never journaled a terminal state.
    }
    let q = JobQueue::open(&dir).unwrap();
    assert_eq!(q.count(JobState::Done), 1);
    assert_eq!(q.count(JobState::Cancelled), 1);
    // The in-flight victim came back queued (re-running it is cheap —
    // its finished items are cache hits), the queued one stayed queued.
    assert_eq!(q.count(JobState::Queued), 2);
    assert_eq!(q.count(JobState::Running), 0);
    // Priority order survives the restart: the ex-running job (priority
    // 2) outranks the queued one (priority 1).
    let next = q.next_ready().unwrap();
    assert_eq!(q.iter().find(|j| j.seq == next).unwrap().id, "job-000002");
    // Terminal outcome fields survived too.
    let done = q.get("job-000001").unwrap();
    assert_eq!(done.run_id.as_deref(), Some("run-1"));
    assert_eq!(done.outcome.unwrap().executed, 1);

    // New submissions never reuse an id from a previous life.
    let mut q = q;
    let fresh = submit(&mut q, "twolf", 0);
    assert_eq!(fresh, "job-000005");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_journal_lines_are_skipped_not_fatal() {
    let dir = tmp("corrupt");
    {
        let mut q = JobQueue::open(&dir).unwrap();
        submit(&mut q, "gzip", 0);
        submit(&mut q, "mcf", 0);
    }
    let path = dir.join(JOURNAL_FILE);
    let mut text = fs::read_to_string(&path).unwrap();
    // Torn final write plus embedded garbage: both skipped on replay.
    text.insert_str(0, "{garbage\n\n{\"event\":\"elide\"}\n");
    text.push_str("{\"event\":\"submitted\",\"job\":\"job-9");
    fs::write(&path, text).unwrap();

    let q = JobQueue::open(&dir).unwrap();
    assert_eq!(q.count(JobState::Queued), 2, "intact lines survive");
    assert!(q.get("job-000001").is_some());
    assert!(q.get("job-000002").is_some());
    let _ = fs::remove_dir_all(&dir);
}
