//! Periodic machine-state snapshots and the bounded ring that stores
//! them.
//!
//! The interval sampler lives in `rmt3d::simulate`, which is the only
//! layer that can see the leader pipeline, the checker queues, and the
//! cache hierarchy at once. Every `--sample-interval` cycles it fills
//! an [`IntervalSample`] from read-only accessors and hands it to the
//! active [`Sink`](crate::Sink); sampling therefore never perturbs the
//! simulated numbers.

/// One snapshot of the coupled leader/checker machine state, taken
/// every `sample_interval` leader cycles.
///
/// All fields are plain numbers so a sample can be serialized as one
/// flat JSONL record or one CSV row without any schema machinery.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IntervalSample {
    /// 0-based index of the sample within the run.
    pub index: u64,
    /// Leader cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Instructions committed by the leader since the previous sample.
    pub committed: u64,
    /// Committed IPC over the interval.
    pub ipc: f64,
    /// Leader re-order buffer occupancy (entries).
    pub rob: u32,
    /// Leader integer issue-queue occupancy (entries).
    pub iq_int: u32,
    /// Leader floating-point issue-queue occupancy (entries).
    pub iq_fp: u32,
    /// Leader load/store-queue occupancy (entries).
    pub lsq: u32,
    /// Register value queue occupancy (leader -> checker operands).
    pub rvq: u32,
    /// Load value queue occupancy (leader -> checker load values).
    pub lvq: u32,
    /// Branch outcome queue occupancy (leader -> checker outcomes).
    pub boq: u32,
    /// Checker store buffer occupancy.
    pub stb: u32,
    /// Checker clock as a fraction of the leader clock (DFS level).
    pub checker_fraction: f64,
    /// Cumulative L1 data-cache accesses at the snapshot.
    pub dl1_accesses: u64,
    /// Cumulative L1 data-cache misses at the snapshot.
    pub dl1_misses: u64,
    /// Cumulative L2 accesses at the snapshot.
    pub l2_accesses: u64,
    /// Cumulative L2 misses at the snapshot.
    pub l2_misses: u64,
    /// Leader cycles spent commit-stalled since the previous sample.
    pub commit_stall_cycles: u64,
}

/// Bounded FIFO of [`IntervalSample`]s. Keeps the most recent
/// `capacity` samples; older ones are dropped (and counted) so a long
/// run cannot grow memory without bound.
#[derive(Debug, Clone, Default)]
pub struct SampleRing {
    samples: std::collections::VecDeque<IntervalSample>,
    capacity: usize,
    dropped: u64,
}

impl SampleRing {
    /// Creates a ring holding at most `capacity` samples. A capacity of
    /// 0 means unbounded.
    pub fn new(capacity: usize) -> Self {
        SampleRing {
            samples: std::collections::VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends a sample, evicting the oldest if the ring is full.
    pub fn push(&mut self, sample: IntervalSample) {
        if self.capacity != 0 && self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.dropped += 1;
        }
        self.samples.push_back(sample);
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of samples evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &IntervalSample> {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> IntervalSample {
        IntervalSample {
            index: i,
            cycle: i * 100,
            ..IntervalSample::default()
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut ring = SampleRing::new(3);
        for i in 0..5 {
            ring.push(sample(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let idx: Vec<u64> = ring.iter().map(|s| s.index).collect();
        assert_eq!(idx, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let mut ring = SampleRing::new(0);
        for i in 0..1000 {
            ring.push(sample(i));
        }
        assert_eq!(ring.len(), 1000);
        assert_eq!(ring.dropped(), 0);
    }
}
