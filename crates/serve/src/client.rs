//! Thin client for the daemon's wire protocol.
//!
//! One-shot operations ([`request`]) open a connection, send one
//! request line, read one response line, and close. [`watch`] keeps
//! the connection open and yields one parsed event object per line
//! until the server ends the stream. Both ends share the protocol
//! helpers in [`crate::proto`], so the client cannot emit a line the
//! daemon would reject on framing grounds.

use crate::proto::json_str;
use rmt3d_telemetry::json::{parse, JsonValue};
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;

/// Default listen address of `rmt3d serve`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7733";

fn connect(addr: &str) -> Result<TcpStream, String> {
    TcpStream::connect(addr).map_err(|e| format!("cannot connect to rmt3d serve at {addr}: {e}"))
}

fn send_line(stream: &mut TcpStream, line: &str) -> Result<(), String> {
    stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .map_err(|e| format!("cannot send request: {e}"))
}

/// Sends one request line and returns the raw response line.
///
/// # Errors
///
/// Returns a message when the connection, the send, or the read fails,
/// or when the server closes without answering.
pub fn request_raw(addr: &str, line: &str) -> Result<String, String> {
    let mut stream = connect(addr)?;
    send_line(&mut stream, line)?;
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader
        .read_line(&mut resp)
        .map_err(|e| format!("cannot read response: {e}"))?;
    if resp.is_empty() {
        return Err("server closed the connection without answering".to_string());
    }
    Ok(resp.trim_end().to_string())
}

/// Sends one request line and returns the parsed response object.
///
/// # Errors
///
/// As [`request_raw`], plus a malformed response, plus the server's
/// own `error` message when it answers `{"ok":false,…}`.
pub fn request(addr: &str, line: &str) -> Result<JsonValue, String> {
    let raw = request_raw(addr, line)?;
    let v = parse(&raw).map_err(|e| format!("malformed server response: {e}"))?;
    match v.get("ok").and_then(JsonValue::as_bool) {
        Some(true) => Ok(v),
        _ => Err(v
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap_or("server reported an error")
            .to_string()),
    }
}

/// Builds a `submit` request line. `spec_json` must already be a JSON
/// object (the daemon validates it against the job kind).
pub fn submit_line(kind: &str, spec_json: &str, priority: u64) -> String {
    format!(
        "{{\"op\":\"submit\",\"kind\":{},\"priority\":{priority},\"spec\":{}}}",
        json_str(kind),
        if spec_json.trim().is_empty() {
            "{}"
        } else {
            spec_json.trim()
        }
    )
}

/// Builds a request line for a job-addressed op (`cancel`, `watch`,
/// `result`).
pub fn job_line(op: &str, job: &str) -> String {
    format!("{{\"op\":{},\"job\":{}}}", json_str(op), json_str(job))
}

/// A live `watch` stream: one parsed event object per line.
pub struct WatchStream {
    reader: BufReader<TcpStream>,
}

impl Iterator for WatchStream {
    type Item = Result<JsonValue, String>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => {
                let trimmed = line.trim_end();
                if trimmed.is_empty() {
                    return self.next();
                }
                Some(parse(trimmed).map_err(|e| format!("malformed event line: {e}")))
            }
            Err(e) => Some(Err(format!("watch stream failed: {e}"))),
        }
    }
}

/// Opens a `watch` stream for `job`. The first yielded object is
/// either a `job_state` acknowledgement, a terminal `job_done` line
/// (job already finished), or an `{"ok":false,…}` error object —
/// callers should check for `error`.
///
/// # Errors
///
/// Returns a message when the connection or the send fails.
pub fn watch(addr: &str, job: &str) -> Result<WatchStream, String> {
    let mut stream = connect(addr)?;
    send_line(&mut stream, &job_line("watch", job))?;
    Ok(WatchStream {
        reader: BufReader::new(stream),
    })
}
