//! Cache and NUCA configuration types.

use std::fmt;

/// Geometry and timing of a single set-associative cache (or cache bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency in cycles (pipelined; hit latency).
    pub latency: u32,
}

impl CacheConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns an error message if any parameter is zero, not a power of
    /// two where required, or the geometry is inconsistent (capacity not
    /// divisible into sets).
    pub fn new(
        size_bytes: u64,
        ways: u32,
        line_bytes: u32,
        latency: u32,
    ) -> Result<CacheConfig, String> {
        if size_bytes == 0 || ways == 0 || line_bytes == 0 || latency == 0 {
            return Err("cache parameters must be positive".to_string());
        }
        if !line_bytes.is_power_of_two() {
            return Err("line size must be a power of two".to_string());
        }
        let line_capacity = size_bytes / line_bytes as u64;
        if !line_capacity.is_multiple_of(ways as u64) {
            return Err("capacity must divide evenly into sets".to_string());
        }
        let sets = line_capacity / ways as u64;
        if !sets.is_power_of_two() {
            return Err("set count must be a power of two".to_string());
        }
        Ok(CacheConfig {
            size_bytes,
            ways,
            line_bytes,
            latency,
        })
    }

    /// The paper's L1 configuration: 32 KB, 2-way, 2-cycle (Table 1).
    pub fn l1_32k_2way() -> CacheConfig {
        CacheConfig::new(32 * 1024, 2, 64, 2).expect("static config")
    }

    /// One 1 MB L2 NUCA bank (Table 2), 64 B lines. The paper's NUCA
    /// policies determine associativity seen by an address; within a bank
    /// we model 1 way per NUCA way (distributed-ways) or the full per-set
    /// associativity (distributed-sets).
    pub fn l2_bank_1mb(ways: u32, latency: u32) -> CacheConfig {
        CacheConfig::new(1024 * 1024, ways, 64, latency).expect("static config")
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes as u64 * self.ways as u64)
    }

    /// Extracts the (set index, tag) pair for an address.
    #[inline]
    pub fn index_tag(&self, addr: u64) -> (u64, u64) {
        let line = addr / self.line_bytes as u64;
        let sets = self.sets();
        (line % sets, line / sets)
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KB {}-way {}B-line {}cyc",
            self.size_bytes / 1024,
            self.ways,
            self.line_bytes,
            self.latency
        )
    }
}

/// NUCA data-placement policy (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NucaPolicy {
    /// Sets are distributed across banks: an address maps to exactly one
    /// bank. Simple, but all banks are uniformly accessed. This is the
    /// paper's default policy.
    #[default]
    DistributedSets,
    /// Ways are distributed across banks: a block may live in any bank;
    /// a centralized tag array near the L2 controller is consulted first,
    /// and blocks migrate toward closer banks on hits.
    DistributedWays,
}

impl fmt::Display for NucaPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NucaPolicy::DistributedSets => "distributed-sets",
            NucaPolicy::DistributedWays => "distributed-ways",
        })
    }
}

/// Physical arrangement of L2 banks on one or two dies.
///
/// Coordinates are grid positions (column, row, die); the L2 controller
/// sits at a fixed position on die 0 and requests pay 4 cycles per
/// Manhattan hop (1 link + 3 router, §3.1) plus 1 cycle to cross the
/// die-to-die vias for banks on die 1.
#[derive(Debug, Clone, PartialEq)]
pub struct NucaLayout {
    /// Human-readable model name (e.g. `"3d-2a"`).
    pub name: &'static str,
    /// Bank grid positions `(col, row, die)`.
    pub banks: Vec<(i32, i32, u8)>,
    /// Controller position on die 0.
    pub controller: (i32, i32),
    /// Cycles per grid hop.
    pub hop_cycles: u32,
    /// Extra cycles to reach a bank on the stacked die.
    pub die_cross_cycles: u32,
    /// Bank array access cycles (CACTI-lite output for a 1 MB bank).
    pub bank_cycles: u32,
    /// Fixed controller/queueing overhead cycles.
    pub controller_cycles: u32,
}

impl NucaLayout {
    /// 6-bank layout of the single-die 2d-a baseline: banks surround the
    /// core on three sides (Fig. 3a).
    pub fn two_d_a() -> NucaLayout {
        NucaLayout {
            name: "2d-a",
            // Controller at origin; banks in two columns beside the core
            // and two above it. Mean hop count 2.5 -> 18-cycle mean hit
            // latency (paper §3.3).
            banks: vec![
                (-1, 0, 0),
                (-1, 1, 0),
                (1, 1, 0),
                (-1, 2, 0),
                (1, 2, 0),
                (1, 3, 0),
            ],
            controller: (0, 0),
            hop_cycles: 4,
            die_cross_cycles: 1,
            bank_cycles: 6,
            controller_cycles: 2,
        }
    }

    /// 15-bank single-die 2d-2a layout (Fig. 3c): the larger die spreads
    /// the banks further from the controller.
    pub fn two_d_2a() -> NucaLayout {
        NucaLayout {
            name: "2d-2a",
            // Mean hop count ~3.5 -> 22-cycle mean hit latency: cache
            // values are more spread out on the larger die (§3.3).
            banks: vec![
                (-2, 0, 0),
                (2, 0, 0),
                (-1, 1, 0),
                (1, 2, 0),
                (-1, 2, 0),
                (2, 1, 0),
                (-2, 1, 0),
                (2, 2, 0),
                (-2, 2, 0),
                (1, 3, 0),
                (-1, 3, 0),
                (0, 4, 0),
                (2, 3, 0),
                (-2, 3, 0),
                (1, 4, 0),
            ],
            controller: (0, 0),
            hop_cycles: 4,
            die_cross_cycles: 1,
            bank_cycles: 6,
            controller_cycles: 2,
        }
    }

    /// 3d-2a layout: the 6 baseline banks on die 0 plus 9 banks on the
    /// stacked die directly above (Fig. 3b). Horizontal distances match
    /// 2d-a — which is why the paper finds 3D does not shorten the
    /// average L2 hit time relative to 2d-a.
    pub fn three_d_2a() -> NucaLayout {
        NucaLayout {
            name: "3d-2a",
            banks: vec![
                // Die 0: same six banks as 2d-a.
                (-1, 0, 0),
                (-1, 1, 0),
                (1, 1, 0),
                (-1, 2, 0),
                (1, 2, 0),
                (1, 3, 0),
                // Die 1: nine banks above the core and caches.
                (0, 0, 1),
                (-1, 0, 1),
                (1, 0, 1),
                (0, 1, 1),
                (-1, 1, 1),
                (1, 1, 1),
                (0, 2, 1),
                (-1, 2, 1),
                (1, 2, 1),
            ],
            controller: (0, 0),
            hop_cycles: 4,
            die_cross_cycles: 1,
            bank_cycles: 6,
            controller_cycles: 2,
        }
    }

    /// The §4 heterogeneous layout: 6 baseline banks on die 0 plus 4
    /// larger 90 nm banks on the stacked die. The older-process banks
    /// take one extra cycle per access (paper §4), folded into the
    /// die-crossing cost.
    pub fn three_d_hetero_90nm() -> NucaLayout {
        NucaLayout {
            name: "3d-2a-90nm",
            banks: vec![
                // Die 0: same six banks as 2d-a.
                (-1, 0, 0),
                (-1, 1, 0),
                (1, 1, 0),
                (-1, 2, 0),
                (1, 2, 0),
                (1, 3, 0),
                // Die 1: four larger banks.
                (0, 0, 1),
                (-1, 1, 1),
                (1, 0, 1),
                (0, 1, 1),
            ],
            controller: (0, 0),
            hop_cycles: 4,
            die_cross_cycles: 2,
            bank_cycles: 6,
            controller_cycles: 2,
        }
    }

    /// Number of banks (1 MB each).
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.bank_count() as u64 * 1024 * 1024
    }

    /// Manhattan hop count from the controller to bank `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn hops_to(&self, i: usize) -> u32 {
        let (c, r, _) = self.banks[i];
        ((c - self.controller.0).abs() + (r - self.controller.1).abs()) as u32
    }

    /// Round-trip latency in cycles for an access to bank `i` (request
    /// traversal + bank + response traversal, with traversals pipelined
    /// so one direction is counted, matching the paper's 18-cycle 2d-a
    /// average).
    pub fn access_cycles(&self, i: usize) -> u32 {
        let (_, _, die) = self.banks[i];
        let cross = if die > 0 { self.die_cross_cycles } else { 0 };
        self.controller_cycles + self.hop_cycles * self.hops_to(i) + cross + self.bank_cycles
    }

    /// Mean access latency over all banks (uniform bank usage, as under
    /// distributed sets).
    pub fn mean_access_cycles(&self) -> f64 {
        let total: u32 = (0..self.bank_count()).map(|i| self.access_cycles(i)).sum();
        total as f64 / self.bank_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(CacheConfig::new(0, 2, 64, 2).is_err());
        assert!(CacheConfig::new(32 * 1024, 2, 60, 2).is_err()); // line not pow2
        assert!(CacheConfig::new(48 * 1024, 5, 64, 2).is_err()); // sets not pow2
        assert!(CacheConfig::new(32 * 1024, 2, 64, 2).is_ok());
    }

    #[test]
    fn l1_geometry_matches_table1() {
        let c = CacheConfig::l1_32k_2way();
        assert_eq!(c.sets(), 256);
        assert_eq!(c.latency, 2);
    }

    #[test]
    fn index_tag_round_trip() {
        let c = CacheConfig::l1_32k_2way();
        let (i1, t1) = c.index_tag(0x1234_5640);
        let (i2, t2) = c.index_tag(0x1234_5640 + 8); // same line
        assert_eq!((i1, t1), (i2, t2));
        let (i3, _) = c.index_tag(0x1234_5640 + 64); // next line
        assert_eq!(i3, (i1 + 1) % c.sets());
    }

    #[test]
    fn layouts_have_paper_bank_counts() {
        assert_eq!(NucaLayout::two_d_a().bank_count(), 6);
        assert_eq!(NucaLayout::two_d_2a().bank_count(), 15);
        assert_eq!(NucaLayout::three_d_2a().bank_count(), 15);
        assert_eq!(NucaLayout::two_d_a().capacity_bytes(), 6 << 20);
        assert_eq!(NucaLayout::three_d_2a().capacity_bytes(), 15 << 20);
    }

    #[test]
    fn mean_latency_matches_paper_section_3_3() {
        // Paper: average L2 hit latency 18 cycles (2d-a), 22 (2d-2a), and
        // 3d-2a close to 2d-a ("the move to 3D does not help reduce the
        // average L2 hit time compared to 2d-a").
        let a = NucaLayout::two_d_a().mean_access_cycles();
        let b = NucaLayout::two_d_2a().mean_access_cycles();
        let c = NucaLayout::three_d_2a().mean_access_cycles();
        assert!((a - 18.0).abs() <= 1.0, "2d-a mean {a}");
        assert!((b - 22.0).abs() <= 1.0, "2d-2a mean {b}");
        assert!(c < b && (c - a).abs() <= 1.5, "3d-2a mean {c}");
    }

    #[test]
    fn three_d_upper_banks_pay_die_crossing() {
        let l = NucaLayout::three_d_2a();
        // Bank 8 is (0,0,1): directly above the controller.
        let above = l
            .banks
            .iter()
            .position(|&(c, r, d)| c == 0 && r == 0 && d == 1)
            .unwrap();
        assert_eq!(
            l.access_cycles(above),
            l.controller_cycles + l.die_cross_cycles + l.bank_cycles
        );
    }

    #[test]
    fn policy_default_is_distributed_sets() {
        assert_eq!(NucaPolicy::default(), NucaPolicy::DistributedSets);
        assert_eq!(NucaPolicy::DistributedSets.to_string(), "distributed-sets");
    }
}
