//! The threaded leader/checker engine must be bit-identical to the
//! serial reference: same cycle counts, same architectural state, same
//! queue/DFS trajectories — threading is a wall-clock optimization
//! only. `Engine::Threaded` is forced so the proof holds even on a
//! single-CPU host where `Auto` would fall back to serial.

use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
use rmt3d_cpu::CoreConfig;
use rmt3d_rmt::{Engine, RmtConfig, RmtSystem};
use rmt3d_workload::{Benchmark, TraceGenerator};

fn system(b: Benchmark, engine: Engine) -> RmtSystem {
    let leader = rmt3d_cpu::OooCore::new(
        CoreConfig::leading_ev7_like(),
        TraceGenerator::new(b.profile()),
        CacheHierarchy::new(NucaLayout::three_d_2a(), NucaPolicy::DistributedSets),
    );
    let mut sys = RmtSystem::new(leader, RmtConfig::paper());
    sys.set_engine(engine);
    sys.prefill_caches();
    sys
}

/// Every externally observable number of the two runs must agree.
fn assert_identical(a: &RmtSystem, b: &RmtSystem, what: &str) {
    assert_eq!(a.total_cycles(), b.total_cycles(), "{what}: total_cycles");
    assert_eq!(
        a.leader().activity(),
        b.leader().activity(),
        "{what}: leader activity"
    );
    assert_eq!(
        a.trailer().activity(),
        b.trailer().activity(),
        "{what}: trailer activity"
    );
    assert_eq!(
        a.leader().regfile(),
        b.leader().regfile(),
        "{what}: leader regfile"
    );
    assert_eq!(
        a.trailer().regfile(),
        b.trailer().regfile(),
        "{what}: trailer regfile"
    );
    assert_eq!(
        a.queues().occupancy(),
        b.queues().occupancy(),
        "{what}: occupancy"
    );
    assert_eq!(
        a.queues().peak_occupancy(),
        b.queues().peak_occupancy(),
        "{what}: peak occupancy"
    );
    assert_eq!(
        a.queues().total_enqueued,
        b.queues().total_enqueued,
        "{what}: total enqueued"
    );
    assert_eq!(
        a.frequency_histogram(),
        b.frequency_histogram(),
        "{what}: DFS histogram"
    );
    assert_eq!(
        a.dfs().mean_fraction().to_bits(),
        b.dfs().mean_fraction().to_bits(),
        "{what}: mean checker fraction"
    );
    let (sa, sb) = (a.stats(), b.stats());
    assert_eq!(sa.verified_ok, sb.verified_ok, "{what}: verified_ok");
    assert_eq!(sa.detected, sb.detected, "{what}: detected");
    assert_eq!(sa.recoveries, sb.recoveries, "{what}: recoveries");
    assert_eq!(sa.slack_sum, sb.slack_sum, "{what}: slack_sum");
    assert_eq!(sa.slack_samples, sb.slack_samples, "{what}: slack_samples");
    assert_eq!(
        sa.mean_slack().to_bits(),
        sb.mean_slack().to_bits(),
        "{what}: mean_slack"
    );
}

#[test]
fn threaded_engine_is_bit_identical_to_serial() {
    for b in [Benchmark::Gzip, Benchmark::Mcf] {
        let mut serial = system(b, Engine::Serial);
        let mut threaded = system(b, Engine::Threaded);
        serial.run_instructions(40_000);
        threaded.run_instructions(40_000);
        assert_identical(&serial, &threaded, &format!("{b:?}"));
        assert!(threaded.leader_matches_golden(), "{b:?}: golden oracle");
        serial.drain();
        threaded.drain();
        assert_identical(&serial, &threaded, &format!("{b:?} drained"));
        assert!(threaded.trailer_matches_golden(), "{b:?}: drained checker");
    }
}

#[test]
fn threaded_measure_after_serial_warmup_is_bit_identical() {
    // The warmup leaves the queues non-empty; the threaded engine's
    // conservative occupancy tracking must seed from that state.
    let mut serial = system(Benchmark::Swim, Engine::Serial);
    serial.run_instructions(5_000);
    serial.run_instructions(25_000);

    let mut mixed = system(Benchmark::Swim, Engine::Serial);
    mixed.run_instructions(5_000);
    mixed.set_engine(Engine::Threaded);
    mixed.run_instructions(25_000);

    assert_identical(&serial, &mixed, "serial warmup + threaded measure");
}

#[test]
fn repeated_threaded_runs_resume_bit_identically() {
    // Chunked runs (the threaded engine torn down and rebuilt per
    // call, resuming mid-stream each time) must match the serial
    // engine chunked the same way. Note chunking itself changes the
    // endpoint — each call may overshoot its commit target by up to
    // `commit_width - 1` — so the reference is chunked-serial, not one
    // long run.
    let mut serial = system(Benchmark::Gzip, Engine::Serial);
    let mut threaded = system(Benchmark::Gzip, Engine::Threaded);
    for _ in 0..6 {
        serial.run_instructions(5_000);
        threaded.run_instructions(5_000);
    }
    assert_identical(&serial, &threaded, "chunked runs");
}

#[test]
fn directed_injection_taints_the_threaded_engine_but_stays_correct() {
    use rmt3d_rmt::{DrawnFault, EccConfig, FaultSite};
    // A campaign-style use: threaded warmup, then a directed strike.
    // The strike must be detected and recovered exactly as in the
    // serial engine (the system falls back internally once tainted).
    let run = |engine: Engine| {
        let mut sys = system(Benchmark::Gzip, engine);
        sys.run_instructions(10_000);
        let fault = DrawnFault {
            site: FaultSite::LeaderResult,
            bit: 17,
            reg: 3,
        };
        let outcome = sys.inject_directed(fault, EccConfig::none());
        sys.run_instructions(10_000);
        sys.drain();
        (outcome, sys)
    };
    let (oa, a) = run(Engine::Serial);
    let (ob, b) = run(Engine::Threaded);
    assert_eq!(oa, ob, "same directed outcome");
    assert_eq!(a.stats().detected, b.stats().detected);
    assert_eq!(a.stats().recoveries, b.stats().recoveries);
    assert_identical(&a, &b, "tainted run");
}
