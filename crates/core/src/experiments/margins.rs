//! §3.5 — conservative timing margins: deep pipelining versus the
//! DFS-provided slack.
//!
//! The paper evaluates two ways to give every checker pipeline stage
//! timing slack:
//!
//! 1. **Deep pipelining** at a fixed clock: less logic per stage, but
//!    Table 5 shows the latch/bypass power cost is "inordinate" —
//!    +52% total power even at 14 FO4 — so the paper rejects it.
//! 2. **The DFS fall-out**: the high-ILP checker usually runs at ~0.6 f
//!    anyway (Fig. 7), so each stage already has ~40% slack for free.
//!
//! This experiment quantifies both options' error-rate improvement per
//! watt, reproducing the section's conclusion.

use crate::experiments::fig7::Fig7Result;
use rmt3d_power::pipeline::{relative_power, stage_slack_fraction};
use rmt3d_reliability::TimingModel;
use rmt3d_units::TechNode;

/// One candidate checker timing strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginOption {
    /// Strategy name.
    pub name: &'static str,
    /// Relative checker power (1.3 = the 18 FO4 baseline's total).
    pub relative_power: f64,
    /// Expected per-instruction timing-error probability.
    pub error_probability: f64,
}

/// The §3.5 comparison.
#[derive(Debug, Clone)]
pub struct MarginsReport {
    /// Baseline and alternatives.
    pub options: Vec<MarginOption>,
}

impl MarginsReport {
    /// Finds an option by name.
    pub fn option(&self, name: &str) -> Option<&MarginOption> {
        self.options.iter().find(|o| o.name == name)
    }

    /// Formats as text.
    pub fn to_table(&self) -> String {
        let mut s = String::from(
            "Sec 3.5 Conservative timing margins for the checker\n\
             strategy                     rel.power  P(timing error)/insn\n",
        );
        for o in &self.options {
            s.push_str(&format!(
                "{:28} {:9.2} {:17.3e}\n",
                o.name, o.relative_power, o.error_probability
            ));
        }
        s
    }
}

/// Computes the §3.5 comparison for a measured Fig. 7 profile.
///
/// `stages` is the checker pipeline depth at the 18 FO4 baseline.
pub fn run(fig7: &Fig7Result, node: TechNode, stages: u32) -> MarginsReport {
    let m = TimingModel::for_node(node);
    let mut options = Vec::new();

    // Full-speed shallow pipeline: every stage crams 18 FO4 into an
    // 18 FO4 cycle — no margin.
    options.push(MarginOption {
        name: "18 FO4, full speed",
        relative_power: relative_power(18.0).total(),
        error_probability: m.pipeline_error_probability(1.0, stages),
    });

    // Deep pipelines at full clock: stage logic shrinks, cycle stays.
    for fo4 in [14.0, 10.0, 6.0] {
        let slack = stage_slack_fraction(fo4, 18.0);
        let logic_fraction = 1.0 - slack;
        // More stages hold the same total logic.
        let deep_stages = (stages as f64 * 18.0 / fo4).ceil() as u32;
        options.push(MarginOption {
            name: match fo4 as u32 {
                14 => "14 FO4 deep pipe",
                10 => "10 FO4 deep pipe",
                _ => "6 FO4 deep pipe",
            },
            relative_power: relative_power(fo4).total(),
            error_probability: m.pipeline_error_probability(logic_fraction, deep_stages),
        });
    }

    // The DFS fall-out: 18 FO4 pipeline whose cycle time stretches with
    // the measured Fig. 7 frequency profile — no power *increase* at
    // all (power goes down with f).
    options.push(MarginOption {
        name: "18 FO4 + DFS profile (free)",
        relative_power: relative_power(18.0).total(),
        error_probability: m.checker_error_probability(&fig7.histogram, stages),
    });

    MarginsReport { options }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig7;
    use crate::model::RunScale;
    use rmt3d_workload::Benchmark;

    fn report() -> MarginsReport {
        let f7 = fig7::run(&[Benchmark::Gzip, Benchmark::Gap], RunScale::quick());
        run(&f7, TechNode::N65, 12)
    }

    #[test]
    fn deep_pipelining_costs_inordinate_power() {
        let r = report();
        let base = r.option("18 FO4, full speed").unwrap();
        let deep14 = r.option("14 FO4 deep pipe").unwrap();
        let deep6 = r.option("6 FO4 deep pipe").unwrap();
        // Paper: ~+50% at 14 FO4, ~3x at 6 FO4.
        assert!((deep14.relative_power / base.relative_power - 1.515).abs() < 0.05);
        assert!(deep6.relative_power / base.relative_power > 2.5);
        // Deep pipes do reduce error rates...
        assert!(deep14.error_probability < base.error_probability);
    }

    #[test]
    fn dfs_slack_is_free_and_effective() {
        let r = report();
        let base = r.option("18 FO4, full speed").unwrap();
        let dfs = r.option("18 FO4 + DFS profile (free)").unwrap();
        let deep14 = r.option("14 FO4 deep pipe").unwrap();
        // No power increase.
        assert!((dfs.relative_power - base.relative_power).abs() < 1e-9);
        // Large error-rate improvement over running flat out.
        assert!(dfs.error_probability < base.error_probability / 5.0);
        // The paper's conclusion: prefer the free DFS slack over paying
        // 52% more power for 14 FO4.
        assert!(
            dfs.error_probability
                < deep14.relative_power * dfs.error_probability + deep14.error_probability,
            "sanity: both options beat baseline"
        );
    }

    #[test]
    fn table_formats() {
        assert!(report().to_table().contains("DFS profile"));
    }
}
