//! End-to-end checks of the telemetry stack: JSONL round-trips through
//! the hand-rolled codec, traces are deterministic across identical
//! runs, and attaching a `NullSink` cannot change simulation results.

use rmt3d::telemetry::{
    CollectorSink, CpiComponent, Event, JsonlSink, ParsedEvent, RecordingSink, TraceEventSink,
};
use rmt3d::{simulate, simulate_traced, PerfResult, ProcessorModel, RunScale, SimConfig};
use rmt3d_workload::Benchmark;
use std::cell::RefCell;
use std::rc::Rc;

fn quick_cfg(model: ProcessorModel) -> SimConfig {
    SimConfig::nominal(
        model,
        RunScale {
            warmup_instructions: 5_000,
            instructions: 40_000,
            thermal_grid: 50,
        },
    )
}

/// Shared byte buffer a `JsonlSink` can write into.
#[derive(Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn traced_run(model: ProcessorModel, interval: u64) -> (PerfResult, String) {
    let buf = SharedBuf::default();
    let jsonl = JsonlSink::new(buf.clone()).deterministic();
    let collector = CollectorSink::new();
    let r = simulate_traced(
        &quick_cfg(model),
        Benchmark::Gzip,
        interval,
        (collector.clone(), jsonl.clone()),
    );
    let mut jsonl = jsonl;
    jsonl.write_summary(&collector.snapshot().registry);
    jsonl.finish().unwrap();
    let text = String::from_utf8(buf.0.borrow().clone()).unwrap();
    (r, text)
}

#[test]
fn every_jsonl_line_parses_and_covers_multiple_kinds() {
    let (_, text) = traced_run(ProcessorModel::ThreeD2A, 2_000);
    let mut kinds = std::collections::BTreeSet::new();
    let mut lines = 0;
    for line in text.lines() {
        let parsed =
            ParsedEvent::from_json_line(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
        kinds.insert(parsed.kind());
        lines += 1;
    }
    assert!(lines > 20, "trace should have many lines, got {lines}");
    assert!(
        kinds.len() >= 3,
        "expected at least 3 distinct event kinds, got {kinds:?}"
    );
    assert!(kinds.contains("interval"), "{kinds:?}");
    assert!(kinds.contains("span_begin"), "{kinds:?}");
    assert!(kinds.contains("summary"), "{kinds:?}");
    assert!(
        text.lines()
            .last()
            .unwrap()
            .contains("\"event\":\"summary\""),
        "summary is the final line"
    );
}

#[test]
fn deterministic_traces_are_byte_identical() {
    let (r1, t1) = traced_run(ProcessorModel::ThreeD2A, 5_000);
    let (r2, t2) = traced_run(ProcessorModel::ThreeD2A, 5_000);
    assert_eq!(r1.total_cycles, r2.total_cycles);
    assert_eq!(t1, t2, "identical runs must produce identical traces");
}

#[test]
fn null_sink_results_match_untraced_simulate() {
    for model in [ProcessorModel::TwoDA, ProcessorModel::ThreeD2A] {
        let cfg = quick_cfg(model);
        let plain = simulate(&cfg, Benchmark::Gzip);
        let traced = simulate_traced(&cfg, Benchmark::Gzip, 0, rmt3d::telemetry::NullSink);
        assert_eq!(plain.leader, traced.leader, "{model:?}");
        assert_eq!(plain.trailer, traced.trailer, "{model:?}");
        assert_eq!(plain.total_cycles, traced.total_cycles, "{model:?}");
        assert_eq!(plain.dfs_histogram, traced.dfs_histogram, "{model:?}");
        assert_eq!(
            plain.mean_checker_fraction, traced.mean_checker_fraction,
            "{model:?}"
        );
    }
}

#[test]
fn recording_sink_results_match_untraced_simulate() {
    // Telemetry must observe, never perturb: even a live sink leaves
    // every simulated number untouched.
    let cfg = quick_cfg(ProcessorModel::ThreeD2A);
    let plain = simulate(&cfg, Benchmark::Gzip);
    let sink = RecordingSink::new();
    let traced = simulate_traced(&cfg, Benchmark::Gzip, 1_000, sink.clone());
    assert_eq!(plain.leader, traced.leader);
    assert_eq!(plain.total_cycles, traced.total_cycles);
    assert!(!sink.is_empty(), "sink saw events");
}

#[test]
fn sampler_emits_expected_interval_cadence() {
    let sink = RecordingSink::new();
    let r = simulate_traced(
        &quick_cfg(ProcessorModel::TwoDA),
        Benchmark::Gzip,
        1_000,
        sink.clone(),
    );
    let samples: Vec<Event> = sink
        .events()
        .into_iter()
        .filter(|e| matches!(e, Event::Interval(_)))
        .collect();
    let expected = r.total_cycles / 1_000;
    assert!(
        samples.len() as u64 >= expected.saturating_sub(1) && samples.len() as u64 <= expected + 1,
        "{} samples over {} cycles",
        samples.len(),
        r.total_cycles
    );
    // Indices are sequential and cycles strictly increase.
    let mut last_cycle = 0;
    for (i, e) in samples.iter().enumerate() {
        let Event::Interval(s) = e else {
            unreachable!()
        };
        assert_eq!(s.index, i as u64);
        assert!(s.cycle > last_cycle || i == 0);
        last_cycle = s.cycle;
    }
}

#[test]
fn cpi_stacks_partition_total_cycles_end_to_end() {
    for model in [ProcessorModel::TwoDA, ProcessorModel::ThreeD2A] {
        let (r, _) = traced_run(model, 2_000);
        assert_eq!(
            r.leader_cpi.total(),
            r.total_cycles,
            "{model:?}: every cycle is attributed exactly once"
        );
        assert!(r.leader_cpi.get(CpiComponent::BaseIssue) > 0, "{model:?}");
        if model.has_checker() {
            assert_eq!(r.trailer_cpi.total(), r.total_cycles, "{model:?}");
            assert!(
                r.trailer_cpi.get(CpiComponent::DfsThrottled) > 0,
                "{model:?}: the checker spends gated cycles under DFS"
            );
        } else {
            assert!(r.trailer_cpi.is_empty(), "{model:?}: no checker, no stack");
        }
    }
}

#[test]
fn perfetto_trace_is_strict_json_and_byte_deterministic() {
    let render = || {
        let buf = SharedBuf::default();
        let mut sink = TraceEventSink::new(buf.clone());
        let r = simulate_traced(
            &quick_cfg(ProcessorModel::ThreeD2A),
            Benchmark::Gzip,
            2_000,
            sink.clone(),
        );
        sink.finish().unwrap();
        let bytes = buf.0.borrow().clone();
        (r, String::from_utf8(bytes).unwrap())
    };
    let (r1, t1) = render();
    let (r2, t2) = render();
    assert_eq!(r1.total_cycles, r2.total_cycles);
    assert_eq!(t1, t2, "trace export must be byte-deterministic");
    let doc = rmt3d::telemetry::json::parse(&t1).expect("strict JSON");
    let events = match doc.get("traceEvents") {
        Some(rmt3d::telemetry::json::JsonValue::Arr(events)) => events,
        other => panic!("traceEvents missing: {other:?}"),
    };
    assert!(events.len() > 20, "got {} records", events.len());
    // The exported CPI counters are present for both tracks.
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    assert!(names.contains(&"cpi_leader_base_issue"), "{names:?}");
    assert!(names.contains(&"cpi_checker_dfs_throttled"), "{names:?}");
}

#[test]
fn collector_registry_summarizes_checker_series() {
    let collector = CollectorSink::new();
    let _ = simulate_traced(
        &quick_cfg(ProcessorModel::ThreeD2A),
        Benchmark::Gzip,
        2_000,
        collector.clone(),
    );
    let snap = collector.snapshot();
    assert!(snap.dfs_transitions() > 0, "DFS moved at least once");
    let ipc = snap.registry.summary("interval_ipc").expect("ipc series");
    assert!(ipc.count > 0 && ipc.min <= ipc.p50 && ipc.p50 <= ipc.max);
    assert!(
        snap.registry.summary("checker_fraction").is_some(),
        "DFS transitions feed the checker_fraction series"
    );
}
