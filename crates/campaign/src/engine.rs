//! Campaign execution on the `rmt3d-sweep` work-stealing pool, with
//! optional write-ahead journaling and crash resume (see
//! [`crate::journal`]).

use crate::grid::CampaignSpec;
use crate::journal::{self, Journal, CHECKPOINT_INTERVAL};
use crate::report::{CampaignReport, Tally, TrialRecord};
use crate::trial::{run_trial, TrialResult, TrialSpec};
use rmt3d_sweep::{run_pool, PoolEvent};
use rmt3d_telemetry::{emit, Event, Sink};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Knobs of [`run_campaign_with`]. The zero-value default (via
/// [`Default`]) is an unjournaled auto-parallel run.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Worker threads (0 = available parallelism).
    pub jobs: usize,
    /// Heartbeat watchdog flagging silent trials as
    /// [`Event::JobStalled`].
    pub watchdog: Option<rmt3d_obs::WatchdogConfig>,
    /// Write-ahead journal path (`None` disables journaling).
    pub journal: Option<PathBuf>,
    /// Replay an existing journal at the path before running, skipping
    /// completed trials. Without a usable journal this degrades to a
    /// fresh run (see [`CampaignRun::journal_discarded`]).
    pub resume: bool,
}

/// A campaign's report plus how the journal shaped the run.
#[derive(Debug, Clone)]
pub struct CampaignRun {
    /// The aggregated outcome, byte-identical to an uninterrupted run.
    pub report: CampaignReport,
    /// Trials skipped because the journal already held their outcome.
    pub resumed: usize,
    /// Trials the journal knew about but had to re-run: in-flight
    /// victims of the crash plus previously panicked trials.
    pub requeued: usize,
    /// Why an existing journal was thrown away (`None` when it was
    /// absent on a fresh run or replayed cleanly).
    pub journal_discarded: Option<String>,
}

/// Journaling state owned by the pool coordinator, shared between the
/// completion hook (outcome + checkpoint lines) and the observer
/// (trial-started lines).
struct JournalState {
    journal: Journal,
    tally: Tally,
    done: usize,
    err: Option<String>,
}

impl JournalState {
    fn fail(&mut self, e: std::io::Error) {
        if self.err.is_none() {
            self.err = Some(format!("journal write failed: {e}"));
        }
    }
}

/// Runs every trial of `spec` on `jobs` worker threads (0 = available
/// parallelism) and aggregates the records in grid order.
///
/// Lifecycle events stream to `sink` while workers run
/// ([`Event::JobStarted`] / [`Event::JobFinished`], in completion
/// order, plus [`Event::JobStalled`] when a watchdog is set); once the
/// pool drains it emits one [`Event::PoolStats`] utilization summary,
/// then one [`Event::CampaignTrial`] per trial in grid order, so a
/// deterministic sink sees the same trial stream regardless of worker
/// count.
///
/// # Errors
///
/// Returns an error when the spec fails [`CampaignSpec::validate`].
/// Trial panics are *not* errors — they surface as failed
/// [`TrialRecord`]s.
pub fn run_campaign<S: Sink>(
    spec: &CampaignSpec,
    jobs: usize,
    sink: &mut S,
) -> Result<CampaignReport, String> {
    run_campaign_watched(spec, jobs, None, sink)
}

/// [`run_campaign`] with an optional heartbeat watchdog flagging silent
/// trials as [`Event::JobStalled`].
///
/// # Errors
///
/// Returns an error when the spec fails [`CampaignSpec::validate`].
pub fn run_campaign_watched<S: Sink>(
    spec: &CampaignSpec,
    jobs: usize,
    watchdog: Option<rmt3d_obs::WatchdogConfig>,
    sink: &mut S,
) -> Result<CampaignReport, String> {
    let opts = CampaignOptions {
        jobs,
        watchdog,
        ..CampaignOptions::default()
    };
    run_campaign_with(spec, &opts, sink).map(|run| run.report)
}

/// [`run_campaign`] with the full option set: watchdog, write-ahead
/// journaling, and crash resume.
///
/// With `opts.journal` set, every completion is appended (and fsynced)
/// to the journal *before* it is acknowledged, so a SIGKILL at any
/// instant loses at most the trials still in flight. With
/// `opts.resume` also set, the journal is replayed first: completed
/// trials are served from it as cache hits, in-flight victims and
/// panicked trials re-run, and — because [`run_trial`] is
/// deterministic and the report carries no wall-clock fields — the
/// final report is byte-identical to an uninterrupted run.
///
/// # Errors
///
/// Returns an error when the spec fails [`CampaignSpec::validate`] or
/// the journal cannot be created or written (a journal that cannot
/// keep its durability promise must not pretend to). Trial panics are
/// *not* errors — they surface as failed [`TrialRecord`]s.
pub fn run_campaign_with<S: Sink>(
    spec: &CampaignSpec,
    opts: &CampaignOptions,
    sink: &mut S,
) -> Result<CampaignRun, String> {
    spec.validate()?;
    let trials = spec.expand();
    let total = trials.len();
    let workers = if opts.jobs > 0 {
        opts.jobs
    } else {
        std::thread::available_parallelism().map_or(1, usize::from)
    };

    let mut completed: BTreeMap<usize, TrialResult> = BTreeMap::new();
    let mut resumed = 0usize;
    let mut requeued = 0usize;
    let mut journal_discarded = None;
    let journal = match &opts.journal {
        None => None,
        Some(path) => {
            let fresh = || {
                Journal::create(path, spec)
                    .map_err(|e| format!("cannot create journal {}: {e}", path.display()))
            };
            if opts.resume {
                let text = std::fs::read_to_string(path).unwrap_or_default();
                let rp = journal::replay(&text, spec);
                match rp.discarded {
                    Some(reason) => {
                        journal_discarded = Some(reason);
                        Some(fresh()?)
                    }
                    None => {
                        requeued = rp.in_flight.len();
                        for (i, outcome) in rp.completed {
                            match outcome {
                                Ok(t) => {
                                    completed.insert(i, t);
                                }
                                // Panicked trials re-run; determinism
                                // reproduces the identical record.
                                Err(_) => requeued += 1,
                            }
                        }
                        resumed = completed.len();
                        Some(Journal::open_append(path).map_err(|e| {
                            format!("cannot reopen journal {}: {e}", path.display())
                        })?)
                    }
                }
            } else {
                Some(fresh()?)
            }
        }
    };
    let jstate = RefCell::new(journal.map(|journal| JournalState {
        journal,
        tally: Tally::default(),
        done: 0,
        err: None,
    }));

    let pool_records = run_pool(
        &trials,
        workers,
        |t: &TrialSpec| completed.get(&t.index).copied(),
        run_trial,
        |_, _| {},
        opts.watchdog,
        |index, outcome: &Result<TrialResult, String>, cached| {
            let mut guard = jstate.borrow_mut();
            let Some(js) = guard.as_mut() else { return };
            js.done += 1;
            js.tally.add(outcome);
            // Journal-before-acknowledge: replayed hits are already on
            // disk, everything else is fsynced here, ahead of the
            // record and any observer effect.
            let mut wrote = Ok(());
            if !cached {
                wrote = js.journal.trial_done(index, outcome);
            }
            if wrote.is_ok() && (js.done % CHECKPOINT_INTERVAL == 0 || js.done == total) {
                wrote = js.journal.checkpoint(js.done, &js.tally);
            }
            if let Err(e) = wrote {
                js.fail(e);
            }
        },
        |ev| match ev {
            PoolEvent::Started { index } => {
                if let Some(js) = jstate.borrow_mut().as_mut() {
                    if let Err(e) = js.journal.trial_started(index) {
                        js.fail(e);
                    }
                }
                emit(sink, || Event::JobStarted {
                    job: index as u64,
                    total: total as u64,
                    label: trials[index].label(),
                });
            }
            PoolEvent::Finished {
                index,
                ok,
                wall_nanos,
                eta_nanos,
            } => emit(sink, || Event::JobFinished {
                job: index as u64,
                total: total as u64,
                ok,
                wall_nanos,
                eta_nanos,
            }),
            PoolEvent::Stalled {
                index,
                elapsed_nanos,
                median_nanos,
            } => emit(sink, || Event::JobStalled {
                job: index as u64,
                total: total as u64,
                label: trials[index].label(),
                elapsed_nanos,
                median_nanos,
            }),
            PoolEvent::Drained { stats } => emit(sink, || Event::PoolStats {
                workers: stats.workers,
                executed: stats.executed,
                cache_hits: stats.cache_hits,
                failed: stats.failed,
                steals: stats.steals,
                busy_nanos: stats.busy_nanos,
                idle_nanos: stats.idle_nanos,
                wall_nanos: stats.wall_nanos,
            }),
            PoolEvent::CacheHit { .. } => {}
        },
    );
    if let Some(js) = jstate.into_inner() {
        if let Some(e) = js.err {
            return Err(e);
        }
    }
    let records: Vec<TrialRecord> = trials
        .into_iter()
        .zip(pool_records)
        .map(|(spec, r)| TrialRecord {
            spec,
            outcome: r.outcome,
        })
        .collect();
    for r in &records {
        emit(sink, || Event::CampaignTrial {
            trial: r.spec.index as u64,
            site: r.spec.site.name(),
            fate: r.outcome.as_ref().map_or("panicked", |t| t.fate.name()),
            detect_cycles: r.outcome.as_ref().map_or(0, |t| t.detect_cycles),
            ok: r.ok(),
        });
    }
    Ok(CampaignRun {
        report: CampaignReport { records },
        resumed,
        requeued,
        journal_discarded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JOURNAL_FILE;
    use rmt3d_telemetry::{NullSink, RecordingSink};

    #[test]
    fn smoke_campaign_has_full_coverage() {
        let spec = CampaignSpec::smoke(11);
        let report = run_campaign(&spec, 0, &mut NullSink).expect("campaign runs");
        assert_eq!(report.records.len(), spec.total_trials());
        assert!(
            report.full_coverage(),
            "violations: {:?}",
            report
                .violations()
                .iter()
                .map(|r| (r.spec.label(), &r.outcome))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn campaign_trial_events_arrive_in_grid_order() {
        let spec = CampaignSpec::smoke(3);
        let mut sink = RecordingSink::new();
        run_campaign(&spec, 2, &mut sink).expect("campaign runs");
        let trial_ids: Vec<u64> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::CampaignTrial { trial, .. } => Some(*trial),
                _ => None,
            })
            .collect();
        let expected: Vec<u64> = (0..spec.total_trials() as u64).collect();
        assert_eq!(trial_ids, expected);
    }

    #[test]
    fn invalid_spec_is_an_error_not_a_panic() {
        let mut spec = CampaignSpec::smoke(1);
        spec.benchmarks.clear();
        assert!(run_campaign(&spec, 1, &mut NullSink).is_err());
    }

    #[test]
    fn full_resume_serves_every_trial_from_the_journal() {
        let spec = CampaignSpec::smoke(29);
        let dir = std::env::temp_dir().join(format!("rmt3d-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = CampaignOptions {
            jobs: 2,
            journal: Some(dir.join(JOURNAL_FILE)),
            ..CampaignOptions::default()
        };
        let first = run_campaign_with(&spec, &opts, &mut NullSink).expect("fresh run");
        assert_eq!(first.resumed, 0);
        let resume = CampaignOptions {
            resume: true,
            ..opts
        };
        let mut sink = RecordingSink::new();
        let second = run_campaign_with(&spec, &resume, &mut sink).expect("resumed run");
        assert_eq!(second.resumed, spec.total_trials());
        assert_eq!(second.requeued, 0);
        assert!(second.journal_discarded.is_none());
        assert_eq!(
            first.report.to_jsonl(),
            second.report.to_jsonl(),
            "resume must be byte-identical"
        );
        let hits: u64 = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::PoolStats { cache_hits, .. } => Some(*cache_hits),
                _ => None,
            })
            .sum();
        assert_eq!(hits, spec.total_trials() as u64, "no trial re-ran");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_without_a_journal_file_degrades_to_a_fresh_run() {
        let spec = CampaignSpec::smoke(31);
        let dir = std::env::temp_dir().join(format!("rmt3d-resume-fresh-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = CampaignOptions {
            jobs: 2,
            journal: Some(dir.join(JOURNAL_FILE)),
            resume: true,
            ..CampaignOptions::default()
        };
        let run = run_campaign_with(&spec, &opts, &mut NullSink).expect("campaign runs");
        assert_eq!(run.resumed, 0);
        assert!(run.journal_discarded.is_some());
        assert_eq!(run.report.records.len(), spec.total_trials());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
