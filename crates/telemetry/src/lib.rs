//! # rmt3d-telemetry
//!
//! Structured tracing, metrics, and machine-readable run artifacts for
//! the rmt3d simulation stack.
//!
//! The crate has three layers:
//!
//! 1. **Events and sinks** ([`Event`], [`Sink`], [`emit`]): simulators
//!    are generic over a sink and emit typed events — span begin/end
//!    with wall-clock timing, counter samples, DFS level transitions,
//!    fault injections, recoveries, and thermal-solver residuals. The
//!    default [`NullSink`] has `ENABLED = false`, so instrumented code
//!    compiles down to the uninstrumented code: event construction is
//!    gated behind a compile-time constant.
//! 2. **Interval sampling** ([`IntervalSample`], [`SampleRing`]): the
//!    driver in `rmt3d::simulate` snapshots pipeline, intercore-queue,
//!    and cache state every N cycles into flat records.
//! 3. **Exporters** ([`JsonlSink`], [`CollectorSink`],
//!    [`write_samples_csv`], [`MetricsRegistry`]): JSON Lines streams,
//!    CSV tables, and min/max/mean/p50/p99 summaries per series.
//!
//! There is no serde in this workspace (it builds fully offline); the
//! [`json`] module provides the small writer/parser the schema needs.
//!
//! ```
//! use rmt3d_telemetry::{emit, Event, RecordingSink, Sink};
//!
//! let mut sink = RecordingSink::new();
//! emit(&mut sink, || Event::Counter { name: "ipc", cycle: 100, value: 1.5 });
//! assert_eq!(sink.events().len(), 1);
//! ```

pub mod codec;
pub mod cpi;
pub mod event;
pub mod export;
pub mod json;
pub mod registry;
pub mod sample;
pub mod sink;
pub mod trace_event;

pub use codec::ParsedEvent;
pub use cpi::{CpiComponent, CpiStack};
pub use event::Event;
pub use export::{
    write_metrics_csv, write_samples_csv, Collector, CollectorSink, JsonlSink, CSV_HEADER,
};
pub use registry::{Log2Histogram, MetricsRegistry, SeriesSummary};
pub use sample::{IntervalSample, SampleRing};
pub use sink::{emit, NullSink, RecordingSink, Sink};
pub use trace_event::TraceEventSink;

use std::time::Instant;

/// Measures the wall-clock duration of a named phase, pairing an
/// [`Event::SpanBegin`] with an [`Event::SpanEnd`].
///
/// When the sink is disabled the timer neither reads the clock nor
/// builds events.
#[derive(Debug)]
pub struct SpanTimer {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanTimer {
    /// Emits `SpanBegin` and starts the clock.
    pub fn begin<S: Sink>(sink: &mut S, name: &'static str, cycle: u64) -> SpanTimer {
        emit(sink, || Event::SpanBegin { name, cycle });
        SpanTimer {
            name,
            start: S::ENABLED.then(Instant::now),
        }
    }

    /// Emits `SpanEnd` with the elapsed wall-clock nanoseconds.
    pub fn end<S: Sink>(self, sink: &mut S, cycle: u64) {
        let wall_nanos = self
            .start
            .map(|t| t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64)
            .unwrap_or(0);
        emit(sink, || Event::SpanEnd {
            name: self.name,
            cycle,
            wall_nanos,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_timer_pairs_events() {
        let mut sink = RecordingSink::new();
        let span = SpanTimer::begin(&mut sink, "phase", 5);
        span.end(&mut sink, 10);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            Event::SpanBegin {
                name: "phase",
                cycle: 5
            }
        );
        match events[1] {
            Event::SpanEnd { name, cycle, .. } => {
                assert_eq!(name, "phase");
                assert_eq!(cycle, 10);
            }
            ref other => panic!("wrong event: {other:?}"),
        }
    }

    #[test]
    fn span_timer_is_silent_under_null_sink() {
        let mut sink = NullSink;
        let span = SpanTimer::begin(&mut sink, "phase", 0);
        assert!(span.start.is_none(), "no clock read when disabled");
        span.end(&mut sink, 1);
    }
}
