//! Threaded leader/checker engine: the OoO leader runs on the calling
//! thread, coupled to the in-order checker thread by a bounded SPSC
//! ring of per-cycle commit batches — the software analogue of the
//! paper's inter-die via bundle, with the ring capacity playing the
//! role of slack.
//!
//! Bit-identity with the serial engine holds by construction: the
//! checker thread replays, per leader cycle, exactly the tail of
//! [`RmtSystem::step`] (golden shadow update, queue pushes, DFS tick,
//! slack sampling, fractional trailer stepping) in the same order on
//! the same state. The leader's only coupling input is the commit
//! back-pressure decision `can_accept(4)`, which it evaluates against
//! a *conservative* occupancy: its own cumulative push counts minus
//! the checker's last published release counts. Stale release counts
//! only overestimate occupancy, so a conservative "accept" is always
//! correct; whenever the conservative check would stall, the leader
//! first waits for the checker to drain the ring and re-evaluates
//! exactly — making every stall decision identical to the serial
//! schedule.
//!
//! The engine is only entered for fault-free monomorphized runs
//! (`NullSink`, no injector, never touched by a directed campaign), so
//! recovery — which needs leader and checker state at once — can never
//! trigger; a failed verification here is a simulator bug and panics.

use super::{golden_update, RmtSystem};
use crate::queues::QueueConfig;
use rmt3d_cpu::{CheckOutcome, CommittedOp};
use rmt3d_telemetry::NullSink;
use rmt3d_workload::OpClass;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Execution engine for [`RmtSystem::run_instructions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Single-threaded reference engine.
    Serial,
    /// Force the threaded leader/checker split even on one CPU
    /// (useful for testing; correct but slow there).
    Threaded,
    /// Threaded when the run is eligible and more than one CPU is
    /// available; serial otherwise.
    #[default]
    Auto,
}

/// Widest leader commit the batch slots can carry.
pub(crate) const MAX_COMMIT: usize = 8;

/// Slack-ring capacity in leader cycles. At IPC ~2 this comfortably
/// covers the 200-instruction RVQ slack, so the ring itself is never
/// the binding back-pressure in the paper configuration.
const RING: usize = 256;

/// One leader cycle's worth of committed ops.
#[derive(Clone, Copy)]
struct CycleBatch {
    n: u8,
    items: [CommittedOp; MAX_COMMIT],
}

const EMPTY_BATCH: CycleBatch = CycleBatch {
    n: 0,
    items: [CommittedOp::EMPTY; MAX_COMMIT],
};

/// Logical-queue index order used by the release counters.
const RVQ: usize = 0;

/// SPSC ring + release ledger coupling the two threads.
///
/// `head` counts batches pushed by the leader, `tail` batches fully
/// processed by the checker (both cumulative, never wrapped; slot =
/// count % RING). `released[q]` is the cumulative number of entries
/// the trailer has freed from logical queue `q`, published after each
/// batch with Release ordering *before* `tail`, so a leader that
/// observes `tail == head` reads exact release counts.
struct SlackRing {
    slots: Box<[UnsafeCell<CycleBatch>]>,
    head: AtomicU64,
    tail: AtomicU64,
    done: AtomicBool,
    released: [AtomicU64; 4],
}

// SAFETY: the only aliased interior mutability is `slots`, and the
// head/tail protocol below guarantees a slot is never read and written
// concurrently: the leader writes slot `h % RING` only while
// `h - tail < RING` (checker is past it) and publishes with a Release
// store of `head`; the checker reads slot `t % RING` only after an
// Acquire load observes `head > t`.
unsafe impl Sync for SlackRing {}

impl SlackRing {
    fn new() -> SlackRing {
        let slots: Vec<UnsafeCell<CycleBatch>> =
            (0..RING).map(|_| UnsafeCell::new(EMPTY_BATCH)).collect();
        SlackRing {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            done: AtomicBool::new(false),
            released: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// Release-counter slot for op kinds with a dedicated logical queue.
#[inline]
fn kind_slot(kind: OpClass) -> Option<usize> {
    match kind {
        OpClass::Load => Some(1),
        OpClass::Branch => Some(2),
        OpClass::Store => Some(3),
        _ => None,
    }
}

/// Mirror of [`IntercoreQueues::can_accept`] with headroom 4 over the
/// conservative occupancies `pushed - released`.
///
/// [`IntercoreQueues::can_accept`]: crate::queues::IntercoreQueues::can_accept
#[inline]
fn can_accept(pushed: &[u64; 4], ring: &SlackRing, caps: QueueConfig) -> bool {
    const HEADROOM: u64 = 4;
    let occ = |i: usize| pushed[i] - ring.released[i].load(Ordering::Acquire);
    occ(0) + HEADROOM <= caps.rvq as u64
        && occ(1) + HEADROOM <= caps.lvq as u64
        && occ(2) + HEADROOM <= caps.boq as u64
        && occ(3) + HEADROOM <= caps.stb as u64
}

impl RmtSystem<NullSink> {
    /// Threaded twin of the serial `run_instructions` loop. Caller
    /// ([`RmtSystem::run_instructions`]) has already checked
    /// eligibility: no telemetry, no injector, untainted state, and
    /// `commit_width <= MAX_COMMIT`.
    pub(crate) fn run_instructions_threaded(&mut self, n: u64) {
        let RmtSystem {
            leader,
            trailer,
            queues,
            dfs,
            accum,
            golden,
            stats,
            commit_buf,
            verify_buf,
            ..
        } = self;

        debug_assert!(leader.config().commit_width as usize <= MAX_COMMIT);
        let caps = queues.config();
        let occ0 = queues.occupancy();
        // Cumulative push counts seeded with whatever was already
        // queued (warmup may have run serially), so `pushed - released`
        // is an occupancy from the first cycle on.
        let base = [
            occ0.rvq as u64,
            occ0.lvq as u64,
            occ0.boq as u64,
            occ0.stb as u64,
        ];
        let ring = SlackRing::new();
        let ring = &ring;

        std::thread::scope(|scope| {
            let checker = scope.spawn(move || {
                let mut cpushed = base;
                let mut t: u64 = 0;
                loop {
                    if ring.head.load(Ordering::Acquire) == t {
                        // `done` is stored after the final `head`
                        // bump, so seeing it (Acquire) and then a
                        // still-equal head means the stream has ended.
                        if ring.done.load(Ordering::Acquire)
                            && ring.head.load(Ordering::Acquire) == t
                        {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    }
                    // SAFETY: head > t (Acquire), so the leader fully
                    // wrote this slot and will not touch it again
                    // until tail passes t.
                    let batch = unsafe { &*ring.slots[(t % RING as u64) as usize].get() };
                    for item in &batch.items[..batch.n as usize] {
                        golden_update(golden, item);
                        cpushed[RVQ] += 1;
                        if let Some(s) = kind_slot(item.op.kind) {
                            cpushed[s] += 1;
                        }
                        queues.push(*item);
                    }
                    dfs.tick(queues.rvq_fill());
                    stats.slack_sum += queues.occupancy().rvq as u64;
                    stats.slack_samples += 1;
                    *accum += dfs.current().fraction();
                    while *accum >= 1.0 {
                        *accum -= 1.0;
                        verify_buf.clear();
                        trailer.step_cycle(queues.stream_mut(), verify_buf);
                        for v in verify_buf.drain(..) {
                            queues.on_trailer_consumed(v.kind);
                            assert!(
                                v.outcome == CheckOutcome::Ok,
                                "verification failed in a fault-free threaded run (seq {})",
                                v.seq
                            );
                            stats.verified_ok += 1;
                        }
                    }
                    // Publish exact cumulative releases (pushes minus
                    // live occupancy), then retire the batch. Release
                    // ordering makes both visible to a leader that
                    // sees the new tail.
                    let occ = queues.occupancy();
                    let live = [
                        occ.rvq as u64,
                        occ.lvq as u64,
                        occ.boq as u64,
                        occ.stb as u64,
                    ];
                    for i in 0..4 {
                        ring.released[i].store(cpushed[i] - live[i], Ordering::Release);
                    }
                    t += 1;
                    ring.tail.store(t, Ordering::Release);
                }
            });

            let mut pushed = base;
            let mut h: u64 = 0;
            let start = leader.activity().committed;
            while leader.activity().committed - start < n {
                let mut can = can_accept(&pushed, ring, caps);
                if !can {
                    // Conservative stall: never charge it without an
                    // exact verdict, or the schedule would diverge
                    // from the serial engine.
                    while ring.tail.load(Ordering::Acquire) != h {
                        std::thread::yield_now();
                    }
                    can = can_accept(&pushed, ring, caps);
                }
                leader.set_commit_stall(!can);
                commit_buf.clear();
                leader.step_cycle(commit_buf);
                for item in commit_buf.iter() {
                    pushed[RVQ] += 1;
                    if let Some(s) = kind_slot(item.op.kind) {
                        pushed[s] += 1;
                    }
                }
                while h - ring.tail.load(Ordering::Acquire) >= RING as u64 {
                    std::thread::yield_now();
                }
                // SAFETY: tail > h - RING, so the checker is done with
                // this slot; head is still h, so it is not reading it.
                unsafe {
                    let slot = &mut *ring.slots[(h % RING as u64) as usize].get();
                    slot.n = commit_buf.len() as u8;
                    slot.items[..commit_buf.len()].copy_from_slice(commit_buf);
                }
                h += 1;
                ring.head.store(h, Ordering::Release);
            }
            ring.done.store(true, Ordering::Release);
            checker.join().expect("checker thread panicked");
        });
    }
}
