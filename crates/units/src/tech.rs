//! Process technology nodes.

use std::fmt;
use std::str::FromStr;

/// A CMOS process technology node.
///
/// The paper's heterogeneity study (§4) maps the checker die between
/// nodes: the leading die is 65 nm, and the checker die may use an older
/// (90 nm) or newer (45 nm) process. Tables 6-8 cover 32-180 nm.
///
/// # Examples
///
/// ```
/// use rmt3d_units::TechNode;
///
/// assert!(TechNode::N90.is_older_than(TechNode::N65));
/// assert_eq!(TechNode::N90.feature_nm(), 90.0);
/// assert_eq!("65".parse::<TechNode>().unwrap(), TechNode::N65);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TechNode {
    /// 180 nm (SER scaling reference point, Fig. 8).
    N180,
    /// 130 nm.
    N130,
    /// 90 nm (the "older process" of the heterogeneity study).
    N90,
    /// 80 nm (Table 6 variability row).
    N80,
    /// 65 nm (the paper's baseline node: 2 GHz, 1 V).
    N65,
    /// 45 nm.
    N45,
    /// 32 nm (Table 6 variability row).
    N32,
}

impl TechNode {
    /// All nodes, newest last.
    pub const ALL: [TechNode; 7] = [
        TechNode::N180,
        TechNode::N130,
        TechNode::N90,
        TechNode::N80,
        TechNode::N65,
        TechNode::N45,
        TechNode::N32,
    ];

    /// The feature size in nanometres.
    #[inline]
    pub fn feature_nm(self) -> f64 {
        match self {
            TechNode::N180 => 180.0,
            TechNode::N130 => 130.0,
            TechNode::N90 => 90.0,
            TechNode::N80 => 80.0,
            TechNode::N65 => 65.0,
            TechNode::N45 => 45.0,
            TechNode::N32 => 32.0,
        }
    }

    /// True when `self` is an older (larger feature size) process than
    /// `other`.
    #[inline]
    pub fn is_older_than(self, other: TechNode) -> bool {
        self.feature_nm() > other.feature_nm()
    }

    /// Linear shrink factor from `self` to `to` (e.g. 90→65 is ~0.72).
    #[inline]
    pub fn linear_shrink_to(self, to: TechNode) -> f64 {
        to.feature_nm() / self.feature_nm()
    }

    /// Ideal area scaling factor from `self` to `to` (square of the
    /// linear shrink). Real designs scale less well; see
    /// `rmt3d-floorplan` for the non-ideal SRAM/logic factors.
    #[inline]
    pub fn ideal_area_shrink_to(self, to: TechNode) -> f64 {
        let s = self.linear_shrink_to(to);
        s * s
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} nm", self.feature_nm())
    }
}

/// Error returned when parsing an unknown technology node string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTechNodeError(String);

impl fmt::Display for ParseTechNodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown technology node `{}`", self.0)
    }
}

impl std::error::Error for ParseTechNodeError {}

impl FromStr for TechNode {
    type Err = ParseTechNodeError;

    /// Parses `"65"`, `"65nm"` or `"65 nm"` (case-insensitive).
    fn from_str(s: &str) -> Result<TechNode, ParseTechNodeError> {
        let t = s.trim().to_ascii_lowercase();
        let t = t.strip_suffix("nm").unwrap_or(&t).trim();
        match t {
            "180" => Ok(TechNode::N180),
            "130" => Ok(TechNode::N130),
            "90" => Ok(TechNode::N90),
            "80" => Ok(TechNode::N80),
            "65" => Ok(TechNode::N65),
            "45" => Ok(TechNode::N45),
            "32" => Ok(TechNode::N32),
            _ => Err(ParseTechNodeError(s.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_age() {
        assert!(TechNode::N90.is_older_than(TechNode::N65));
        assert!(!TechNode::N45.is_older_than(TechNode::N65));
        assert!(!TechNode::N65.is_older_than(TechNode::N65));
    }

    #[test]
    fn shrink_factors() {
        let s = TechNode::N90.linear_shrink_to(TechNode::N65);
        assert!((s - 65.0 / 90.0).abs() < 1e-12);
        let a = TechNode::N90.ideal_area_shrink_to(TechNode::N65);
        assert!((a - s * s).abs() < 1e-12);
        // Identity shrink.
        assert!((TechNode::N65.linear_shrink_to(TechNode::N65) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parse_variants() {
        assert_eq!("90".parse::<TechNode>().unwrap(), TechNode::N90);
        assert_eq!("90nm".parse::<TechNode>().unwrap(), TechNode::N90);
        assert_eq!(" 90 NM ".parse::<TechNode>().unwrap(), TechNode::N90);
        assert!("14".parse::<TechNode>().is_err());
        let err = "14".parse::<TechNode>().unwrap_err();
        assert!(err.to_string().contains("14"));
    }

    #[test]
    fn all_is_sorted_oldest_first() {
        for w in TechNode::ALL.windows(2) {
            assert!(w[0].feature_nm() > w[1].feature_nm());
        }
    }

    #[test]
    fn display() {
        assert_eq!(TechNode::N65.to_string(), "65 nm");
    }
}
