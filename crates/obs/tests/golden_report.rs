//! Golden-file pin for the HTML run dashboard.
//!
//! `render_html` is pure, so a fixed manifest + status + metrics input
//! must render byte-identical output forever. Any intentional change
//! to the dashboard is reviewed through this file's diff. Regenerate
//! with `RMT3D_BLESS=1 cargo test -p rmt3d-obs`.

use rmt3d_obs::metricsio::parse_metrics;
use rmt3d_obs::{render_html, render_html_with, DaemonSeries, Manifest, ReportOptions, RunStatus};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("RMT3D_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nregenerate with RMT3D_BLESS=1 cargo test -p rmt3d-obs",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "dashboard output drifted from {}; if intentional, regenerate \
         with RMT3D_BLESS=1 cargo test -p rmt3d-obs",
        path.display()
    );
}

/// A finished sweep with every dashboard section populated: executed,
/// cached, and failed jobs, pool/cache totals, one watchdog stall,
/// latency buckets, and both CPI stacks.
fn synthetic_status() -> RunStatus {
    RunStatus::from_json(concat!(
        r#"{"run_id":"sweep-20260808-120000-00c0ffee","kind":"sweep","state":"ok","#,
        r#""total":6,"done":6,"executed":4,"cache_hits":2,"failures":1,"#,
        r#""jobs":[{"job":0,"label":"2d-a/gzip","state":"done"},"#,
        r#"{"job":1,"label":"2d-a/mcf","state":"cached"},"#,
        r#"{"job":2,"label":"3d-2a/gzip","state":"done"},"#,
        r#"{"job":3,"label":"3d-2a/mcf","state":"failed"},"#,
        r#"{"job":4,"label":"3d-4a/swim","state":"done"},"#,
        r#"{"job":5,"label":"3d-4a/art","state":"cached"}],"#,
        r#""pool":{"workers":2,"executed":4,"cache_hits":2,"failed":1},"#,
        r#""cache":{"hits":2,"misses":4,"verify_failures":1,"entries":6,"bytes":34567},"#,
        r#""wall":{"updated_unix_ms":1786147260000,"elapsed_nanos":60000000000,"#,
        r#""eta_nanos":0,"steals":1,"busy_nanos":90000000000,"idle_nanos":30000000000,"#,
        r#""pool_wall_nanos":60000000000,"#,
        r#""jobs":[{"job":0,"start_nanos":0,"end_nanos":20000000000,"wall_nanos":20000000000},"#,
        r#"{"job":1,"start_nanos":100,"end_nanos":100,"wall_nanos":0},"#,
        r#"{"job":2,"start_nanos":0,"end_nanos":30000000000,"wall_nanos":30000000000},"#,
        r#"{"job":3,"start_nanos":20000000000,"end_nanos":25000000000,"wall_nanos":5000000000},"#,
        r#"{"job":4,"start_nanos":30000000000,"end_nanos":58000000000,"wall_nanos":28000000000},"#,
        r#"{"job":5,"start_nanos":200,"end_nanos":200,"wall_nanos":0}],"#,
        r#""stalls":[{"job":4,"label":"3d-4a/swim","elapsed_nanos":28000000000,"#,
        r#""median_nanos":5000000000}]}}"#,
    ))
    .expect("fixture status parses")
}

fn synthetic_manifest() -> Manifest {
    Manifest::from_json(concat!(
        r#"{"run_id":"sweep-20260808-120000-00c0ffee","kind":"sweep","#,
        r#""version":"rmt3d/0.1.0","spec_hash":"00000000c0ffee00","total_jobs":6,"#,
        r#""outcome":"ok","config":{"cache":"readwrite","workers":"2"},"#,
        r#""wall":{"started_unix_ms":1786147200000,"finished_unix_ms":1786147260000}}"#,
    ))
    .expect("fixture manifest parses")
}

const SYNTHETIC_METRICS: &str = concat!(
    r#"{"series":{"#,
    r#""cpi_checker_base":{"count":4,"min":0.5,"mean":0.55,"p50":0.55,"p99":0.6,"max":0.6},"#,
    r#""cpi_checker_recovery":{"count":4,"min":0.05,"mean":0.08,"p50":0.08,"p99":0.1,"max":0.1},"#,
    r#""cpi_leader_base":{"count":4,"min":0.8,"mean":0.85,"p50":0.85,"p99":0.9,"max":0.9},"#,
    r#""cpi_leader_mem":{"count":4,"min":0.3,"mean":0.4,"p50":0.4,"p99":0.5,"max":0.5},"#,
    r#""cpi_leader_rvq_full":{"count":4,"min":0.1,"mean":0.15,"p50":0.15,"p99":0.2,"max":0.2},"#,
    r#""ipc":{"count":4,"min":0.9,"mean":1.1,"p50":1.1,"p99":1.3,"max":1.3}},"#,
    r#""hist":{"job_wall_nanos":{"samples":4,"mean":20750000000.0,"#,
    r#""buckets":[[4294967296,8589934591,1],[17179869184,34359738367,3]]}}}"#,
);

#[test]
fn dashboard_html_matches_golden() {
    let metrics = parse_metrics(SYNTHETIC_METRICS).expect("fixture metrics parse");
    let html = render_html(&synthetic_manifest(), &synthetic_status(), Some(&metrics));
    assert_golden("report.html", &html);
}

#[test]
fn dashboard_without_metrics_matches_golden() {
    // A run killed before metrics.json was written still gets a report.
    let html = render_html(&synthetic_manifest(), &synthetic_status(), None);
    assert_golden("report-no-metrics.html", &html);
}

/// A short `daemon.metrics.jsonl` ring: rising then draining queue,
/// with the newest sample carrying the cumulative per-kind latency
/// histograms and one counted write failure.
const SYNTHETIC_RING: &str = concat!(
    r#"{"unix_ms":1786147200000,"queued":3,"running":0,"done":0,"failed":0,"#,
    r#""cancelled":0,"depth":3,"watchers":0,"connections":1,"cache_hits":0,"#,
    r#""cache_misses":0,"cache_evictions":0,"metrics_write_errors":0}"#,
    "\n",
    r#"{"unix_ms":1786147210000,"queued":1,"running":2,"done":0,"failed":0,"#,
    r#""cancelled":0,"depth":3,"watchers":2,"connections":2,"cache_hits":0,"#,
    r#""cache_misses":2,"cache_evictions":0,"metrics_write_errors":0}"#,
    "\n",
    r#"{"unix_ms":1786147230000,"queued":0,"running":1,"done":2,"failed":0,"#,
    r#""cancelled":0,"depth":1,"watchers":2,"connections":2,"cache_hits":1,"#,
    r#""cache_misses":2,"cache_evictions":0,"metrics_write_errors":0}"#,
    "\n",
    r#"{"unix_ms":1786147260000,"queued":0,"running":0,"done":3,"failed":1,"#,
    r#""cancelled":1,"depth":0,"watchers":1,"connections":1,"cache_hits":2,"#,
    r#""cache_misses":3,"cache_evictions":1,"metrics_write_errors":1,"#,
    r#""metrics":{"series":{"daemon_queue_depth":"#,
    r#"{"count":4,"min":0.0,"mean":1.75,"p50":1.0,"p99":3.0,"max":3.0}},"#,
    r#""hist":{"daemon_exec_ms_sweep":{"samples":3,"mean":5200.0,"#,
    r#""buckets":[[4096,8191,3]]},"daemon_queue_wait_ms_sweep":"#,
    r#"{"samples":3,"mean":140.0,"buckets":[[64,127,1],[128,255,2]]}}}}"#,
    "\n",
);

#[test]
fn dashboard_with_daemon_panel_matches_golden() {
    let metrics = parse_metrics(SYNTHETIC_METRICS).expect("fixture metrics parse");
    let series = DaemonSeries::parse(SYNTHETIC_RING);
    assert_eq!(series.samples.len(), 4);
    let html = render_html_with(
        &synthetic_manifest(),
        &synthetic_status(),
        Some(&metrics),
        &ReportOptions {
            daemon: Some(&series),
            refresh_secs: Some(5),
        },
    );
    assert_golden("report-daemon.html", &html);
}
