//! The paper's evaluation, experiment by experiment.
//!
//! Each submodule regenerates one table or figure; `EXPERIMENTS.md` maps
//! them to the paper and records paper-vs-measured values.

pub mod dfs_ablation;
pub mod dtm;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod hard_error;
pub mod heterogeneous;
pub mod interconnect;
pub mod interrupts;
pub mod iso_thermal;
pub mod leakage_feedback;
pub mod margins;
pub mod resilience;
pub mod rmt_summary;
pub mod shared_cache;
pub mod tables;
pub mod tmr_study;
