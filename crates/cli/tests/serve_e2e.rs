//! End-to-end service flow through the real binary: a `serve` daemon
//! child accepts `submit --wait` jobs (cold run executes, identical
//! warm run is served from cache byte-identically), `jobs` prints
//! strict JSON, `status --follow` waits for the server-registered run
//! instead of failing, and `shutdown` drains the daemon cleanly.

use rmt3d_telemetry::json::{parse, JsonValue};
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn rmt3d(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rmt3d"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rmt3d-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

/// A daemon child bound to an ephemeral port; the address comes from
/// its startup banner so parallel tests never collide.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(root: &Path) -> Daemon {
        let state = root.join("state");
        let cache = root.join("cache");
        let runs = root.join("runs");
        let mut child = Command::new(env!("CARGO_BIN_EXE_rmt3d"))
            .args([
                "serve",
                "--listen",
                "127.0.0.1:0",
                "--state-dir",
                state.to_str().unwrap(),
                "--out-dir",
                cache.to_str().unwrap(),
                "--runs-root",
                runs.to_str().unwrap(),
                "--jobs",
                "2",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("daemon spawns");
        let mut reader = BufReader::new(child.stderr.take().expect("stderr piped"));
        let mut addr = None;
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            if let Some(rest) = line.trim().strip_prefix("serve: listening on ") {
                addr = rest.split(',').next().map(str::to_string);
                break;
            }
            line.clear();
        }
        // Keep draining so daemon chatter never backs up the pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            let _ = reader.read_to_string(&mut sink);
        });
        Daemon {
            child,
            addr: addr.expect("daemon announced its address"),
        }
    }

    fn stop(mut self) {
        let out = rmt3d(&["shutdown", "--addr", &self.addr]);
        assert!(out.status.success(), "shutdown failed: {out:?}");
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            match self.child.try_wait().expect("daemon waitable") {
                Some(status) => {
                    assert!(status.success(), "daemon exited {status}");
                    return;
                }
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    panic!("daemon did not drain within the deadline");
                }
                None => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
}

fn submit_wait(addr: &str) -> Output {
    rmt3d(&[
        "submit",
        "--addr",
        addr,
        "--models",
        "2d-a",
        "--benchmarks",
        "gzip,mcf",
        "--instructions",
        "15000",
        "--wait",
        "--quiet",
    ])
}

#[test]
fn cold_and_warm_submits_are_byte_identical_and_jobs_is_strict_json() {
    let root = tmp("lifecycle");
    let daemon = Daemon::start(&root);

    let cold = submit_wait(&daemon.addr);
    assert!(cold.status.success(), "cold submit failed: {cold:?}");
    let cold_text = stdout(&cold);
    assert!(
        cold_text.contains("2d-a/gzip"),
        "results on stdout: {cold_text}"
    );
    assert!(cold_text.contains("2d-a/mcf"));

    let warm = submit_wait(&daemon.addr);
    assert!(warm.status.success(), "warm submit failed: {warm:?}");
    assert_eq!(
        cold.stdout, warm.stdout,
        "cache-served rerun must be byte-identical"
    );

    // `jobs` is one strict-JSON line; the warm job ran entirely from
    // the shared store.
    let jobs = rmt3d(&["jobs", "--addr", &daemon.addr]);
    assert!(jobs.status.success(), "jobs failed: {jobs:?}");
    let listing = parse(stdout(&jobs).trim()).expect("jobs output is strict JSON");
    let Some(JsonValue::Arr(rows)) = listing.get("jobs") else {
        panic!("jobs listing has a jobs array");
    };
    assert_eq!(rows.len(), 2);
    let field = |row: &JsonValue, key: &str| row.get(key).and_then(JsonValue::as_u64).unwrap();
    let by_id = |id: &str| {
        rows.iter()
            .find(|r| r.get("job").and_then(JsonValue::as_str) == Some(id))
            .cloned()
            .expect("listed job")
    };
    let first = by_id("job-000001");
    assert_eq!(first.get("state").and_then(JsonValue::as_str), Some("done"));
    assert_eq!(field(&first, "executed"), 2);
    let second = by_id("job-000002");
    assert_eq!(field(&second, "executed"), 0);
    assert_eq!(field(&second, "cache_hits"), 2);

    daemon.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn status_follow_waits_for_the_server_registered_run() {
    let root = tmp("follow");
    let daemon = Daemon::start(&root);
    let runs = root.join("runs");

    // Start following before any run exists: the fixed `--follow` path
    // waits for the daemon to register one instead of failing.
    let mut follow = Command::new(env!("CARGO_BIN_EXE_rmt3d"))
        .args(["status", "--follow", "--runs-root", runs.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("status spawns");

    let job = submit_wait(&daemon.addr);
    assert!(job.status.success(), "submit failed: {job:?}");

    let deadline = Instant::now() + Duration::from_secs(120);
    let status = loop {
        match follow.try_wait().expect("status waitable") {
            Some(status) => break status,
            None if Instant::now() > deadline => {
                let _ = follow.kill();
                panic!("status --follow never saw the run finish");
            }
            None => std::thread::sleep(Duration::from_millis(100)),
        }
    };
    assert!(status.success(), "status --follow exited {status}");
    let mut text = String::new();
    follow
        .stdout
        .take()
        .expect("stdout piped")
        .read_to_string(&mut text)
        .expect("status output is utf-8");
    assert!(text.contains("sweep"), "final frame names the run: {text}");
    let mut err = String::new();
    follow
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut err)
        .expect("status stderr is utf-8");
    assert!(
        err.contains("waiting for the run"),
        "follow announced the wait: {err}"
    );

    daemon.stop();
    let _ = std::fs::remove_dir_all(&root);
}
