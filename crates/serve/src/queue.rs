//! Persistent on-disk job queue.
//!
//! State lives in one append-only journal, `journal.jsonl`, inside the
//! daemon's state directory: every lifecycle transition (`submitted`,
//! `started`, `finished`, `cancelled`, `cancel_requested`) is one JSON
//! line, written and flushed before the transition is acknowledged. A
//! restarted daemon replays the journal to rebuild the queue: jobs
//! that were queued — or running when the daemon died — come back as
//! queued (the content-addressed result cache makes re-running a
//! partially-finished sweep cheap), terminal jobs come back as
//! history, and corrupt or truncated journal lines are skipped rather
//! than fatal, mirroring the result store's corruption tolerance.
//!
//! Scheduling is strict priority order (larger first), FIFO within a
//! priority. Submissions dedup against live (queued or running) jobs
//! by spec hash: two clients asking for the same work share one job.
//! Terminal jobs do *not* dedup — re-submitting finished work is how a
//! client gets an all-cache-hit re-run.

use crate::payload::JobPayload;
use crate::proto::json_str;
use rmt3d_obs::ledger::unix_now_ms;
use rmt3d_telemetry::json::{parse, JsonObject, JsonValue};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Journal file name inside the daemon state directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for the scheduler.
    Queued,
    /// Executing on the pool.
    Running,
    /// Finished with no failures.
    Done,
    /// Finished with failed pool items (or campaign violations).
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
}

impl JobState {
    /// The wire/journal name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// True once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Aggregate counts of a finished job's pool items.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobOutcome {
    /// Items that simulated.
    pub executed: u64,
    /// Items served from the result cache.
    pub cache_hits: u64,
    /// Items that failed (panics, violations, cancelled items).
    pub failures: u64,
}

/// One job in the queue.
#[derive(Debug, Clone)]
pub struct JobEntry {
    /// Stable id (`job-NNNNNN`), assigned at submission.
    pub id: String,
    /// Monotonic submission sequence; the FIFO tie-breaker.
    pub seq: u64,
    /// Parsed, validated payload.
    pub payload: JobPayload,
    /// Normalized spec object text (as journaled).
    pub spec_json: String,
    /// Content hash used for dedup and the run ledger.
    pub spec_hash: u64,
    /// Larger runs earlier.
    pub priority: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Submission wall-clock stamp.
    pub submitted_unix_ms: u64,
    /// Ledger run id, once execution registered one.
    pub run_id: Option<String>,
    /// Pool item counts, once finished.
    pub outcome: Option<JobOutcome>,
    /// First failure message, when failed.
    pub error: Option<String>,
    /// True when an in-flight cancellation was requested.
    pub cancel_requested: bool,
}

impl JobEntry {
    /// Renders the entry as one JSON object (the `jobs` listing row).
    /// Field order is fixed; hashes are 16-digit hex strings because a
    /// JSON number cannot hold a full u64 exactly.
    pub fn to_json(&self) -> String {
        let outcome = self.outcome.unwrap_or_default();
        let mut o = JsonObject::new();
        o.str("job", &self.id)
            .str("kind", self.payload.kind())
            .str("state", self.state.as_str())
            .u64("priority", self.priority)
            .str("spec_hash", &format!("{:016x}", self.spec_hash))
            .u64("total_jobs", self.payload.total_jobs())
            .u64("cache_hits", outcome.cache_hits)
            .u64("executed", outcome.executed)
            .u64("failures", outcome.failures)
            .u64("submitted_unix_ms", self.submitted_unix_ms)
            .str("run_id", self.run_id.as_deref().unwrap_or(""))
            .str("error", self.error.as_deref().unwrap_or(""))
            .raw("spec", &self.spec_json);
        o.finish()
    }
}

/// What a cancellation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cancelled {
    /// The job was still queued and is now terminally cancelled.
    Queued,
    /// The job is executing; the cooperative cancel flag is the
    /// caller's to raise, and the scheduler records the terminal state
    /// when the pool drains.
    InFlight,
}

/// The persistent priority queue.
#[derive(Debug)]
pub struct JobQueue {
    dir: PathBuf,
    journal: File,
    jobs: BTreeMap<u64, JobEntry>,
    next_seq: u64,
}

impl JobQueue {
    /// Opens (creating if necessary) a queue directory and replays its
    /// journal. Corrupt journal lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory or journal
    /// cannot be created.
    pub fn open(dir: &Path) -> io::Result<JobQueue> {
        fs::create_dir_all(dir)?;
        let path = dir.join(JOURNAL_FILE);
        let mut jobs: BTreeMap<u64, JobEntry> = BTreeMap::new();
        let mut next_seq = 1u64;
        if let Ok(text) = fs::read_to_string(&path) {
            for line in text.lines() {
                replay_line(line, &mut jobs, &mut next_seq);
            }
        }
        // Jobs that were running when the daemon died resume as queued.
        for entry in jobs.values_mut() {
            if entry.state == JobState::Running {
                entry.state = JobState::Queued;
            }
            if entry.cancel_requested && !entry.state.is_terminal() {
                // A requested cancellation that never journaled its
                // terminal transition resolves to cancelled on replay.
                entry.state = JobState::Cancelled;
            }
        }
        let journal = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(JobQueue {
            dir: dir.to_path_buf(),
            journal,
            jobs,
            next_seq,
        })
    }

    /// The directory backing this queue.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Enqueues a job, or returns the live job it duplicates.
    ///
    /// # Errors
    ///
    /// Returns the payload validation error, or the journal write
    /// error (a submission that cannot be persisted is not accepted).
    pub fn submit(
        &mut self,
        kind: &str,
        spec: &JsonValue,
        priority: u64,
    ) -> Result<(String, bool), String> {
        let payload = JobPayload::parse(kind, spec)?;
        let spec_hash = payload.spec_hash();
        if let Some(live) = self.jobs.values().find(|j| {
            !j.state.is_terminal() && j.spec_hash == spec_hash && j.payload.kind() == kind
        }) {
            return Ok((live.id.clone(), true));
        }
        let seq = self.next_seq;
        let id = format!("job-{seq:06}");
        let spec_json = payload.spec_json();
        let submitted_unix_ms = unix_now_ms();
        let mut o = JsonObject::new();
        o.str("event", "submitted")
            .str("job", &id)
            .u64("seq", seq)
            .str("kind", kind)
            .u64("priority", priority)
            .str("spec_hash", &format!("{spec_hash:016x}"))
            .u64("unix_ms", submitted_unix_ms)
            .raw("spec", &spec_json);
        self.append(&o.finish())
            .map_err(|e| format!("cannot journal submission: {e}"))?;
        self.next_seq = seq + 1;
        self.jobs.insert(
            seq,
            JobEntry {
                id: id.clone(),
                seq,
                payload,
                spec_json,
                spec_hash,
                priority,
                state: JobState::Queued,
                submitted_unix_ms,
                run_id: None,
                outcome: None,
                error: None,
                cancel_requested: false,
            },
        );
        Ok((id, false))
    }

    /// The next job to run: highest priority, then submission order.
    pub fn next_ready(&self) -> Option<u64> {
        self.jobs
            .values()
            .filter(|j| j.state == JobState::Queued)
            .max_by(|a, b| a.priority.cmp(&b.priority).then(b.seq.cmp(&a.seq)))
            .map(|j| j.seq)
    }

    /// Marks a queued job running (journaled best-effort).
    pub fn mark_started(&mut self, id: &str, run_id: Option<&str>) {
        let mut o = JsonObject::new();
        o.str("event", "started")
            .str("job", id)
            .str("run_id", run_id.unwrap_or(""))
            .u64("unix_ms", unix_now_ms());
        let line = o.finish();
        let _ = self.append(&line);
        if let Some(entry) = self.find_mut(id) {
            entry.state = JobState::Running;
            entry.run_id = run_id.map(str::to_string);
        }
    }

    /// Records a job's terminal state (journaled best-effort).
    pub fn mark_finished(
        &mut self,
        id: &str,
        state: JobState,
        outcome: JobOutcome,
        error: Option<&str>,
    ) {
        debug_assert!(state.is_terminal());
        let mut o = JsonObject::new();
        o.str("event", "finished")
            .str("job", id)
            .str("state", state.as_str())
            .u64("executed", outcome.executed)
            .u64("cache_hits", outcome.cache_hits)
            .u64("failures", outcome.failures)
            .str("error", error.unwrap_or(""))
            .u64("unix_ms", unix_now_ms());
        let line = o.finish();
        let _ = self.append(&line);
        if let Some(entry) = self.find_mut(id) {
            entry.state = state;
            entry.outcome = Some(outcome);
            entry.error = error.map(str::to_string);
        }
    }

    /// Cancels a job.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown id or an already-terminal job.
    pub fn cancel(&mut self, id: &str) -> Result<Cancelled, String> {
        let Some(entry) = self.find_mut(id) else {
            return Err(format!("unknown job {id:?}"));
        };
        match entry.state {
            JobState::Queued => {
                entry.state = JobState::Cancelled;
                let line = format!(
                    "{{\"event\":\"cancelled\",\"job\":{},\"unix_ms\":{}}}",
                    json_str(id),
                    unix_now_ms()
                );
                let _ = self.append(&line);
                Ok(Cancelled::Queued)
            }
            JobState::Running => {
                entry.cancel_requested = true;
                let line = format!(
                    "{{\"event\":\"cancel_requested\",\"job\":{},\"unix_ms\":{}}}",
                    json_str(id),
                    unix_now_ms()
                );
                let _ = self.append(&line);
                Ok(Cancelled::InFlight)
            }
            terminal => Err(format!("job {id} is already {}", terminal.as_str())),
        }
    }

    /// Looks a job up by id.
    pub fn get(&self, id: &str) -> Option<&JobEntry> {
        self.jobs.values().find(|j| j.id == id)
    }

    /// All jobs in submission order.
    pub fn iter(&self) -> impl Iterator<Item = &JobEntry> {
        self.jobs.values()
    }

    /// Jobs currently in `state`.
    pub fn count(&self, state: JobState) -> usize {
        self.jobs.values().filter(|j| j.state == state).count()
    }

    fn find_mut(&mut self, id: &str) -> Option<&mut JobEntry> {
        self.jobs.values_mut().find(|j| j.id == id)
    }

    fn append(&mut self, line: &str) -> io::Result<()> {
        self.journal.write_all(line.as_bytes())?;
        self.journal.write_all(b"\n")?;
        self.journal.flush()
    }
}

fn replay_line(line: &str, jobs: &mut BTreeMap<u64, JobEntry>, next_seq: &mut u64) {
    let line = line.trim();
    if line.is_empty() {
        return;
    }
    let Ok(v) = parse(line) else {
        return; // corrupt line: skip, never fatal
    };
    let event = v.get("event").and_then(JsonValue::as_str).unwrap_or("");
    let find = |jobs: &mut BTreeMap<u64, JobEntry>, v: &JsonValue| -> Option<u64> {
        let id = v.get("job").and_then(JsonValue::as_str)?;
        jobs.values().find(|j| j.id == id).map(|j| j.seq)
    };
    match event {
        "submitted" => {
            let fields = (
                v.get("job").and_then(JsonValue::as_str),
                v.get("seq").and_then(JsonValue::as_u64),
                v.get("kind").and_then(JsonValue::as_str),
                v.get("spec"),
            );
            let (Some(id), Some(seq), Some(kind), Some(spec)) = fields else {
                return;
            };
            let Ok(payload) = JobPayload::parse(kind, spec) else {
                return;
            };
            let spec_hash = v
                .get("spec_hash")
                .and_then(JsonValue::as_str)
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or_else(|| payload.spec_hash());
            let spec_json = payload.spec_json();
            jobs.insert(
                seq,
                JobEntry {
                    id: id.to_string(),
                    seq,
                    payload,
                    spec_json,
                    spec_hash,
                    priority: v.get("priority").and_then(JsonValue::as_u64).unwrap_or(0),
                    state: JobState::Queued,
                    submitted_unix_ms: v.get("unix_ms").and_then(JsonValue::as_u64).unwrap_or(0),
                    run_id: None,
                    outcome: None,
                    error: None,
                    cancel_requested: false,
                },
            );
            *next_seq = (*next_seq).max(seq + 1);
        }
        "started" => {
            if let Some(seq) = find(jobs, &v) {
                let entry = jobs.get_mut(&seq).expect("found above");
                entry.state = JobState::Running;
                entry.run_id = v
                    .get("run_id")
                    .and_then(JsonValue::as_str)
                    .filter(|r| !r.is_empty())
                    .map(str::to_string);
            }
        }
        "finished" => {
            if let Some(seq) = find(jobs, &v) {
                let entry = jobs.get_mut(&seq).expect("found above");
                entry.state = match v.get("state").and_then(JsonValue::as_str) {
                    Some("done") => JobState::Done,
                    Some("cancelled") => JobState::Cancelled,
                    _ => JobState::Failed,
                };
                entry.outcome = Some(JobOutcome {
                    executed: v.get("executed").and_then(JsonValue::as_u64).unwrap_or(0),
                    cache_hits: v.get("cache_hits").and_then(JsonValue::as_u64).unwrap_or(0),
                    failures: v.get("failures").and_then(JsonValue::as_u64).unwrap_or(0),
                });
                entry.error = v
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .filter(|e| !e.is_empty())
                    .map(str::to_string);
            }
        }
        "cancelled" => {
            if let Some(seq) = find(jobs, &v) {
                jobs.get_mut(&seq).expect("found above").state = JobState::Cancelled;
            }
        }
        "cancel_requested" => {
            if let Some(seq) = find(jobs, &v) {
                jobs.get_mut(&seq).expect("found above").cancel_requested = true;
            }
        }
        _ => {} // unknown event: forward-compatible skip
    }
}
