//! End-to-end daemon tests over real sockets: cold/warm cache
//! identity, protocol robustness, concurrent tenants, and
//! drain-then-resume. Each test binds port 0 and runs the daemon on a
//! background thread against its own temp state.

use rmt3d_serve::client;
use rmt3d_serve::{serve, ServeOptions};
use rmt3d_telemetry::json::{parse, JsonValue};
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rmt3d-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Daemon {
    addr: String,
    thread: JoinHandle<Result<(), String>>,
}

fn start(root: &Path, runs: bool) -> Daemon {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind port 0");
    let addr = listener.local_addr().unwrap().to_string();
    let opts = ServeOptions {
        state_dir: root.join("state"),
        cache_dir: root.join("cache"),
        workers: 2,
        cache_max_bytes: None,
        runs_root: runs.then(|| root.join("runs")),
        quiet: true,
    };
    let thread = thread::spawn(move || serve(listener, opts));
    Daemon { addr, thread }
}

impl Daemon {
    fn stop(self) {
        let _ = client::request(&self.addr, "{\"op\":\"shutdown\"}");
        self.thread
            .join()
            .expect("daemon thread")
            .expect("daemon exits cleanly");
    }
}

fn submit(addr: &str, spec: &str, priority: u64) -> String {
    let resp = client::request(addr, &client::submit_line("sweep", spec, priority))
        .expect("submit accepted");
    resp.get("job")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string()
}

/// Watches until the terminal line; returns the job's final state.
fn wait_done(addr: &str, job: &str) -> String {
    for event in client::watch(addr, job).expect("watch connects") {
        let v = event.expect("event parses");
        assert_ne!(
            v.get("ok").and_then(JsonValue::as_bool),
            Some(false),
            "watch errored: {v:?}"
        );
        if v.get("event").and_then(JsonValue::as_str) == Some("job_done") {
            return v
                .get("state")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string();
        }
    }
    panic!("watch stream for {job} ended without job_done");
}

fn job_row(addr: &str, job: &str) -> JsonValue {
    let resp = client::request(addr, "{\"op\":\"jobs\"}").expect("jobs listing");
    let JsonValue::Arr(jobs) = resp.get("jobs").cloned().unwrap() else {
        panic!("jobs is not an array");
    };
    jobs.into_iter()
        .find(|j| j.get("job").and_then(JsonValue::as_str) == Some(job))
        .unwrap_or_else(|| panic!("job {job} not listed"))
}

fn counts(row: &JsonValue) -> (u64, u64) {
    (
        row.get("executed").and_then(JsonValue::as_u64).unwrap(),
        row.get("cache_hits").and_then(JsonValue::as_u64).unwrap(),
    )
}

/// The per-item results payload of a finished sweep, as raw text —
/// identical text means identical cached bytes.
fn results_text(addr: &str, job: &str) -> String {
    let raw = client::request_raw(addr, &client::job_line("result", job)).expect("result");
    let start = raw.find("\"results\":").expect("results field");
    raw[start..].to_string()
}

const SPEC: &str = r#"{"models":["2d-a"],"benchmarks":["gzip","mcf"],"instructions":15000}"#;

#[test]
fn cold_submit_executes_warm_resubmit_is_all_cache_hits_byte_identical() {
    let root = tmp("warm");
    let daemon = start(&root, true);

    let cold = submit(&daemon.addr, SPEC, 0);
    assert_eq!(wait_done(&daemon.addr, cold.as_str()), "done");
    let (executed, hits) = counts(&job_row(&daemon.addr, &cold));
    assert_eq!((executed, hits), (2, 0), "cold run simulates everything");

    // Identical spec after completion: a fresh job, served entirely
    // from the shared store.
    let warm = submit(&daemon.addr, SPEC, 0);
    assert_ne!(warm, cold);
    assert_eq!(wait_done(&daemon.addr, warm.as_str()), "done");
    let (executed, hits) = counts(&job_row(&daemon.addr, &warm));
    assert_eq!((executed, hits), (0, 2), "warm run never simulates");

    assert_eq!(
        results_text(&daemon.addr, &cold),
        results_text(&daemon.addr, &warm),
        "cached results are byte-identical across tenants"
    );

    // The executed job registered in the run ledger.
    let run_id = job_row(&daemon.addr, &cold)
        .get("run_id")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();
    assert!(root
        .join("runs")
        .join(&run_id)
        .join("manifest.json")
        .exists());
    daemon.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn malformed_oversized_and_ill_typed_requests_never_kill_the_daemon() {
    let root = tmp("robust");
    let daemon = start(&root, false);

    // One persistent connection, a parade of abuse, structured errors
    // for every line — and the connection keeps serving afterwards.
    let mut stream = TcpStream::connect(&daemon.addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut roundtrip = |line: &str| -> JsonValue {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        parse(resp.trim_end()).expect("response is valid JSON")
    };
    let expect_error = |v: JsonValue| {
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(false));
        let msg = v.get("error").and_then(JsonValue::as_str).unwrap();
        assert!(!msg.is_empty());
    };
    expect_error(roundtrip("this is not json"));
    expect_error(roundtrip("{\"truncated\":"));
    expect_error(roundtrip("{\"op\":\"teleport\"}"));
    expect_error(roundtrip("{\"op\":42}"));
    expect_error(roundtrip("{\"op\":\"cancel\"}"));
    expect_error(roundtrip("{\"op\":\"watch\",\"job\":[]}"));
    expect_error(roundtrip("{\"op\":\"submit\",\"kind\":\"thermal\"}"));
    expect_error(roundtrip(
        "{\"op\":\"submit\",\"spec\":{\"models\":[\"warp\"]}}",
    ));
    expect_error(roundtrip("{\"op\":\"cancel\",\"job\":\"job-000042\"}"));
    let oversized = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(70 * 1024));
    expect_error(roundtrip(&oversized));
    let oversized_stats = format!("{{\"op\":\"stats\",\"pad\":\"{}\"}}", "x".repeat(70 * 1024));
    expect_error(roundtrip(&oversized_stats));
    // The reader resynchronized at the newline: same connection, sane
    // request, sane answer.
    let v = roundtrip("{\"op\":\"ping\"}");
    assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
    // `stats` on the abused connection: still one strict-JSON line
    // with the full gauge set (ill-typed extra fields are ignored).
    let v = roundtrip("{\"op\":\"stats\",\"job\":[42],\"depth\":\"nope\"}");
    assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
    for key in [
        "queued",
        "running",
        "done",
        "failed",
        "cancelled",
        "queue_depth",
        "watchers",
        "connections",
        "connections_total",
        "cache_hits",
        "cache_misses",
        "cache_evictions",
        "metrics_write_errors",
        "metrics",
    ] {
        assert!(v.get(key).is_some(), "stats response missing {key}");
    }

    // And the daemon still schedules real work afterwards.
    let job = submit(&daemon.addr, SPEC, 0);
    assert_eq!(wait_done(&daemon.addr, &job), "done");
    daemon.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stats_is_one_strict_json_line_under_concurrency_and_the_ring_survives_a_torn_tail() {
    let root = tmp("stats");
    let daemon = start(&root, false);

    // Hammer `stats` from several clients while a real job runs: every
    // answer is exactly one strict-JSON line, never a panic or a
    // truncated document.
    let job = submit(&daemon.addr, SPEC, 0);
    let hammers: Vec<_> = (0..4)
        .map(|_| {
            let addr = daemon.addr.clone();
            thread::spawn(move || {
                for _ in 0..25 {
                    let raw = client::request_raw(&addr, "{\"op\":\"stats\"}").expect("stats");
                    assert!(!raw.contains('\n'), "one line only");
                    let v = parse(&raw).expect("stats is strict JSON");
                    assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
                    let queued = v.get("queued").and_then(JsonValue::as_u64).unwrap();
                    let running = v.get("running").and_then(JsonValue::as_u64).unwrap();
                    let depth = v.get("queue_depth").and_then(JsonValue::as_u64).unwrap();
                    assert_eq!(depth, queued + running, "depth is queued + running");
                }
            })
        })
        .collect();
    assert_eq!(wait_done(&daemon.addr, &job), "done");
    for h in hammers {
        h.join().expect("stats hammer thread");
    }

    // After an executed job the cumulative metrics document carries
    // the per-kind latency histograms.
    let v = client::request(&daemon.addr, "{\"op\":\"stats\"}").expect("stats");
    assert_eq!(v.get("done").and_then(JsonValue::as_u64), Some(1));
    let exec_hist = v
        .get("metrics")
        .and_then(|m| m.get("hist"))
        .and_then(|h| h.get("daemon_exec_ms_sweep"))
        .expect("execution latency histogram present");
    assert!(exec_hist.get("samples").and_then(JsonValue::as_u64) >= Some(1));
    assert!(v
        .get("metrics")
        .and_then(|m| m.get("hist"))
        .and_then(|h| h.get("daemon_queue_wait_ms_sweep"))
        .is_some());
    daemon.stop();

    // The time-series ring persisted valid samples, and the newest one
    // agrees with the final stats answer.
    let ring_path = root.join("state").join(rmt3d_serve::METRICS_RING_FILE);
    let text = std::fs::read_to_string(&ring_path).expect("ring file written");
    let series = rmt3d_obs::DaemonSeries::parse(&text);
    assert!(!series.is_empty(), "ring holds samples");
    assert_eq!(series.latest().unwrap().done, 1);

    // Tear the tail (a SIGKILL mid-append) and add garbage: a
    // restarted daemon replays past both without panicking or
    // inventing data, and keeps appending.
    let torn = format!("{text}garbage line\n{{\"unix_ms\":12,\"queued\":");
    std::fs::write(&ring_path, &torn).expect("tear the ring tail");
    let daemon = start(&root, false);
    let job2 = submit(
        &daemon.addr,
        r#"{"models":["2d-2a"],"benchmarks":["gzip"],"instructions":15000}"#,
        0,
    );
    assert_eq!(wait_done(&daemon.addr, &job2), "done");
    daemon.stop();
    let after = std::fs::read_to_string(&ring_path).expect("ring file survives");
    let series = rmt3d_obs::DaemonSeries::parse(&after);
    // The journal replays the first job on restart, so the newest
    // sample counts both; the torn record (unix_ms 12) never became a
    // sample with data invented for its missing fields.
    assert_eq!(series.latest().unwrap().done, 2);
    assert!(series.samples.iter().all(|s| s.unix_ms != 12));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn watcher_disconnect_mid_stream_does_not_stall_the_queue() {
    let root = tmp("disconnect");
    let daemon = start(&root, false);

    let first = submit(&daemon.addr, SPEC, 0);
    let second = submit(
        &daemon.addr,
        r#"{"models":["2d-2a"],"benchmarks":["gzip"],"instructions":15000}"#,
        0,
    );
    {
        // Subscribe to the first job, read the acknowledgement, then
        // vanish without reading the stream.
        let mut stream = TcpStream::connect(&daemon.addr).unwrap();
        stream
            .write_all(format!("{}\n", client::job_line("watch", &first)).as_bytes())
            .unwrap();
        let mut reader = BufReader::new(stream);
        let mut ack = String::new();
        reader.read_line(&mut ack).unwrap();
        assert!(ack.contains(&first), "ack names the job: {ack}");
        // Dropped here, mid-stream.
    }
    // Both jobs still run to completion: the dead subscriber was
    // pruned on its first failed send.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let s1 = job_row(&daemon.addr, &first);
        let s2 = job_row(&daemon.addr, &second);
        let done = |v: &JsonValue| v.get("state").and_then(JsonValue::as_str) == Some("done");
        if done(&s1) && done(&s2) {
            break;
        }
        assert!(Instant::now() < deadline, "queue stalled after disconnect");
        thread::sleep(Duration::from_millis(100));
    }
    daemon.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn concurrent_tenants_with_overlapping_specs_share_the_store() {
    let root = tmp("tenants");
    let daemon = start(&root, false);

    // Two clients, overlapping on mcf. Jobs execute one at a time, so
    // whichever sweep runs second gets its overlap from the cache.
    let addr_a = daemon.addr.clone();
    let addr_b = daemon.addr.clone();
    let a = thread::spawn(move || {
        let job = submit(
            &addr_a,
            r#"{"models":["2d-a"],"benchmarks":["gzip","mcf"],"instructions":15000}"#,
            0,
        );
        assert_eq!(wait_done(&addr_a, &job), "done");
        job
    });
    let b = thread::spawn(move || {
        let job = submit(
            &addr_b,
            r#"{"models":["2d-a"],"benchmarks":["mcf","vpr"],"instructions":15000}"#,
            0,
        );
        assert_eq!(wait_done(&addr_b, &job), "done");
        job
    });
    let job_a = a.join().unwrap();
    let job_b = b.join().unwrap();

    let (exec_a, hits_a) = counts(&job_row(&daemon.addr, &job_a));
    let (exec_b, hits_b) = counts(&job_row(&daemon.addr, &job_b));
    assert_eq!(exec_a + hits_a, 2);
    assert_eq!(exec_b + hits_b, 2);
    // Three distinct (model, benchmark) points; the shared mcf entry
    // simulated exactly once.
    assert_eq!(exec_a + exec_b, 3, "overlap deduplicated by the store");
    assert_eq!(hits_a + hits_b, 1);

    // Both tenants read back the shared mcf result identically.
    let text_a = results_text(&daemon.addr, &job_a);
    let text_b = results_text(&daemon.addr, &job_b);
    let mcf = |text: &str| -> String {
        // `text` is the `"results":…]}` tail of the response line, so
        // prepending a brace reconstitutes a complete object.
        let v = parse(&format!("{{{text}")).expect("results parse");
        let JsonValue::Arr(items) = v.get("results").cloned().unwrap() else {
            panic!("no results array");
        };
        items
            .iter()
            .find(|i| i.get("label").and_then(JsonValue::as_str) == Some("2d-a/mcf"))
            .and_then(|i| {
                i.get("encoded")
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
            })
            .expect("mcf entry present")
    };
    assert_eq!(mcf(&text_a), mcf(&text_b));
    assert!(!mcf(&text_a).is_empty());
    daemon.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn shutdown_drains_in_flight_and_a_restart_resumes_the_queue() {
    let root = tmp("resume");
    let daemon = start(&root, false);

    // A heavyweight job to hold the scheduler, then two queued behind
    // it. The instruction count must keep the job in flight long
    // enough for the poll below to observe it `running` — too small
    // and it races straight to `done` on a fast simulator.
    let big = submit(
        &daemon.addr,
        r#"{"models":["2d-a","3d-2a"],"benchmarks":["gzip"],"instructions":1200000}"#,
        0,
    );
    let queued_hi = submit(
        &daemon.addr,
        r#"{"models":["2d-2a"],"benchmarks":["gzip"],"instructions":15000}"#,
        2,
    );
    let queued_lo = submit(
        &daemon.addr,
        r#"{"models":["3d-checker"],"benchmarks":["gzip"],"instructions":15000}"#,
        1,
    );
    // Don't race the scheduler: only shut down once the big job is
    // actually in flight, so the drain has something to drain. A job
    // that reaches `done` before we ever saw it `running` fails fast —
    // the drain below would be vacuous.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let state = job_row(&daemon.addr, &big)
            .get("state")
            .and_then(JsonValue::as_str)
            .map(str::to_string);
        match state.as_deref() {
            Some("running") => break,
            Some("done") => panic!("big job finished before shutdown could catch it in flight"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "big job never started");
        thread::sleep(Duration::from_millis(2));
    }
    let resp = client::request(&daemon.addr, "{\"op\":\"shutdown\"}").unwrap();
    assert_eq!(
        resp.get("state").and_then(JsonValue::as_str),
        Some("draining")
    );
    // New submissions are refused while draining.
    assert!(client::request(&daemon.addr, &client::submit_line("sweep", SPEC, 0)).is_err());
    daemon.thread.join().unwrap().unwrap();

    // Restart on a fresh port, same state dir: the in-flight job is
    // done (drained, not killed), the queued two come back and run in
    // priority order.
    let daemon = start(&root, false);
    let big_state = job_row(&daemon.addr, &big)
        .get("state")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();
    assert_eq!(big_state, "done", "shutdown drained the in-flight job");
    assert_eq!(wait_done(&daemon.addr, &queued_lo), "done");
    let (hi_exec, _) = counts(&job_row(&daemon.addr, &queued_hi));
    assert_eq!(
        job_row(&daemon.addr, &queued_hi)
            .get("state")
            .and_then(JsonValue::as_str),
        Some("done"),
        "higher priority job ran before the lower one we waited on"
    );
    assert_eq!(hi_exec, 1);
    daemon.stop();
    let _ = std::fs::remove_dir_all(&root);
}
