//! End-to-end integration: trace synthesis → cycle-level co-simulation →
//! power map → thermal solve, across every processor model.

use rmt3d::power::CheckerPowerModel;
use rmt3d::thermal::{solve, ThermalConfig};
use rmt3d::{build_power_map, simulate, PowerMapConfig, ProcessorModel, RunScale, SimConfig};
use rmt3d_workload::Benchmark;

fn scale() -> RunScale {
    RunScale::quick()
}

#[test]
fn every_model_simulates_and_solves() {
    for model in ProcessorModel::ALL {
        let perf = simulate(&SimConfig::nominal(model, scale()), Benchmark::Vpr);
        assert!(perf.ipc() > 0.1, "{model} IPC {}", perf.ipc());
        let chip = build_power_map(
            &perf,
            &PowerMapConfig::with_checker(CheckerPowerModel::optimistic_7w()),
        );
        assert!(chip.total().0 > 20.0, "{model} power {}", chip.total());
        let r = solve(&model.floorplan(), &chip.map, &ThermalConfig::fast())
            .unwrap_or_else(|e| panic!("{model}: {e}"));
        let peak = r.peak().0;
        assert!(
            (50.0..130.0).contains(&peak),
            "{model} peak temperature {peak}"
        );
    }
}

#[test]
fn power_follows_activity_across_benchmarks() {
    // A high-IPC program must draw more power and run hotter than a
    // memory-bound one on the same chip.
    let cfg = SimConfig::nominal(ProcessorModel::TwoDA, scale());
    let busy = simulate(&cfg, Benchmark::Eon);
    let idle = simulate(&cfg, Benchmark::Mcf);
    let pm = PowerMapConfig::with_checker(CheckerPowerModel::optimistic_7w());
    let p_busy = build_power_map(&busy, &pm);
    let p_idle = build_power_map(&idle, &pm);
    assert!(
        p_busy.leader.0 > p_idle.leader.0 + 5.0,
        "eon {} vs mcf {}",
        p_busy.leader,
        p_idle.leader
    );
    let t_cfg = ThermalConfig::fast();
    let plan = ProcessorModel::TwoDA.floorplan();
    let t_busy = solve(&plan, &p_busy.map, &t_cfg).expect("solve busy");
    let t_idle = solve(&plan, &p_idle.map, &t_cfg).expect("solve idle");
    assert!(t_busy.peak() > t_idle.peak());
}

#[test]
fn checker_slack_and_frequency_are_consistent() {
    // The DFS mean frequency must be sufficient for the checker to have
    // verified (almost) everything the leader committed.
    let perf = simulate(
        &SimConfig::nominal(ProcessorModel::ThreeD2A, scale()),
        Benchmark::Gap,
    );
    assert!(perf.trailer.committed > 0);
    let verified_ratio = perf.trailer.committed as f64 / perf.leader.committed as f64;
    assert!(
        verified_ratio > 0.95,
        "checker verified only {verified_ratio} of the stream"
    );
    // Trailer cycles x trailer IPC ~= leader instructions.
    let trailer_ipc = perf.trailer.committed as f64 / perf.trailer.cycles.max(1) as f64;
    assert!(
        trailer_ipc > 1.0,
        "the RVP checker sustains high ILP, got {trailer_ipc}"
    );
}

#[test]
fn leading_core_power_calibration_pin() {
    // Table 2: the leading core averages ~35 W. Check the suite-mean
    // over a representative spread of benchmarks (quick windows).
    let benchmarks = [
        rmt3d_workload::Benchmark::Gzip,
        rmt3d_workload::Benchmark::Mcf,
        rmt3d_workload::Benchmark::Swim,
        rmt3d_workload::Benchmark::Eon,
        rmt3d_workload::Benchmark::Vpr,
        rmt3d_workload::Benchmark::Ammp,
    ];
    let pm = PowerMapConfig::with_checker(CheckerPowerModel::optimistic_7w());
    let mean: f64 = benchmarks
        .iter()
        .map(|&b| {
            let perf = simulate(&SimConfig::nominal(ProcessorModel::TwoDA, scale()), b);
            build_power_map(&perf, &pm).leader.0
        })
        .sum::<f64>()
        / benchmarks.len() as f64;
    assert!(
        (28.0..42.0).contains(&mean),
        "suite-mean leading-core power {mean} W vs Table 2's 35 W"
    );
}

#[test]
fn determinism_end_to_end() {
    let run = || {
        let perf = simulate(
            &SimConfig::nominal(ProcessorModel::ThreeD2A, scale()),
            Benchmark::Twolf,
        );
        let chip = build_power_map(
            &perf,
            &PowerMapConfig::with_checker(CheckerPowerModel::optimistic_7w()),
        );
        let r = solve(
            &ProcessorModel::ThreeD2A.floorplan(),
            &chip.map,
            &ThermalConfig::fast(),
        )
        .expect("solve");
        (perf.ipc(), chip.total().0, r.peak().0)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "whole pipeline must be deterministic");
}

#[test]
fn three_d_chip_is_hotter_but_not_slower() {
    let base = simulate(
        &SimConfig::nominal(ProcessorModel::TwoDA, scale()),
        Benchmark::Gzip,
    );
    let rmt = simulate(
        &SimConfig::nominal(ProcessorModel::ThreeD2A, scale()),
        Benchmark::Gzip,
    );
    // Performance parity (paper §3.3: the checker rarely stalls the
    // leader).
    assert!(
        (rmt.ipc() / base.ipc() - 1.0).abs() < 0.06,
        "3d-2a {} vs 2d-a {}",
        rmt.ipc(),
        base.ipc()
    );
    // Thermal cost exists (paper Fig. 4).
    let pm7 = PowerMapConfig::with_checker(CheckerPowerModel::optimistic_7w());
    let p_base = build_power_map(&base, &pm7);
    let p_rmt = build_power_map(&rmt, &pm7);
    let t_cfg = ThermalConfig::fast();
    let t_base = solve(&ProcessorModel::TwoDA.floorplan(), &p_base.map, &t_cfg).expect("base");
    let t_rmt = solve(&ProcessorModel::ThreeD2A.floorplan(), &p_rmt.map, &t_cfg).expect("rmt");
    assert!(t_rmt.peak() > t_base.peak());
}
