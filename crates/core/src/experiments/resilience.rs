//! Error-resilience synthesis: the abstract's claim that the 3D checker
//! — especially with an older-process die — buys "higher error
//! resilience", quantified by combining the Fig. 8/9 models, the §2
//! protection inventory, and the measured Fig. 7 timing slack.

use crate::experiments::fig7;
use crate::model::RunScale;
use rmt3d_reliability::{ChipInventory, TimingModel};
use rmt3d_units::TechNode;
use rmt3d_workload::Benchmark;

/// Resilience summary of one organization.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceRow {
    /// Organization name.
    pub name: String,
    /// Relative residual soft-error rate of the core structures
    /// (normalized to the 2d-a baseline = 1).
    pub core_residual: f64,
    /// Relative residual of the recovery point (trailer register file;
    /// 0 for the baseline, which has none to protect).
    pub recovery_point_residual: f64,
    /// Expected per-instruction timing-error probability of the
    /// *checking* mechanism (1.0 baseline = an uncheckable chip).
    pub timing_error_probability: f64,
}

/// The full comparison.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// One row per organization.
    pub rows: Vec<ResilienceRow>,
}

impl ResilienceReport {
    /// Formats as text.
    pub fn to_table(&self) -> String {
        let mut s = String::from(
            "Error-resilience synthesis (relative to the 2d-a baseline)\n\
             organization           core-SER  recovery-pt  P(timing err)\n",
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{:22} {:8.3} {:12.2e} {:13.2e}\n",
                r.name, r.core_residual, r.recovery_point_residual, r.timing_error_probability
            ));
        }
        s
    }
}

/// Runs the synthesis: measures the Fig. 7 profile, then evaluates the
/// three organizations.
pub fn run(benchmarks: &[Benchmark], scale: RunScale) -> ResilienceReport {
    let profile = fig7::run(benchmarks, scale);
    let base = ChipInventory::two_d_a();
    let base_core = base.core_residual_rate();

    let mut rows = vec![ResilienceRow {
        name: "2d-a (unprotected)".to_string(),
        core_residual: 1.0,
        recovery_point_residual: 0.0,
        // An unprotected chip silently absorbs every timing error.
        timing_error_probability: 1.0,
    }];
    for node in [TechNode::N65, TechNode::N90] {
        let inv = ChipInventory::three_d_2a(node);
        let timing = TimingModel::for_node(node);
        rows.push(ResilienceRow {
            name: inv.name.to_string(),
            core_residual: inv.core_residual_rate() / base_core,
            recovery_point_residual: inv.structure_residual("checker-regfile") / base_core,
            timing_error_probability: timing.checker_error_probability(&profile.histogram, 12),
        });
    }
    ResilienceReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilience_ordering_matches_the_abstract() {
        let r = run(&[Benchmark::Gzip, Benchmark::Gap], RunScale::quick());
        assert_eq!(r.rows.len(), 3);
        let base = &r.rows[0];
        let at65 = &r.rows[1];
        let at90 = &r.rows[2];
        // RMT slashes the core's residual rate.
        assert!(at65.core_residual < 0.1 * base.core_residual);
        // The older checker die further protects the recovery point
        // (the §4 headline) and the timing margins.
        assert!(at90.recovery_point_residual < at65.recovery_point_residual);
        assert!(at90.timing_error_probability < at65.timing_error_probability);
        assert!(r.to_table().contains("recovery-pt"));
    }
}
