//! Technology scaling: ITRS device parameters (paper Table 7) and the
//! derived relative power ratios (paper Table 8).
//!
//! The paper derives Table 8 from Table 7 with the standard first-order
//! models, evaluated per unit transistor width:
//!
//! * dynamic power ∝ `C/µm x W x V²` with transistor width `W` tracking
//!   the gate length across nodes,
//! * sub-threshold leakage ∝ `I_sub/µm x W x V`.
//!
//! Our unit tests reproduce the published ratios (2.21 / 3.14 / 1.41 for
//! dynamic; 0.40 / 0.44 / ~1.0 for leakage) from the raw device data.

use rmt3d_units::{Picoseconds, TechNode};

/// One row of Table 7 plus the relative gate delay used in §4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// Technology node.
    pub node: TechNode,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Physical gate length (nm).
    pub gate_length_nm: f64,
    /// Gate capacitance per micron of width (F/µm).
    pub cap_per_um: f64,
    /// Sub-threshold leakage current per micron of width (µA/µm).
    pub isub_per_um: f64,
    /// Gate delay relative to 65 nm. The paper's §4 example: a 500 ps
    /// stage at 65 nm takes 714 ps at 90 nm (ratio 1.428); the 45 nm
    /// value is the corresponding ITRS-trend extrapolation.
    pub rel_gate_delay: f64,
}

/// Table 7 of the paper (ITRS 2005).
pub const DEVICE_TABLE: [DeviceParams; 3] = [
    DeviceParams {
        node: TechNode::N90,
        vdd: 1.2,
        gate_length_nm: 37.0,
        cap_per_um: 8.79e-16,
        isub_per_um: 0.05,
        rel_gate_delay: 1.428,
    },
    DeviceParams {
        node: TechNode::N65,
        vdd: 1.1,
        gate_length_nm: 25.0,
        cap_per_um: 6.99e-16,
        isub_per_um: 0.2,
        rel_gate_delay: 1.0,
    },
    DeviceParams {
        node: TechNode::N45,
        vdd: 1.0,
        gate_length_nm: 18.0,
        cap_per_um: 8.28e-16,
        isub_per_um: 0.28,
        rel_gate_delay: 0.75,
    },
];

/// Looks up Table 7 for a node.
///
/// # Errors
///
/// Returns an error for nodes outside the paper's 90/65/45 nm study.
pub fn device_params(node: TechNode) -> Result<DeviceParams, UnsupportedNodeError> {
    DEVICE_TABLE
        .iter()
        .copied()
        .find(|d| d.node == node)
        .ok_or(UnsupportedNodeError(node))
}

/// Error: node not covered by the paper's device table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedNodeError(pub TechNode);

impl std::fmt::Display for UnsupportedNodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "technology node {} is outside the paper's 90/65/45 nm device table",
            self.0
        )
    }
}

impl std::error::Error for UnsupportedNodeError {}

/// Relative power of the *same design* implemented in `a` versus `b`
/// (Table 8 rows are `scaling_ratio(N90, N65)` etc.).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingRatio {
    /// Dynamic power of `a` relative to `b`.
    pub dynamic: f64,
    /// Leakage power of `a` relative to `b`.
    pub leakage: f64,
    /// Gate delay of `a` relative to `b`.
    pub delay: f64,
}

/// Computes the Table 8 ratio pair for implementing a design in node `a`
/// instead of node `b`.
///
/// # Errors
///
/// Returns an error when either node is outside Table 7.
pub fn scaling_ratio(a: TechNode, b: TechNode) -> Result<ScalingRatio, UnsupportedNodeError> {
    let pa = device_params(a)?;
    let pb = device_params(b)?;
    let dyn_metric = |p: &DeviceParams| p.cap_per_um * p.gate_length_nm * p.vdd * p.vdd;
    let leak_metric = |p: &DeviceParams| p.isub_per_um * p.gate_length_nm * p.vdd;
    Ok(ScalingRatio {
        dynamic: dyn_metric(&pa) / dyn_metric(&pb),
        leakage: leak_metric(&pa) / leak_metric(&pb),
        delay: pa.rel_gate_delay / pb.rel_gate_delay,
    })
}

/// Peak clock frequency of a pipeline designed for `stage_time` at 65 nm
/// when re-targeted to `node` (§4: 500 ps → 714 ps limits the checker to
/// 1.4 GHz).
///
/// # Errors
///
/// Returns an error when the node is outside Table 7.
pub fn retargeted_stage_time(
    stage_time_at_65: Picoseconds,
    node: TechNode,
) -> Result<Picoseconds, UnsupportedNodeError> {
    let p = device_params(node)?;
    Ok(stage_time_at_65 * p.rel_gate_delay)
}

/// Splits a block's total power into dynamic and leakage at 65 nm and
/// re-maps it to `node`, returning the new `(dynamic, leakage)` pair.
/// This is the §4 heterogeneous-die computation (14.5 W checker at
/// 65 nm → 23.7 W at 90 nm).
///
/// # Errors
///
/// Returns an error when the node is outside Table 7.
pub fn remap_power(
    dynamic_at_65: f64,
    leakage_at_65: f64,
    node: TechNode,
) -> Result<(f64, f64), UnsupportedNodeError> {
    let r = scaling_ratio(node, TechNode::N65)?;
    Ok((dynamic_at_65 * r.dynamic, leakage_at_65 * r.leakage))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // The paper's 90/45 dynamic-power ratio happens to be 3.14; it is
    // not the circle constant.
    #[allow(clippy::approx_constant)]
    fn table8_dynamic_ratios_reproduced() {
        let r9065 = scaling_ratio(TechNode::N90, TechNode::N65).unwrap();
        let r9045 = scaling_ratio(TechNode::N90, TechNode::N45).unwrap();
        let r6545 = scaling_ratio(TechNode::N65, TechNode::N45).unwrap();
        assert!((r9065.dynamic - 2.21).abs() < 0.02, "{}", r9065.dynamic);
        assert!((r9045.dynamic - 3.14).abs() < 0.02, "{}", r9045.dynamic);
        assert!((r6545.dynamic - 1.41).abs() < 0.02, "{}", r6545.dynamic);
    }

    #[test]
    fn table8_leakage_ratios_reproduced() {
        let r9065 = scaling_ratio(TechNode::N90, TechNode::N65).unwrap();
        let r9045 = scaling_ratio(TechNode::N90, TechNode::N45).unwrap();
        let r6545 = scaling_ratio(TechNode::N65, TechNode::N45).unwrap();
        assert!((r9065.leakage - 0.40).abs() < 0.01, "{}", r9065.leakage);
        assert!((r9045.leakage - 0.44).abs() < 0.01, "{}", r9045.leakage);
        // The paper rounds this one to 0.99; the raw Table 7 numbers give
        // 1.09 — we accept the derived band.
        assert!((r6545.leakage - 1.05).abs() < 0.1, "{}", r6545.leakage);
    }

    #[test]
    fn identity_ratio_is_one() {
        let r = scaling_ratio(TechNode::N65, TechNode::N65).unwrap();
        assert!((r.dynamic - 1.0).abs() < 1e-12);
        assert!((r.leakage - 1.0).abs() < 1e-12);
        assert!((r.delay - 1.0).abs() < 1e-12);
    }

    #[test]
    fn section4_frequency_cap() {
        // 500 ps at 65 nm -> 714 ps at 90 nm -> 1.4 GHz peak.
        let t = retargeted_stage_time(Picoseconds(500.0), TechNode::N90).unwrap();
        assert!((t.0 - 714.0).abs() < 1.0);
        let peak_ghz = 1000.0 / t.0;
        assert!((peak_ghz - 1.4).abs() < 0.01);
    }

    #[test]
    fn section4_checker_power_remap() {
        // A 14.5 W checker core at 65 nm split ~68% dynamic / 32%
        // leakage becomes ~23.7 W at 90 nm (paper §4).
        let (d, l) = remap_power(9.9, 4.6, TechNode::N90).unwrap();
        let total = d + l;
        assert!((total - 23.7).abs() < 0.5, "remapped total {total}");
        // Dynamic went up, leakage went down.
        assert!(d > 9.9 && l < 4.6);
    }

    #[test]
    fn unsupported_node_is_an_error() {
        assert!(device_params(TechNode::N180).is_err());
        let e = scaling_ratio(TechNode::N32, TechNode::N65).unwrap_err();
        assert!(e.to_string().contains("32"));
    }
}
