//! Deterministic micro-op trace generation.

use crate::op::{ArchReg, BranchInfo, MemRef, MicroOp, OpClass, INT_REG_COUNT};
use crate::prng::SplitMix64;
use crate::profile::WorkloadProfile;

/// Cache-line size assumed by the spatial-locality model (bytes).
const LINE: u64 = 64;

/// Base addresses keeping the three memory regions disjoint.
const HOT_BASE: u64 = 0x0100_0000;
const WARM_BASE: u64 = 0x1000_0000;
const STREAM_BASE: u64 = 0x8000_0000;
/// The streaming region wraps after 256 MiB — far larger than any cache.
const STREAM_SIZE: u64 = 256 * 1024 * 1024;

/// Code region: static branch sites and instruction PCs live here.
const CODE_BASE: u64 = 0x0040_0000;
/// Sequential code wraps within this footprint: programs loop, so the
/// instruction working set stays cacheable (SPEC2k I-miss rates are
/// small). 16 KiB of straight-line code + the branch-site region fit
/// comfortably in the 32 KiB L1 I-cache.
const CODE_FOOTPRINT: u64 = 16 * 1024;

/// Address-space regions touched by a profile's memory references, used
/// by simulators to warm caches to steady state before measuring (the
/// paper measures 100M-instruction SimPoint windows of long-running
/// programs; short simulation windows must start from warmed caches to
/// match).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRegions {
    /// `(base, bytes)` of the hot region.
    pub hot: (u64, u64),
    /// `(base, bytes)` of the warm region.
    pub warm: (u64, u64),
    /// `(base, bytes)` of the code footprint (instruction fetches).
    pub code: (u64, u64),
}

impl MemoryRegions {
    /// Computes the regions for a profile.
    pub fn of(profile: &crate::WorkloadProfile) -> MemoryRegions {
        MemoryRegions {
            hot: (HOT_BASE, profile.memory.hot_kb as u64 * 1024),
            warm: (WARM_BASE, profile.memory.warm_kb as u64 * 1024),
            code: (CODE_BASE, CODE_FOOTPRINT),
        }
    }
}

/// Behaviour of one static branch site.
#[derive(Debug, Clone, Copy)]
enum BranchKind {
    /// Taken with fixed probability (hard for any predictor when p≈0.5).
    Biased(f64),
    /// Repeating taken/not-taken pattern of the given period — learnable
    /// by a history-based (2-level) predictor but not by bimodal alone.
    Periodic { period: u8 },
}

#[derive(Debug, Clone)]
struct BranchSite {
    pc: u64,
    target: u64,
    kind: BranchKind,
    /// Occurrence counter driving periodic patterns.
    count: u64,
}

impl BranchSite {
    fn next_outcome(&mut self, rng: &mut SplitMix64) -> bool {
        self.count += 1;
        match self.kind {
            BranchKind::Biased(p) => rng.next_f64() < p,
            BranchKind::Periodic { period } => {
                // Pattern: taken for all but one slot of each period —
                // a loop-branch shape (taken N-1 times, then falls out).
                !self.count.is_multiple_of(period as u64)
            }
        }
    }
}

/// Deterministic generator of [`MicroOp`] streams for one
/// [`WorkloadProfile`].
///
/// The generator is an infinite iterator: call [`TraceGenerator::next_op`]
/// as many times as the simulation window requires (the paper uses 100M
/// instructions; the default experiments here use shorter windows, see
/// `EXPERIMENTS.md`).
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: SplitMix64,
    cum_mix: [f64; 7],
    seq: u64,
    pc: u64,
    /// Destination registers of the most recent 64 register-writing ops,
    /// indexed by sequence modulo capacity; `None` for non-writers.
    recent_dests: [Option<ArchReg>; 64],
    branches: Vec<BranchSite>,
    /// Current streaming pointer.
    stream_ptr: u64,
    /// Remaining lines in the current sequential run and its cursor.
    run_left: u32,
    run_addr: u64,
    /// Round-robin destination register cursors (int / fp).
    next_int_dest: u8,
    next_fp_dest: u8,
}

impl TraceGenerator {
    /// Creates a generator for a profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`WorkloadProfile::validate`]; profiles
    /// from [`crate::Benchmark`] always validate.
    pub fn new(profile: WorkloadProfile) -> TraceGenerator {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid workload profile `{}`: {e}", profile.name));
        let mut rng = SplitMix64::new(profile.seed);
        let mut branches = Vec::with_capacity(profile.static_branches as usize);
        for i in 0..profile.static_branches {
            let pc = CODE_BASE + (i as u64) * 16;
            let target = CODE_BASE + rng.below(profile.static_branches as u64 * 16);
            let kind = if rng.next_f64() < profile.predictability {
                // Periods are capped at 12 so a 12-bit history register
                // can disambiguate every position (longer periods are
                // intrinsically ambiguous for the Table 1 predictor).
                BranchKind::Periodic {
                    period: 2 + (rng.below(11) as u8),
                }
            } else {
                // Biased branches: mostly strongly biased (predictable by
                // bimodal), a few near-random ones.
                let p = if rng.next_f64() < 0.85 {
                    if rng.next_f64() < 0.5 {
                        0.95
                    } else {
                        0.05
                    }
                } else {
                    0.35 + 0.3 * rng.next_f64()
                };
                BranchKind::Biased(p)
            };
            branches.push(BranchSite {
                pc,
                target,
                kind,
                count: 0,
            });
        }
        let cum_mix = profile.mix.cumulative();
        TraceGenerator {
            profile,
            rng,
            cum_mix,
            seq: 0,
            pc: CODE_BASE,
            recent_dests: [None; 64],
            branches,
            stream_ptr: STREAM_BASE,
            run_left: 0,
            run_addr: 0,
            next_int_dest: 1,
            next_fp_dest: 0,
        }
    }

    /// The profile this generator draws from.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Number of ops generated so far.
    pub fn generated(&self) -> u64 {
        self.seq
    }

    fn sample_class(&mut self) -> OpClass {
        let u = self.rng.next_f64();
        for (i, &c) in self.cum_mix.iter().enumerate() {
            if u < c {
                return OpClass::ALL[i];
            }
        }
        OpClass::Branch
    }

    /// Draws a geometric dependence distance with the profile's mean,
    /// clamped to the 64-entry producer window.
    fn sample_dep_distance(&mut self) -> u32 {
        let mean = self.profile.dep_mean;
        // Geometric with success probability 1/mean, support {1,2,...}.
        let p = 1.0 / mean;
        let u = self.rng.next_f64().max(1e-12);
        let d = (u.ln() / (1.0 - p).ln()).ceil() as u32;
        d.clamp(1, 63)
    }

    /// Finds the nearest register-writing producer at or beyond the
    /// sampled distance; returns `(distance, reg)` or `None` when no
    /// producer exists yet (trace warm-up).
    fn pick_source(&mut self) -> Option<(u32, ArchReg)> {
        let want = self.sample_dep_distance();
        for d in want..64 {
            if d as u64 > self.seq {
                break;
            }
            let idx = ((self.seq - d as u64) % 64) as usize;
            if let Some(reg) = self.recent_dests[idx] {
                return Some((d, reg));
            }
        }
        // Fall back to scanning closer producers.
        for d in (1..want).rev() {
            if d as u64 > self.seq {
                continue;
            }
            let idx = ((self.seq - d as u64) % 64) as usize;
            if let Some(reg) = self.recent_dests[idx] {
                return Some((d, reg));
            }
        }
        None
    }

    fn next_mem_ref(&mut self) -> MemRef {
        let m = &self.profile.memory;
        if self.run_left > 0 {
            // Continue the current sequential run.
            self.run_left -= 1;
            self.run_addr += LINE;
            return MemRef {
                addr: self.run_addr,
                size: 8,
            };
        }
        let u = self.rng.next_f64();
        let addr = if u < m.p_hot {
            let span = m.hot_kb as u64 * 1024;
            HOT_BASE + self.rng.below(span / LINE) * LINE + self.rng.below(8) * 8
        } else if u < m.p_hot + m.p_warm {
            let span = m.warm_kb as u64 * 1024;
            WARM_BASE + self.rng.below(span / LINE) * LINE
        } else {
            self.stream_ptr += LINE;
            if self.stream_ptr >= STREAM_BASE + STREAM_SIZE {
                self.stream_ptr = STREAM_BASE;
            }
            self.stream_ptr
        };
        // Begin a sequential run with probability shaped by spatial_run.
        if m.spatial_run > 1 && self.rng.next_f64() < 1.0 / m.spatial_run as f64 {
            self.run_left = self.rng.below(m.spatial_run as u64 * 2) as u32;
            self.run_addr = addr;
        }
        MemRef { addr, size: 8 }
    }

    fn alloc_dest(&mut self, fp: bool) -> ArchReg {
        if fp {
            let r = ArchReg::new(INT_REG_COUNT + self.next_fp_dest);
            self.next_fp_dest = (self.next_fp_dest + 1) % INT_REG_COUNT;
            r
        } else {
            // Skip r0 (hardwired zero on Alpha).
            let r = ArchReg::new(self.next_int_dest);
            self.next_int_dest = 1 + (self.next_int_dest % (INT_REG_COUNT - 1));
            r
        }
    }

    /// Generates the next micro-op in program order.
    pub fn next_op(&mut self) -> MicroOp {
        let kind = self.sample_class();
        let imm = self.rng.next_u64();

        let (src1, src2) = match kind {
            OpClass::IntAlu | OpClass::Branch => (self.pick_source(), {
                if self.rng.next_f64() < 0.6 {
                    self.pick_source()
                } else {
                    None
                }
            }),
            OpClass::IntMul | OpClass::FpAlu | OpClass::FpMul => {
                (self.pick_source(), self.pick_source())
            }
            OpClass::Load => (self.pick_source(), None), // address register
            OpClass::Store => (self.pick_source(), self.pick_source()), // data + address
        };

        let dest = if kind.writes_register() {
            Some(self.alloc_dest(kind.is_fp()))
        } else {
            None
        };

        let mem = if kind.is_memory() {
            Some(self.next_mem_ref())
        } else {
            None
        };

        let (pc, branch) = if kind == OpClass::Branch {
            let site_idx = self.rng.below(self.branches.len() as u64) as usize;
            let taken = {
                let site = &mut self.branches[site_idx];

                site.next_outcome(&mut self.rng)
            };
            let site = &self.branches[site_idx];
            (
                site.pc,
                Some(BranchInfo {
                    taken,
                    target: site.target,
                }),
            )
        } else {
            self.pc = CODE_BASE + ((self.pc + 4 - CODE_BASE) % CODE_FOOTPRINT);
            (self.pc, None)
        };

        let op = MicroOp {
            seq: self.seq,
            pc,
            kind,
            dest,
            src1_dist: src1.map(|(d, _)| d),
            src2_dist: src2.map(|(d, _)| d),
            src1_reg: src1.map(|(_, r)| r),
            src2_reg: src2.map(|(_, r)| r),
            imm,
            mem,
            branch,
        };

        self.recent_dests[(self.seq % 64) as usize] = dest;
        self.seq += 1;
        op
    }

    /// Generates the next `n` ops into a vector.
    pub fn take_ops(&mut self, n: usize) -> Vec<MicroOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

impl Iterator for TraceGenerator {
    type Item = MicroOp;

    fn next(&mut self) -> Option<MicroOp> {
        Some(self.next_op())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec2k::Benchmark;

    #[test]
    fn deterministic_across_instances() {
        let a = TraceGenerator::new(Benchmark::Gzip.profile()).take_ops(1000);
        let b = TraceGenerator::new(Benchmark::Gzip.profile()).take_ops(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_benchmarks_differ() {
        let a = TraceGenerator::new(Benchmark::Gzip.profile()).take_ops(200);
        let b = TraceGenerator::new(Benchmark::Mcf.profile()).take_ops(200);
        assert_ne!(a, b);
    }

    #[test]
    fn mix_converges_to_profile() {
        let profile = Benchmark::Gzip.profile();
        let mix = profile.mix;
        let ops = TraceGenerator::new(profile).take_ops(200_000);
        let frac =
            |k: OpClass| ops.iter().filter(|o| o.kind == k).count() as f64 / ops.len() as f64;
        assert!((frac(OpClass::Load) - mix.load).abs() < 0.01);
        assert!((frac(OpClass::Branch) - mix.branch).abs() < 0.01);
        assert!((frac(OpClass::IntAlu) - mix.int_alu).abs() < 0.01);
    }

    #[test]
    fn dependences_reference_real_producers() {
        let ops = TraceGenerator::new(Benchmark::Twolf.profile()).take_ops(5000);
        for (i, op) in ops.iter().enumerate() {
            for (dist, reg) in [(op.src1_dist, op.src1_reg), (op.src2_dist, op.src2_reg)] {
                if let Some(d) = dist {
                    assert!(d >= 1 && (d as usize) <= i, "distance in range");
                    let producer = &ops[i - d as usize];
                    assert_eq!(
                        producer.dest, reg,
                        "source register must match producer dest at #{i}"
                    );
                }
            }
        }
    }

    #[test]
    fn branch_ops_carry_outcomes_and_others_do_not() {
        let ops = TraceGenerator::new(Benchmark::Vpr.profile()).take_ops(5000);
        for op in &ops {
            assert_eq!(op.kind == OpClass::Branch, op.branch.is_some());
            assert_eq!(op.kind.is_memory(), op.mem.is_some());
            assert_eq!(op.kind.writes_register(), op.dest.is_some());
        }
    }

    #[test]
    fn memory_regions_are_disjoint() {
        let ops = TraceGenerator::new(Benchmark::Art.profile()).take_ops(50_000);
        for op in &ops {
            if let Some(m) = op.mem {
                assert!(m.addr >= HOT_BASE, "below all regions: {:#x}", m.addr);
            }
        }
    }

    #[test]
    fn sequence_numbers_are_contiguous() {
        let ops = TraceGenerator::new(Benchmark::Eon.profile()).take_ops(100);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.seq, i as u64);
        }
    }

    #[test]
    fn iterator_interface_matches_next_op() {
        let mut g1 = TraceGenerator::new(Benchmark::Gap.profile());
        let mut g2 = TraceGenerator::new(Benchmark::Gap.profile());
        for _ in 0..50 {
            assert_eq!(g1.next(), Some(g2.next_op()));
        }
    }

    #[test]
    fn splitmix_statistics() {
        let mut rng = SplitMix64::new(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean of uniform should be ~0.5");
        // below(n) stays in range.
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }
}
