//! The §4 heterogeneity study: fabricate the checker die at 90 nm.
//!
//! Prints the power remap (Table 8 arithmetic), frequency cap, thermal
//! comparison, and the reliability upside (variability, SER, MBU).
//!
//! ```sh
//! cargo run --release --example heterogeneous_die
//! ```

use rmt3d::experiments::{heterogeneous, tables};
use rmt3d::reliability::{mbu_probability_at, per_bit_ser, variability, TimingModel};
use rmt3d::RunScale;
use rmt3d_units::TechNode;
use rmt3d_workload::Benchmark;

fn main() {
    println!("== Sec 4: heterogeneous (90 nm) checker die ==\n");
    print!("{}", tables::table7_text());
    println!();
    print!("{}", tables::table8_text());
    println!();

    let scale = RunScale {
        warmup_instructions: 50_000,
        instructions: 300_000,
        thermal_grid: 50,
    };
    let report = heterogeneous::run(&[Benchmark::Gzip, Benchmark::Swim, Benchmark::Vpr], scale)
        .expect("heterogeneous study");
    print!("{}", report.to_table());

    println!("\n== reliability upside of the older process ==");
    for node in [TechNode::N65, TechNode::N90] {
        let v = variability(node);
        println!(
            "{node}: perf variability ±{:.0}%, per-bit SER {:.2}, MBU prob {:.3}, \
             stage-error prob at 0.6f {:.2e}",
            v.performance * 100.0,
            per_bit_ser(node).total(),
            mbu_probability_at(node),
            TimingModel::for_node(node).stage_error_probability(0.6)
        );
    }
}
