//! Argument validation of `rmt3d campaign` on the real binary: bad
//! invocations must die at arg-parse time with a usage error — before
//! any trial runs, any directory is created, or any journal is
//! touched.

use std::process::Command;

/// Runs `rmt3d campaign` with the given extra args and returns
/// (success, stderr).
fn campaign(extra: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rmt3d"))
        .arg("campaign")
        .args(extra)
        .output()
        .expect("rmt3d runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn zero_jobs_is_a_usage_error() {
    let (ok, stderr) = campaign(&["--jobs", "0"]);
    assert!(!ok, "--jobs 0 exited successfully");
    assert!(
        stderr.starts_with("error: --jobs must be at least 1\n"),
        "stderr: {stderr}"
    );
    assert!(
        stderr.contains("usage: rmt3d"),
        "usage not printed: {stderr}"
    );
}

#[test]
fn empty_site_list_is_a_usage_error() {
    for sites in ["", ",", " , ,"] {
        let (ok, stderr) = campaign(&["--sites", sites]);
        assert!(!ok, "--sites {sites:?} exited successfully");
        assert!(
            stderr.starts_with("error: fault site list is empty\n"),
            "--sites {sites:?} stderr: {stderr}"
        );
    }
}

#[test]
fn empty_benchmark_list_is_a_usage_error() {
    let (ok, stderr) = campaign(&["--benchmarks", ""]);
    assert!(!ok, "--benchmarks \"\" exited successfully");
    assert!(
        stderr.starts_with("error: benchmark list is empty\n"),
        "stderr: {stderr}"
    );
}
