//! §3.3 — iso-thermal operation: how fast can the 3D reliable chip run
//! while matching the 2d-a baseline's peak temperature?
//!
//! The paper scales voltage and frequency together (V ∝ f over the
//! range, after \[2\]) and finds the 3d-2a chip with a 7 W (15 W) checker
//! matches the baseline thermals at 1.9 GHz (1.8 GHz), costing 4.1%
//! (8.2%) performance — less than the frequency loss because memory
//! latency is constant in nanoseconds.

use crate::model::{ProcessorModel, RunScale};
use crate::powermap::{build_power_map, PowerMapConfig};
use crate::simulate::{SerialSimulator, SimConfig, Simulator};
use rmt3d_power::{CheckerPowerModel, DvfsPoint};
use rmt3d_thermal::{solve, ThermalConfig, ThermalError};
use rmt3d_units::{Celsius, Gigahertz, Watts};
use rmt3d_workload::Benchmark;

/// Result of the iso-thermal search for one checker power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsoThermalPoint {
    /// Checker power parameter.
    pub checker_power: Watts,
    /// Baseline (2d-a at 2 GHz) mean peak temperature.
    pub baseline_temp: Celsius,
    /// Frequency at which the 3d-2a chip matches it.
    pub matched_frequency: Gigahertz,
    /// Work-rate loss versus the 2 GHz 3d-2a chip
    /// (`1 - IPC(f)·f / (IPC(2)·2)`).
    pub performance_loss: f64,
}

/// Suite-mean peak temperature of a model at a DVFS point. The
/// per-benchmark performance runs go through `sim` as one batch; the
/// thermal solves stay on the calling thread.
fn mean_peak(
    sim: &dyn Simulator,
    model: ProcessorModel,
    benchmarks: &[Benchmark],
    freq: Gigahertz,
    checker: CheckerPowerModel,
    scale: RunScale,
) -> Result<(Celsius, f64), ThermalError> {
    let tcfg = ThermalConfig {
        grid: scale.thermal_grid,
        ..ThermalConfig::paper()
    };
    let jobs: Vec<(SimConfig, Benchmark)> = benchmarks
        .iter()
        .map(|&b| {
            (
                SimConfig {
                    frequency: freq,
                    ..SimConfig::nominal(model, scale)
                },
                b,
            )
        })
        .collect();
    let mut temp = 0.0;
    let mut work = 0.0;
    for perf in sim.simulate_batch(&jobs) {
        let mut pm_cfg = PowerMapConfig::with_checker(checker);
        pm_cfg.dvfs = DvfsPoint::from_frequency_linear_vdd(freq.value() / 2.0);
        let chip = build_power_map(&perf, &pm_cfg);
        let r = solve(&model.floorplan(), &chip.map, &tcfg)?;
        temp += r.peak().0;
        work += perf.ipc() * freq.value();
    }
    let n = benchmarks.len() as f64;
    Ok((Celsius(temp / n), work / n))
}

/// Bisects the 3d-2a frequency until its thermals match the 2d-a
/// baseline.
///
/// # Errors
///
/// Propagates thermal solver failures.
pub fn run(
    checker_watts: f64,
    benchmarks: &[Benchmark],
    scale: RunScale,
) -> Result<IsoThermalPoint, ThermalError> {
    run_with(&SerialSimulator, checker_watts, benchmarks, scale)
}

/// [`run`] with an explicit [`Simulator`]. The bisection is inherently
/// sequential (each frequency choice depends on the previous solve),
/// but every step's per-benchmark runs are batched, so a parallel
/// simulator still overlaps within a step.
///
/// # Errors
///
/// Propagates thermal solver failures.
pub fn run_with(
    sim: &dyn Simulator,
    checker_watts: f64,
    benchmarks: &[Benchmark],
    scale: RunScale,
) -> Result<IsoThermalPoint, ThermalError> {
    let checker = CheckerPowerModel::with_peak(Watts(checker_watts));
    let (baseline, _) = mean_peak(
        sim,
        ProcessorModel::TwoDA,
        benchmarks,
        Gigahertz(2.0),
        checker,
        scale,
    )?;
    let (_, work_full) = mean_peak(
        sim,
        ProcessorModel::ThreeD2A,
        benchmarks,
        Gigahertz(2.0),
        checker,
        scale,
    )?;

    let mut lo = 1.4;
    let mut hi = 2.0;
    let mut best = (Gigahertz(2.0), work_full);
    for _ in 0..6 {
        let mid = 0.5 * (lo + hi);
        let (t, w) = mean_peak(
            sim,
            ProcessorModel::ThreeD2A,
            benchmarks,
            Gigahertz(mid),
            checker,
            scale,
        )?;
        if t.0 > baseline.0 {
            hi = mid;
        } else {
            lo = mid;
            best = (Gigahertz(mid), w);
        }
    }
    // If even 2.0 GHz is cool enough, report no loss.
    let (t2, w2) = mean_peak(
        sim,
        ProcessorModel::ThreeD2A,
        benchmarks,
        Gigahertz(2.0),
        checker,
        scale,
    )?;
    if t2.0 <= baseline.0 {
        best = (Gigahertz(2.0), w2);
    }
    Ok(IsoThermalPoint {
        checker_power: Watts(checker_watts),
        baseline_temp: baseline,
        matched_frequency: best.0,
        performance_loss: (1.0 - best.1 / work_full).max(0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_watt_checker_iso_thermal() {
        let p = run(7.0, &[Benchmark::Gzip, Benchmark::Swim], RunScale::quick())
            .expect("iso-thermal search");
        // Paper: ~1.9 GHz and ~4.1% loss. Allow a generous band for the
        // quick scale.
        let f = p.matched_frequency.value();
        assert!((1.75..2.0).contains(&f), "matched frequency {f} GHz");
        assert!(
            (0.0..0.12).contains(&p.performance_loss),
            "perf loss {}",
            p.performance_loss
        );
    }

    #[test]
    fn bigger_checker_needs_lower_frequency() {
        let scale = RunScale::quick();
        let bench = [Benchmark::Gzip];
        let p7 = run(7.0, &bench, scale).unwrap();
        let p15 = run(15.0, &bench, scale).unwrap();
        assert!(
            p15.matched_frequency.value() <= p7.matched_frequency.value() + 1e-9,
            "15W {} vs 7W {}",
            p15.matched_frequency,
            p7.matched_frequency
        );
        assert!(p15.performance_loss >= p7.performance_loss - 1e-9);
    }
}
