//! Property-based tests over the core data structures and models.

use proptest::prelude::*;
use rmt3d::cache::{CacheConfig, NucaLayout, NucaPolicy, SetAssocCache};
use rmt3d::power::pipeline::relative_power;
use rmt3d::power::DvfsPoint;
use rmt3d::reliability::{mbu_probability, normal_tail};
use rmt3d::rmt::{DfsConfig, DfsController};
use rmt3d::units::{Celsius, DegreesDelta, NormalizedFrequency, Watts};
use rmt3d::workload::{Benchmark, MicroOp, OpClass, TraceGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- units ----

    #[test]
    fn watts_addition_is_commutative(a in 0.0..1e3f64, b in 0.0..1e3f64) {
        prop_assert_eq!(Watts(a) + Watts(b), Watts(b) + Watts(a));
    }

    #[test]
    fn temperature_delta_round_trip(t in -50.0..150.0f64, d in -40.0..40.0f64) {
        let c = Celsius(t);
        let back = (c + DegreesDelta(d)) - DegreesDelta(d);
        prop_assert!((back.0 - t).abs() < 1e-9);
    }

    #[test]
    fn normalized_frequency_quantize_is_idempotent(f in 0.0..1.5f64) {
        let q = NormalizedFrequency::new(f).quantize(0.1);
        let qq = q.quantize(0.1);
        prop_assert!((q.fraction() - qq.fraction()).abs() < 1e-12);
        prop_assert!(q.fraction() >= 0.1 - 1e-12 && q.fraction() <= 1.0 + 1e-12);
    }

    // ---- workload ----

    #[test]
    fn traces_are_structurally_valid(seed in 0u64..32, len in 100usize..800) {
        let mut profile = Benchmark::ALL[(seed % 19) as usize].profile();
        profile.seed ^= seed;
        let ops: Vec<MicroOp> = TraceGenerator::new(profile).take_ops(len);
        for (i, op) in ops.iter().enumerate() {
            prop_assert_eq!(op.seq, i as u64);
            prop_assert_eq!(op.kind.writes_register(), op.dest.is_some());
            prop_assert_eq!(op.kind.is_memory(), op.mem.is_some());
            prop_assert_eq!(op.kind == OpClass::Branch, op.branch.is_some());
            for (d, r) in [(op.src1_dist, op.src1_reg), (op.src2_dist, op.src2_reg)] {
                if let Some(d) = d {
                    prop_assert!(d >= 1 && (d as usize) <= i);
                    prop_assert_eq!(ops[i - d as usize].dest, r);
                }
            }
        }
    }

    #[test]
    fn result_function_is_injective_in_operand_bits(
        s1 in any::<u64>(), s2 in any::<u64>(), bit in 0u8..64
    ) {
        let op = TraceGenerator::new(Benchmark::Gzip.profile()).next_op();
        let a = op.compute_result(s1, s2);
        let b = op.compute_result(s1 ^ (1 << bit), s2);
        prop_assert_ne!(a, b, "bit flips must be observable");
    }

    // ---- cache ----

    #[test]
    fn cache_hits_after_access(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = SetAssocCache::new(CacheConfig::new(32 * 1024, 2, 64, 1).unwrap());
        for &a in &addrs {
            c.access(a, false);
            prop_assert!(c.probe(a), "line just accessed must be resident");
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
    }

    #[test]
    fn nuca_policies_agree_on_hit_count_order_of_magnitude(
        lines in proptest::collection::vec(0u64..4096, 50..300)
    ) {
        // Both policies cache the same working set; repeated access must
        // hit in both.
        let mut sets = rmt3d::cache::NucaCache::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets);
        let mut ways = rmt3d::cache::NucaCache::new(NucaLayout::two_d_a(), NucaPolicy::DistributedWays);
        for &l in &lines {
            sets.access(l * 64, false);
            ways.access(l * 64, false);
        }
        for &l in &lines {
            prop_assert!(sets.access(l * 64, false).hit);
            prop_assert!(ways.access(l * 64, false).hit);
        }
    }

    // ---- DFS ----

    #[test]
    fn dfs_stays_in_bounds_under_arbitrary_fill(
        fills in proptest::collection::vec(0.0..1.0f64, 10..500),
        cap in 0.3..1.0f64
    ) {
        let mut d = DfsController::new(DfsConfig::paper().with_frequency_cap(cap));
        for f in fills {
            for _ in 0..40 {
                d.tick(f);
            }
            let cur = d.current().fraction();
            prop_assert!(cur >= 0.1 - 1e-9 && cur <= cap + 1e-9, "f={cur} cap={cap}");
        }
        let total: f64 = d.histogram_fractions().iter().sum();
        prop_assert!(d.intervals() == 0 || (total - 1.0).abs() < 1e-9);
    }

    // ---- power / reliability ----

    #[test]
    fn dvfs_factors_are_monotone(f in 0.05..1.0f64) {
        let p = DvfsPoint::from_frequency_linear_vdd(f);
        prop_assert!(p.dynamic_factor() <= 1.0 + 1e-12);
        prop_assert!(p.leakage_factor() <= 1.0 + 1e-12);
        let slower = DvfsPoint::from_frequency_linear_vdd(f * 0.9);
        prop_assert!(slower.dynamic_factor() < p.dynamic_factor());
    }

    #[test]
    fn pipeline_power_is_monotone_in_depth(a in 6.0..18.0f64, b in 6.0..18.0f64) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        // Fewer FO4 per stage (deeper pipe) never costs less power.
        prop_assert!(relative_power(lo).total() >= relative_power(hi).total() - 1e-9);
    }

    #[test]
    fn normal_tail_is_a_valid_survival_function(z1 in -6.0..6.0f64, z2 in -6.0..6.0f64) {
        let (lo, hi) = if z1 < z2 { (z1, z2) } else { (z2, z1) };
        let (plo, phi) = (normal_tail(lo), normal_tail(hi));
        prop_assert!((0.0..=1.0).contains(&plo));
        prop_assert!(phi <= plo + 1e-9, "survival function decreases");
    }

    #[test]
    fn mbu_probability_is_monotone_decreasing(q1 in 0.1..20.0f64, q2 in 0.1..20.0f64) {
        let (lo, hi) = if q1 < q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(mbu_probability(lo) >= mbu_probability(hi) - 1e-12);
    }
}
