//! # rmt3d-campaign
//!
//! A randomized fault-injection campaign engine for the rmt3d RMT
//! system, validating the paper's central coverage claim (§2) at
//! statistical scale: *any* single transient fault in an unprotected
//! datapath structure is detected by the 3D-stacked checker, every
//! ECC-protected strike is corrected and counted, and no corruption
//! escapes to architectural state silently.
//!
//! The engine composes five pieces:
//!
//! 1. **Grids** ([`CampaignSpec`]): (fault site × benchmark ×
//!    injection point × bit × register) tuples expand deterministically
//!    from one seed into [`TrialSpec`]s.
//! 2. **Trials** ([`run_trial`]): each spec runs a fresh
//!    [`RmtSystem`](rmt3d_rmt::RmtSystem) to the injection point,
//!    strikes via the directed-injection API, drains, and classifies
//!    the fate against the site's expectation ([`expected_fate`]) and a
//!    *differential oracle* — a
//!    [`ReferenceExecutor`](rmt3d_cpu::ReferenceExecutor) replay of the
//!    same trace that cross-checks leader, checker, and golden-shadow
//!    state against pipeline-free ground truth.
//! 3. **Campaigns** ([`run_campaign`]): trials fan out on the
//!    `rmt3d-sweep` work-stealing pool with per-trial panic isolation;
//!    records aggregate in grid order, so the JSONL coverage report
//!    ([`CampaignReport::to_jsonl`], with per-site detection-latency
//!    percentiles) is byte-identical between serial and parallel runs.
//! 4. **Crash safety** ([`journal`], [`run_campaign_with`]): an
//!    append-only write-ahead journal records every trial completion —
//!    fsynced before the trial is acknowledged — plus periodic
//!    aggregation checkpoints; resume replays it, skips completed
//!    trials, re-queues in-flight victims, and produces a report
//!    byte-identical to an uninterrupted run, which a SIGKILL
//!    kill-testing harness in `crates/cli` proves against the real
//!    binary.
//! 5. **Minimization** ([`shrink`], [`write_fixture`]): a violation is
//!    greedily shrunk to the smallest (instructions, injection point,
//!    bit, register) tuple that still reproduces it, then emitted as a
//!    JSON fixture that [`replay_fixture`] turns into a deterministic
//!    regression test.
//!
//! ```no_run
//! use rmt3d_campaign::{run_campaign, CampaignSpec};
//!
//! let spec = CampaignSpec::default_grid(42);
//! let report = run_campaign(&spec, 0, &mut rmt3d_telemetry::NullSink).unwrap();
//! assert!(report.full_coverage(), "{}", report.summary());
//! print!("{}", report.to_jsonl());
//! ```

mod engine;
mod fixture;
mod grid;
pub mod journal;
mod report;
mod shrink;
mod trial;

pub use engine::{
    run_campaign, run_campaign_watched, run_campaign_with, CampaignOptions, CampaignRun,
};
pub use fixture::{
    fixture_file_name, fixture_json, parse_fixture, replay_fixture, write_fixture, FIXTURE_KIND,
    FIXTURE_VERSION,
};
pub use grid::{CampaignSpec, DEFAULT_BENCHMARKS, SPEC_VERSION};
pub use journal::{Journal, Replay, CHECKPOINT_INTERVAL, JOURNAL_FILE, JOURNAL_VERSION};
pub use report::{CampaignReport, LatencyStats, SiteSummary, Tally, TrialRecord};
pub use shrink::{reproduces, shrink, Shrunk};
pub use trial::{
    expected_fate, run_trial, Expectation, TrialFate, TrialResult, TrialSpec, Violation,
};
