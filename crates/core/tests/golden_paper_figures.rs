//! Golden-file tests pinning the paper-figure outputs.
//!
//! Two layers of pinning:
//!
//! 1. Quick-scale [`RunScale::quick`] runs of fig4, fig5, and the
//!    iso-thermal search, compared byte-for-byte against committed
//!    golden files under `tests/golden/`. Any change to the simulator,
//!    power, or thermal stack that moves a figure shows up as a diff
//!    here. To accept an intentional change, regenerate with
//!    `RMT3D_BLESS=1 cargo test -p rmt3d --test golden_paper_figures`
//!    and review the diff.
//! 2. The committed full-scale artifact `paper_results.txt`: the
//!    headline figure lines are pinned literally, and the numbers that
//!    appear in more than one figure (the 2d-a baseline, the 7 W and
//!    15 W suite means) are cross-checked for consistency.

use rmt3d::experiments::{fig4, fig5, iso_thermal};
use rmt3d::{RunScale, SerialSimulator};
use rmt3d_workload::Benchmark;
use std::path::PathBuf;

/// The quick golden runs pin one benchmark: goldens exist to catch
/// numeric drift, and one deterministic profile drifts as loudly as
/// nineteen.
const BENCHMARKS: [Benchmark; 1] = [Benchmark::Gzip];

/// Smaller than [`RunScale::quick`]: the goldens pin determinism, not
/// statistical fidelity, and the iso-thermal search alone runs a dozen
/// simulations.
fn golden_scale() -> RunScale {
    RunScale {
        warmup_instructions: 10_000,
        instructions: 40_000,
        thermal_grid: 25,
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the committed golden file, or rewrites the
/// file when `RMT3D_BLESS` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("RMT3D_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e} (regenerate with RMT3D_BLESS=1)",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; if intentional, regenerate \
         with RMT3D_BLESS=1 and review the diff"
    );
}

#[test]
fn fig4_quick_output_matches_golden() {
    let r = fig4::run_with(&SerialSimulator, &BENCHMARKS, golden_scale()).expect("fig4");
    assert_golden("fig4_quick.txt", &r.to_table());
}

#[test]
fn fig5_quick_output_matches_golden() {
    let r = fig5::run_with(&SerialSimulator, &BENCHMARKS, golden_scale()).expect("fig5");
    assert_golden("fig5_quick.txt", &r.to_table());
}

#[test]
fn iso_thermal_quick_output_matches_golden() {
    let mut out = String::new();
    for w in [7.0, 15.0] {
        let p = iso_thermal::run_with(&SerialSimulator, w, &BENCHMARKS, golden_scale())
            .expect("iso-thermal");
        out.push_str(&format!(
            "{:4.0} W checker: {:.2} GHz to match 2d-a ({:.1} C), perf loss {:.1}%\n",
            w,
            p.matched_frequency.value(),
            p.baseline_temp.0,
            100.0 * p.performance_loss,
        ));
    }
    assert_golden("iso_thermal_quick.txt", &out);
}

/// The committed full-scale artifact, pinned literally: these are the
/// numbers the README and the paper comparison quote.
#[test]
fn paper_results_figure_lines_are_pinned() {
    let text = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../paper_results.txt"),
    )
    .expect("paper_results.txt at repo root");
    for line in [
        // Fig. 4: thermal overhead at the design point and the extremes.
        "      7.0       77.0       80.5",
        "     15.0       79.2       86.5",
        "variants @7W: default 80.5, inactive-Si 77.5, corner 79.8, dense 84.4",
        // Fig. 5: suite-mean peak temperatures.
        "suite means: 2d-a 75.5, 2d-2a@7 77.0, 3d-2a@7 80.5, 2d-2a@15 79.2, 3d-2a@15 86.5",
        // Sec 3.3: iso-thermal operating points.
        "   7 W checker: 1.86 GHz to match 2d-a (75.5 C), perf loss 7.0%",
        "  15 W checker: 1.74 GHz to match 2d-a (75.5 C), perf loss 13.0%",
    ] {
        assert!(
            text.lines().any(|l| l == line),
            "paper_results.txt lost pinned figure line: {line:?}"
        );
    }
}

/// Numbers quoted by more than one figure must agree with each other:
/// the 2d-a baseline and the 7 W / 15 W suite means each appear in
/// Fig. 4, Fig. 5, and the iso-thermal section.
#[test]
fn paper_results_figures_are_mutually_consistent() {
    let text = std::fs::read_to_string(
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../paper_results.txt"),
    )
    .expect("paper_results.txt at repo root");

    // Fig. 4 quotes the 2d-a baseline in its header.
    let fig4_baseline = between(&text, "[2d-a baseline ", " C]");
    // Fig. 5 reports it as the first suite mean.
    let fig5_means = text
        .lines()
        .find(|l| l.starts_with("suite means: 2d-a "))
        .expect("fig5 suite means line");
    let fig5_baseline = between(fig5_means, "2d-a ", ",");
    assert_eq!(fig4_baseline, fig5_baseline, "2d-a baseline disagrees");
    // The iso-thermal search targets the same baseline.
    for line in text.lines().filter(|l| l.contains("to match 2d-a (")) {
        assert_eq!(between(line, "2d-a (", " C)"), fig4_baseline, "{line}");
    }

    // The fig4 7 W row equals fig5's 7 W suite means, and likewise at
    // the 15 W thermal budget.
    for (row_prefix, w) in [("      7.0 ", 7), ("     15.0 ", 15)] {
        let row = text
            .lines()
            .find(|l| l.starts_with(row_prefix))
            .unwrap_or_else(|| panic!("fig4 {w} W row"));
        let cols: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(cols.len(), 3, "{row}");
        assert_eq!(
            between(fig5_means, &format!("2d-2a@{w} "), ","),
            cols[1],
            "2d-2a at {w} W disagrees between fig4 and fig5"
        );
        let mean_3d = between(fig5_means, &format!("3d-2a@{w} "), ",");
        assert_eq!(
            mean_3d, cols[2],
            "3d-2a at {w} W disagrees between fig4 and fig5"
        );
    }
}

/// The substring of `text` between the first `start` and the next
/// `end` (with an end-of-line fallback for the last field on a line).
fn between<'a>(text: &'a str, start: &str, end: &str) -> &'a str {
    let from = text
        .find(start)
        .unwrap_or_else(|| panic!("missing {start:?}"))
        + start.len();
    let rest = &text[from..];
    let to = rest
        .find(end)
        .or_else(|| rest.find('\n'))
        .unwrap_or(rest.len());
    rest[..to].trim()
}
