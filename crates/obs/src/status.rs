//! Live run status: a telemetry sink that folds job lifecycle events
//! into a `status.json` document, rewritten atomically at a bounded
//! interval.
//!
//! [`RunObserver`] implements [`Sink`], so the engines attach it as the
//! second half of a tee sink — the trace writer sees every event, and
//! so does the observer. It aggregates [`Event::JobStarted`],
//! [`Event::JobFinished`] (including the previously-unaggregated ETA
//! stream), [`Event::JobCacheHit`], [`Event::JobStalled`],
//! [`Event::PoolStats`], and [`Event::CacheStats`] into a [`RunStatus`]
//! and writes it through [`write_atomic`], so a concurrent
//! `rmt3d status --follow` always reads a complete JSON document.
//!
//! Writes are rate-limited: at most one per
//! [`RunObserver::with_interval`] period (default 250 ms), plus a final
//! forced write from [`RunObserver::finalize`]. Write errors never
//! interrupt the run — status is advisory — but the last error is kept
//! and surfaced by `finalize`.
//!
//! Schema: deterministic fields (counts, per-job states, cache totals)
//! are top-level; every clock- or schedule-dependent field lives under
//! the `"wall"` object (`updated_unix_ms`, `elapsed_nanos`,
//! `eta_nanos`, per-job timings, stall diagnostics, pool utilization).

use crate::ledger::{unix_now_ms, write_atomic};
use rmt3d_telemetry::json::{parse, JsonObject, JsonValue};
use rmt3d_telemetry::{Event, MetricsRegistry, Sink};
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Lifecycle state of one job, as rendered in `status.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobPhase {
    /// Not yet claimed by a worker.
    #[default]
    Pending,
    /// Claimed and simulating.
    Running,
    /// Running, and the watchdog has flagged it as silent too long.
    Stalled,
    /// Finished successfully.
    Done,
    /// Finished by panicking (isolated by the pool).
    Failed,
    /// Satisfied from the result cache without simulating.
    Cached,
}

impl JobPhase {
    /// The string stored in `status.json`.
    pub fn as_str(self) -> &'static str {
        match self {
            JobPhase::Pending => "pending",
            JobPhase::Running => "running",
            JobPhase::Stalled => "stalled",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
            JobPhase::Cached => "cached",
        }
    }

    fn from_str(s: &str) -> JobPhase {
        match s {
            "running" => JobPhase::Running,
            "stalled" => JobPhase::Stalled,
            "done" => JobPhase::Done,
            "failed" => JobPhase::Failed,
            "cached" => JobPhase::Cached,
            _ => JobPhase::Pending,
        }
    }

    /// True once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobPhase::Done | JobPhase::Failed | JobPhase::Cached)
    }
}

/// Pool utilization totals from [`Event::PoolStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolTotals {
    /// Worker threads the pool ran.
    pub workers: u64,
    /// Jobs that executed (cache misses).
    pub executed: u64,
    /// Jobs served by the cache probe.
    pub cache_hits: u64,
    /// Executed jobs that panicked.
    pub failed: u64,
    /// Jobs claimed off another worker's round-robin slot (wall).
    pub steals: u64,
    /// Total worker busy nanoseconds (wall).
    pub busy_nanos: u64,
    /// Total worker idle nanoseconds (wall).
    pub idle_nanos: u64,
    /// Pool start-to-drain nanoseconds (wall).
    pub wall_nanos: u64,
}

/// Result-cache totals from [`Event::CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheTotals {
    /// Probes served from disk.
    pub hits: u64,
    /// Probes that missed.
    pub misses: u64,
    /// Entries that failed key verification (degraded to misses).
    pub verify_failures: u64,
    /// Entries on disk after the run.
    pub entries: u64,
    /// Total entry bytes on disk after the run.
    pub bytes: u64,
}

/// One watchdog stall record from [`Event::JobStalled`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallInfo {
    /// Job index.
    pub job: u64,
    /// Job label.
    pub label: String,
    /// Silence when flagged, nanoseconds (wall).
    pub elapsed_nanos: u64,
    /// Median finished-job duration at flag time, nanoseconds (wall).
    pub median_nanos: u64,
}

/// Per-job wall timings, offsets from the observer's start instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct JobWall {
    start_nanos: u64,
    end_nanos: u64,
    wall_nanos: u64,
}

/// Everything `status.json` records about a run in flight.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunStatus {
    /// The run's name (matches the manifest).
    pub run_id: String,
    /// Run kind: `sweep`, `campaign`, or `profile`.
    pub kind: String,
    /// `running` until finalized, then the run outcome (`ok`/`failed`).
    pub state: String,
    /// Total jobs launched.
    pub total: u64,
    /// Jobs in a terminal state (executed + cached).
    pub done: u64,
    /// Jobs that executed (cache misses), including failures.
    pub executed: u64,
    /// Jobs served by the result cache.
    pub cache_hits: u64,
    /// Executed jobs that panicked.
    pub failures: u64,
    /// Per-job labels, filled as jobs are first seen.
    pub labels: Vec<String>,
    /// Per-job lifecycle states.
    pub phases: Vec<JobPhase>,
    /// Pool utilization, present once the pool drains.
    pub pool: Option<PoolTotals>,
    /// Cache totals, present when a cache was attached.
    pub cache: Option<CacheTotals>,
    /// Watchdog stall records, in flag order (wall).
    pub stalls: Vec<StallInfo>,
    /// Last write stamp, Unix milliseconds (wall).
    pub updated_unix_ms: u64,
    /// Nanoseconds since the observer was created (wall).
    pub elapsed_nanos: u64,
    /// Latest ETA from the pool's [`Event::JobFinished`] stream (wall).
    pub eta_nanos: u64,
    /// Per-job wall timings (wall).
    job_walls: Vec<JobWall>,
}

impl RunStatus {
    /// An empty status for a run of `total` jobs.
    pub fn new(run_id: &str, kind: &str, total: u64) -> RunStatus {
        RunStatus {
            run_id: run_id.to_string(),
            kind: kind.to_string(),
            state: String::from("running"),
            total,
            labels: vec![String::new(); total as usize],
            phases: vec![JobPhase::Pending; total as usize],
            job_walls: vec![JobWall::default(); total as usize],
            ..RunStatus::default()
        }
    }

    fn ensure_job(&mut self, job: u64, total: u64) {
        if total > self.total {
            self.total = total;
        }
        let need = (self.total.max(job + 1)) as usize;
        if self.labels.len() < need {
            self.labels.resize(need, String::new());
            self.phases.resize(need, JobPhase::Pending);
            self.job_walls.resize(need, JobWall::default());
        }
    }

    /// Per-job wall start/end/duration offsets (wall). Indexed like
    /// [`RunStatus::labels`]; zeros for jobs not yet started.
    pub fn job_wall(&self, job: usize) -> (u64, u64, u64) {
        self.job_walls
            .get(job)
            .map(|w| (w.start_nanos, w.end_nanos, w.wall_nanos))
            .unwrap_or((0, 0, 0))
    }

    /// Serializes the status as one JSON document; see the module docs
    /// for the schema.
    pub fn to_json(&self) -> String {
        let mut jobs = String::from("[");
        for (i, phase) in self.phases.iter().enumerate() {
            if i > 0 {
                jobs.push(',');
            }
            let mut j = JsonObject::new();
            j.u64("job", i as u64)
                .str("label", &self.labels[i])
                .str("state", phase.as_str());
            jobs.push_str(&j.finish());
        }
        jobs.push(']');

        let mut wall = JsonObject::new();
        wall.u64("updated_unix_ms", self.updated_unix_ms)
            .u64("elapsed_nanos", self.elapsed_nanos)
            .u64("eta_nanos", self.eta_nanos);
        if let Some(p) = &self.pool {
            wall.u64("steals", p.steals)
                .u64("busy_nanos", p.busy_nanos)
                .u64("idle_nanos", p.idle_nanos)
                .u64("pool_wall_nanos", p.wall_nanos);
        }
        let mut wall_jobs = String::from("[");
        let mut first = true;
        for (i, w) in self.job_walls.iter().enumerate() {
            if *w == JobWall::default() {
                continue;
            }
            if !first {
                wall_jobs.push(',');
            }
            first = false;
            let mut j = JsonObject::new();
            j.u64("job", i as u64)
                .u64("start_nanos", w.start_nanos)
                .u64("end_nanos", w.end_nanos)
                .u64("wall_nanos", w.wall_nanos);
            wall_jobs.push_str(&j.finish());
        }
        wall_jobs.push(']');
        wall.raw("jobs", &wall_jobs);
        let mut stalls = String::from("[");
        for (i, s) in self.stalls.iter().enumerate() {
            if i > 0 {
                stalls.push(',');
            }
            let mut j = JsonObject::new();
            j.u64("job", s.job)
                .str("label", &s.label)
                .u64("elapsed_nanos", s.elapsed_nanos)
                .u64("median_nanos", s.median_nanos);
            stalls.push_str(&j.finish());
        }
        stalls.push(']');
        wall.raw("stalls", &stalls);

        let mut o = JsonObject::new();
        o.str("run_id", &self.run_id)
            .str("kind", &self.kind)
            .str("state", &self.state)
            .u64("total", self.total)
            .u64("done", self.done)
            .u64("executed", self.executed)
            .u64("cache_hits", self.cache_hits)
            .u64("failures", self.failures)
            .raw("jobs", &jobs);
        if let Some(p) = &self.pool {
            let mut pool = JsonObject::new();
            pool.u64("workers", p.workers)
                .u64("executed", p.executed)
                .u64("cache_hits", p.cache_hits)
                .u64("failed", p.failed);
            o.raw("pool", &pool.finish());
        }
        if let Some(c) = &self.cache {
            let mut cache = JsonObject::new();
            cache
                .u64("hits", c.hits)
                .u64("misses", c.misses)
                .u64("verify_failures", c.verify_failures)
                .u64("entries", c.entries)
                .u64("bytes", c.bytes);
            o.raw("cache", &cache.finish());
        }
        o.raw("wall", &wall.finish());
        o.finish()
    }

    /// Parses a document written by [`RunStatus::to_json`].
    pub fn from_json(text: &str) -> Result<RunStatus, String> {
        let v = parse(text)?;
        let str_of = |key: &str| -> String {
            v.get(key)
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string()
        };
        let u64_of = |node: &JsonValue, key: &str| -> u64 {
            node.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
        };
        let mut status = RunStatus {
            run_id: str_of("run_id"),
            kind: str_of("kind"),
            state: str_of("state"),
            total: u64_of(&v, "total"),
            done: u64_of(&v, "done"),
            executed: u64_of(&v, "executed"),
            cache_hits: u64_of(&v, "cache_hits"),
            failures: u64_of(&v, "failures"),
            ..RunStatus::default()
        };
        if status.run_id.is_empty() {
            return Err("status: missing run_id".into());
        }
        if let Some(JsonValue::Arr(jobs)) = v.get("jobs") {
            for j in jobs {
                status.labels.push(
                    j.get("label")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string(),
                );
                status.phases.push(JobPhase::from_str(
                    j.get("state").and_then(JsonValue::as_str).unwrap_or(""),
                ));
            }
        }
        status
            .job_walls
            .resize(status.labels.len(), JobWall::default());
        let mut pool = PoolTotals::default();
        let mut have_pool = false;
        if let Some(p) = v.get("pool") {
            have_pool = true;
            pool.workers = u64_of(p, "workers");
            pool.executed = u64_of(p, "executed");
            pool.cache_hits = u64_of(p, "cache_hits");
            pool.failed = u64_of(p, "failed");
        }
        if let Some(c) = v.get("cache") {
            status.cache = Some(CacheTotals {
                hits: u64_of(c, "hits"),
                misses: u64_of(c, "misses"),
                verify_failures: u64_of(c, "verify_failures"),
                entries: u64_of(c, "entries"),
                bytes: u64_of(c, "bytes"),
            });
        }
        if let Some(w) = v.get("wall") {
            status.updated_unix_ms = u64_of(w, "updated_unix_ms");
            status.elapsed_nanos = u64_of(w, "elapsed_nanos");
            status.eta_nanos = u64_of(w, "eta_nanos");
            if have_pool {
                pool.steals = u64_of(w, "steals");
                pool.busy_nanos = u64_of(w, "busy_nanos");
                pool.idle_nanos = u64_of(w, "idle_nanos");
                pool.wall_nanos = u64_of(w, "pool_wall_nanos");
            }
            if let Some(JsonValue::Arr(jobs)) = w.get("jobs") {
                for j in jobs {
                    let idx = u64_of(j, "job") as usize;
                    if idx < status.job_walls.len() {
                        status.job_walls[idx] = JobWall {
                            start_nanos: u64_of(j, "start_nanos"),
                            end_nanos: u64_of(j, "end_nanos"),
                            wall_nanos: u64_of(j, "wall_nanos"),
                        };
                    }
                }
            }
            if let Some(JsonValue::Arr(stalls)) = w.get("stalls") {
                for s in stalls {
                    status.stalls.push(StallInfo {
                        job: u64_of(s, "job"),
                        label: s
                            .get("label")
                            .and_then(JsonValue::as_str)
                            .unwrap_or_default()
                            .to_string(),
                        elapsed_nanos: u64_of(s, "elapsed_nanos"),
                        median_nanos: u64_of(s, "median_nanos"),
                    });
                }
            }
        }
        if have_pool {
            status.pool = Some(pool);
        }
        Ok(status)
    }

    /// Renders the status for a terminal: one-line summary, progress
    /// bar, counts, ETA, and any stall diagnostics.
    pub fn format_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run {}  kind={}  state={}",
            self.run_id, self.kind, self.state
        );
        const WIDTH: usize = 40;
        let filled = if self.total == 0 {
            0
        } else {
            (self.done as usize * WIDTH) / self.total as usize
        };
        let running = self
            .phases
            .iter()
            .filter(|p| matches!(p, JobPhase::Running | JobPhase::Stalled))
            .count();
        let _ = writeln!(
            out,
            "  [{}{}] {}/{} done ({} executed, {} cached, {} failed, {} running)",
            "#".repeat(filled),
            "-".repeat(WIDTH - filled),
            self.done,
            self.total,
            self.executed,
            self.cache_hits,
            self.failures,
            running
        );
        let _ = writeln!(
            out,
            "  elapsed {}  eta {}{}",
            fmt_nanos(self.elapsed_nanos),
            if self.state == "running" && self.eta_nanos > 0 {
                format!("~{}", fmt_nanos(self.eta_nanos))
            } else {
                String::from("-")
            },
            match &self.pool {
                Some(p) => format!(
                    "  workers {}  steals {}  busy {}  idle {}",
                    p.workers,
                    p.steals,
                    fmt_nanos(p.busy_nanos),
                    fmt_nanos(p.idle_nanos)
                ),
                None => String::new(),
            }
        );
        if let Some(c) = &self.cache {
            let probes = c.hits + c.misses;
            let rate = if probes == 0 {
                0.0
            } else {
                100.0 * c.hits as f64 / probes as f64
            };
            let _ = writeln!(
                out,
                "  cache {}/{} hits ({rate:.0}%), {} verify-failures, {} entries, {} bytes",
                c.hits, probes, c.verify_failures, c.entries, c.bytes
            );
        }
        for s in &self.stalls {
            let _ = writeln!(
                out,
                "  STALL job {} ({}) silent {} (median job {})",
                s.job,
                s.label,
                fmt_nanos(s.elapsed_nanos),
                fmt_nanos(s.median_nanos)
            );
        }
        out
    }
}

/// `1_234_000_000` → `"1.2s"`; minutes past 120 s; `"-"` for 0.
pub fn fmt_nanos(nanos: u64) -> String {
    if nanos == 0 {
        return String::from("-");
    }
    let secs = nanos as f64 / 1e9;
    if secs < 1.0 {
        format!("{:.0}ms", secs * 1e3)
    } else if secs < 120.0 {
        format!("{secs:.1}s")
    } else {
        let m = (secs / 60.0) as u64;
        format!("{m}m{:02.0}s", secs - m as f64 * 60.0)
    }
}

/// A [`Sink`] that folds job lifecycle events into a [`RunStatus`] and
/// persists it atomically at a bounded interval. See the module docs.
#[derive(Debug)]
pub struct RunObserver {
    status: RunStatus,
    path: PathBuf,
    interval: Duration,
    last_write: Option<Instant>,
    t0: Instant,
    registry: MetricsRegistry,
    last_error: Option<io::Error>,
}

impl RunObserver {
    /// Creates an observer persisting to `path` (normally the run
    /// directory's `status.json`).
    pub fn new(path: PathBuf, run_id: &str, kind: &str, total: u64) -> RunObserver {
        RunObserver {
            status: RunStatus::new(run_id, kind, total),
            path,
            interval: Duration::from_millis(250),
            last_write: None,
            t0: Instant::now(),
            registry: MetricsRegistry::new(),
            last_error: None,
        }
    }

    /// Overrides the minimum spacing between status writes.
    pub fn with_interval(mut self, interval: Duration) -> RunObserver {
        self.interval = interval;
        self
    }

    /// The aggregated status so far.
    pub fn status(&self) -> &RunStatus {
        &self.status
    }

    /// Metrics accumulated from observed events (`job_wall_nanos`
    /// histogram, `eta_nanos` series).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    fn now_nanos(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    fn on_event(&mut self, event: &Event) {
        let now = self.now_nanos();
        match event {
            Event::JobStarted { job, total, label } => {
                self.status.ensure_job(*job, *total);
                let i = *job as usize;
                self.status.labels[i] = label.clone();
                self.status.phases[i] = JobPhase::Running;
                self.status.job_walls[i].start_nanos = now;
            }
            Event::JobFinished {
                job,
                total,
                ok,
                wall_nanos,
                eta_nanos,
            } => {
                self.status.ensure_job(*job, *total);
                let i = *job as usize;
                self.status.phases[i] = if *ok {
                    JobPhase::Done
                } else {
                    JobPhase::Failed
                };
                self.status.done += 1;
                self.status.executed += 1;
                if !*ok {
                    self.status.failures += 1;
                }
                self.status.eta_nanos = *eta_nanos;
                self.status.job_walls[i].end_nanos = now;
                self.status.job_walls[i].wall_nanos = *wall_nanos;
                self.registry.record_hist("job_wall_nanos", *wall_nanos);
                self.registry.record("eta_nanos", *eta_nanos as f64);
            }
            Event::JobCacheHit { job, total, label } => {
                self.status.ensure_job(*job, *total);
                let i = *job as usize;
                self.status.labels[i] = label.clone();
                self.status.phases[i] = JobPhase::Cached;
                self.status.done += 1;
                self.status.cache_hits += 1;
                self.status.job_walls[i].start_nanos = now;
                self.status.job_walls[i].end_nanos = now;
            }
            Event::JobStalled {
                job,
                total,
                label,
                elapsed_nanos,
                median_nanos,
            } => {
                self.status.ensure_job(*job, *total);
                let i = *job as usize;
                if self.status.phases[i] == JobPhase::Running {
                    self.status.phases[i] = JobPhase::Stalled;
                }
                self.status.stalls.push(StallInfo {
                    job: *job,
                    label: label.clone(),
                    elapsed_nanos: *elapsed_nanos,
                    median_nanos: *median_nanos,
                });
                self.registry
                    .record("stall_elapsed_nanos", *elapsed_nanos as f64);
            }
            Event::PoolStats {
                workers,
                executed,
                cache_hits,
                failed,
                steals,
                busy_nanos,
                idle_nanos,
                wall_nanos,
            } => {
                self.status.pool = Some(PoolTotals {
                    workers: *workers,
                    executed: *executed,
                    cache_hits: *cache_hits,
                    failed: *failed,
                    steals: *steals,
                    busy_nanos: *busy_nanos,
                    idle_nanos: *idle_nanos,
                    wall_nanos: *wall_nanos,
                });
            }
            Event::CacheStats {
                hits,
                misses,
                verify_failures,
                entries,
                bytes,
            } => {
                self.status.cache = Some(CacheTotals {
                    hits: *hits,
                    misses: *misses,
                    verify_failures: *verify_failures,
                    entries: *entries,
                    bytes: *bytes,
                });
            }
            // Simulator-level events are not part of the run status.
            _ => {}
        }
    }

    fn write_now(&mut self) {
        self.status.updated_unix_ms = unix_now_ms();
        self.status.elapsed_nanos = self.now_nanos();
        if let Err(e) = write_atomic(&self.path, &self.status.to_json()) {
            self.last_error = Some(e);
        }
        self.last_write = Some(Instant::now());
    }

    fn maybe_write(&mut self) {
        let due = match self.last_write {
            None => true,
            Some(t) => t.elapsed() >= self.interval,
        };
        if due {
            self.write_now();
        }
    }

    /// Records the final run state and forces a last write. Returns the
    /// most recent write error, if any — earlier errors never interrupt
    /// the run.
    pub fn finalize(&mut self, state: &str) -> io::Result<()> {
        self.status.state = state.to_string();
        self.write_now();
        match self.last_error.take() {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }
}

impl Sink for RunObserver {
    fn record(&mut self, event: &Event) {
        self.on_event(event);
        self.maybe_write();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt3d_telemetry::emit;

    fn tempfile(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU32, Ordering};
        static N: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "rmt3d-status-{tag}-{}-{}.json",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn finished(job: u64, total: u64, eta_nanos: u64) -> Event {
        Event::JobFinished {
            job,
            total,
            ok: true,
            wall_nanos: 1_000,
            eta_nanos,
        }
    }

    #[test]
    fn observer_aggregates_job_lifecycle() {
        let path = tempfile("agg");
        let mut obs =
            RunObserver::new(path.clone(), "r1", "sweep", 4).with_interval(Duration::ZERO);
        emit(&mut obs, || Event::JobStarted {
            job: 0,
            total: 4,
            label: "a".into(),
        });
        emit(&mut obs, || Event::JobCacheHit {
            job: 1,
            total: 4,
            label: "b".into(),
        });
        emit(&mut obs, || finished(0, 4, 3_000));
        emit(&mut obs, || Event::JobStarted {
            job: 2,
            total: 4,
            label: "c".into(),
        });
        emit(&mut obs, || Event::JobStalled {
            job: 2,
            total: 4,
            label: "c".into(),
            elapsed_nanos: 9_000,
            median_nanos: 1_000,
        });
        let s = obs.status();
        assert_eq!(s.done, 2);
        assert_eq!(s.executed, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.failures, 0);
        assert_eq!(s.eta_nanos, 3_000);
        assert_eq!(s.phases[0], JobPhase::Done);
        assert_eq!(s.phases[1], JobPhase::Cached);
        assert_eq!(s.phases[2], JobPhase::Stalled);
        assert_eq!(s.phases[3], JobPhase::Pending);
        assert_eq!(s.stalls.len(), 1);
        assert_eq!(
            obs.registry()
                .histogram("job_wall_nanos")
                .unwrap()
                .samples(),
            1
        );

        // The persisted document parses and round-trips the aggregates.
        obs.finalize("ok").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let back = RunStatus::from_json(&text).unwrap();
        assert_eq!(back.done, 2);
        assert_eq!(back.state, "ok");
        assert_eq!(back.phases, obs.status().phases);
        assert_eq!(back.stalls, obs.status().stalls);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn eta_stream_is_aggregated_not_dropped() {
        // Regression: JobFinished.eta_nanos used to be emitted by the
        // pool but never aggregated anywhere. The observer must surface
        // the latest ETA and keep the whole series in its registry.
        let path = tempfile("eta");
        let mut obs =
            RunObserver::new(path.clone(), "r1", "sweep", 5).with_interval(Duration::ZERO);
        let etas = [8_000, 6_000, 4_000, 2_000, 0];
        for (i, eta) in etas.iter().enumerate() {
            emit(&mut obs, || finished(i as u64, 5, *eta));
            assert_eq!(obs.status().eta_nanos, *eta, "status tracks latest ETA");
        }
        let series = obs.registry().summary("eta_nanos").unwrap();
        assert_eq!(series.count, etas.len() as u64);
        assert_eq!(series.max, 8_000.0);
        assert_eq!(series.min, 0.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn status_round_trips_pool_and_cache() {
        let mut s = RunStatus::new("r2", "campaign", 2);
        s.pool = Some(PoolTotals {
            workers: 4,
            executed: 2,
            cache_hits: 0,
            failed: 1,
            steals: 3,
            busy_nanos: 100,
            idle_nanos: 50,
            wall_nanos: 40,
        });
        s.cache = Some(CacheTotals {
            hits: 1,
            misses: 1,
            verify_failures: 0,
            entries: 2,
            bytes: 999,
        });
        s.eta_nanos = 123;
        let back = RunStatus::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn interval_bounds_write_frequency() {
        let path = tempfile("rate");
        let mut obs = RunObserver::new(path.clone(), "r3", "sweep", 100)
            .with_interval(Duration::from_secs(3600));
        for i in 0..100u64 {
            emit(&mut obs, || finished(i, 100, 0));
        }
        // First event wrote (no prior write); the hour-long interval
        // suppresses the other 99, so the file shows 1 job done.
        let text = std::fs::read_to_string(&path).unwrap();
        let mid = RunStatus::from_json(&text).unwrap();
        assert_eq!(mid.done, 1);
        // finalize forces the full picture out.
        obs.finalize("ok").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let fin = RunStatus::from_json(&text).unwrap();
        assert_eq!(fin.done, 100);
        assert_eq!(fin.state, "ok");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn jobs_beyond_declared_total_grow_the_status() {
        let path = tempfile("grow");
        let mut obs =
            RunObserver::new(path.clone(), "r4", "sweep", 0).with_interval(Duration::ZERO);
        emit(&mut obs, || Event::JobStarted {
            job: 7,
            total: 9,
            label: "late".into(),
        });
        assert_eq!(obs.status().total, 9);
        assert_eq!(obs.status().phases.len(), 9);
        assert_eq!(obs.status().phases[7], JobPhase::Running);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn human_rendering_mentions_the_essentials() {
        let mut s = RunStatus::new("sweep-x", "sweep", 4);
        s.done = 2;
        s.executed = 1;
        s.cache_hits = 1;
        s.stalls.push(StallInfo {
            job: 3,
            label: "3d-2a/swim".into(),
            elapsed_nanos: 9_000_000_000,
            median_nanos: 1_000_000_000,
        });
        let text = s.format_human();
        assert!(text.contains("sweep-x"));
        assert!(text.contains("2/4 done"));
        assert!(text.contains("STALL job 3 (3d-2a/swim)"));
        assert!(text.contains("9.0s"));
    }

    #[test]
    fn fmt_nanos_scales() {
        assert_eq!(fmt_nanos(0), "-");
        assert_eq!(fmt_nanos(500_000_000), "500ms");
        assert_eq!(fmt_nanos(1_500_000_000), "1.5s");
        assert_eq!(fmt_nanos(125_000_000_000), "2m05s");
    }
}
