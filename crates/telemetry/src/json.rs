//! Minimal JSON writer and parser.
//!
//! The workspace builds fully offline, so there is no serde. This
//! module implements exactly the subset of JSON the telemetry schema
//! needs: flat objects of strings, numbers, and booleans, written one
//! per line (JSON Lines), plus a small recursive-descent parser used by
//! the round-trip tests and by consumers that want to read traces back.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number; parsed as f64.
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. Keys keep insertion-independent (sorted) order.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as f64 if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64 if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as &str if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as bool if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Incremental writer for one flat JSON object.
///
/// ```
/// use rmt3d_telemetry::json::JsonObject;
/// let mut o = JsonObject::new();
/// o.str("event", "counter").u64("cycle", 7).f64("value", 0.5);
/// assert_eq!(o.finish(), r#"{"event":"counter","cycle":7,"value":0.5}"#);
/// ```
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) -> &mut Self {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_json_string(&mut self.buf, key);
        self.buf.push(':');
        self
    }

    /// Appends a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_json_string(&mut self.buf, value);
        self
    }

    /// Appends an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Appends a float field. Non-finite values become `null` (JSON has
    /// no NaN/Infinity).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            if value.fract() == 0.0 && value.abs() < 1e15 {
                // Keep integral floats readable ("3.0" not "3").
                let _ = write!(self.buf, "{value:.1}");
            } else {
                let _ = write!(self.buf, "{value}");
            }
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Appends a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Appends a field whose value is already-serialized JSON (nested
    /// objects, e.g. a trace event's `args`). The caller guarantees
    /// `json` is valid.
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn write_json_string(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Parses one JSON document. Returns an error message with a byte
/// offset on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_escapes() {
        let mut o = JsonObject::new();
        o.str("s", "a\"b\\c\nd").u64("n", 42).bool("t", true);
        let line = o.finish();
        assert_eq!(line, r#"{"s":"a\"b\\c\nd","n":42,"t":true}"#);
        let v = parse(&line).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"b\\c\nd");
        assert_eq!(v.get("n").unwrap().as_u64().unwrap(), 42);
        assert!(v.get("t").unwrap().as_bool().unwrap());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = JsonObject::new();
        o.f64("nan", f64::NAN).f64("inf", f64::INFINITY);
        let line = o.finish();
        assert_eq!(line, r#"{"nan":null,"inf":null}"#);
        assert!(parse(&line).is_ok());
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        let mut o = JsonObject::new();
        o.f64("x", 3.0).f64("y", 0.25);
        assert_eq!(o.finish(), r#"{"x":3.0,"y":0.25}"#);
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2.5,{"b":null}],"c":"hi"}"#).unwrap();
        let arr = match v.get("a").unwrap() {
            JsonValue::Arr(a) => a,
            other => panic!("not an array: {other:?}"),
        };
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b"), Some(&JsonValue::Null));
        assert_eq!(v.get("c").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn number_round_trip() {
        for n in [0.0, -1.5, 1e-9, 3.25e12, 0.1] {
            let v = parse(&format!("{n}")).unwrap();
            assert_eq!(v.as_f64(), Some(n));
        }
    }
}
