//! The sink abstraction: where telemetry events go.
//!
//! Simulators are generic over `S: Sink`. The default, [`NullSink`],
//! has `ENABLED = false` and an inlined empty `record`, so event
//! construction is gated out by [`emit`] and the instrumented code
//! compiles to exactly the uninstrumented code. Real sinks (JSONL
//! writer, in-memory collector) opt in with `ENABLED = true`.

use crate::Event;
use std::cell::RefCell;
use std::rc::Rc;

/// A destination for telemetry [`Event`]s.
///
/// Implementations should be cheap to clone when they are to be shared
/// across the leader, checker, and system layers (wrap shared state in
/// `Rc<RefCell<..>>`).
pub trait Sink {
    /// Whether this sink observes events. [`emit`] skips event
    /// construction entirely when this is `false`, making disabled
    /// telemetry zero-cost.
    const ENABLED: bool = true;

    /// Records one event.
    fn record(&mut self, event: &Event);
}

/// Constructs and records an event only if the sink is enabled.
///
/// The closure runs only when `S::ENABLED` is true, so gathering the
/// event's fields costs nothing under [`NullSink`].
#[inline(always)]
pub fn emit<S: Sink>(sink: &mut S, build: impl FnOnce() -> Event) {
    if S::ENABLED {
        sink.record(&build());
    }
}

/// The do-nothing sink: telemetry disabled, zero runtime cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl Sink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: &Event) {}
}

/// A clonable in-memory sink that appends every event to a shared
/// vector. Used by tests and by consumers that post-process events.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    events: Rc<RefCell<Vec<Event>>>,
}

impl RecordingSink {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.borrow().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }
}

impl Sink for RecordingSink {
    fn record(&mut self, event: &Event) {
        self.events.borrow_mut().push(event.clone());
    }
}

/// Sharing adapter: a sink behind `Rc<RefCell<..>>` is itself a sink,
/// letting several simulator layers feed one underlying sink.
impl<S: Sink> Sink for Rc<RefCell<S>> {
    const ENABLED: bool = S::ENABLED;

    #[inline]
    fn record(&mut self, event: &Event) {
        self.borrow_mut().record(event);
    }
}

/// Tee adapter: a pair of sinks receives every event in order. Enabled
/// if either side is, and [`emit`] still elides construction when both
/// sides are [`NullSink`].
impl<A: Sink, B: Sink> Sink for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn record(&mut self, event: &Event) {
        if A::ENABLED {
            self.0.record(event);
        }
        if B::ENABLED {
            self.1.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(cycle: u64) -> Event {
        Event::Counter {
            name: "x",
            cycle,
            value: 1.0,
        }
    }

    #[test]
    fn null_sink_elides_construction() {
        let mut sink = NullSink;
        let mut built = false;
        emit(&mut sink, || {
            built = true;
            counter(0)
        });
        assert!(!built, "emit must not build events for NullSink");
    }

    #[test]
    fn recording_sink_observes_emits() {
        let mut sink = RecordingSink::new();
        emit(&mut sink, || counter(3));
        emit(&mut sink, || counter(4));
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0],
            Event::Counter {
                name: "x",
                cycle: 3,
                value: 1.0
            }
        );
    }

    #[test]
    fn clones_share_storage() {
        let sink = RecordingSink::new();
        let mut a = sink.clone();
        let mut b = sink.clone();
        emit(&mut a, || counter(1));
        emit(&mut b, || counter(2));
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn tee_feeds_both_sides() {
        let rec = RecordingSink::new();
        let mut tee = (rec.clone(), rec.clone());
        emit(&mut tee, || counter(9));
        assert_eq!(rec.len(), 2);
    }

    #[test]
    fn tee_of_nulls_stays_disabled() {
        const { assert!(!<(NullSink, NullSink) as Sink>::ENABLED) };
        const { assert!(<(RecordingSink, NullSink) as Sink>::ENABLED) };
    }
}
