//! Metrics registry: named scalar series with summary statistics.

use crate::json::JsonObject;
use std::fmt::Write as _;

/// Summary statistics over one recorded series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesSummary {
    /// Number of finite samples.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

#[derive(Debug, Clone, Default)]
struct Series {
    name: String,
    values: Vec<f64>,
}

/// Fixed-bucket base-2 logarithmic histogram over `u64` samples.
///
/// Bucket 0 holds exactly the value 0; bucket `b` (1..=64) holds the
/// range `[2^(b-1), 2^b)`. The bucket count is fixed, so recording is a
/// single index increment and two histograms always merge/compare
/// bucket-for-bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; 65],
    samples: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            counts: [0; 65],
            samples: 0,
            sum: 0,
        }
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.samples += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of samples in bucket `b`.
    pub fn count(&self, bucket: usize) -> u64 {
        self.counts[bucket]
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Inclusive value range covered by bucket `b`.
    pub fn bucket_range(bucket: usize) -> (u64, u64) {
        if bucket == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (bucket - 1);
            let hi = if bucket == 64 {
                u64::MAX
            } else {
                (1u64 << bucket) - 1
            };
            (lo, hi)
        }
    }

    /// Renders the non-empty buckets as aligned `[lo, hi] count share`
    /// rows.
    pub fn format_rows(&self) -> String {
        let mut out = String::new();
        for (b, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let (lo, hi) = Self::bucket_range(b);
            let share = 100.0 * n as f64 / self.samples as f64;
            let _ = writeln!(out, "    [{lo:>10}, {hi:>10}] {n:>10} {share:>6.1}%");
        }
        out
    }
}

/// Accumulates named f64 series and reports per-series summaries.
///
/// Series appear in first-recorded order, so summaries are stable for a
/// deterministic run. Non-finite samples are dropped at the door — they
/// would poison every statistic downstream.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    series: Vec<Series>,
    hists: Vec<(String, Log2Histogram)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one sample to the named series, creating it on first use.
    pub fn record(&mut self, name: &str, value: f64) {
        if !value.is_finite() {
            return;
        }
        match self.series.iter_mut().find(|s| s.name == name) {
            Some(s) => s.values.push(value),
            None => self.series.push(Series {
                name: name.to_string(),
                values: vec![value],
            }),
        }
    }

    /// Appends one sample to the named log2 histogram, creating it on
    /// first use.
    pub fn record_hist(&mut self, name: &str, value: u64) {
        match self.hists.iter_mut().find(|(n, _)| n == name) {
            Some((_, h)) => h.record(value),
            None => {
                let mut h = Log2Histogram::new();
                h.record(value);
                self.hists.push((name.to_string(), h));
            }
        }
    }

    /// Histogram by name, or `None` if it was never recorded.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Histogram names in first-recorded order.
    pub fn histogram_names(&self) -> Vec<&str> {
        self.hists.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Renders every histogram as a human-readable block of bucket rows.
    pub fn format_histograms(&self) -> String {
        if self.hists.is_empty() {
            return String::from("histograms: no samples recorded\n");
        }
        let mut out = String::new();
        for (name, h) in &self.hists {
            let _ = writeln!(out, "  {name} (n={}, mean={:.1})", h.samples(), h.mean());
            out.push_str(&h.format_rows());
        }
        out
    }

    /// Series names in first-recorded order.
    pub fn names(&self) -> Vec<&str> {
        self.series.iter().map(|s| s.name.as_str()).collect()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty() && self.hists.is_empty()
    }

    /// Summary for one series, or `None` if it was never recorded.
    pub fn summary(&self, name: &str) -> Option<SeriesSummary> {
        let s = self.series.iter().find(|s| s.name == name)?;
        Some(summarize(&s.values))
    }

    /// All summaries, in first-recorded order.
    pub fn summaries(&self) -> Vec<(&str, SeriesSummary)> {
        self.series
            .iter()
            .map(|s| (s.name.as_str(), summarize(&s.values)))
            .collect()
    }

    /// Renders the registry as an aligned human-readable table for
    /// stderr.
    pub fn format_human(&self) -> String {
        if self.series.is_empty() {
            return String::from("metrics: no samples recorded\n");
        }
        let width = self
            .series
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(0)
            .max("series".len());
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:width$}  {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "series", "count", "min", "mean", "p50", "p99", "max"
        );
        for (name, s) in self.summaries() {
            let _ = writeln!(
                out,
                "{name:width$}  {:>8} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
                s.count, s.min, s.mean, s.p50, s.p99, s.max
            );
        }
        out
    }

    /// Serializes every summary as one flat JSON line tagged
    /// `"event":"summary"`, suitable as the final record of a trace.
    pub fn to_json_line(&self) -> String {
        let mut o = JsonObject::new();
        o.str("event", "summary");
        for (name, s) in self.summaries() {
            o.u64(&format!("{name}.count"), s.count)
                .f64(&format!("{name}.min"), s.min)
                .f64(&format!("{name}.max"), s.max)
                .f64(&format!("{name}.mean"), s.mean)
                .f64(&format!("{name}.p50"), s.p50)
                .f64(&format!("{name}.p99"), s.p99);
        }
        o.finish()
    }
}

fn summarize(values: &[f64]) -> SeriesSummary {
    if values.is_empty() {
        return SeriesSummary {
            count: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            p50: 0.0,
            p99: 0.0,
        };
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let count = sorted.len();
    let sum: f64 = sorted.iter().sum();
    let rank = |p: f64| -> f64 {
        // Nearest-rank percentile on the sorted samples.
        let idx = ((p * count as f64).ceil() as usize).clamp(1, count) - 1;
        sorted[idx]
    };
    SeriesSummary {
        count: count as u64,
        min: sorted[0],
        max: sorted[count - 1],
        mean: sum / count as f64,
        p50: rank(0.50),
        p99: rank(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn summary_statistics() {
        let mut reg = MetricsRegistry::new();
        for v in 1..=100 {
            reg.record("x", f64::from(v));
        }
        let s = reg.summary("x").unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut reg = MetricsRegistry::new();
        reg.record("x", f64::NAN);
        reg.record("x", f64::INFINITY);
        reg.record("x", 2.0);
        let s = reg.summary("x").unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn series_keep_first_recorded_order() {
        let mut reg = MetricsRegistry::new();
        reg.record("zeta", 1.0);
        reg.record("alpha", 1.0);
        reg.record("zeta", 2.0);
        assert_eq!(reg.names(), vec!["zeta", "alpha"]);
    }

    #[test]
    fn missing_series_is_none() {
        assert!(MetricsRegistry::new().summary("nope").is_none());
    }

    #[test]
    fn json_summary_line_parses() {
        let mut reg = MetricsRegistry::new();
        reg.record("ipc", 1.5);
        reg.record("ipc", 2.5);
        let line = reg.to_json_line();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("summary"));
        assert_eq!(v.get("ipc.count").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("ipc.mean").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn log2_buckets_partition_the_u64_range() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(1023), 10);
        assert_eq!(Log2Histogram::bucket_of(1024), 11);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        for b in 0..=64 {
            let (lo, hi) = Log2Histogram::bucket_range(b);
            assert_eq!(Log2Histogram::bucket_of(lo), b);
            assert_eq!(Log2Histogram::bucket_of(hi), b);
        }
    }

    #[test]
    fn histogram_counts_and_mean() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 1, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.samples(), 5);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(3), 1); // 5 ∈ [4, 7]
        assert_eq!(h.count(10), 1); // 1000 ∈ [512, 1023]
        assert!((h.mean() - 1007.0 / 5.0).abs() < 1e-12);
        let rows = h.format_rows();
        assert!(rows.contains("[       512,       1023]"), "{rows}");
    }

    #[test]
    fn registry_hosts_named_histograms() {
        let mut reg = MetricsRegistry::new();
        reg.record_hist("slack", 12);
        reg.record_hist("slack", 40);
        reg.record_hist("detection_latency", 200);
        assert_eq!(reg.histogram_names(), vec!["slack", "detection_latency"]);
        assert_eq!(reg.histogram("slack").unwrap().samples(), 2);
        assert!(reg.histogram("nope").is_none());
        let text = reg.format_histograms();
        assert!(text.contains("slack (n=2"));
        assert!(text.contains("detection_latency"));
        assert!(!reg.is_empty());
    }

    #[test]
    fn human_table_lists_every_series() {
        let mut reg = MetricsRegistry::new();
        reg.record("ipc", 1.0);
        reg.record("rvq_occupancy", 30.0);
        let table = reg.format_human();
        assert!(table.contains("ipc"));
        assert!(table.contains("rvq_occupancy"));
        assert!(table.contains("p99"));
    }
}
