//! Reader for the daemon's `daemon.metrics.jsonl` time-series ring.
//!
//! The `rmt3d serve` daemon appends one JSON snapshot line per notable
//! transition (startup, submit, job start, job finish); this module is
//! the consumer side, shared by the HTML dashboard's daemon panel and
//! anything else that wants the fleet's history. Parsing mirrors the
//! queue journal's replay discipline: corrupt or torn lines are
//! skipped, never fatal, and nothing is invented past a torn tail.
//!
//! Each sample carries flat gauges (queue depth, job-state counts,
//! cache counters, watcher/connection counts) plus the daemon's
//! cumulative metrics document embedded under `"metrics"` — the same
//! `{"series":…,"hist":…}` schema as a run's `metrics.json`, so the
//! newest sample alone is enough to rebuild every latency histogram.

use crate::metricsio::{metrics_from_value, ParsedMetrics};
use rmt3d_telemetry::json::{parse, JsonValue};
use std::path::Path;

/// One snapshot line from the ring, flattened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DaemonSample {
    /// Wall-clock stamp of the snapshot.
    pub unix_ms: u64,
    /// Jobs waiting for the scheduler.
    pub queued: u64,
    /// Jobs executing.
    pub running: u64,
    /// Jobs finished clean.
    pub done: u64,
    /// Jobs finished with failures.
    pub failed: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Outstanding work: queued + running.
    pub depth: u64,
    /// Live watch subscriptions.
    pub watchers: u64,
    /// Open client connections.
    pub connections: u64,
    /// Result-cache hits so far.
    pub cache_hits: u64,
    /// Result-cache misses so far.
    pub cache_misses: u64,
    /// Cache entries evicted by the LRU pass so far.
    pub cache_evictions: u64,
    /// Run-artifact persistence failures so far.
    pub metrics_write_errors: u64,
}

impl DaemonSample {
    /// Cache hit rate in [0, 1], when any probe has happened.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }
}

/// The parsed time-series: every valid sample in file order, plus the
/// newest sample's embedded cumulative metrics document.
#[derive(Debug, Clone, Default)]
pub struct DaemonSeries {
    /// Valid samples, oldest first.
    pub samples: Vec<DaemonSample>,
    /// The newest sample's `"metrics"` document (latency histograms,
    /// gauge series), when present and well-formed.
    pub metrics: Option<ParsedMetrics>,
}

impl DaemonSeries {
    /// Parses ring text, skipping corrupt or torn lines.
    pub fn parse(text: &str) -> DaemonSeries {
        let mut out = DaemonSeries::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(v) = parse(line) else {
                continue; // corrupt or torn line: skip, never fatal
            };
            let Some(unix_ms) = v.get("unix_ms").and_then(JsonValue::as_u64) else {
                continue; // foreign line
            };
            let u = |k: &str| v.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
            out.samples.push(DaemonSample {
                unix_ms,
                queued: u("queued"),
                running: u("running"),
                done: u("done"),
                failed: u("failed"),
                cancelled: u("cancelled"),
                depth: u("depth"),
                watchers: u("watchers"),
                connections: u("connections"),
                cache_hits: u("cache_hits"),
                cache_misses: u("cache_misses"),
                cache_evictions: u("cache_evictions"),
                metrics_write_errors: u("metrics_write_errors"),
            });
            // Keep the newest metrics document; the registry is
            // cumulative so the last one subsumes the rest.
            if let Some(doc) = v.get("metrics") {
                out.metrics = Some(metrics_from_value(doc));
            }
        }
        out
    }

    /// Reads and parses a ring file; `None` when it cannot be read
    /// (missing file is normal for a daemon that never started).
    pub fn load(path: &Path) -> Option<DaemonSeries> {
        let text = std::fs::read_to_string(path).ok()?;
        Some(DaemonSeries::parse(&text))
    }

    /// The newest sample.
    pub fn latest(&self) -> Option<&DaemonSample> {
        self.samples.last()
    }

    /// True when no valid sample was found.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(unix_ms: u64, depth: u64) -> String {
        format!(
            "{{\"unix_ms\":{unix_ms},\"queued\":{depth},\"running\":0,\"done\":3,\
             \"failed\":0,\"cancelled\":1,\"depth\":{depth},\"watchers\":2,\
             \"connections\":1,\"cache_hits\":10,\"cache_misses\":5,\
             \"cache_evictions\":0,\"metrics_write_errors\":0,\
             \"metrics\":{{\"series\":{{}},\"hist\":{{\"daemon_exec_ms_sweep\":\
             {{\"samples\":3,\"mean\":7.0,\"buckets\":[[4,7,3]]}}}}}}}}"
        )
    }

    #[test]
    fn parses_samples_and_latest_metrics() {
        let text = format!("{}\n{}\n", line(1, 4), line(2, 2));
        let series = DaemonSeries::parse(&text);
        assert_eq!(series.samples.len(), 2);
        let last = series.latest().unwrap();
        assert_eq!(last.unix_ms, 2);
        assert_eq!(last.depth, 2);
        assert_eq!(last.hit_rate(), Some(10.0 / 15.0));
        let hist = series
            .metrics
            .as_ref()
            .unwrap()
            .hist("daemon_exec_ms_sweep")
            .unwrap();
        assert_eq!(hist.samples, 3);
        assert_eq!(hist.buckets, vec![(4, 7, 3)]);
    }

    #[test]
    fn skips_torn_and_foreign_lines_without_inventing_data() {
        let text = format!(
            "garbage\n{}\n{{\"foreign\":true}}\n{}\n{{\"unix_ms\":9,\"queued\":",
            line(5, 1),
            line(6, 3)
        );
        let series = DaemonSeries::parse(&text);
        assert_eq!(series.samples.len(), 2);
        assert_eq!(series.latest().unwrap().unix_ms, 6);
    }

    #[test]
    fn empty_and_missing_input() {
        assert!(DaemonSeries::parse("").is_empty());
        assert!(DaemonSeries::load(Path::new("/nonexistent/ring.jsonl")).is_none());
    }
}
