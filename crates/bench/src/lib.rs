//! Benchmark-harness crate: see `benches/` for the targets that
//! regenerate every table and figure of the paper.
//!
//! * `benches/tables.rs` — Tables 4-8.
//! * `benches/figures.rs` — Figures 4-9.
//! * `benches/experiments.rs` — §3.3 iso-thermal, §3.4 interconnect,
//!   §4 heterogeneous die, Fig. 1 summary.
//!
//! Set `RMT3D_PAPER=1` to run the full 19-benchmark suite at paper
//! scale.
//!
//! The harness is a self-contained `std::time::Instant` timing loop
//! (no external benchmarking dependency): each target runs a warmup
//! pass, then `samples` timed passes, and reports min / mean / max
//! wall time per iteration.
//!
//! Set `RMT3D_BENCH_JSON=path` to additionally append one JSON-lines
//! record per target — `{"name", "min", "mean", "max", "samples"}`,
//! times in nanoseconds — so CI can diff runs machine-readably.

use std::io::Write;
use std::time::Instant;

/// Times `f` over `samples` passes (after one warmup pass) and prints a
/// one-line `min/mean/max` summary. Returns the mean nanoseconds per
/// pass so callers can assert coarse regressions if they wish.
pub fn bench<R>(name: &str, samples: u32, mut f: impl FnMut() -> R) -> f64 {
    assert!(samples > 0, "need at least one sample");
    std::hint::black_box(f());
    let mut min = f64::INFINITY;
    let mut max: f64 = 0.0;
    let mut total = 0.0;
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let ns = t0.elapsed().as_nanos() as f64;
        min = min.min(ns);
        max = max.max(ns);
        total += ns;
    }
    let mean = total / samples as f64;
    println!(
        "{name:40} {:>12} min {:>12} mean {:>12} max  ({samples} samples)",
        format_ns(min),
        format_ns(mean),
        format_ns(max)
    );
    if let Ok(path) = std::env::var("RMT3D_BENCH_JSON") {
        if let Err(e) = append_json_record(&path, name, min, mean, max, samples) {
            eprintln!("warning: cannot append bench record to {path}: {e}");
        }
    }
    mean
}

/// Records a deterministic statistic (cycle counts, committed
/// instructions, …) alongside the wall-clock records. Stats must be
/// bit-identical across runs on any machine, so the perf-regression
/// gate compares them exactly while wall times get a tolerance.
/// Appends `{"name", "stat"}` to `RMT3D_BENCH_JSON` when set.
pub fn record_stat(name: &str, value: f64) {
    println!("{name:40} {value:>12} (deterministic stat)");
    if let Ok(path) = std::env::var("RMT3D_BENCH_JSON") {
        if let Err(e) = append_stat_record(&path, name, value) {
            eprintln!("warning: cannot append stat record to {path}: {e}");
        }
    }
}

fn json_escape(name: &str) -> String {
    name.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c < ' ' => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn append_stat_record(path: &str, name: &str, value: f64) -> std::io::Result<()> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{{\"name\":\"{}\",\"stat\":{value}}}", json_escape(name))
}

/// Appends one `{"name", "min", "mean", "max", "samples"}` record to
/// the JSONL file at `path` (created on first use).
fn append_json_record(
    path: &str,
    name: &str,
    min: f64,
    mean: f64,
    max: f64,
    samples: u32,
) -> std::io::Result<()> {
    let escaped = json_escape(name);
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(
        f,
        "{{\"name\":\"{escaped}\",\"min\":{min},\"mean\":{mean},\"max\":{max},\"samples\":{samples}}}"
    )
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_mean() {
        let mean = bench("noop_spin", 3, || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(mean > 0.0);
    }

    #[test]
    fn json_mode_appends_parseable_records() {
        let path =
            std::env::temp_dir().join(format!("rmt3d-bench-json-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_json_record(path.to_str().unwrap(), "spin \"q\"", 10.0, 20.5, 31.0, 3).unwrap();
        append_json_record(path.to_str().unwrap(), "second", 1.0, 2.0, 3.0, 1).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"name\":\"spin \\\"q\\\"\",\"min\":10,\"mean\":20.5,\"max\":31,\"samples\":3}"
        );
        assert!(lines[1].contains("\"name\":\"second\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stat_records_are_parseable_and_exact() {
        let path =
            std::env::temp_dir().join(format!("rmt3d-bench-stat-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_stat_record(
            path.to_str().unwrap(),
            "gate/2d-a/gzip/total_cycles",
            48123.0,
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text,
            "{\"name\":\"gate/2d-a/gzip/total_cycles\",\"stat\":48123}\n"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn formats_scale() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("us"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
