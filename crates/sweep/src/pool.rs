//! The generic work-stealing pool underneath [`run_sweep`] and the
//! fault-injection campaign engine (`rmt3d-campaign`).
//!
//! [`run_pool`] owns the concurrency skeleton — a shared atomic cursor,
//! scoped worker threads, per-item panic isolation, and a coordinator
//! loop that funnels lifecycle events back to the (possibly non-`Send`)
//! caller — while the *work* is supplied as three closures: a cache
//! `probe`, the `exec` body, and a best-effort `save`. Records come
//! back in item order regardless of worker count, which is what makes
//! parallel runs byte-identical to serial ones.
//!
//! [`run_sweep`]: crate::run_sweep

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

/// One item's outcome, in item order in [`run_pool`]'s return value.
#[derive(Debug, Clone)]
pub struct PoolRecord<R> {
    /// The produced result, or the panic message of a failed item.
    pub outcome: Result<R, String>,
    /// True when `probe` satisfied the item without running `exec`.
    pub cached: bool,
    /// Wall-clock nanoseconds spent in `exec` (0 for cache hits).
    pub wall_nanos: u64,
}

/// Lifecycle notification delivered to the coordinator-side observer.
///
/// Events arrive in completion order (not item order); `index` is the
/// item's position in the input slice.
#[derive(Debug, Clone, Copy)]
pub enum PoolEvent {
    /// A worker began executing item `index` (not sent for cache hits).
    Started {
        /// Item position.
        index: usize,
    },
    /// `probe` satisfied item `index` without executing it.
    CacheHit {
        /// Item position.
        index: usize,
    },
    /// Item `index` finished executing.
    Finished {
        /// Item position.
        index: usize,
        /// False when the item panicked.
        ok: bool,
        /// Wall-clock nanoseconds the item's `exec` took.
        wall_nanos: u64,
        /// Estimated nanoseconds until the pool drains, extrapolated
        /// from the mean executed-item wall time.
        eta_nanos: u64,
    },
}

enum Msg<R> {
    Started {
        index: usize,
    },
    Done {
        index: usize,
        outcome: Box<Result<R, String>>,
        cached: bool,
        wall_nanos: u64,
    },
}

/// Extracts a human-readable message from a caught panic payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("panic with non-string payload")
    }
}

/// Runs `exec` over every item on `workers` threads and returns the
/// records in item order.
///
/// Per item: `probe` runs first (worker-side) and a `Some` result
/// becomes a cache-hit record; otherwise `exec` runs under
/// `catch_unwind` (a panicking item is isolated and reported as a
/// failed record) and a successful result is offered to `save`
/// (worker-side, best-effort — e.g. persisting to a result store).
/// `observe` runs on the calling thread only, so it may own non-`Send`
/// state such as a telemetry sink.
pub fn run_pool<I, R, P, E, V, O>(
    items: &[I],
    workers: usize,
    probe: P,
    exec: E,
    save: V,
    mut observe: O,
) -> Vec<PoolRecord<R>>
where
    I: Sync,
    R: Send,
    P: Fn(&I) -> Option<R> + Sync,
    E: Fn(&I) -> R + Sync,
    V: Fn(&I, &R) + Sync,
    O: FnMut(PoolEvent),
{
    let total = items.len();
    let workers = workers.max(1).min(total.max(1));
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<Msg<R>>();

    let mut records: Vec<Option<PoolRecord<R>>> = Vec::with_capacity(total);
    records.resize_with(total, || None);

    thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let probe = &probe;
            let exec = &exec;
            let save = &save;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                if let Some(result) = probe(item) {
                    let _ = tx.send(Msg::Done {
                        index: i,
                        outcome: Box::new(Ok(result)),
                        cached: true,
                        wall_nanos: 0,
                    });
                    continue;
                }
                let _ = tx.send(Msg::Started { index: i });
                let t0 = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| exec(item))).map_err(panic_message);
                let wall_nanos = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                if let Ok(result) = &outcome {
                    save(item, result);
                }
                let _ = tx.send(Msg::Done {
                    index: i,
                    outcome: Box::new(outcome),
                    cached: false,
                    wall_nanos,
                });
            });
        }
        drop(tx);

        // Coordinator: tallies, ETA, and the caller's observer.
        let mut done = 0usize;
        let mut executed = 0usize;
        let mut exec_wall_sum = 0u64;
        while done < total {
            let Ok(msg) = rx.recv() else { break };
            match msg {
                Msg::Started { index } => observe(PoolEvent::Started { index }),
                Msg::Done {
                    index,
                    outcome,
                    cached,
                    wall_nanos,
                } => {
                    done += 1;
                    if cached {
                        observe(PoolEvent::CacheHit { index });
                    } else {
                        executed += 1;
                        exec_wall_sum += wall_nanos;
                        let remaining = (total - done) as u64;
                        let mean = exec_wall_sum / executed.max(1) as u64;
                        observe(PoolEvent::Finished {
                            index,
                            ok: outcome.is_ok(),
                            wall_nanos,
                            eta_nanos: mean * remaining / workers as u64,
                        });
                    }
                    records[index] = Some(PoolRecord {
                        outcome: *outcome,
                        cached,
                        wall_nanos,
                    });
                }
            }
        }
    });

    records
        .into_iter()
        .map(|r| r.expect("every item reports exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn records_come_back_in_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let records = run_pool(&items, 8, |_| None, |&i| i * i, |_, _| {}, |_| {});
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.outcome, Ok((i * i) as u64));
            assert!(!r.cached);
        }
    }

    #[test]
    fn panics_are_isolated_per_item() {
        let items: Vec<u64> = (0..10).collect();
        let records = run_pool(
            &items,
            4,
            |_| None,
            |&i| {
                assert!(i != 3, "item three explodes");
                i
            },
            |_, _| {},
            |_| {},
        );
        assert!(records[3]
            .outcome
            .as_ref()
            .is_err_and(|e| e.contains("item three explodes")));
        assert_eq!(records.iter().filter(|r| r.outcome.is_ok()).count(), 9);
    }

    #[test]
    fn probe_hits_skip_exec_and_save() {
        let items: Vec<u64> = (0..20).collect();
        let executed = AtomicU64::new(0);
        let saved = AtomicU64::new(0);
        let records = run_pool(
            &items,
            3,
            |&i| (i % 2 == 0).then_some(i + 100),
            |&i| {
                executed.fetch_add(1, Ordering::Relaxed);
                i + 100
            },
            |_, _| {
                saved.fetch_add(1, Ordering::Relaxed);
            },
            |_| {},
        );
        assert_eq!(executed.load(Ordering::Relaxed), 10);
        assert_eq!(saved.load(Ordering::Relaxed), 10);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.outcome, Ok(i as u64 + 100));
            assert_eq!(r.cached, i % 2 == 0);
        }
    }

    #[test]
    fn observer_sees_every_lifecycle_event() {
        let items: Vec<u64> = (0..16).collect();
        let mut started = 0usize;
        let mut finished = 0usize;
        let mut hits = 0usize;
        run_pool(
            &items,
            4,
            |&i| (i < 4).then_some(i),
            |&i| i,
            |_, _| {},
            |ev| match ev {
                PoolEvent::Started { .. } => started += 1,
                PoolEvent::CacheHit { .. } => hits += 1,
                PoolEvent::Finished { .. } => finished += 1,
            },
        );
        assert_eq!(started, 12);
        assert_eq!(finished, 12);
        assert_eq!(hits, 4);
    }

    #[test]
    fn empty_input_returns_empty() {
        let items: Vec<u64> = Vec::new();
        let records = run_pool(&items, 4, |_| None, |&i| i, |_, _| {}, |_| {});
        assert!(records.is_empty());
    }
}
