//! Interconnect models for the `rmt3d` simulator (paper §3.4, Table 4):
//! die-to-die via bundles, horizontal wire lengths extracted from the
//! floorplans, metalization area, and power-optimized repeated-wire
//! power.
//!
//! # Examples
//!
//! ```
//! use rmt3d_interconnect::{BandwidthConfig, D2dViaModel};
//!
//! let cfg = BandwidthConfig::paper();
//! assert_eq!(cfg.core_vias(), 1025); // Table 4
//! let vias = D2dViaModel::paper();
//! let mw = vias.total_power(cfg.total_vias()).milliwatts();
//! assert!(mw < 20.0, "via power is marginal: {mw} mW");
//! ```

mod d2d;
mod wires;

pub use d2d::{BandwidthConfig, D2dViaModel, ViaBundle};
pub use wires::{activity, wire_report, WireModel, WireReport};
