//! Figure 7 — histogram of the checker's DFS frequency levels, and the
//! timing-margin analysis of §3.5 built on it.

use crate::model::{ProcessorModel, RunScale};
use crate::simulate::{simulate, SimConfig};
use rmt3d_reliability::TimingModel;
use rmt3d_rmt::DFS_LEVELS;
use rmt3d_units::TechNode;
use rmt3d_workload::Benchmark;

/// Fig. 7 output: fraction of DFS intervals at each normalized
/// frequency level (level `i` = `(i+1)/10 f`).
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Suite-aggregated histogram.
    pub histogram: [f64; DFS_LEVELS],
    /// Mean normalized frequency (paper: ~0.6 f, i.e. 1.26 GHz needed
    /// against a 2 GHz leader, §4).
    pub mean_fraction: f64,
}

impl Fig7Result {
    /// The modal frequency level as a fraction of peak.
    pub fn mode_fraction(&self) -> f64 {
        let (i, _) = self
            .histogram
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("fractions are finite"))
            .expect("histogram is non-empty");
        (i + 1) as f64 / DFS_LEVELS as f64
    }

    /// §3.5: expected per-instruction timing-error probability of the
    /// checker given its operating profile, relative to running every
    /// stage at full frequency. Uses the Table 6-derived timing model.
    pub fn timing_error_improvement(&self, node: TechNode, stages: u32) -> f64 {
        let m = TimingModel::for_node(node);
        let mut full = [0.0; DFS_LEVELS];
        full[DFS_LEVELS - 1] = 1.0;
        let at_full = m.checker_error_probability(&full, stages);
        let at_profile = m.checker_error_probability(&self.histogram, stages);
        at_full / at_profile.max(f64::MIN_POSITIVE)
    }

    /// Formats the histogram as a text table.
    pub fn to_table(&self) -> String {
        let mut s = String::from("Fig.7 Checker DFS frequency histogram\nfreq  intervals(%)\n");
        for (i, &f) in self.histogram.iter().enumerate() {
            s.push_str(&format!(
                "{:.1}f {:10.1}\n",
                (i + 1) as f64 / 10.0,
                f * 100.0
            ));
        }
        s.push_str(&format!("mean {:.2} f\n", self.mean_fraction));
        s
    }
}

/// Runs Fig. 7: aggregates the DFS histograms of 3d-2a runs across
/// benchmarks (weighted by intervals equally per benchmark).
pub fn run(benchmarks: &[Benchmark], scale: RunScale) -> Fig7Result {
    let mut histogram = [0.0; DFS_LEVELS];
    let mut mean = 0.0;
    for &b in benchmarks {
        let r = simulate(&SimConfig::nominal(ProcessorModel::ThreeD2A, scale), b);
        for (h, x) in histogram.iter_mut().zip(r.dfs_histogram) {
            *h += x / benchmarks.len() as f64;
        }
        mean += r.mean_checker_fraction / benchmarks.len() as f64;
    }
    Fig7Result {
        histogram,
        mean_fraction: mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig7Result {
        // Mid/high-IPC programs: the checker's operating point tracks
        // leader throughput, so memory-bound programs pull the whole
        // histogram down (they appear in the full-suite run).
        run(
            &[Benchmark::Gzip, Benchmark::Vortex, Benchmark::Gap],
            RunScale::quick(),
        )
    }

    #[test]
    fn histogram_peaks_near_06f() {
        let r = quick();
        let sum: f64 = r.histogram.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        // Paper: "For most of the time, the checker operates at 0.6
        // times the peak frequency".
        let mode = r.mode_fraction();
        assert!(
            (0.4..=0.8).contains(&mode),
            "DFS mode {mode} should sit near 0.6 f"
        );
        assert!(
            (0.45..=0.75).contains(&r.mean_fraction),
            "mean fraction {}",
            r.mean_fraction
        );
    }

    #[test]
    fn slack_makes_the_checker_orders_safer() {
        // §3.5's conclusion: the DFS profile leaves so much stage slack
        // that timing errors collapse versus full-speed operation.
        let r = quick();
        let improvement = r.timing_error_improvement(TechNode::N65, 12);
        // Any interval spent at 0.9-1.0 f dominates the expected error
        // probability, so the improvement is bounded by the residual
        // full-speed time; an order of magnitude is the paper's point.
        assert!(
            improvement > 10.0,
            "checker timing-error improvement {improvement}x"
        );
    }

    #[test]
    fn older_node_checker_is_even_safer() {
        let r = quick();
        let at65 = r.timing_error_improvement(TechNode::N65, 12);
        let at90 = r.timing_error_improvement(TechNode::N90, 12);
        // §4: less variability at 90 nm, so the same profile buys more.
        assert!(at90 > at65, "90nm {at90} vs 65nm {at65}");
    }

    #[test]
    fn table_output() {
        assert!(quick().to_table().contains("0.6f"));
    }
}
