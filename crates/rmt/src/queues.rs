//! Inter-core queues: RVQ, LVQ, BOQ and StB (paper §2, Fig. 1).
//!
//! Physically we model one in-order stream of [`CommittedOp`] records
//! (that is what the inter-die via bundle of Table 4 carries), but each
//! logical queue has its own capacity and occupancy: the register value
//! queue holds every instruction, the load value queue only loads, the
//! branch outcome queue only branches, and the store buffer holds stores
//! from leader-commit until the checker verifies them.

use rmt3d_cpu::CommittedOp;
use rmt3d_workload::OpClass;
use std::collections::VecDeque;

/// Capacities of the four logical queues.
///
/// Defaults are the paper's §2.1 sizing for a slack of 200 instructions:
/// 200-entry RVQ, 80-entry LVQ, 40-entry BOQ, 40-entry StB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Register value queue entries.
    pub rvq: usize,
    /// Load value queue entries.
    pub lvq: usize,
    /// Branch outcome queue entries.
    pub boq: usize,
    /// Store buffer entries.
    pub stb: usize,
}

impl QueueConfig {
    /// The paper's sizing (§2.1).
    pub fn paper() -> QueueConfig {
        QueueConfig {
            rvq: 200,
            lvq: 80,
            boq: 40,
            stb: 40,
        }
    }

    /// Validates capacities.
    ///
    /// # Errors
    ///
    /// Returns an error message when any capacity is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.rvq == 0 || self.lvq == 0 || self.boq == 0 || self.stb == 0 {
            return Err("queue capacities must be positive".to_string());
        }
        Ok(())
    }
}

impl Default for QueueConfig {
    fn default() -> QueueConfig {
        QueueConfig::paper()
    }
}

/// Occupancy snapshot of the logical queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueOccupancy {
    /// Entries in the RVQ.
    pub rvq: usize,
    /// Load entries in flight.
    pub lvq: usize,
    /// Branch entries in flight.
    pub boq: usize,
    /// Unverified stores in the StB.
    pub stb: usize,
}

/// The leader→trailer queue complex.
#[derive(Debug, Clone)]
pub struct IntercoreQueues {
    config: QueueConfig,
    stream: VecDeque<CommittedOp>,
    lvq: usize,
    boq: usize,
    stb: usize,
    /// High-water marks (for sizing studies).
    peak: QueueOccupancy,
    /// Total entries ever enqueued (for bandwidth/power accounting).
    pub total_enqueued: u64,
}

impl IntercoreQueues {
    /// Creates empty queues.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: QueueConfig) -> IntercoreQueues {
        config.validate().expect("invalid queue configuration");
        IntercoreQueues {
            config,
            stream: VecDeque::with_capacity(config.rvq),
            lvq: 0,
            boq: 0,
            stb: 0,
            peak: QueueOccupancy::default(),
            total_enqueued: 0,
        }
    }

    /// The configured capacities.
    pub fn config(&self) -> QueueConfig {
        self.config
    }

    /// Current occupancies.
    pub fn occupancy(&self) -> QueueOccupancy {
        QueueOccupancy {
            rvq: self.stream.len(),
            lvq: self.lvq,
            boq: self.boq,
            stb: self.stb,
        }
    }

    /// Highest occupancies observed.
    pub fn peak_occupancy(&self) -> QueueOccupancy {
        self.peak
    }

    /// RVQ occupancy as a fraction of capacity — the DFS controller's
    /// input signal.
    pub fn rvq_fill(&self) -> f64 {
        self.stream.len() as f64 / self.config.rvq as f64
    }

    /// True when the leader may commit `headroom` more instructions of
    /// any type without overflowing a queue. The leader checks this
    /// before its commit stage; a full queue stalls retirement.
    pub fn can_accept(&self, headroom: usize) -> bool {
        self.stream.len() + headroom <= self.config.rvq
            && self.lvq + headroom <= self.config.lvq
            && self.boq + headroom <= self.config.boq
            && self.stb + headroom <= self.config.stb
    }

    /// Enqueues a committed instruction.
    ///
    /// # Panics
    ///
    /// Panics if a queue would overflow — callers must gate leader commit
    /// with [`IntercoreQueues::can_accept`].
    pub fn push(&mut self, item: CommittedOp) {
        assert!(self.stream.len() < self.config.rvq, "RVQ overflow");
        match item.op.kind {
            OpClass::Load => {
                assert!(self.lvq < self.config.lvq, "LVQ overflow");
                self.lvq += 1;
            }
            OpClass::Store => {
                assert!(self.stb < self.config.stb, "StB overflow");
                self.stb += 1;
            }
            OpClass::Branch => {
                assert!(self.boq < self.config.boq, "BOQ overflow");
                self.boq += 1;
            }
            _ => {}
        }
        self.stream.push_back(item);
        self.total_enqueued += 1;
        let occ = self.occupancy();
        self.peak.rvq = self.peak.rvq.max(occ.rvq);
        self.peak.lvq = self.peak.lvq.max(occ.lvq);
        self.peak.boq = self.peak.boq.max(occ.boq);
        self.peak.stb = self.peak.stb.max(occ.stb);
    }

    /// The trailer-side dequeue view. The trailer pops from this; the
    /// caller must report each popped op back via
    /// [`IntercoreQueues::on_trailer_consumed`] to keep the logical
    /// occupancies in sync.
    pub fn stream_mut(&mut self) -> &mut VecDeque<CommittedOp> {
        &mut self.stream
    }

    /// Records that the trailer consumed (verified or squashed) an op of
    /// the given class, releasing its LVQ/BOQ/StB slot. Stores leave the
    /// StB here: the paper commits stores to memory only after checking.
    pub fn on_trailer_consumed(&mut self, kind: OpClass) {
        match kind {
            OpClass::Load => self.lvq = self.lvq.saturating_sub(1),
            OpClass::Store => self.stb = self.stb.saturating_sub(1),
            OpClass::Branch => self.boq = self.boq.saturating_sub(1),
            _ => {}
        }
    }

    /// Empties all queues (recovery squash).
    pub fn squash(&mut self) -> usize {
        let n = self.stream.len();
        self.stream.clear();
        self.lvq = 0;
        self.boq = 0;
        self.stb = 0;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt3d_workload::{ArchReg, MemRef, MicroOp};

    fn item(seq: u64, kind: OpClass) -> CommittedOp {
        let dest = kind.writes_register().then(|| ArchReg::new(1));
        let mem = kind.is_memory().then_some(MemRef { addr: 64, size: 8 });
        CommittedOp {
            op: MicroOp {
                seq,
                pc: 0x400000,
                kind,
                dest,
                imm: seq,
                mem_addr: MicroOp::pack_mem(mem),
                ..MicroOp::EMPTY
            },
            result: 0,
            src1_value: (kind == OpClass::Store) as u64 * 9,
            src2_value: 0,
            mem_value: (kind == OpClass::Load) as u64 * 7,
            commit_cycle: seq,
        }
    }

    #[test]
    fn paper_capacities() {
        let q = QueueConfig::paper();
        assert_eq!((q.rvq, q.lvq, q.boq, q.stb), (200, 80, 40, 40));
    }

    #[test]
    fn logical_occupancies_track_op_kinds() {
        let mut q = IntercoreQueues::new(QueueConfig::paper());
        q.push(item(0, OpClass::IntAlu));
        q.push(item(1, OpClass::Load));
        q.push(item(2, OpClass::Store));
        q.push(item(3, OpClass::Branch));
        let o = q.occupancy();
        assert_eq!((o.rvq, o.lvq, o.boq, o.stb), (4, 1, 1, 1));
        q.on_trailer_consumed(OpClass::Load);
        assert_eq!(q.occupancy().lvq, 0);
    }

    #[test]
    fn can_accept_respects_every_queue() {
        let mut q = IntercoreQueues::new(QueueConfig {
            rvq: 100,
            lvq: 80,
            boq: 40,
            stb: 2,
        });
        q.push(item(0, OpClass::Store));
        q.push(item(1, OpClass::Store));
        // StB is full: even though the RVQ has room, commit must stall.
        assert!(!q.can_accept(1));
        q.on_trailer_consumed(OpClass::Store);
        assert!(q.can_accept(1));
    }

    #[test]
    #[should_panic(expected = "StB overflow")]
    fn overflow_panics() {
        let mut q = IntercoreQueues::new(QueueConfig {
            rvq: 100,
            lvq: 80,
            boq: 40,
            stb: 1,
        });
        q.push(item(0, OpClass::Store));
        q.push(item(1, OpClass::Store));
    }

    #[test]
    fn squash_clears_everything() {
        let mut q = IntercoreQueues::new(QueueConfig::paper());
        for i in 0..10 {
            q.push(item(
                i,
                if i % 2 == 0 {
                    OpClass::Load
                } else {
                    OpClass::Store
                },
            ));
        }
        assert_eq!(q.squash(), 10);
        let o = q.occupancy();
        assert_eq!((o.rvq, o.lvq, o.boq, o.stb), (0, 0, 0, 0));
        assert_eq!(q.peak_occupancy().lvq, 5, "peaks survive squash");
    }

    #[test]
    fn fill_fraction() {
        let mut q = IntercoreQueues::new(QueueConfig {
            rvq: 10,
            lvq: 10,
            boq: 10,
            stb: 10,
        });
        for i in 0..5 {
            q.push(item(i, OpClass::IntAlu));
        }
        assert!((q.rvq_fill() - 0.5).abs() < 1e-12);
    }
}
