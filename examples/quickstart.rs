//! Quickstart: build the paper's proposed 3D reliable processor, run a
//! benchmark through the coupled leader/checker system, and report
//! performance, checker behaviour and chip temperature.
//!
//! ```sh
//! cargo run --release --example quickstart [benchmark]
//! ```

use rmt3d::power::CheckerPowerModel;
use rmt3d::thermal::{solve, ThermalConfig};
use rmt3d::{build_power_map, simulate, PowerMapConfig, ProcessorModel, RunScale, SimConfig};
use rmt3d_workload::Benchmark;

fn main() {
    let benchmark: Benchmark = std::env::args()
        .nth(1)
        .map(|s| s.parse().unwrap_or_else(|e| panic!("{e}")))
        .unwrap_or(Benchmark::Gzip);

    println!("== rmt3d quickstart: {benchmark} on the 3d-2a reliable processor ==\n");

    // 1. Cycle-level co-simulation of the leading core and the
    //    DFS-throttled checker (paper §2, Fig. 1).
    let scale = RunScale {
        warmup_instructions: 50_000,
        instructions: 500_000,
        thermal_grid: 50,
    };
    let cfg = SimConfig::nominal(ProcessorModel::ThreeD2A, scale);
    let perf = simulate(&cfg, benchmark);
    println!("leading core IPC        : {:.3}", perf.ipc());
    println!(
        "checker mean frequency  : {:.2} of 2 GHz peak ({:.2} GHz)",
        perf.mean_checker_fraction,
        2.0 * perf.mean_checker_fraction
    );
    println!(
        "L2: mean hit latency {:.1} cycles, {:.2} misses / 10K instructions",
        perf.l2.mean_hit_cycles(),
        perf.l2_misses_per_10k()
    );
    println!("\nDFS histogram (Fig. 7 for this benchmark):");
    for (i, f) in perf.dfs_histogram.iter().enumerate() {
        println!(
            "  {:.1}f {:5.1}% {}",
            (i + 1) as f64 / 10.0,
            f * 100.0,
            "#".repeat((f * 60.0).round() as usize)
        );
    }
    println!(
        "  shape: {}",
        rmt3d::report::histogram_line(&perf.dfs_histogram)
    );

    // 2. Power map and steady-state thermals (paper §3.2).
    let chip = build_power_map(
        &perf,
        &PowerMapConfig::with_checker(CheckerPowerModel::optimistic_7w()),
    );
    println!(
        "\nchip power: total {:.1} W (leader {:.1}, checker {:.1}, L2+wires {:.1})",
        chip.total().0,
        chip.leader.0,
        chip.checker.0,
        chip.l2.0
    );
    let thermal = solve(
        &ProcessorModel::ThreeD2A.floorplan(),
        &chip.map,
        &ThermalConfig::paper(),
    )
    .expect("thermal solve");
    println!(
        "peak temperature: {} (lower die {}, stacked die {})",
        thermal.peak(),
        thermal.die_peak(0),
        thermal.die_peak(1)
    );
}
