//! Combined bimodal / 2-level branch predictor (paper Table 1).
//!
//! The leading core uses a per-core combined predictor: a 16384-entry
//! bimodal table, a 2-level predictor with a 16384-entry level-1 history
//! table (12 bits of history) indexing a 16384-entry level-2 pattern
//! table, and a 16384-entry chooser. The trailing core needs no predictor
//! at all: branch outcomes arrive through the BOQ (Fig. 1).

/// 2-bit saturating counter helpers.
#[inline]
fn bump(counter: &mut u8, taken: bool) {
    if taken {
        if *counter < 3 {
            *counter += 1;
        }
    } else if *counter > 0 {
        *counter -= 1;
    }
}

#[inline]
fn predicts_taken(counter: u8) -> bool {
    counter >= 2
}

/// Combined bimodal + 2-level predictor with a chooser.
#[derive(Debug, Clone)]
pub struct CombinedPredictor {
    bimodal: Vec<u8>,
    /// Level 1: per-branch history registers.
    history: Vec<u16>,
    history_bits: u32,
    /// Level 2: pattern table of 2-bit counters.
    pattern: Vec<u8>,
    /// Chooser: 2-bit counters, high = trust the 2-level side.
    chooser: Vec<u8>,
    lookups: u64,
    mispredicts: u64,
}

impl CombinedPredictor {
    /// Builds the Table 1 predictor: 16K-entry tables, 12-bit history.
    pub fn table1() -> CombinedPredictor {
        CombinedPredictor::new(16384, 16384, 12, 16384)
    }

    /// Builds a predictor with the given table sizes.
    ///
    /// # Panics
    ///
    /// Panics if a table size is zero or not a power of two, or history
    /// bits exceed 16.
    pub fn new(
        bimodal_entries: usize,
        l1_entries: usize,
        history_bits: u32,
        l2_entries: usize,
    ) -> CombinedPredictor {
        for n in [bimodal_entries, l1_entries, l2_entries] {
            assert!(
                n > 0 && n.is_power_of_two(),
                "table sizes must be powers of two"
            );
        }
        assert!(history_bits <= 16, "history register is 16 bits wide");
        CombinedPredictor {
            bimodal: vec![2; bimodal_entries], // weakly taken
            history: vec![0; l1_entries],
            history_bits,
            pattern: vec![2; l2_entries],
            chooser: vec![2; bimodal_entries],
            lookups: 0,
            mispredicts: 0,
        }
    }

    #[inline]
    fn bimodal_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.bimodal.len() - 1)
    }

    #[inline]
    fn l1_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.history.len() - 1)
    }

    #[inline]
    fn pattern_index(&self, pc: u64, hist: u16) -> usize {
        // Gshare-style hash of history and PC into the pattern table.
        (((pc >> 2) as usize) ^ (hist as usize)) & (self.pattern.len() - 1)
    }

    /// Predicts `pc`, then updates all tables with the actual outcome.
    /// Returns the prediction made *before* the update.
    pub fn predict_and_train(&mut self, pc: u64, taken: bool) -> bool {
        self.lookups += 1;
        let bi = self.bimodal_index(pc);
        let l1 = self.l1_index(pc);
        let hist = self.history[l1] & ((1 << self.history_bits) - 1);
        let pt = self.pattern_index(pc, hist);

        let bimodal_pred = predicts_taken(self.bimodal[bi]);
        let twolevel_pred = predicts_taken(self.pattern[pt]);
        let use_twolevel = predicts_taken(self.chooser[bi]);
        let pred = if use_twolevel {
            twolevel_pred
        } else {
            bimodal_pred
        };

        // Train: chooser moves toward whichever component was right
        // (when they disagree).
        if bimodal_pred != twolevel_pred {
            bump(&mut self.chooser[bi], twolevel_pred == taken);
        }
        bump(&mut self.bimodal[bi], taken);
        bump(&mut self.pattern[pt], taken);
        self.history[l1] = (hist << 1) | taken as u16;

        if pred != taken {
            self.mispredicts += 1;
        }
        pred
    }

    /// Total predictions made.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Total mispredictions.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction rate (0 when never used).
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }

    /// Resets statistics, keeping learned state.
    pub fn reset_stats(&mut self) {
        self.lookups = 0;
        self.mispredicts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut p = CombinedPredictor::table1();
        for _ in 0..64 {
            p.predict_and_train(0x400_000, true);
        }
        p.reset_stats();
        for _ in 0..1000 {
            p.predict_and_train(0x400_000, true);
        }
        assert_eq!(p.mispredicts(), 0);
    }

    #[test]
    fn learns_periodic_pattern_via_history() {
        // Period-4 pattern TTTN is hopeless for bimodal (75% taken) but
        // perfectly learnable with 12 bits of history.
        let mut p = CombinedPredictor::table1();
        let pattern = [true, true, true, false];
        for i in 0..4000usize {
            p.predict_and_train(0x400_100, pattern[i % 4]);
        }
        p.reset_stats();
        for i in 0..4000usize {
            p.predict_and_train(0x400_100, pattern[i % 4]);
        }
        assert!(
            p.mispredict_rate() < 0.01,
            "2-level should nail a periodic pattern, got {}",
            p.mispredict_rate()
        );
    }

    #[test]
    fn random_branches_mispredict_about_half() {
        let mut p = CombinedPredictor::table1();
        let mut x = 9u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & 1 == 1
        };
        for _ in 0..20_000 {
            p.predict_and_train(0x400_200, rng());
        }
        let r = p.mispredict_rate();
        assert!(r > 0.4 && r < 0.6, "random branch rate {r}");
    }

    #[test]
    fn distinct_pcs_do_not_interfere_much() {
        let mut p = CombinedPredictor::table1();
        for i in 0..256u64 {
            // Alternate biases across sites.
            for _ in 0..100 {
                p.predict_and_train(0x400_000 + i * 16, i % 2 == 0);
            }
        }
        p.reset_stats();
        for i in 0..256u64 {
            for _ in 0..100 {
                p.predict_and_train(0x400_000 + i * 16, i % 2 == 0);
            }
        }
        assert!(p.mispredict_rate() < 0.02);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn rejects_non_power_of_two() {
        let _ = CombinedPredictor::new(1000, 16384, 12, 16384);
    }

    #[test]
    fn counter_saturation() {
        let mut c = 3u8;
        bump(&mut c, true);
        assert_eq!(c, 3);
        let mut c = 0u8;
        bump(&mut c, false);
        assert_eq!(c, 0);
    }
}
