//! §3.4 — interconnect evaluation: die-to-die via budget, wire lengths,
//! metalization areas, and interconnect power for the three chips.

use rmt3d_floorplan::ChipFloorplan;
use rmt3d_interconnect::{wire_report, BandwidthConfig, D2dViaModel, WireModel};
use rmt3d_units::{Millimeters, SquareMillimeters, Watts};

/// Everything §3.4 reports.
#[derive(Debug, Clone, PartialEq)]
pub struct InterconnectReport {
    /// Core-to-core d2d vias (paper: 1025).
    pub core_vias: u32,
    /// Total d2d vias including the L2 pillar (paper: 1409).
    pub total_vias: u32,
    /// Total via power (paper: 15.49 mW).
    pub via_power: Watts,
    /// Total via area (paper: 0.07 mm²).
    pub via_area: SquareMillimeters,
    /// 2D inter-core wire length (paper: 7490 mm).
    pub wire_2d: Millimeters,
    /// 3D inter-core wire length (paper: 4279 mm).
    pub wire_3d: Millimeters,
    /// 2D inter-core metal area (paper: 1.57 mm²).
    pub metal_2d: SquareMillimeters,
    /// 3D inter-core metal area (paper: 0.898 mm²).
    pub metal_3d: SquareMillimeters,
    /// L2 metal areas for 2d-a / 2d-2a / 3d-2a (paper: 2.36 / 5.49 /
    /// 4.61 mm²).
    pub l2_metal: [SquareMillimeters; 3],
    /// Total interconnect power for 2d-a / 2d-2a / 3d-2a (paper: 5.1 /
    /// 15.5 / 12.1 W).
    pub power: [Watts; 3],
    /// Power of the wires feeding the checker in 3D (paper: 1.8 W).
    pub checker_feed_power: Watts,
}

impl InterconnectReport {
    /// Metal-area saving of 3D over 2D inter-core wiring (paper: 42%).
    pub fn intercore_metal_saving(&self) -> f64 {
        1.0 - self.metal_3d / self.metal_2d
    }

    /// Net power saving of 3d-2a versus 2d-2a (paper: 3.4 W).
    pub fn power_saving_vs_2d2a(&self) -> Watts {
        self.power[1] - self.power[2]
    }

    /// Formats the report as text.
    pub fn to_table(&self) -> String {
        format!(
            "Sec 3.4 Interconnect evaluation\n\
             d2d vias: core {} + L2 {} = {} total\n\
             via power {:.2} mW, via area {:.3} mm^2\n\
             inter-core wire: 2D {:.0} mm -> 3D {:.0} mm\n\
             inter-core metal: 2D {:.3} mm^2 -> 3D {:.3} mm^2 ({:.0}% saving)\n\
             L2 metal (2d-a/2d-2a/3d-2a): {:.2} / {:.2} / {:.2} mm^2\n\
             interconnect power (2d-a/2d-2a/3d-2a): {:.1} / {:.1} / {:.1} W\n\
             checker feed power: {:.1} W; 3D saves {:.1} W vs 2d-2a\n",
            self.core_vias,
            self.total_vias - self.core_vias,
            self.total_vias,
            self.via_power.milliwatts(),
            self.via_area.0,
            self.wire_2d.0,
            self.wire_3d.0,
            self.metal_2d.0,
            self.metal_3d.0,
            100.0 * self.intercore_metal_saving(),
            self.l2_metal[0].0,
            self.l2_metal[1].0,
            self.l2_metal[2].0,
            self.power[0].0,
            self.power[1].0,
            self.power[2].0,
            self.checker_feed_power.0,
            self.power_saving_vs_2d2a().0
        )
    }
}

/// Computes the §3.4 report from the floorplans and via models.
pub fn run() -> InterconnectReport {
    let cfg = BandwidthConfig::paper();
    let vias = D2dViaModel::paper();
    let wm = WireModel::paper();
    let plans = [
        ChipFloorplan::two_d_a(),
        ChipFloorplan::two_d_2a(),
        ChipFloorplan::three_d_2a(),
    ];
    let reports = [
        wire_report(&plans[0], &cfg),
        wire_report(&plans[1], &cfg),
        wire_report(&plans[2], &cfg),
    ];
    InterconnectReport {
        core_vias: cfg.core_vias(),
        total_vias: cfg.total_vias(),
        via_power: vias.total_power(cfg.total_vias()),
        via_area: vias.total_area(cfg.total_vias()),
        wire_2d: reports[1].intercore_length,
        wire_3d: reports[2].intercore_length,
        metal_2d: reports[1].intercore_metal(&wm),
        metal_3d: reports[2].intercore_metal(&wm),
        l2_metal: [
            reports[0].l2_metal(&wm),
            reports[1].l2_metal(&wm),
            reports[2].l2_metal(&wm),
        ],
        power: [
            reports[0].total_power(&wm),
            reports[1].total_power(&wm),
            reports[2].total_power(&wm),
        ],
        checker_feed_power: reports[2].intercore_power(&wm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn via_numbers_match_table4() {
        let r = run();
        assert_eq!(r.core_vias, 1025);
        assert_eq!(r.total_vias, 1409);
        assert!((r.via_power.milliwatts() - 15.49).abs() < 2.0);
        assert!((r.via_area.0 - 0.07).abs() < 0.01);
    }

    #[test]
    fn wire_savings_match_section_3_4() {
        let r = run();
        // Paper: 42% metal saving on inter-core wires; band ±15 points.
        let s = r.intercore_metal_saving();
        assert!((0.27..0.60).contains(&s), "saving {s}");
        // L2 metal ordering 2d-a < 3d-2a < 2d-2a.
        assert!(r.l2_metal[0] < r.l2_metal[2]);
        assert!(r.l2_metal[2] < r.l2_metal[1]);
    }

    #[test]
    fn power_numbers_in_paper_bands() {
        let r = run();
        // 5.1 / 15.5 / 12.1 W with generous bands.
        assert!((3.0..8.0).contains(&r.power[0].0), "2d-a {}", r.power[0]);
        assert!((11.0..20.0).contains(&r.power[1].0), "2d-2a {}", r.power[1]);
        assert!((8.0..16.0).contains(&r.power[2].0), "3d-2a {}", r.power[2]);
        assert!(r.power_saving_vs_2d2a().0 > 1.0);
        // The checker feed is cheap (paper: 1.8 W).
        assert!((0.8..3.0).contains(&r.checker_feed_power.0));
    }

    #[test]
    fn report_formats() {
        assert!(run().to_table().contains("d2d vias"));
    }
}
