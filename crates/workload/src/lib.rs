//! Synthetic SPEC2k-like workloads for the `rmt3d` simulator.
//!
//! The paper evaluates 19 SPEC2k programs (7 integer, 12 floating point)
//! over 100M-instruction SimPoint windows. We do not have SPEC binaries or
//! an Alpha ISA simulator, so this crate provides the closest synthetic
//! equivalent: a deterministic, seeded generator of *micro-op traces* with
//! per-program instruction mixes, register-dependence distances, branch
//! behaviour and memory working sets, calibrated so the aggregate
//! behaviour (IPC on the paper's core, L2 miss rates, branch MPKI) lands
//! in the bands the paper reports.
//!
//! The trace is what both the leading and trailing cores consume — which
//! mirrors the paper's redundant-multithreading model, where the trailer
//! re-executes the leader's committed instruction stream.
//!
//! # Examples
//!
//! ```
//! use rmt3d_workload::{Benchmark, TraceGenerator};
//!
//! let mut gen = TraceGenerator::new(Benchmark::Mcf.profile());
//! let op = gen.next_op();
//! assert!(op.latency() >= 1);
//! // Traces are deterministic: the same benchmark yields the same stream.
//! let mut gen2 = TraceGenerator::new(Benchmark::Mcf.profile());
//! assert_eq!(gen2.next_op(), op);
//! ```

mod generator;
mod op;
pub mod prng;
mod profile;
mod spec2k;

pub use generator::{MemoryRegions, TraceGenerator};
pub use op::{ArchReg, BranchInfo, MemRef, MicroOp, OpClass, INT_REG_COUNT, REG_COUNT};
pub use prng::SplitMix64;
pub use profile::{InstructionMix, MemoryProfile, WorkloadProfile};
pub use spec2k::{Benchmark, Suite};
