//! In-daemon metrics: live counters, latency histograms, the
//! append-only `daemon.metrics.jsonl` time-series ring, and the raw
//! span-event log behind `rmt3d trace-report --chrome-out`.
//!
//! [`DaemonMetrics`] is the daemon's shared instrument panel: lock-free
//! atomic counters for connection/watcher/error tallies, a logical tick
//! clock for span timestamps, and a mutex-guarded
//! [`MetricsRegistry`] holding per-kind `Log2Histogram`s of queue-wait
//! and execution latency. The `stats` protocol verb renders it as one
//! strict-JSON line; [`MetricsRing`] persists periodic snapshots so
//! dashboards can plot the daemon *over time*, not just now.
//!
//! Both files follow the queue journal's durability rules: append one
//! JSON line, flush before moving on, skip (never die on) corrupt or
//! torn lines at replay. The ring is additionally bounded — when the
//! file exceeds twice the retention cap it is compacted down to the
//! newest `cap` samples with an atomic rewrite, so a long-lived daemon
//! cannot grow it without bound.

use rmt3d_obs::metrics_to_json;
use rmt3d_telemetry::json::{parse, JsonObject, JsonValue};
use rmt3d_telemetry::{Event, MetricsRegistry};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Time-series ring file name inside the daemon state directory.
pub const METRICS_RING_FILE: &str = "daemon.metrics.jsonl";

/// Raw span/event log file name inside the daemon state directory.
pub const TRACE_LOG_FILE: &str = "daemon.trace.jsonl";

/// Samples retained by the ring after compaction.
pub const METRICS_RING_CAP: usize = 512;

/// Live daemon instrumentation, shared by every thread.
#[derive(Debug, Default)]
pub struct DaemonMetrics {
    connections_total: AtomicU64,
    connections_open: AtomicU64,
    cache_evictions: AtomicU64,
    metrics_write_errors: AtomicU64,
    ticks: AtomicU64,
    registry: Mutex<MetricsRegistry>,
}

impl DaemonMetrics {
    /// A fresh panel with all counters at zero.
    pub fn new() -> DaemonMetrics {
        DaemonMetrics::default()
    }

    /// Next logical tick — the monotonic, wall-clock-free timestamp
    /// threaded through job-lifecycle span events so traces stay
    /// byte-deterministic for a fixed submission order.
    pub fn tick(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed)
    }

    /// A client connected.
    pub fn connection_opened(&self) {
        self.connections_total.fetch_add(1, Ordering::Relaxed);
        self.connections_open.fetch_add(1, Ordering::Relaxed);
    }

    /// A client disconnected.
    pub fn connection_closed(&self) {
        self.connections_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// Currently-open client connections.
    pub fn connections_open(&self) -> u64 {
        self.connections_open.load(Ordering::Relaxed)
    }

    /// Connections accepted over the daemon's lifetime.
    pub fn connections_total(&self) -> u64 {
        self.connections_total.load(Ordering::Relaxed)
    }

    /// Result-cache entries evicted by the post-job LRU pass.
    pub fn note_evictions(&self, entries: u64) {
        self.cache_evictions.fetch_add(entries, Ordering::Relaxed);
    }

    /// Total evicted cache entries.
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions.load(Ordering::Relaxed)
    }

    /// A per-run metrics/status artifact failed to persist. This is the
    /// counter that replaces silent stderr-only degradation: operators
    /// see it in `stats` instead of having to tail the daemon log.
    pub fn note_metrics_write_error(&self) {
        self.metrics_write_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Total persistence failures observed.
    pub fn metrics_write_errors(&self) -> u64 {
        self.metrics_write_errors.load(Ordering::Relaxed)
    }

    /// Records how long a job of `kind` sat queued before leasing.
    pub fn record_queue_wait(&self, kind: &str, millis: u64) {
        let mut reg = self.lock_registry();
        reg.record_hist(&format!("daemon_queue_wait_ms_{kind}"), millis);
        reg.record(&format!("daemon_queue_wait_ms_{kind}"), millis as f64);
    }

    /// Records how long a job of `kind` spent executing on the pool.
    pub fn record_exec(&self, kind: &str, millis: u64) {
        let mut reg = self.lock_registry();
        reg.record_hist(&format!("daemon_exec_ms_{kind}"), millis);
        reg.record(&format!("daemon_exec_ms_{kind}"), millis as f64);
    }

    /// Records a point-in-time gauge into the summary series (queue
    /// depth at sample time, and friends).
    pub fn record_gauge(&self, name: &str, value: f64) {
        self.lock_registry().record(name, value);
    }

    /// The cumulative registry rendered as the shared
    /// `{"series":…,"hist":…}` metrics document — the same schema
    /// `metrics.json` uses, so `parse_metrics` and the dashboard's
    /// histogram renderer work on daemon data unchanged.
    pub fn metrics_doc(&self) -> String {
        metrics_to_json(&self.lock_registry())
    }

    fn lock_registry(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        self.registry.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Bounded, corrupt-tolerant `daemon.metrics.jsonl` time-series.
#[derive(Debug)]
pub struct MetricsRing {
    path: PathBuf,
    file: File,
    lines: usize,
    cap: usize,
}

impl MetricsRing {
    /// Opens (creating if necessary) the ring file, counting the valid
    /// samples already present. Corrupt or torn lines are ignored here
    /// and dropped at the next compaction; they are never fatal.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be
    /// created or opened for append.
    pub fn open(path: &Path, cap: usize) -> io::Result<MetricsRing> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let lines = match fs::read_to_string(path) {
            Ok(text) => text
                .lines()
                .filter(|l| parse_sample_line(l).is_some())
                .count(),
            Err(_) => 0,
        };
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(MetricsRing {
            path: path.to_path_buf(),
            file,
            lines,
            cap: cap.max(1),
        })
    }

    /// Valid samples currently on disk.
    pub fn len(&self) -> usize {
        self.lines
    }

    /// True when no valid sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.lines == 0
    }

    /// Appends one sample line (flushed before returning) and compacts
    /// the file down to the newest `cap` samples once it holds twice
    /// that many — an atomic rewrite, so a crash mid-compaction leaves
    /// either the old or the new file, never a mix.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error; callers are expected to count
    /// failures (see [`DaemonMetrics::note_metrics_write_error`])
    /// rather than die.
    pub fn append(&mut self, line: &str) -> io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        self.lines += 1;
        if self.lines >= self.cap * 2 {
            self.compact()?;
        }
        Ok(())
    }

    fn compact(&mut self) -> io::Result<()> {
        let text = fs::read_to_string(&self.path)?;
        let valid: Vec<&str> = text
            .lines()
            .filter(|l| parse_sample_line(l).is_some())
            .collect();
        let keep = valid.len().saturating_sub(self.cap);
        let mut out = String::new();
        for line in &valid[keep..] {
            out.push_str(line);
            out.push('\n');
        }
        rmt3d_obs::ledger::write_atomic(&self.path, &out)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.lines = valid.len() - keep;
        Ok(())
    }
}

/// Parses one ring line, returning `None` for corrupt or torn input
/// (the replay filter both the ring and its readers share).
pub fn parse_sample_line(line: &str) -> Option<JsonValue> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let v = parse(line).ok()?;
    // A sample must at least carry its timestamp; anything else is a
    // foreign or torn line.
    v.get("unix_ms").and_then(JsonValue::as_u64)?;
    Some(v)
}

/// Renders one time-series sample. `gauges` are the job-state counts
/// at sample time, the cache fields come from the shared result store,
/// and the cumulative `metrics` document is embedded whole so a single
/// tail line is enough to rebuild every histogram.
#[allow(clippy::too_many_arguments)]
pub fn sample_line(
    unix_ms: u64,
    queued: u64,
    running: u64,
    done: u64,
    failed: u64,
    cancelled: u64,
    watchers: u64,
    cache: &CacheCounters,
    metrics: &DaemonMetrics,
) -> String {
    let mut o = JsonObject::new();
    o.u64("unix_ms", unix_ms)
        .u64("queued", queued)
        .u64("running", running)
        .u64("done", done)
        .u64("failed", failed)
        .u64("cancelled", cancelled)
        .u64("depth", queued + running)
        .u64("watchers", watchers)
        .u64("connections", metrics.connections_open())
        .u64("connections_total", metrics.connections_total())
        .u64("cache_hits", cache.hits)
        .u64("cache_misses", cache.misses)
        .u64("cache_verify_failures", cache.verify_failures)
        .u64("cache_entries", cache.entries)
        .u64("cache_bytes", cache.bytes)
        .u64("cache_evictions", metrics.cache_evictions())
        .u64("metrics_write_errors", metrics.metrics_write_errors())
        .raw("metrics", &metrics.metrics_doc());
    o.finish()
}

/// Cache counter snapshot threaded into [`sample_line`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub verify_failures: u64,
    pub entries: u64,
    pub bytes: u64,
}

/// Append-only raw event log (`daemon.trace.jsonl`): every
/// job-lifecycle span event as one codec JSONL line, flushed before
/// returning. `rmt3d trace-report` reads it directly, and
/// `--chrome-out` re-renders it through `TraceEventSink` — which is
/// `Rc`-based and single-threaded, so the multi-threaded daemon logs
/// raw lines instead of holding the sink itself.
#[derive(Debug)]
pub struct TraceLog {
    file: File,
}

impl TraceLog {
    /// Opens (creating if necessary) the log for append.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn open(path: &Path) -> io::Result<TraceLog> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(TraceLog { file })
    }

    /// Appends one event (non-deterministic encoding: the log keeps
    /// real wall durations; the Chrome converter quarantines them).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn append(&mut self, event: &Event) -> io::Result<()> {
        self.file.write_all(event.to_json_line(false).as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rmt3d-metrics-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(metrics: &DaemonMetrics, unix_ms: u64) -> String {
        sample_line(
            unix_ms,
            2,
            1,
            5,
            0,
            1,
            3,
            &CacheCounters {
                hits: 10,
                misses: 4,
                verify_failures: 0,
                entries: 14,
                bytes: 9_000,
            },
            metrics,
        )
    }

    #[test]
    fn sample_lines_are_strict_json_with_embedded_metrics() {
        let metrics = DaemonMetrics::new();
        metrics.record_queue_wait("sweep", 120);
        metrics.record_exec("sweep", 900);
        metrics.note_metrics_write_error();
        let line = sample(&metrics, 1_000);
        let v = parse(&line).expect("sample must be strict JSON");
        assert_eq!(v.get("depth").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(
            v.get("metrics_write_errors").and_then(JsonValue::as_u64),
            Some(1)
        );
        let doc = v.get("metrics").expect("embedded metrics document");
        assert!(doc.get("hist").is_some());
        // The embedded document round-trips through the shared parser.
        let parsed = rmt3d_obs::parse_metrics(&metrics.metrics_doc()).unwrap();
        let hist = parsed.hist("daemon_queue_wait_ms_sweep").unwrap();
        assert_eq!(hist.samples, 1);
    }

    #[test]
    fn ring_replays_past_a_torn_tail_without_inventing_data() {
        let dir = tmp("torn");
        let path = dir.join(METRICS_RING_FILE);
        let metrics = DaemonMetrics::new();
        {
            let mut ring = MetricsRing::open(&path, 16).unwrap();
            ring.append(&sample(&metrics, 1)).unwrap();
            ring.append(&sample(&metrics, 2)).unwrap();
        }
        // Simulate a torn write: half a line at the tail.
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("{\"unix_ms\":3,\"queued\":");
        fs::write(&path, &text).unwrap();
        let ring = MetricsRing::open(&path, 16).unwrap();
        assert_eq!(ring.len(), 2, "torn tail must not count as a sample");
        let replayed: Vec<JsonValue> = fs::read_to_string(&path)
            .unwrap()
            .lines()
            .filter_map(parse_sample_line)
            .collect();
        assert_eq!(replayed.len(), 2);
        assert_eq!(
            replayed.last().unwrap().get("unix_ms").unwrap().as_u64(),
            Some(2),
            "no invented data after the torn tail"
        );
    }

    #[test]
    fn ring_compacts_to_cap_and_survives_garbage_lines() {
        let dir = tmp("compact");
        let path = dir.join(METRICS_RING_FILE);
        fs::write(&path, "not json at all\n\n{\"foreign\":true}\n").unwrap();
        let metrics = DaemonMetrics::new();
        let mut ring = MetricsRing::open(&path, 4).unwrap();
        assert_eq!(ring.len(), 0, "garbage lines are not samples");
        for i in 0..20 {
            ring.append(&sample(&metrics, i)).unwrap();
        }
        let text = fs::read_to_string(&path).unwrap();
        let samples: Vec<JsonValue> = text.lines().filter_map(parse_sample_line).collect();
        assert!(
            samples.len() <= 8,
            "ring must stay bounded, got {}",
            samples.len()
        );
        // Compaction keeps the newest samples and drops the garbage.
        assert_eq!(
            samples.last().unwrap().get("unix_ms").unwrap().as_u64(),
            Some(19)
        );
        assert!(!fs::read_to_string(&path).unwrap().contains("foreign"));
    }

    #[test]
    fn counters_track_connections_and_evictions() {
        let m = DaemonMetrics::new();
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        m.note_evictions(3);
        assert_eq!(m.connections_open(), 1);
        assert_eq!(m.connections_total(), 2);
        assert_eq!(m.cache_evictions(), 3);
        assert_eq!(m.tick(), 0);
        assert_eq!(m.tick(), 1);
    }

    #[test]
    fn trace_log_appends_parseable_codec_lines() {
        let dir = tmp("trace");
        let path = dir.join(TRACE_LOG_FILE);
        let mut log = TraceLog::open(&path).unwrap();
        log.append(&Event::JobSpanBegin {
            job: 7,
            phase: "queued",
            ts: 1,
        })
        .unwrap();
        log.append(&Event::JobSpanEnd {
            job: 7,
            phase: "queued",
            ts: 2,
            wall_nanos: 55,
        })
        .unwrap();
        let text = fs::read_to_string(&path).unwrap();
        for line in text.lines() {
            rmt3d_telemetry::ParsedEvent::from_json_line(line).unwrap();
        }
        assert_eq!(text.lines().count(), 2);
    }
}
