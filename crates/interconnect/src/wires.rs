//! Horizontal on-die interconnect: lengths, metalization area, and
//! power-optimized repeated-wire power (paper §3.4, methodology of \[6\]).

use crate::d2d::{BandwidthConfig, ViaBundle};
use rmt3d_floorplan::{BlockId, ChipFloorplan};
use rmt3d_units::{Millimeters, SquareMillimeters, Watts};

/// Electrical model of power-optimized repeated global wires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireModel {
    /// Global-layer wire pitch in nm (65 nm node: 210 nm, §3.4).
    pub pitch_nm: f64,
    /// Effective capacitance (wire + repeaters) per mm, in farads.
    pub cap_per_mm: f64,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Clock frequency (Hz).
    pub freq: f64,
}

impl WireModel {
    /// The paper's 65 nm global wires at 2 GHz / 1 V.
    ///
    /// `cap_per_mm` is the one calibrated electrical constant: set so
    /// the §3.4 powers reproduce (1.8 W for the 3D checker-feed wires,
    /// 5.1 W for the 2d-a L2 network).
    pub fn paper() -> WireModel {
        WireModel {
            pitch_nm: 210.0,
            cap_per_mm: 0.30e-12,
            vdd: 1.0,
            freq: 2e9,
        }
    }

    /// Metalization area of `length` of wire (pitch x length, §3.4).
    pub fn metal_area(&self, length: Millimeters) -> SquareMillimeters {
        SquareMillimeters(length.0 * self.pitch_nm * 1e-6)
    }

    /// Dynamic power of `length` of wire toggling with the given
    /// activity factor.
    pub fn power(&self, length: Millimeters, activity: f64) -> Watts {
        Watts(length.0 * self.cap_per_mm * self.vdd * self.vdd * self.freq * activity)
    }
}

impl Default for WireModel {
    fn default() -> WireModel {
        WireModel::paper()
    }
}

/// Calibrated wire activity factors (effective toggle rates) for the
/// two §3.4 traffic classes.
pub mod activity {
    /// Inter-core (RVQ/LVQ/BOQ/StB) wires: the leader streams operands
    /// and results continuously at commit bandwidth.
    pub const INTERCORE: f64 = 0.70;
    /// NUCA L2 network wires.
    pub const L2_NETWORK: f64 = 0.85;
}

/// Wire-length report for one chip model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireReport {
    /// Total inter-core signal wire length (bits x routed distance).
    pub intercore_length: Millimeters,
    /// Total L2 network wire length.
    pub l2_length: Millimeters,
}

impl WireReport {
    /// Inter-core metal area under a wire model.
    pub fn intercore_metal(&self, m: &WireModel) -> SquareMillimeters {
        m.metal_area(self.intercore_length)
    }

    /// L2 metal area.
    pub fn l2_metal(&self, m: &WireModel) -> SquareMillimeters {
        m.metal_area(self.l2_length)
    }

    /// Inter-core wire power.
    pub fn intercore_power(&self, m: &WireModel) -> Watts {
        m.power(self.intercore_length, activity::INTERCORE)
    }

    /// L2 network wire power.
    pub fn l2_power(&self, m: &WireModel) -> Watts {
        m.power(self.l2_length, activity::L2_NETWORK)
    }

    /// Total interconnect power (the paper's 5.1 / 15.5 / 12.1 W
    /// figures).
    pub fn total_power(&self, m: &WireModel) -> Watts {
        self.intercore_power(m) + self.l2_power(m)
    }
}

/// Routed Manhattan distance from a leader-die block to the checker,
/// for one chip model.
fn bundle_distance(plan: &ChipFloorplan, bundle: &ViaBundle) -> Option<Millimeters> {
    let (src_die, src) = plan.find(bundle.placement)?;
    let (dst_die, checker) = plan.find(BlockId::Checker)?;
    if src_die == dst_die {
        // 2D: route across the die.
        Some(src.rect.manhattan_to(&checker.rect))
    } else {
        // 3D: ride the via pillar (negligible), then route horizontally
        // on the upper die from above the source block to the checker.
        Some(src.rect.manhattan_to(&checker.rect))
    }
}

/// Computes total wire lengths for a chip model.
///
/// * Inter-core: each Table 4 core bundle contributes
///   `bits x distance(placement -> checker)`; 3D distances are the
///   horizontal traversal on the upper die (§3.4: 7490 mm in 2D vs
///   4279 mm in 3D).
/// * L2 network: `l2_bus_bits` wires from the L2 controller to each
///   bank (request/response links of the grid network).
///
/// Chips without a checker (2d-a) report zero inter-core length.
pub fn wire_report(plan: &ChipFloorplan, cfg: &BandwidthConfig) -> WireReport {
    let mut intercore = 0.0;
    for bundle in cfg.bundles() {
        if bundle.placement == BlockId::L2Controller {
            continue; // counted in the L2 network below
        }
        if let Some(d) = bundle_distance(plan, &bundle) {
            intercore += bundle.bits as f64 * d.0;
        }
    }
    let mut l2 = 0.0;
    if let Some((ctrl_die, ctrl)) = plan.find(BlockId::L2Controller) {
        for (die_idx, die) in plan.dies.iter().enumerate() {
            for b in &die.blocks {
                if matches!(b.id, BlockId::L2Bank { .. }) {
                    let d = ctrl.rect.manhattan_to(&b.rect);
                    let _ = (ctrl_die, die_idx);
                    l2 += cfg.l2_bus_bits as f64 * d.0;
                }
            }
        }
    }
    WireReport {
        intercore_length: Millimeters(intercore),
        l2_length: Millimeters(l2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> WireModel {
        WireModel::paper()
    }

    #[test]
    fn metal_area_is_pitch_times_length() {
        let a = model().metal_area(Millimeters(7490.0));
        // Paper: 7490 mm at 210 nm pitch = 1.57 mm^2.
        assert!((a.0 - 1.573).abs() < 0.01, "{a}");
    }

    #[test]
    fn two_d_intercore_length_near_paper() {
        let r = wire_report(&ChipFloorplan::two_d_2a(), &BandwidthConfig::paper());
        // Paper: 7490 mm of 2D inter-core wiring; our floorplan-derived
        // distances must land in the same band.
        assert!(
            (5_500.0..9_500.0).contains(&r.intercore_length.0),
            "2D intercore length {} mm",
            r.intercore_length
        );
    }

    #[test]
    fn three_d_shortens_intercore_wires() {
        let d2 = wire_report(&ChipFloorplan::two_d_2a(), &BandwidthConfig::paper());
        let d3 = wire_report(&ChipFloorplan::three_d_2a(), &BandwidthConfig::paper());
        let saving = 1.0 - d3.intercore_length / d2.intercore_length;
        // Paper: 42% metal-area saving on inter-core wires.
        assert!(
            (0.25..0.65).contains(&saving),
            "3D saving {saving} (2d {} vs 3d {})",
            d2.intercore_length,
            d3.intercore_length
        );
    }

    #[test]
    fn baseline_has_no_intercore_wires() {
        let r = wire_report(&ChipFloorplan::two_d_a(), &BandwidthConfig::paper());
        assert_eq!(r.intercore_length, Millimeters(0.0));
        assert!(r.l2_length.0 > 0.0);
    }

    #[test]
    fn l2_metal_ordering_matches_paper() {
        // Paper: 2d-a 2.36 mm^2 < 3d-2a 4.61 mm^2 < 2d-2a 5.49 mm^2.
        let m = model();
        let a = wire_report(&ChipFloorplan::two_d_a(), &BandwidthConfig::paper()).l2_metal(&m);
        let b = wire_report(&ChipFloorplan::three_d_2a(), &BandwidthConfig::paper()).l2_metal(&m);
        let c = wire_report(&ChipFloorplan::two_d_2a(), &BandwidthConfig::paper()).l2_metal(&m);
        assert!(a < b && b < c, "L2 metal {a} < {b} < {c}");
        assert!((1.5..3.5).contains(&a.0), "2d-a L2 metal {a}");
        assert!((3.5..7.0).contains(&c.0), "2d-2a L2 metal {c}");
    }

    #[test]
    fn power_ordering_matches_paper() {
        // Paper: 5.1 W (2d-a) < 12.1 W (3d-2a) < 15.5 W (2d-2a).
        let m = model();
        let cfg = BandwidthConfig::paper();
        let a = wire_report(&ChipFloorplan::two_d_a(), &cfg).total_power(&m);
        let b = wire_report(&ChipFloorplan::three_d_2a(), &cfg).total_power(&m);
        let c = wire_report(&ChipFloorplan::two_d_2a(), &cfg).total_power(&m);
        assert!(a < b && b < c, "power {a} < {b} < {c}");
        // 3D saves a few watts over 2d-2a (paper: 3.4 W).
        assert!((c - b).0 > 1.0, "3D saves {} W", (c - b).0);
    }

    #[test]
    fn wire_power_scales_with_length_and_activity() {
        let m = model();
        let p1 = m.power(Millimeters(1000.0), 0.5).0;
        let p2 = m.power(Millimeters(2000.0), 0.5).0;
        let p3 = m.power(Millimeters(1000.0), 1.0).0;
        assert!((p2 / p1 - 2.0).abs() < 1e-9);
        assert!((p3 / p1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn wider_cores_need_proportionally_more_wire() {
        let mut wide = BandwidthConfig::paper();
        wide.issue_width = 8;
        let narrow = wire_report(&ChipFloorplan::two_d_2a(), &BandwidthConfig::paper());
        let wider = wire_report(&ChipFloorplan::two_d_2a(), &wide);
        assert!(wider.intercore_length > narrow.intercore_length);
        // L2 network is unaffected by core issue width.
        assert!((wider.l2_length.0 - narrow.l2_length.0).abs() < 1e-9);
    }

    #[test]
    fn checker_feed_power_is_small() {
        // Paper: the wires that feed the checker cost only ~1.8 W in 3D.
        let m = model();
        let r = wire_report(&ChipFloorplan::three_d_2a(), &BandwidthConfig::paper());
        let p = r.intercore_power(&m).0;
        assert!((0.8..3.0).contains(&p), "checker feed power {p} W");
    }
}
