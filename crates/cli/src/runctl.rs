//! Run-ledger plumbing and the observability subcommands.
//!
//! Every `sweep`, `campaign`, and `profile` invocation registers itself
//! in the run ledger (default root `target/runs`, overridable with
//! `--runs-root`, disabled with `--no-ledger`): a `manifest.json` at
//! start, a live `status.json` while the pool drains, and a
//! `metrics.json` snapshot at the end. `rmt3d status` and
//! `rmt3d report --html` read those documents back.
//!
//! Ledger chatter goes to **stderr only** — command stdout stays
//! byte-identical with and without the ledger, which CI relies on.
//! Ledger failures (unwritable root, full disk) degrade to stderr
//! warnings: observability must never fail the run it observes.

use crate::args::Args;
use crate::fail;
use rmt3d_obs::ledger::{
    format_unix_ms, write_atomic, RunLedger, METRICS_FILE, REPORT_FILE, STATUS_FILE,
};
use rmt3d_obs::metricsio::{metrics_to_json, parse_metrics};
use rmt3d_obs::{render_html_with, DaemonSeries, Manifest, ReportOptions, RunObserver, RunStatus};
use rmt3d_telemetry::{Event, MetricsRegistry, Sink};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// Default runs root, relative to the working directory.
pub const DEFAULT_RUNS_ROOT: &str = "target/runs";

/// Shared `--runs-root` / `--no-ledger` flags.
pub struct LedgerOpts {
    /// Runs-root directory.
    pub root: PathBuf,
    /// False when `--no-ledger` was passed.
    pub enabled: bool,
}

impl LedgerOpts {
    /// Consumes the ledger flags from an argument list.
    pub fn from_args(a: &mut Args) -> Result<LedgerOpts, String> {
        let root = a.opt("--runs-root")?;
        let enabled = !a.flag("--no-ledger");
        Ok(LedgerOpts {
            root: PathBuf::from(root.unwrap_or_else(|| DEFAULT_RUNS_ROOT.into())),
            enabled,
        })
    }
}

/// A live run registration: ledger handle + status observer.
pub struct RunTracker {
    handle: rmt3d_obs::ledger::RunHandle,
    /// The status-folding sink; tee it into the command's sink stack.
    pub observer: RunObserver,
    quiet: bool,
}

impl RunTracker {
    /// Registers a run in the ledger. Returns `None` (with a stderr
    /// warning) when the ledger is disabled or cannot be created.
    pub fn start(
        opts: &LedgerOpts,
        kind: &str,
        spec_hash: u64,
        total_jobs: u64,
        config: &[(String, String)],
        quiet: bool,
    ) -> Option<RunTracker> {
        if !opts.enabled {
            return None;
        }
        let ledger = match RunLedger::open(&opts.root) {
            Ok(l) => l,
            Err(e) => {
                eprintln!(
                    "warning: run ledger disabled: cannot open {}: {e}",
                    opts.root.display()
                );
                return None;
            }
        };
        let handle = match ledger.create_run(kind, spec_hash, total_jobs, config) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("warning: run ledger disabled: cannot create run: {e}");
                return None;
            }
        };
        if !quiet {
            eprintln!("run: {} ({})", handle.run_id(), handle.dir().display());
        }
        let observer = RunObserver::new(handle.status_path(), handle.run_id(), kind, total_jobs);
        Some(RunTracker {
            handle,
            observer,
            quiet,
        })
    }

    /// Closes the run: final status write, `metrics.json` snapshot
    /// (from `metrics` when given, else the observer's own registry),
    /// and the manifest outcome. All best-effort.
    pub fn finish(mut self, outcome: &str, metrics: Option<&MetricsRegistry>) {
        if let Err(e) = self.observer.finalize(outcome) {
            eprintln!("warning: status write failed: {e}");
        }
        let json = metrics_to_json(metrics.unwrap_or_else(|| self.observer.registry()));
        if let Err(e) = write_atomic(&self.handle.metrics_path(), &json) {
            eprintln!("warning: metrics write failed: {e}");
        }
        if let Err(e) = self.handle.finish(outcome) {
            eprintln!("warning: manifest write failed: {e}");
        }
        if !self.quiet {
            eprintln!(
                "run: {} {outcome}; inspect with `rmt3d status --run {}`",
                self.handle.run_id(),
                self.handle.run_id()
            );
        }
    }
}

/// Adapter teeing events into an optional [`RunObserver`] — the ledger
/// may be disabled, but the command's sink type is fixed at compile
/// time.
pub struct ObserverSink<'a>(pub Option<&'a mut RunObserver>);

impl Sink for ObserverSink<'_> {
    fn record(&mut self, event: &Event) {
        if let Some(obs) = self.0.as_mut() {
            obs.record(event);
        }
    }
}

fn open_resolved(a: &mut Args) -> Result<(RunLedger, String), String> {
    let root = a.opt("--runs-root")?;
    let root = PathBuf::from(root.unwrap_or_else(|| DEFAULT_RUNS_ROOT.into()));
    let run = a.opt("--run")?;
    let ledger =
        RunLedger::open(&root).map_err(|e| format!("cannot open {}: {e}", root.display()))?;
    let run_id = ledger.resolve(run.as_deref())?;
    Ok((ledger, run_id))
}

fn load_manifest(ledger: &RunLedger, run_id: &str) -> Result<Manifest, String> {
    let path = ledger
        .run_dir(run_id)
        .join(rmt3d_obs::ledger::MANIFEST_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Manifest::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn load_status(ledger: &RunLedger, run_id: &str) -> Result<Option<RunStatus>, String> {
    let path = ledger.run_dir(run_id).join(STATUS_FILE);
    match std::fs::read_to_string(&path) {
        Ok(text) => RunStatus::from_json(&text)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

fn print_status(manifest: &Manifest, status: Option<&RunStatus>) {
    match status {
        Some(s) => print!("{}", s.format_human()),
        None => println!(
            "run {}  kind={}  outcome={}  (no status.json yet)",
            manifest.run_id, manifest.kind, manifest.outcome
        ),
    }
    println!(
        "started {}  version {}  spec {}",
        format_unix_ms(manifest.started_unix_ms),
        manifest.version,
        manifest.spec_hash
    );
}

/// `rmt3d status [--run ID] [--follow] [--interval MS]
/// [--runs-root DIR]`: print a run's live progress; `--follow`
/// refreshes every `--interval` milliseconds (default 500) until the
/// run reaches a terminal state.
///
/// Under `--follow` a run that does not exist *yet* is waited for
/// rather than failed on: `rmt3d serve` registers a job's run only
/// when the scheduler starts it, so "submit, then watch the latest
/// run" would otherwise race the daemon. Without `--follow` a missing
/// run is still an immediate error.
pub fn run_status_command(mut a: Args) -> ExitCode {
    let follow = a.flag("--follow");
    let interval = match a.parsed::<u64>("--interval") {
        Ok(Some(0)) => return fail("--interval must be at least 1 millisecond"),
        Ok(Some(_)) if !follow => return fail("--interval requires --follow"),
        Ok(Some(ms)) => Duration::from_millis(ms),
        Ok(None) => Duration::from_millis(500),
        Err(e) => return fail(&e),
    };
    let root = match a.opt("--runs-root") {
        Ok(r) => PathBuf::from(r.unwrap_or_else(|| DEFAULT_RUNS_ROOT.into())),
        Err(e) => return fail(&e),
    };
    let run = match a.opt("--run") {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    if let Err(e) = a.finish() {
        return fail(&e);
    }
    let mut announced = false;
    let mut wait = |e: String| -> Option<String> {
        if !follow {
            return Some(e);
        }
        if !announced {
            eprintln!("status: waiting for the run to appear ({e})");
            announced = true;
        }
        std::thread::sleep(interval);
        None
    };
    let (ledger, run_id) = loop {
        let resolved = RunLedger::open(&root)
            .map_err(|e| format!("cannot open {}: {e}", root.display()))
            .and_then(|ledger| {
                ledger
                    .resolve(run.as_deref())
                    .map(|run_id| (ledger, run_id))
            });
        match resolved {
            Ok(ok) => break ok,
            Err(e) => {
                if let Some(e) = wait(e) {
                    return fail(&e);
                }
            }
        }
    };
    loop {
        let manifest = match load_manifest(&ledger, &run_id) {
            Ok(m) => m,
            Err(e) => match wait(e) {
                Some(e) => return fail(&e),
                None => continue,
            },
        };
        let status = match load_status(&ledger, &run_id) {
            Ok(s) => s,
            Err(e) => return fail(&e),
        };
        if follow {
            // Clear the screen between frames, watch(1)-style.
            print!("\x1b[2J\x1b[H");
        }
        print_status(&manifest, status.as_ref());
        let running = status
            .as_ref()
            .map_or(manifest.outcome == "running", |s| s.state == "running");
        if !follow || !running {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(interval);
    }
}

/// `rmt3d report --html [--run ID] [--out FILE] [--runs-root DIR]
/// [--daemon-metrics FILE] [--refresh SECS]`: render a run's
/// self-contained HTML dashboard from its ledger documents (default
/// output: `report.html` inside the run directory).
/// `--daemon-metrics` adds the daemon fleet panel from a
/// `daemon.metrics.jsonl` time-series ring; `--refresh` embeds a meta
/// refresh tag so a report regenerated in place reloads itself.
pub fn run_report_command(mut a: Args) -> ExitCode {
    let html = a.flag("--html");
    let out = match a.opt("--out") {
        Ok(o) => o,
        Err(e) => return fail(&e),
    };
    let daemon_metrics = match a.opt("--daemon-metrics") {
        Ok(d) => d.map(PathBuf::from),
        Err(e) => return fail(&e),
    };
    let refresh_secs = match a.parsed::<u64>("--refresh") {
        Ok(Some(0)) => return fail("--refresh must be at least 1 second"),
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    let (ledger, run_id) = match open_resolved(&mut a) {
        Ok(ok) => ok,
        Err(e) => return fail(&e),
    };
    if let Err(e) = a.finish() {
        return fail(&e);
    }
    if !html {
        return fail("report currently supports only --html");
    }
    let manifest = match load_manifest(&ledger, &run_id) {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    let status = match load_status(&ledger, &run_id) {
        Ok(Some(s)) => s,
        Ok(None) => {
            // A run registered but killed before its first status write
            // still gets a (sparse) report.
            RunStatus::new(&manifest.run_id, &manifest.kind, manifest.total_jobs)
        }
        Err(e) => return fail(&e),
    };
    let metrics_path = ledger.run_dir(&run_id).join(METRICS_FILE);
    let metrics = match std::fs::read_to_string(&metrics_path) {
        Ok(text) => match parse_metrics(&text) {
            Ok(m) => Some(m),
            Err(e) => return fail(&format!("{}: {e}", metrics_path.display())),
        },
        Err(_) => None,
    };
    // An explicitly named ring that cannot be read is an error; an
    // empty or torn one still renders (the parser skips bad lines).
    let daemon = match &daemon_metrics {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => Some(DaemonSeries::parse(&text)),
            Err(e) => return fail(&format!("cannot read {}: {e}", path.display())),
        },
        None => None,
    };
    let rendered = render_html_with(
        &manifest,
        &status,
        metrics.as_ref(),
        &ReportOptions {
            daemon: daemon.as_ref(),
            refresh_secs,
        },
    );
    let out_path = out
        .map(PathBuf::from)
        .unwrap_or_else(|| ledger.run_dir(&run_id).join(REPORT_FILE));
    if let Err(e) = write_atomic(&out_path, &rendered) {
        return fail(&format!("cannot write {}: {e}", out_path.display()));
    }
    println!("report: {}", out_path.display());
    ExitCode::SUCCESS
}
