//! Redundant multi-threading (RMT) machinery: the coupling between the
//! out-of-order leading core and the in-order checker core (paper §2).
//!
//! Provides:
//!
//! * [`IntercoreQueues`] — the RVQ / LVQ / BOQ / StB complex of Fig. 1,
//! * [`DfsController`] — the dynamic-frequency-scaling throughput
//!   matcher whose interval histogram is the paper's Fig. 7,
//! * [`FaultInjector`] / [`EccConfig`] — the §2 transient-fault model,
//! * [`RmtSystem`] — the coupled system with detection and recovery,
//!   plus a golden architectural oracle that proves recoveries correct.
//!
//! # Examples
//!
//! ```
//! use rmt3d_rmt::{RmtConfig, RmtSystem};
//! use rmt3d_cpu::{CoreConfig, OooCore};
//! use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
//! use rmt3d_workload::{Benchmark, TraceGenerator};
//!
//! let leader = OooCore::new(
//!     CoreConfig::leading_ev7_like(),
//!     TraceGenerator::new(Benchmark::Gzip.profile()),
//!     CacheHierarchy::new(NucaLayout::three_d_2a(), NucaPolicy::DistributedSets),
//! );
//! let mut system = RmtSystem::new(leader, RmtConfig::paper());
//! system.prefill_caches();
//! system.run_instructions(5_000);
//! assert_eq!(system.stats().detected, 0);
//! ```

mod dfs;
mod fault;
mod queues;
mod system;
mod tmr;

pub use dfs::{DfsConfig, DfsController, DFS_LEVELS};
pub use fault::{DirectedOutcome, DrawnFault, EccConfig, FaultFate, FaultInjector, FaultSite};
pub use queues::{IntercoreQueues, QueueConfig, QueueOccupancy};
pub use system::parallel::Engine;
pub use system::{RmtConfig, RmtStats, RmtSystem};
pub use tmr::{TmrStats, TmrSystem};
