//! Corruption paths of the result cache: every damaged entry must
//! degrade to a cache miss — never a panic, never a wrong result.
//!
//! The cache is attacked at three layers: the JSON result codec
//! (`decode` on mangled text), the store's canonical-key guard (hash
//! collisions and stale [`CACHE_VERSION`] entries), and raw file-level
//! damage (truncation at every byte boundary).

use rmt3d::{simulate, ProcessorModel, RunScale};
use rmt3d_sweep::{codec, JobSpec, ResultStore, SweepSpec, CACHE_VERSION};
use rmt3d_workload::Benchmark;
use std::fs;
use std::path::PathBuf;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rmt3d-codec-corruption-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn one_job() -> JobSpec {
    SweepSpec::new(
        &[ProcessorModel::ThreeD2A],
        &[Benchmark::Gzip],
        RunScale {
            warmup_instructions: 2_000,
            instructions: 20_000,
            thermal_grid: 25,
        },
    )
    .expand()
    .remove(0)
}

/// `decode` must reject (with `Err`, not a panic) a truncation at
/// *every* byte boundary of a valid entry — partial writes can stop
/// anywhere.
#[test]
fn decode_never_panics_on_any_truncation() {
    let job = one_job();
    let line = codec::encode(&simulate(&job.cfg, job.benchmark));
    for cut in 0..line.len() {
        if !line.is_char_boundary(cut) {
            continue;
        }
        assert!(
            codec::decode(&line[..cut]).is_err(),
            "truncation at byte {cut} decoded successfully"
        );
    }
    // The untruncated line still decodes — the loop above proves
    // rejection, this proves the input was valid to begin with.
    codec::decode(&line).expect("full entry decodes");
}

/// Structured damage inside a well-formed JSON document: wrong types,
/// out-of-range arrays, unknown enum labels.
#[test]
fn decode_rejects_ill_typed_fields() {
    let job = one_job();
    let line = codec::encode(&simulate(&job.cfg, job.benchmark));
    for (from, to) in [
        // Model / benchmark labels the parser cannot resolve.
        ("\"model\":\"3d-2a\"", "\"model\":\"4d-9z\""),
        ("\"benchmark\":\"gzip\"", "\"benchmark\":\"quake3\""),
        // A counter replaced by a string.
        ("\"total_cycles\":", "\"total_cycles\":\"many\",\"x\":"),
        // Histogram with a bin lopped off (fixed-size array check).
        ("\"dfs_histogram\":[0", "\"dfs_histogram\":["),
        // A whole sub-object replaced by a scalar.
        ("\"leader\":{", "\"leader\":3,\"x\":{"),
    ] {
        let mangled = line.replace(from, to);
        assert_ne!(mangled, line, "pattern {from:?} not found in entry");
        assert!(
            codec::decode(&mangled).is_err(),
            "mangled entry ({from:?} -> {to:?}) decoded successfully"
        );
    }
}

/// File-level truncation of a stored entry at every byte boundary:
/// always a miss, never a panic or a partial result.
#[test]
fn store_treats_any_truncated_entry_as_miss() {
    let dir = tmp("truncate");
    let store = ResultStore::open(&dir).unwrap();
    let job = one_job();
    let r = simulate(&job.cfg, job.benchmark);
    store.save(&job, &r).unwrap();
    let path = store.entry_path(&job);
    let full = fs::read_to_string(&path).unwrap();
    // Every 97th boundary keeps the test fast while still sampling cuts
    // inside the key, the result object, and both array payloads.
    for cut in (0..full.len()).step_by(97) {
        if !full.is_char_boundary(cut) {
            continue;
        }
        fs::write(&path, &full[..cut]).unwrap();
        assert!(
            store.load(&job).is_none(),
            "truncation at byte {cut} served a cache hit"
        );
    }
    fs::write(&path, &full).unwrap();
    assert!(store.load(&job).is_some(), "restored entry hits again");
    let _ = fs::remove_dir_all(&dir);
}

/// A colliding entry — right file name, different canonical
/// configuration — must miss: the stored key text is the collision
/// guard behind the 64-bit file-name hash.
#[test]
fn store_treats_canonical_key_mismatch_as_miss() {
    let dir = tmp("collision");
    let store = ResultStore::open(&dir).unwrap();
    let job = one_job();
    let r = simulate(&job.cfg, job.benchmark);
    store.save(&job, &r).unwrap();
    let path = store.entry_path(&job);
    let text = fs::read_to_string(&path).unwrap();

    // Same benchmark axis, different value: as if FNV-1a collided.
    let collided = text.replace("|bench=gzip|", "|bench=mcf|");
    assert_ne!(collided, text);
    fs::write(&path, collided).unwrap();
    assert!(store.load(&job).is_none(), "colliding entry served");

    // The key field dropped entirely.
    let keyless = text.replacen("\"key\":", "\"kex\":", 1);
    fs::write(&path, keyless).unwrap();
    assert!(store.load(&job).is_none(), "keyless entry served");
    let _ = fs::remove_dir_all(&dir);
}

/// An entry written by a different crate version must miss:
/// [`CACHE_VERSION`] leads the canonical text precisely so that stale
/// caches invalidate wholesale on upgrade.
#[test]
fn store_treats_stale_cache_version_as_miss() {
    let dir = tmp("version");
    let store = ResultStore::open(&dir).unwrap();
    let job = one_job();
    let r = simulate(&job.cfg, job.benchmark);
    store.save(&job, &r).unwrap();
    let path = store.entry_path(&job);
    let text = fs::read_to_string(&path).unwrap();

    assert!(
        job.canonical().starts_with(CACHE_VERSION),
        "canonical text must lead with the cache version"
    );
    let stale = text.replace(CACHE_VERSION, "rmt3d-sweep/0.0.0-ancient/0");
    assert_ne!(stale, text, "entry does not embed the cache version");
    fs::write(&path, stale).unwrap();
    assert!(store.load(&job).is_none(), "stale-version entry served");
    let _ = fs::remove_dir_all(&dir);
}
