//! `status.json` must always be a complete, parseable document, no
//! matter when a reader samples it — that is the whole point of the
//! temp-file + rename write protocol. Hammer one path with concurrent
//! writers while readers poll, and require every successful read to
//! parse and carry a coherent run id.

use rmt3d_obs::ledger::write_atomic;
use rmt3d_obs::RunStatus;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rmt3d-conc-{tag}-{}.json", std::process::id()))
}

#[test]
fn concurrent_writers_never_expose_a_torn_status() {
    let path = temp_path("torn");
    let _ = std::fs::remove_file(&path);
    let stop = Arc::new(AtomicBool::new(false));
    const WRITERS: usize = 4;
    const WRITES_PER_WRITER: usize = 200;

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let path = path.clone();
            scope.spawn(move || {
                for i in 0..WRITES_PER_WRITER {
                    let mut status = RunStatus::new(&format!("writer-{w}"), "sweep", 64);
                    status.done = i as u64;
                    // Long labels make torn writes likely to surface if
                    // the protocol were broken.
                    for j in 0..64 {
                        status.labels[j] = format!("cfg-{w}-{i}-{j}-{}", "x".repeat(50));
                    }
                    write_atomic(&path, &status.to_json()).unwrap();
                }
            });
        }
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let path = path.clone();
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // A reader may race the very first rename; only
                        // an existing file must parse.
                        let Ok(text) = std::fs::read_to_string(&path) else {
                            continue;
                        };
                        let status = RunStatus::from_json(&text)
                            .unwrap_or_else(|e| panic!("torn status.json ({e}): {text:.120}"));
                        assert!(status.run_id.starts_with("writer-"));
                        assert_eq!(status.labels.len(), 64);
                        seen += 1;
                    }
                    seen
                })
            })
            .collect();
        // Writers run to completion while readers poll, then stop the
        // readers. (Scoped threads join writers implicitly, but the
        // stop flag must flip before the scope can end.)
        for _ in 0..WRITERS {} // writers joined by scope exit below
                               // Give readers work for as long as writers are alive: wait for
                               // the final document to show the last write.
        loop {
            if let Ok(text) = std::fs::read_to_string(&path) {
                if let Ok(s) = RunStatus::from_json(&text) {
                    if s.done == (WRITES_PER_WRITER - 1) as u64 {
                        break;
                    }
                }
            }
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        let reads: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(reads > 0, "readers never observed the file");
    });

    // No temp droppings: the directory holds only the final document.
    let dir = path.parent().unwrap();
    let leftovers: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().to_string_lossy().into_owned();
            let stem = path.file_name().unwrap().to_string_lossy().into_owned();
            (name.contains(&stem) && name != stem).then_some(name)
        })
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
    let _ = std::fs::remove_file(&path);
}
