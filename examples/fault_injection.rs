//! Fault-injection campaign: exercises the paper's §2 fault model.
//!
//! Injects single-bit transient faults at every modelled site while the
//! coupled system runs, and reports detection/recovery coverage — with
//! and without the paper's ECC protection set. A golden architectural
//! oracle checks that every recovery actually restored correct state.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use rmt3d::rmt::{EccConfig, RmtConfig, RmtSystem};
use rmt3d::ProcessorModel;
use rmt3d_cache::{CacheHierarchy, NucaPolicy};
use rmt3d_cpu::{CoreConfig, OooCore};
use rmt3d_workload::{Benchmark, TraceGenerator};

fn campaign(name: &str, ecc: EccConfig, rate: f64, seed: u64) {
    let leader = OooCore::new(
        CoreConfig::leading_ev7_like(),
        TraceGenerator::new(Benchmark::Twolf.profile()),
        CacheHierarchy::new(
            ProcessorModel::ThreeD2A.nuca_layout(),
            NucaPolicy::DistributedSets,
        ),
    );
    let mut sys = RmtSystem::new(leader, RmtConfig::paper()).with_fault_injection(seed, rate, ecc);
    sys.prefill_caches();
    sys.run_instructions(300_000);
    sys.drain();

    let stats = sys.stats();
    let inj = sys.injector().expect("injection enabled");
    println!("-- {name} --");
    println!(
        "faults injected: {} (corrected by ECC: {})",
        inj.injected(),
        inj.corrected()
    );
    println!(
        "errors detected by checker: {}, recoveries: {}, unrecoverable: {}",
        stats.detected, stats.recoveries, stats.unrecoverable
    );
    println!(
        "recovery stall cycles: {} ({:.3}% of runtime)",
        stats.recovery_stall_cycles,
        100.0 * stats.recovery_stall_cycles as f64 / sys.total_cycles() as f64
    );
    println!(
        "architectural state clean at end: {}",
        sys.leader_matches_golden()
    );
    println!("effective IPC: {:.3}\n", sys.effective_ipc());
}

fn main() {
    println!("== rmt3d fault-injection campaign (twolf, 300K instructions) ==\n");
    campaign(
        "paper ECC set (D-cache/LVQ + trailer register file)",
        EccConfig::paper(),
        2e-4,
        42,
    );
    campaign("no ECC anywhere (ablation)", EccConfig::none(), 2e-4, 42);
    campaign(
        "high fault pressure, paper ECC",
        EccConfig::paper(),
        2e-3,
        7,
    );
}
