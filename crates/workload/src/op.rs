//! Micro-op definitions shared by the trace generator and the core models.

use std::fmt;
use std::num::{NonZeroU32, NonZeroU8};

/// Number of architectural integer registers (Alpha-like: r0..r31).
pub const INT_REG_COUNT: u8 = 32;

/// Total architectural registers: 32 integer + 32 floating point.
pub const REG_COUNT: u8 = 64;

/// An architectural register identifier (`0..REG_COUNT`).
///
/// Registers `0..32` are integer, `32..64` floating point. Stored
/// biased by one in a `NonZeroU8` so `Option<ArchReg>` is a single
/// byte — micro-ops carry three of these, and the pipeline rings copy
/// micro-ops on every fetch and commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(NonZeroU8);

impl ArchReg {
    /// Creates a register id.
    ///
    /// # Panics
    ///
    /// Panics if `index >= REG_COUNT`.
    #[inline]
    pub fn new(index: u8) -> ArchReg {
        assert!(index < REG_COUNT, "register index out of range");
        ArchReg(NonZeroU8::new(index + 1).expect("biased index is nonzero"))
    }

    /// The raw index (`0..REG_COUNT`).
    #[inline]
    pub fn index(self) -> u8 {
        self.0.get() - 1
    }

    /// True for floating-point registers (`32..64`).
    #[inline]
    pub fn is_fp(self) -> bool {
        self.index() >= INT_REG_COUNT
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.index() - INT_REG_COUNT)
        } else {
            write!(f, "r{}", self.index())
        }
    }
}

/// Functional classes of micro-ops, matching the paper's functional-unit
/// inventory (Table 1: 4 int ALUs, 2 int multipliers, 1 FP ALU, 1 FP
/// multiplier).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Simple integer arithmetic/logic (1-cycle execute).
    IntAlu,
    /// Integer multiply/divide (pipelined multi-cycle).
    IntMul,
    /// Floating-point add/compare (multi-cycle, pipelined).
    FpAlu,
    /// Floating-point multiply/divide (longer latency).
    FpMul,
    /// Memory read.
    Load,
    /// Memory write.
    Store,
    /// Conditional or unconditional control transfer.
    Branch,
}

impl OpClass {
    /// All classes, in instruction-mix order.
    pub const ALL: [OpClass; 7] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];

    /// Execute latency in cycles (not counting memory-hierarchy time for
    /// loads, which is added by the cache model).
    #[inline]
    pub fn execute_latency(self) -> u32 {
        match self {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 3,
            OpClass::FpAlu => 2,
            OpClass::FpMul => 4,
            OpClass::Load => 1,  // address generation; cache adds the rest
            OpClass::Store => 1, // address generation
            OpClass::Branch => 1,
        }
    }

    /// True for classes that write a register result that the checker
    /// compares (stores and branches produce no register value).
    #[inline]
    pub fn writes_register(self) -> bool {
        !matches!(self, OpClass::Store | OpClass::Branch)
    }

    /// True for memory operations.
    #[inline]
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// True for floating-point classes.
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAlu | OpClass::FpMul)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::FpAlu => "fp-alu",
            OpClass::FpMul => "fp-mul",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// A memory reference made by a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
}

/// Control-flow information attached to branch micro-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchInfo {
    /// Whether this dynamic instance is taken.
    pub taken: bool,
    /// Branch target address (meaningful when taken).
    pub target: u64,
}

/// One dynamic micro-op in a trace.
///
/// Dependences are expressed as *distances*: `src1_dist = Some(3)` means
/// the first operand is produced by the micro-op three positions earlier
/// in program order. Distances make dependence tracking exact in both the
/// out-of-order and in-order pipeline models. The architectural register
/// ids are carried alongside for register-file modelling and fault
/// injection.
///
/// The layout is packed to 56 bytes (one cache line with room to spare):
/// micro-ops are copied into the fetch ring, the commit stream, the
/// inter-core queues and the checker pipe, so their size is hot-path
/// memory traffic. The memory reference and branch payloads live in
/// tagged `u64` fields (`0` = absent) behind the [`MicroOp::mem`] and
/// [`MicroOp::branch`] accessors; dependence distances use
/// `Option<NonZeroU32>` (distances are always ≥ 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MicroOp {
    /// Sequence number in the trace (program order).
    pub seq: u64,
    /// Instruction address.
    pub pc: u64,
    /// Immediate salt: makes result values distinct across ops.
    pub imm: u64,
    /// Byte address of the memory reference for loads/stores, `0` for
    /// non-memory ops (all generated addresses are nonzero). Use
    /// [`MicroOp::mem`] to read this as an `Option<MemRef>`.
    pub mem_addr: u64,
    /// Branch payload for branches, `(target << 1) | taken`, `0` for
    /// non-branches (targets are nonzero). Use [`MicroOp::branch`] to
    /// read this as an `Option<BranchInfo>`.
    pub branch_packed: u64,
    /// Distance (in ops) back to the producer of operand 1.
    pub src1_dist: Option<NonZeroU32>,
    /// Distance back to the producer of operand 2.
    pub src2_dist: Option<NonZeroU32>,
    /// Functional class.
    pub kind: OpClass,
    /// Destination register, if the op writes one.
    pub dest: Option<ArchReg>,
    /// Architectural register of operand 1 (for value semantics).
    pub src1_reg: Option<ArchReg>,
    /// Architectural register of operand 2.
    pub src2_reg: Option<ArchReg>,
}

impl MicroOp {
    /// The all-absent placeholder op (sequence 0, no operands): ring
    /// buffers use it to initialize unoccupied slots.
    pub const EMPTY: MicroOp = MicroOp {
        seq: 0,
        pc: 0,
        imm: 0,
        mem_addr: 0,
        branch_packed: 0,
        src1_dist: None,
        src2_dist: None,
        kind: OpClass::IntAlu,
        dest: None,
        src1_reg: None,
        src2_reg: None,
    };

    /// Execute latency of this op (cache time excluded).
    #[inline]
    pub fn latency(&self) -> u32 {
        self.kind.execute_latency()
    }

    /// The memory reference of a load/store, `None` for other ops.
    #[inline]
    pub fn mem(&self) -> Option<MemRef> {
        (self.mem_addr != 0).then_some(MemRef {
            addr: self.mem_addr,
            size: 8,
        })
    }

    /// Packs a memory reference into [`MicroOp::mem_addr`] form.
    #[inline]
    pub fn pack_mem(mem: Option<MemRef>) -> u64 {
        mem.map_or(0, |m| m.addr)
    }

    /// The branch payload of a branch op, `None` for other ops.
    #[inline]
    pub fn branch(&self) -> Option<BranchInfo> {
        (self.branch_packed != 0).then_some(BranchInfo {
            taken: self.branch_packed & 1 != 0,
            target: self.branch_packed >> 1,
        })
    }

    /// Packs a branch payload into [`MicroOp::branch_packed`] form.
    #[inline]
    pub fn pack_branch(branch: Option<BranchInfo>) -> u64 {
        branch.map_or(0, |b| (b.target << 1) | b.taken as u64)
    }

    /// Flips the recorded branch outcome in place (fault injection on
    /// the branch-outcome queue payload).
    #[inline]
    pub fn flip_branch_taken(&mut self) {
        debug_assert!(self.branch_packed != 0, "not a branch");
        self.branch_packed ^= 1;
    }

    /// Computes the architectural result of this op from its operand
    /// values. Both cores evaluate this same deterministic function, so a
    /// bit flip in either core's operand or result is observable as a
    /// value disagreement — exactly the checking mechanism of the paper.
    #[inline]
    pub fn compute_result(&self, src1: u64, src2: u64) -> u64 {
        // SplitMix64-style mix: cheap, deterministic, sensitive to every
        // input bit.
        let mut x = self
            .imm
            .wrapping_add(src1.rotate_left(17))
            .wrapping_add(src2.rotate_left(41))
            .wrapping_add(self.pc);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }
}

impl fmt::Display for MicroOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {:#x} {}", self.seq, self.pc, self.kind)?;
        if let Some(d) = self.dest {
            write!(f, " -> {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_reg_partition() {
        assert!(!ArchReg::new(0).is_fp());
        assert!(!ArchReg::new(31).is_fp());
        assert!(ArchReg::new(32).is_fp());
        assert!(ArchReg::new(63).is_fp());
        assert_eq!(ArchReg::new(3).to_string(), "r3");
        assert_eq!(ArchReg::new(35).to_string(), "f3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arch_reg_range_checked() {
        let _ = ArchReg::new(64);
    }

    #[test]
    fn latencies_are_positive_and_ordered() {
        for k in OpClass::ALL {
            assert!(k.execute_latency() >= 1);
        }
        assert!(OpClass::FpMul.execute_latency() > OpClass::IntAlu.execute_latency());
    }

    #[test]
    fn register_writers() {
        assert!(OpClass::IntAlu.writes_register());
        assert!(OpClass::Load.writes_register());
        assert!(!OpClass::Store.writes_register());
        assert!(!OpClass::Branch.writes_register());
    }

    #[test]
    fn mem_and_branch_pack_round_trip() {
        assert_eq!(std::mem::size_of::<MicroOp>(), 56, "layout is packed");
        let mut op = MicroOp::EMPTY;
        assert_eq!(op.mem(), None);
        assert_eq!(op.branch(), None);
        op.mem_addr = MicroOp::pack_mem(Some(MemRef {
            addr: 0x0100_0040,
            size: 8,
        }));
        assert_eq!(
            op.mem(),
            Some(MemRef {
                addr: 0x0100_0040,
                size: 8
            })
        );
        for taken in [false, true] {
            op.branch_packed = MicroOp::pack_branch(Some(BranchInfo {
                taken,
                target: 0x40_0010,
            }));
            assert_eq!(
                op.branch(),
                Some(BranchInfo {
                    taken,
                    target: 0x40_0010
                })
            );
            op.flip_branch_taken();
            assert_eq!(op.branch().unwrap().taken, !taken);
        }
    }

    #[test]
    fn result_is_deterministic_and_input_sensitive() {
        let op = MicroOp {
            pc: 0x1000,
            dest: Some(ArchReg::new(1)),
            imm: 42,
            ..MicroOp::EMPTY
        };
        let r = op.compute_result(7, 9);
        assert_eq!(r, op.compute_result(7, 9));
        assert_ne!(r, op.compute_result(7, 8));
        assert_ne!(r, op.compute_result(6, 9));
        // A single-bit operand flip changes the result (error propagates).
        assert_ne!(r, op.compute_result(7 ^ 1, 9));
    }
}
