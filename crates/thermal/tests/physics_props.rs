//! Physics properties of the thermal solver: linearity, superposition,
//! monotonicity and symmetry, checked on coarse grids.
//!
//! Randomized cases come from a seeded [`SplitMix64`] stream for
//! deterministic replay without an external property-test dependency.

use rmt3d_floorplan::{BlockId, ChipFloorplan};
use rmt3d_power::CoreBlock;
use rmt3d_thermal::{solve, PowerMap, ThermalConfig};
use rmt3d_units::Watts;
use rmt3d_workload::SplitMix64;

fn cfg() -> ThermalConfig {
    ThermalConfig {
        grid: 12,
        tolerance: 1e-5,
        ..ThermalConfig::paper()
    }
}

fn any_block(rng: &mut SplitMix64) -> BlockId {
    [
        BlockId::Leader(CoreBlock::ExecInt),
        BlockId::Leader(CoreBlock::Dcache),
        BlockId::Leader(CoreBlock::IcacheFetch),
        BlockId::L2Bank { die: 0, index: 1 },
        BlockId::L2Bank { die: 0, index: 4 },
    ][rng.below_usize(5)]
}

#[test]
fn rise_is_linear_in_power() {
    let mut rng = SplitMix64::new(0x11aa);
    for _ in 0..16 {
        let block = any_block(&mut rng);
        let w = rng.range_f64(1.0, 30.0);
        let k = rng.range_f64(1.2, 3.0);
        let plan = ChipFloorplan::two_d_a();
        let mut m1 = PowerMap::new();
        m1.set(block, Watts(w));
        let mut m2 = PowerMap::new();
        m2.set(block, Watts(w * k));
        let r1 = solve(&plan, &m1, &cfg()).unwrap();
        let r2 = solve(&plan, &m2, &cfg()).unwrap();
        let rise1 = r1.peak().0 - 47.0;
        let rise2 = r2.peak().0 - 47.0;
        assert!(
            (rise2 / rise1 - k).abs() < 0.02 * k,
            "{rise1} x{k} -> {rise2}"
        );
    }
}

#[test]
fn superposition_bounds_the_sum() {
    let mut rng = SplitMix64::new(0x50b);
    for _ in 0..16 {
        let w1 = rng.range_f64(2.0, 20.0);
        let w2 = rng.range_f64(2.0, 20.0);
        // T(A+B) peak <= T(A) peak + T(B) peak rises (peaks may sit at
        // different cells, so the combined peak cannot exceed the sum).
        let plan = ChipFloorplan::two_d_a();
        let a = BlockId::Leader(CoreBlock::ExecInt);
        let b = BlockId::L2Bank { die: 0, index: 4 };
        let mut ma = PowerMap::new();
        ma.set(a, Watts(w1));
        let mut mb = PowerMap::new();
        mb.set(b, Watts(w2));
        let mut mab = PowerMap::new();
        mab.set(a, Watts(w1));
        mab.set(b, Watts(w2));
        let ra = solve(&plan, &ma, &cfg()).unwrap().peak().0 - 47.0;
        let rb = solve(&plan, &mb, &cfg()).unwrap().peak().0 - 47.0;
        let rab = solve(&plan, &mab, &cfg()).unwrap().peak().0 - 47.0;
        assert!(rab <= ra + rb + 1e-6, "{rab} > {ra} + {rb}");
        assert!(rab >= ra.max(rb) - 1e-6, "adding power never cools");
    }
}

#[test]
fn more_power_is_never_cooler() {
    let mut rng = SplitMix64::new(0xc001);
    for _ in 0..16 {
        let block = any_block(&mut rng);
        let w = rng.range_f64(1.0, 25.0);
        let extra = rng.range_f64(0.5, 10.0);
        let plan = ChipFloorplan::three_d_2a();
        let mut m1 = PowerMap::new();
        m1.set(block, Watts(w));
        m1.set(BlockId::Checker, Watts(7.0));
        let mut m2 = PowerMap::new();
        m2.set(block, Watts(w + extra));
        m2.set(BlockId::Checker, Watts(7.0));
        let r1 = solve(&plan, &m1, &cfg()).unwrap();
        let r2 = solve(&plan, &m2, &cfg()).unwrap();
        assert!(r2.peak() >= r1.peak());
        // Block-level peak also rises.
        assert!(r2.block_peak(block).unwrap() >= r1.block_peak(block).unwrap());
    }
}

#[test]
fn grid_refinement_converges() {
    let mut rng = SplitMix64::new(0x96d);
    for _ in 0..4 {
        let w = rng.range_f64(5.0, 25.0);
        // Peak temperature at 25x25 and 50x50 must agree within a couple
        // of degrees (discretization error, not model error).
        let plan = ChipFloorplan::two_d_a();
        let mut m = PowerMap::new();
        m.set(BlockId::Leader(CoreBlock::ExecInt), Watts(w));
        let coarse = solve(
            &plan,
            &m,
            &ThermalConfig {
                grid: 25,
                ..ThermalConfig::paper()
            },
        )
        .unwrap()
        .peak()
        .0;
        let fine = solve(
            &plan,
            &m,
            &ThermalConfig {
                grid: 50,
                ..ThermalConfig::paper()
            },
        )
        .unwrap()
        .peak()
        .0;
        let rise = fine - 47.0;
        assert!(
            (coarse - fine).abs() < 0.15 * rise + 1.0,
            "25x25 {coarse} vs 50x50 {fine}"
        );
    }
}
