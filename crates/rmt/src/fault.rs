//! Transient-fault injection (paper §2 fault model).
//!
//! The system must detect any single transient fault in the datapath and
//! recover from it provided the ECC-protected structures (D-cache, LVQ,
//! load-value buses, trailer register file) hold. Faults are injected as
//! single-bit flips at the sites below; ECC-protected sites correct the
//! flip (and count it) instead of propagating it.

use rmt3d_cpu::CommittedOp;
use rmt3d_workload::SplitMix64;

/// Where a transient fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The leading core's computed result (datapath upset before the
    /// value enters the RVQ).
    LeaderResult,
    /// An operand value in the RVQ payload (the RVQ itself is
    /// unprotected by design: disagreements are caught by checking).
    RvqOperand,
    /// A load value in the LVQ (ECC-protected per §2).
    LvqValue,
    /// A branch outcome in the BOQ (unprotected: outcomes are hints
    /// confirmed by the trailing pipeline).
    BoqOutcome,
    /// The trailer's register file (ECC-protected per §2; without ECC,
    /// recovery may be impossible).
    TrailerRegfile,
}

impl FaultSite {
    /// All sites.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::LeaderResult,
        FaultSite::RvqOperand,
        FaultSite::LvqValue,
        FaultSite::BoqOutcome,
        FaultSite::TrailerRegfile,
    ];

    /// Stable snake_case label used in traces and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::LeaderResult => "leader_result",
            FaultSite::RvqOperand => "rvq_operand",
            FaultSite::LvqValue => "lvq_value",
            FaultSite::BoqOutcome => "boq_outcome",
            FaultSite::TrailerRegfile => "trailer_regfile",
        }
    }

    /// Parses a [`FaultSite::name`] label back to the site.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized label.
    pub fn parse(label: &str) -> Result<FaultSite, String> {
        FaultSite::ALL
            .into_iter()
            .find(|s| s.name() == label)
            .ok_or_else(|| format!("unknown fault site '{label}'"))
    }

    /// True when `item` is a payload a fault at this site can strike:
    /// the flip must be able to reach an architectural comparison.
    /// `TrailerRegfile` strikes hit core state, not payloads, so this is
    /// always false for it.
    pub fn can_strike(self, item: &CommittedOp) -> bool {
        match self {
            FaultSite::LeaderResult => item.op.dest.is_some(),
            FaultSite::RvqOperand => item.op.src1_reg.is_some(),
            FaultSite::LvqValue => item.load_value().is_some(),
            FaultSite::BoqOutcome => item.op.branch().is_some(),
            FaultSite::TrailerRegfile => false,
        }
    }
}

/// Result of a directed single-fault injection attempt
/// ([`crate::RmtSystem::inject_directed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectedOutcome {
    /// ECC absorbed the strike before it could propagate (counted, no
    /// state touched — single-bit faults are always correctable).
    CorrectedByEcc,
    /// The fault was applied to an in-flight payload or to the trailer
    /// register file.
    Applied,
    /// No suitable target was in flight this cycle; the caller may step
    /// the system and retry.
    NoTarget,
}

/// Which structures carry ECC (paper §2 requirements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccConfig {
    /// LVQ + load-value buses + D-cache.
    pub lvq: bool,
    /// Trailer register file.
    pub trailer_regfile: bool,
}

impl EccConfig {
    /// The paper's protection set: both on.
    pub fn paper() -> EccConfig {
        EccConfig {
            lvq: true,
            trailer_regfile: true,
        }
    }

    /// No protection anywhere (for the ablation showing why the paper
    /// requires ECC for recovery).
    pub fn none() -> EccConfig {
        EccConfig {
            lvq: false,
            trailer_regfile: false,
        }
    }

    /// True when a fault at `site` is corrected by ECC before it can
    /// propagate. Single-bit model: ECC always corrects.
    pub fn corrects(&self, site: FaultSite) -> bool {
        match site {
            FaultSite::LvqValue => self.lvq,
            FaultSite::TrailerRegfile => self.trailer_regfile,
            _ => false,
        }
    }
}

impl Default for EccConfig {
    fn default() -> EccConfig {
        EccConfig::paper()
    }
}

/// Outcome of one injected fault, as classified by the detection logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultFate {
    /// Corrected in place by ECC; invisible to execution.
    CorrectedByEcc,
    /// Detected by the checker and recovered (trailer state intact).
    DetectedRecovered,
    /// Detected, but the trailer's recovery state was itself corrupt —
    /// detected-unrecoverable (the §3.5 multi-error concern).
    DetectedUnrecoverable,
    /// Masked: the flipped bit never influenced an architectural
    /// comparison (e.g. a BOQ hint that only cost a pipeline bubble, or
    /// a value overwritten before use).
    Masked,
}

/// Poisson-ish fault injector: each committed instruction is struck with
/// probability `rate` at a uniformly chosen site.
#[derive(Debug)]
pub struct FaultInjector {
    rng: SplitMix64,
    /// Faults per committed instruction.
    rate: f64,
    ecc: EccConfig,
    injected: u64,
    corrected: u64,
}

/// A fault drawn for a specific instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrawnFault {
    /// Strike location.
    pub site: FaultSite,
    /// Bit position flipped (0..64).
    pub bit: u8,
    /// For regfile strikes: the register index.
    pub reg: u8,
}

impl FaultInjector {
    /// Creates an injector.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn new(seed: u64, rate: f64, ecc: EccConfig) -> FaultInjector {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        FaultInjector {
            rng: SplitMix64::new(seed),
            rate,
            ecc,
            injected: 0,
            corrected: 0,
        }
    }

    /// The ECC configuration in force.
    pub fn ecc(&self) -> EccConfig {
        self.ecc
    }

    /// Total faults drawn (including ECC-corrected ones).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Faults absorbed by ECC.
    pub fn corrected(&self) -> u64 {
        self.corrected
    }

    /// Rolls for a fault on one instruction. Returns the drawn fault if
    /// one should be applied to the datapath (ECC-corrected strikes are
    /// counted and return `None`).
    pub fn draw(&mut self) -> Option<DrawnFault> {
        self.draw_event()
            .and_then(|(fault, corrected)| (!corrected).then_some(fault))
    }

    /// Like [`FaultInjector::draw`], but also reports ECC-corrected
    /// strikes (as `(fault, true)`) so telemetry can log every strike.
    /// Corrected strikes carry dummy `bit`/`reg` values: no extra
    /// randomness is consumed for them, which keeps the RNG stream — and
    /// therefore seed-determinism — identical to [`FaultInjector::draw`].
    pub fn draw_event(&mut self) -> Option<(DrawnFault, bool)> {
        if self.rate == 0.0 || self.rng.next_f64() >= self.rate {
            return None;
        }
        self.injected += 1;
        let site = FaultSite::ALL[self.rng.below_usize(FaultSite::ALL.len())];
        if self.ecc.corrects(site) {
            self.corrected += 1;
            return Some((
                DrawnFault {
                    site,
                    bit: 0,
                    reg: 0,
                },
                true,
            ));
        }
        Some((
            DrawnFault {
                site,
                bit: self.rng.below(64) as u8,
                reg: self.rng.range_u64(1, 32) as u8,
            },
            false,
        ))
    }

    /// Applies a drawn fault to an in-transit committed op (the
    /// leader-side and queue-payload sites). Returns `true` when the op
    /// was mutated; `TrailerRegfile` faults must be applied to the core
    /// instead.
    pub fn apply_to_payload(fault: DrawnFault, item: &mut CommittedOp) -> bool {
        let mask = 1u64 << fault.bit;
        match fault.site {
            FaultSite::LeaderResult => {
                item.result ^= mask;
                true
            }
            FaultSite::RvqOperand => {
                item.src1_value ^= mask;
                true
            }
            FaultSite::LvqValue => {
                if item.load_value().is_some() {
                    // The trailer's load "result" is the LVQ value, so the
                    // leader-recorded result must stay what the leader
                    // wrote — only the queued copy is corrupted.
                    item.mem_value ^= mask;
                    true
                } else {
                    false
                }
            }
            FaultSite::BoqOutcome => {
                if item.op.branch().is_some() {
                    item.op.flip_branch_taken();
                    true
                } else {
                    false
                }
            }
            FaultSite::TrailerRegfile => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fires() {
        let mut f = FaultInjector::new(1, 0.0, EccConfig::paper());
        for _ in 0..10_000 {
            assert!(f.draw().is_none());
        }
        assert_eq!(f.injected(), 0);
    }

    #[test]
    fn rate_one_always_fires_or_corrects() {
        let mut f = FaultInjector::new(2, 1.0, EccConfig::paper());
        let mut applied = 0;
        for _ in 0..1000 {
            if f.draw().is_some() {
                applied += 1;
            }
        }
        assert_eq!(f.injected(), 1000);
        // 2 of 5 sites are ECC-protected under the paper config.
        assert!(
            f.corrected() > 250 && f.corrected() < 550,
            "{}",
            f.corrected()
        );
        assert_eq!(applied as u64 + f.corrected(), 1000);
    }

    #[test]
    fn ecc_none_never_corrects() {
        let mut f = FaultInjector::new(3, 1.0, EccConfig::none());
        for _ in 0..500 {
            f.draw();
        }
        assert_eq!(f.corrected(), 0);
    }

    #[test]
    fn ecc_coverage_matches_paper() {
        let ecc = EccConfig::paper();
        assert!(ecc.corrects(FaultSite::LvqValue));
        assert!(ecc.corrects(FaultSite::TrailerRegfile));
        assert!(!ecc.corrects(FaultSite::LeaderResult));
        assert!(!ecc.corrects(FaultSite::RvqOperand));
        assert!(!ecc.corrects(FaultSite::BoqOutcome), "BOQ is hints-only");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_rate_panics() {
        let _ = FaultInjector::new(0, 1.5, EccConfig::paper());
    }

    #[test]
    fn draws_are_seed_deterministic() {
        let collect = |seed| {
            let mut f = FaultInjector::new(seed, 0.5, EccConfig::none());
            (0..100).map(|_| f.draw()).collect::<Vec<_>>()
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }
}
