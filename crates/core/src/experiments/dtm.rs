//! Dynamic thermal management (§3.2: "Higher temperatures will either
//! require better cooling capacities or dynamic thermal management (DTM)
//! that can lead to performance loss").
//!
//! For a fixed package limit, each organization is DVFS-throttled until
//! its suite-mean peak temperature fits under the cap; the resulting
//! work-rate loss is the DTM cost of that organization. This generalizes
//! the §3.3 iso-thermal study from "match the baseline" to "meet a
//! thermal envelope".

use crate::model::{ProcessorModel, RunScale};
use crate::powermap::{build_power_map, override_checker_power, PowerMapConfig};
use crate::simulate::{simulate, SimConfig};
use rmt3d_power::{CheckerPowerModel, DvfsPoint};
use rmt3d_thermal::{solve, ThermalConfig, ThermalError};
use rmt3d_units::{Celsius, Gigahertz, Watts};
use rmt3d_workload::Benchmark;

/// One organization's DTM operating point under a thermal cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtmRow {
    /// Organization.
    pub model: ProcessorModel,
    /// Checker power parameter (ignored for 2d-a).
    pub checker_power: Watts,
    /// Peak temperature at full speed.
    pub full_speed_temp: Celsius,
    /// Highest frequency fitting under the cap (2 GHz when no
    /// throttling is needed).
    pub frequency: Gigahertz,
    /// Work-rate loss versus running the same chip at 2 GHz.
    pub performance_loss: f64,
}

/// The DTM study.
#[derive(Debug, Clone)]
pub struct DtmReport {
    /// Thermal cap used.
    pub cap: Celsius,
    /// Operating points.
    pub rows: Vec<DtmRow>,
}

impl DtmReport {
    /// Formats as text.
    pub fn to_table(&self) -> String {
        let mut s = format!(
            "Sec 3.2/3.3 DTM under a {:.0} C package cap\n\
             model       checker_W  full-speed(C)  f(GHz)  perf-loss\n",
            self.cap.0
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{:11} {:9.0} {:14.1} {:7.2} {:8.1}%\n",
                r.model.name(),
                r.checker_power.0,
                r.full_speed_temp.0,
                r.frequency.value(),
                100.0 * r.performance_loss
            ));
        }
        s
    }
}

fn point(
    model: ProcessorModel,
    benchmarks: &[Benchmark],
    freq: Gigahertz,
    checker_w: Watts,
    scale: RunScale,
) -> Result<(Celsius, f64), ThermalError> {
    let tcfg = ThermalConfig {
        grid: scale.thermal_grid,
        ..ThermalConfig::paper()
    };
    let mut temp = 0.0;
    let mut work = 0.0;
    for &b in benchmarks {
        let cfg = SimConfig {
            frequency: freq,
            ..SimConfig::nominal(model, scale)
        };
        let perf = simulate(&cfg, b);
        let mut pm =
            PowerMapConfig::with_checker(CheckerPowerModel::with_peak(checker_w.max(Watts(1.0))));
        pm.dvfs = DvfsPoint::from_frequency_linear_vdd(freq.value() / 2.0);
        let mut chip = build_power_map(&perf, &pm);
        if model.has_checker() {
            override_checker_power(
                &mut chip,
                checker_w * pm.dvfs.dynamic_factor().max(pm.dvfs.leakage_factor()),
            );
        }
        let r = solve(&model.floorplan(), &chip.map, &tcfg)?;
        temp += r.peak().0;
        work += perf.ipc() * freq.value();
    }
    let n = benchmarks.len() as f64;
    Ok((Celsius(temp / n), work / n))
}

/// Finds the DTM operating point for one organization under `cap`.
///
/// # Errors
///
/// Propagates thermal solver failures.
pub fn throttle_to_cap(
    model: ProcessorModel,
    checker_w: Watts,
    cap: Celsius,
    benchmarks: &[Benchmark],
    scale: RunScale,
) -> Result<DtmRow, ThermalError> {
    let (full_temp, full_work) = point(model, benchmarks, Gigahertz(2.0), checker_w, scale)?;
    if full_temp.0 <= cap.0 {
        return Ok(DtmRow {
            model,
            checker_power: checker_w,
            full_speed_temp: full_temp,
            frequency: Gigahertz(2.0),
            performance_loss: 0.0,
        });
    }
    let mut lo = 1.0;
    let mut hi = 2.0;
    let mut best = (Gigahertz(lo), 0.0);
    for _ in 0..6 {
        let mid = 0.5 * (lo + hi);
        let (t, w) = point(model, benchmarks, Gigahertz(mid), checker_w, scale)?;
        if t.0 > cap.0 {
            hi = mid;
        } else {
            lo = mid;
            best = (Gigahertz(mid), w);
        }
    }
    Ok(DtmRow {
        model,
        checker_power: checker_w,
        full_speed_temp: full_temp,
        frequency: best.0,
        performance_loss: (1.0 - best.1 / full_work).max(0.0),
    })
}

/// Runs the study for the three organizations at 7 W and 15 W checkers.
///
/// # Errors
///
/// Propagates thermal solver failures.
pub fn run(
    cap: Celsius,
    benchmarks: &[Benchmark],
    scale: RunScale,
) -> Result<DtmReport, ThermalError> {
    let mut rows = vec![throttle_to_cap(
        ProcessorModel::TwoDA,
        Watts::ZERO,
        cap,
        benchmarks,
        scale,
    )?];
    for w in [7.0, 15.0] {
        for model in [ProcessorModel::TwoD2A, ProcessorModel::ThreeD2A] {
            rows.push(throttle_to_cap(model, Watts(w), cap, benchmarks, scale)?);
        }
    }
    Ok(DtmReport { cap, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotter_organizations_throttle_harder() {
        let r = run(Celsius(82.0), &[Benchmark::Gzip], RunScale::quick()).expect("dtm study");
        let loss = |m: ProcessorModel, w: f64| {
            r.rows
                .iter()
                .find(|x| x.model == m && (x.checker_power.0 - w).abs() < 1e-9)
                .map(|x| x.performance_loss)
                .expect("row exists")
        };
        // 3D with the 15 W checker is the hottest and loses the most.
        assert!(
            loss(ProcessorModel::ThreeD2A, 15.0) >= loss(ProcessorModel::ThreeD2A, 7.0),
            "{r:?}"
        );
        assert!(
            loss(ProcessorModel::ThreeD2A, 15.0) >= loss(ProcessorModel::TwoD2A, 15.0),
            "{r:?}"
        );
        // Frequencies stay in the DVFS range.
        for row in &r.rows {
            let f = row.frequency.value();
            assert!((1.0..=2.0).contains(&f), "{row:?}");
        }
        assert!(r.to_table().contains("perf-loss"));
    }
}
