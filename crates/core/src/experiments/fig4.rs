//! Figure 4 — thermal overhead of the 3D checker versus checker power —
//! plus the §3.2 placement variants.
//!
//! For each checker power in {2, 5, 7, 10, 15, 20, 25} W the experiment
//! solves the steady-state thermals of the 3d-2a and 2d-2a chips under
//! benchmark-averaged power maps, and compares against the 2d-a baseline
//! line.

use crate::model::{ProcessorModel, RunScale};
use crate::powermap::{build_power_map, override_checker_power, PowerMapConfig};
use crate::simulate::{PerfResult, SerialSimulator, SimConfig, Simulator};
use rmt3d_power::CheckerPowerModel;
use rmt3d_thermal::{solve, ThermalConfig, ThermalError};
use rmt3d_units::{Celsius, Watts};
use rmt3d_workload::Benchmark;

/// The paper's checker-power sweep points (Fig. 4 x-axis).
pub const CHECKER_POWERS_W: [f64; 7] = [2.0, 5.0, 7.0, 10.0, 15.0, 20.0, 25.0];

/// One point of the Fig. 4 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// Checker power parameter.
    pub checker_power: Watts,
    /// Benchmark-averaged peak temperature of the 2d-2a chip.
    pub two_d_2a: Celsius,
    /// Benchmark-averaged peak temperature of the 3d-2a chip.
    pub three_d_2a: Celsius,
}

/// §3.2 variant temperatures at one checker power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Variants {
    /// Checker power used.
    pub checker_power: Watts,
    /// Default 3d-2a.
    pub default_3d: Celsius,
    /// Upper die holds only the checker (inactive silicon).
    pub inactive_silicon: Celsius,
    /// Checker moved to the top-die corner.
    pub corner_checker: Celsius,
    /// Checker at double power density.
    pub dense_checker: Celsius,
}

/// Complete Fig. 4 output.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// The 2d-a baseline line.
    pub baseline_2d_a: Celsius,
    /// Sweep points.
    pub points: Vec<Fig4Point>,
    /// §3.2 variants at 7 W and 15 W.
    pub variants: Vec<Fig4Variants>,
}

impl Fig4Result {
    /// The sweep point nearest a checker power.
    pub fn at(&self, watts: f64) -> Option<&Fig4Point> {
        self.points
            .iter()
            .find(|p| (p.checker_power.0 - watts).abs() < 1e-9)
    }

    /// Formats the figure as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut s = String::from(
            "Fig.4 Thermal overhead analysis of 3D checker\n\
             checker_W   2d-2a(C)   3d-2a(C)   [2d-a baseline ",
        );
        s.push_str(&format!("{:.1} C]\n", self.baseline_2d_a.0));
        for p in &self.points {
            s.push_str(&format!(
                "{:9.1} {:10.1} {:10.1}\n",
                p.checker_power.0, p.two_d_2a.0, p.three_d_2a.0
            ));
        }
        for v in &self.variants {
            s.push_str(&format!(
                "variants @{:.0}W: default {:.1}, inactive-Si {:.1}, corner {:.1}, dense {:.1}\n",
                v.checker_power.0,
                v.default_3d.0,
                v.inactive_silicon.0,
                v.corner_checker.0,
                v.dense_checker.0
            ));
        }
        s
    }
}

fn mean_peak_on_plan(
    perfs: &[PerfResult],
    checker_w: f64,
    grid: usize,
    plan: &rmt3d_floorplan::ChipFloorplan,
) -> Result<Celsius, ThermalError> {
    let tcfg = ThermalConfig {
        grid,
        ..ThermalConfig::paper()
    };
    let mut acc = 0.0;
    for perf in perfs {
        let mut chip = build_power_map(
            perf,
            &PowerMapConfig::with_checker(CheckerPowerModel::with_peak(Watts(checker_w))),
        );
        if perf.model.has_checker() {
            override_checker_power(&mut chip, Watts(checker_w));
        }
        let r = solve(plan, &chip.map, &tcfg)?;
        acc += r.peak().0;
    }
    Ok(Celsius(acc / perfs.len() as f64))
}

/// Mean-of-peaks over benchmarks for one model and checker power.
fn mean_peak(
    perfs: &[PerfResult],
    model: ProcessorModel,
    checker_w: f64,
    grid: usize,
) -> Result<Celsius, ThermalError> {
    mean_peak_on_plan(perfs, checker_w, grid, &model.floorplan())
}

/// Runs the Fig. 4 experiment over the given benchmarks.
///
/// # Errors
///
/// Propagates thermal solver failures.
///
/// # Panics
///
/// Panics if `benchmarks` is empty.
pub fn run(benchmarks: &[Benchmark], scale: RunScale) -> Result<Fig4Result, ThermalError> {
    run_with(&SerialSimulator, benchmarks, scale)
}

/// [`run`] with an explicit [`Simulator`]: all `4 × |benchmarks|`
/// performance runs are submitted as one batch, so a parallel
/// simulator overlaps them.
///
/// # Errors
///
/// Propagates thermal solver failures.
///
/// # Panics
///
/// Panics if `benchmarks` is empty.
pub fn run_with(
    sim: &dyn Simulator,
    benchmarks: &[Benchmark],
    scale: RunScale,
) -> Result<Fig4Result, ThermalError> {
    assert!(!benchmarks.is_empty(), "need at least one benchmark");
    let models = [
        ProcessorModel::TwoDA,
        ProcessorModel::TwoD2A,
        ProcessorModel::ThreeD2A,
        ProcessorModel::ThreeDChecker,
    ];
    let jobs: Vec<(SimConfig, Benchmark)> = models
        .iter()
        .flat_map(|&m| {
            benchmarks
                .iter()
                .map(move |&b| (SimConfig::nominal(m, scale), b))
        })
        .collect();
    let mut perfs = sim.simulate_batch(&jobs);
    // Batch order is model-major, so each model's runs are contiguous.
    let pc_perfs = perfs.split_off(3 * benchmarks.len());
    let p3_perfs = perfs.split_off(2 * benchmarks.len());
    let p2_perfs = perfs.split_off(benchmarks.len());
    let base_perfs = perfs;

    let baseline = mean_peak(&base_perfs, ProcessorModel::TwoDA, 0.0, scale.thermal_grid)?;
    let mut points = Vec::new();
    for w in CHECKER_POWERS_W {
        points.push(Fig4Point {
            checker_power: Watts(w),
            two_d_2a: mean_peak(&p2_perfs, ProcessorModel::TwoD2A, w, scale.thermal_grid)?,
            three_d_2a: mean_peak(&p3_perfs, ProcessorModel::ThreeD2A, w, scale.thermal_grid)?,
        });
    }

    let mut variants = Vec::new();
    for w in [7.0, 15.0] {
        variants.push(Fig4Variants {
            checker_power: Watts(w),
            default_3d: mean_peak(&p3_perfs, ProcessorModel::ThreeD2A, w, scale.thermal_grid)?,
            inactive_silicon: mean_peak(
                &pc_perfs,
                ProcessorModel::ThreeDChecker,
                w,
                scale.thermal_grid,
            )?,
            corner_checker: mean_peak_on_plan(
                &p3_perfs,
                w,
                scale.thermal_grid,
                &rmt3d_floorplan::ChipFloorplan::three_d_2a_corner_checker(),
            )?,
            dense_checker: mean_peak_on_plan(
                &p3_perfs,
                w,
                scale.thermal_grid,
                &rmt3d_floorplan::ChipFloorplan::three_d_2a_dense_checker(),
            )?,
        });
    }

    Ok(Fig4Result {
        baseline_2d_a: baseline,
        points,
        variants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig4Result {
        run(
            &[Benchmark::Gzip, Benchmark::Mcf, Benchmark::Swim],
            RunScale::quick(),
        )
        .expect("fig4 solves")
    }

    #[test]
    fn reproduces_paper_shape() {
        let r = quick();
        // Monotone in checker power.
        for w in r.points.windows(2) {
            assert!(w[1].three_d_2a >= w[0].three_d_2a);
            assert!(w[1].two_d_2a >= w[0].two_d_2a);
        }
        // 3D is hotter than the iso-transistor 2D chip (tiny tolerance
        // at the lowest checker powers, where the two are nearly tied).
        for p in &r.points {
            assert!(
                p.three_d_2a > p.two_d_2a - rmt3d_units::DegreesDelta(1.0),
                "at {}: 3d {} vs 2d-2a {}",
                p.checker_power,
                p.three_d_2a,
                p.two_d_2a
            );
        }
        assert!(r.at(15.0).unwrap().three_d_2a > r.at(15.0).unwrap().two_d_2a);
        // Low-power checker: 2d-2a is *cooler* than (or close to) 2d-a
        // thanks to lateral spreading and the larger sink.
        let low = r.at(2.0).unwrap();
        assert!(low.two_d_2a < r.baseline_2d_a + rmt3d_units::DegreesDelta(1.0));
    }

    #[test]
    fn deltas_land_in_paper_bands() {
        let r = quick();
        let d7 = r.at(7.0).unwrap().three_d_2a - r.baseline_2d_a;
        let d15 = r.at(15.0).unwrap().three_d_2a - r.baseline_2d_a;
        // Paper: +4.5 C at 7 W, +7 C at 15 W (generous bands).
        assert!((1.0..9.0).contains(&d7.0), "7W delta {d7:?}");
        assert!((3.0..15.0).contains(&d15.0), "15W delta {d15:?}");
        assert!(d15 > d7);
    }

    #[test]
    fn variants_behave_like_section_3_2() {
        let r = quick();
        let v7 = &r.variants[0];
        // Inactive silicon on the top die cools by a couple of degrees.
        assert!(
            v7.inactive_silicon < v7.default_3d,
            "inactive Si {} vs default {}",
            v7.inactive_silicon,
            v7.default_3d
        );
        // Corner checker is no hotter than default.
        assert!(v7.corner_checker <= v7.default_3d + rmt3d_units::DegreesDelta(0.5));
        // Double density is hotter; dramatic at 15 W (paper: up to +19 C
        // over the baseline).
        let v15 = &r.variants[1];
        assert!(v15.dense_checker > v15.default_3d);
    }

    #[test]
    fn table_formatting() {
        let r = quick();
        let t = r.to_table();
        assert!(t.contains("2d-2a"));
        assert!(t.lines().count() >= CHECKER_POWERS_W.len() + 2);
    }
}
