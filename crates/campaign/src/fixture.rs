//! Regression-test fixtures: a minimized failing trial serialized as
//! one JSON object, replayable forever.
//!
//! When a campaign finds a violation, the shrinker minimizes it and the
//! engine emits a fixture file. Committing that file under a crate's
//! `tests/fixtures/` directory (plus a test calling
//! [`replay_fixture`]) turns a one-in-a-thousand randomized find into a
//! deterministic regression test.

use crate::trial::{run_trial, TrialSpec, Violation};
use rmt3d_rmt::{EccConfig, FaultSite};
use rmt3d_telemetry::json::{parse, JsonObject, JsonValue};
use rmt3d_workload::Benchmark;
use std::path::{Path, PathBuf};

/// Fixture schema discriminator.
pub const FIXTURE_KIND: &str = "rmt3d-campaign-fixture";
/// Bumped when the fixture schema changes incompatibly.
pub const FIXTURE_VERSION: u64 = 1;

/// Serializes a violating spec as a fixture (one JSON object, trailing
/// newline).
pub fn fixture_json(spec: &TrialSpec, violation: Violation) -> String {
    let mut o = JsonObject::new();
    o.str("kind", FIXTURE_KIND)
        .u64("version", FIXTURE_VERSION)
        .str("site", spec.site.name())
        .str("benchmark", spec.benchmark.name())
        .bool("ecc_lvq", spec.ecc.lvq)
        .bool("ecc_trailer_regfile", spec.ecc.trailer_regfile)
        .u64("instructions", spec.instructions)
        .u64("inject_at", spec.inject_at)
        .u64("bit", u64::from(spec.bit))
        .u64("reg", u64::from(spec.reg))
        .str("violation", violation.name());
    let mut s = o.finish();
    s.push('\n');
    s
}

/// Parses a fixture back into the spec and the violation it reproduces.
///
/// # Errors
///
/// Returns a message on malformed JSON, a wrong `kind`/`version`, or
/// out-of-range fields.
pub fn parse_fixture(text: &str) -> Result<(TrialSpec, Violation), String> {
    let v = parse(text.trim())?;
    let s = |k: &str| -> Result<&str, String> {
        v.get(k)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("missing or non-string \"{k}\""))
    };
    let u = |k: &str| -> Result<u64, String> {
        v.get(k)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("missing or non-integer \"{k}\""))
    };
    let b = |k: &str| -> Result<bool, String> {
        v.get(k)
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| format!("missing or non-boolean \"{k}\""))
    };
    if s("kind")? != FIXTURE_KIND {
        return Err(format!("not a campaign fixture: kind {:?}", s("kind")?));
    }
    if u("version")? != FIXTURE_VERSION {
        return Err(format!(
            "fixture version {} unsupported (expected {FIXTURE_VERSION})",
            u("version")?
        ));
    }
    let spec = TrialSpec {
        index: 0,
        site: FaultSite::parse(s("site")?)?,
        benchmark: s("benchmark")?
            .parse::<Benchmark>()
            .map_err(|e| e.to_string())?,
        ecc: EccConfig {
            lvq: b("ecc_lvq")?,
            trailer_regfile: b("ecc_trailer_regfile")?,
        },
        instructions: u("instructions")?,
        inject_at: u("inject_at")?,
        bit: u8::try_from(u("bit")?).map_err(|_| "\"bit\" out of range".to_string())?,
        reg: u8::try_from(u("reg")?).map_err(|_| "\"reg\" out of range".to_string())?,
    };
    spec.validate()?;
    Ok((spec, Violation::parse(s("violation")?)?))
}

/// The deterministic file name a fixture is written under.
pub fn fixture_file_name(spec: &TrialSpec, violation: Violation) -> String {
    format!(
        "{}_{}_{}_at{}_b{}_r{}.json",
        violation.name(),
        spec.site.name(),
        spec.benchmark.name(),
        spec.inject_at,
        spec.bit,
        spec.reg
    )
}

/// Writes a fixture into `dir` (created if missing) and returns its
/// path.
///
/// # Errors
///
/// Returns a message when the directory or file cannot be written.
pub fn write_fixture(
    dir: &Path,
    spec: &TrialSpec,
    violation: Violation,
) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    let path = dir.join(fixture_file_name(spec, violation));
    std::fs::write(&path, fixture_json(spec, violation))
        .map_err(|e| format!("cannot write {path:?}: {e}"))?;
    Ok(path)
}

/// Replays a fixture and reports whether the recorded violation still
/// reproduces. A regression test asserts `Ok(true)`.
///
/// # Errors
///
/// Returns a message when the fixture does not parse.
pub fn replay_fixture(text: &str) -> Result<bool, String> {
    let (spec, violation) = parse_fixture(text)?;
    Ok(run_trial(&spec).violation == Some(violation))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TrialSpec {
        TrialSpec {
            index: 0,
            site: FaultSite::TrailerRegfile,
            benchmark: Benchmark::Mcf,
            ecc: EccConfig {
                lvq: true,
                trailer_regfile: false,
            },
            instructions: 9_000,
            inject_at: 4_000,
            bit: 12,
            reg: 5,
        }
    }

    #[test]
    fn fixture_round_trips() {
        let text = fixture_json(&spec(), Violation::UnrecoverableRecovery);
        let (parsed, violation) = parse_fixture(&text).expect("parses");
        assert_eq!(parsed, spec());
        assert_eq!(violation, Violation::UnrecoverableRecovery);
    }

    #[test]
    fn wrong_kind_and_version_are_rejected() {
        let good = fixture_json(&spec(), Violation::SilentCorruption);
        assert!(parse_fixture(&good.replace(FIXTURE_KIND, "other")).is_err());
        assert!(parse_fixture(&good.replace("\"version\":1", "\"version\":9")).is_err());
        assert!(parse_fixture("{not json").is_err());
        assert!(parse_fixture("{}").is_err());
    }

    #[test]
    fn file_name_is_deterministic_and_descriptive() {
        let name = fixture_file_name(&spec(), Violation::UnrecoverableRecovery);
        assert_eq!(
            name,
            "unrecoverable_recovery_trailer_regfile_mcf_at4000_b12_r5.json"
        );
    }

    #[test]
    fn write_and_replay_from_disk() {
        let dir = std::env::temp_dir().join("rmt3d_campaign_fixture_test");
        let path = write_fixture(&dir, &spec(), Violation::UnrecoverableRecovery).expect("writes");
        let text = std::fs::read_to_string(&path).expect("reads");
        let (parsed, _) = parse_fixture(&text).expect("parses");
        assert_eq!(parsed, spec());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
