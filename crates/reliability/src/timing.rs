//! Dynamic timing-error model (paper §3.5 and §4).
//!
//! A pipeline stage latches a wrong value when its logic delay, perturbed
//! by parameter variation and dynamic conditions, exceeds the cycle time.
//! We model the per-stage delay as Gaussian with a node-dependent sigma
//! derived from Table 6's performance variability; the error probability
//! is the Gaussian tail beyond the available cycle time.
//!
//! Two paper results live here:
//!
//! * a checker that usually runs at 0.6 f has ~40% slack in every stage,
//!   collapsing its timing-error probability by many orders of magnitude
//!   (§3.5, Fig. 7 discussion);
//! * an older-process checker die has less variability and therefore a
//!   lower error rate at the same slack (§4).

use crate::variability::variability;
use rmt3d_units::TechNode;

/// Standard normal upper-tail probability `P(Z > z)` via the
/// Abramowitz-Stegun erfc approximation (max error ~1.5e-7).
pub fn normal_tail(z: f64) -> f64 {
    if z < 0.0 {
        return 1.0 - normal_tail(-z);
    }
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    0.5 * poly * (-x * x).exp()
}

/// Per-stage timing model at one technology node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    node: TechNode,
    /// Sigma of the stage-delay distribution as a fraction of nominal
    /// delay. Table 6 reports +/- variability as a 3-sigma envelope.
    sigma_fraction: f64,
}

impl TimingModel {
    /// Builds the model for a node from Table 6 (3-sigma envelope).
    pub fn for_node(node: TechNode) -> TimingModel {
        TimingModel {
            node,
            sigma_fraction: variability(node).performance / 3.0,
        }
    }

    /// The node.
    pub fn node(&self) -> TechNode {
        self.node
    }

    /// Delay sigma as a fraction of nominal stage delay.
    pub fn sigma_fraction(&self) -> f64 {
        self.sigma_fraction
    }

    /// Probability that one stage misses timing in one cycle, when the
    /// stage's nominal logic delay fills `logic_fraction` of the cycle
    /// (1.0 = zero margin; 0.6 = the checker at 0.6 f).
    ///
    /// # Panics
    ///
    /// Panics if `logic_fraction` is not positive.
    pub fn stage_error_probability(&self, logic_fraction: f64) -> f64 {
        assert!(logic_fraction > 0.0, "logic fraction must be positive");
        // Delay ~ N(d, sigma*d); error iff delay > cycle = d / logic_fraction.
        let z = (1.0 / logic_fraction - 1.0) / self.sigma_fraction;
        normal_tail(z)
    }

    /// Error probability per instruction for a pipeline of `stages`
    /// stages (union bound; probabilities are small).
    pub fn pipeline_error_probability(&self, logic_fraction: f64, stages: u32) -> f64 {
        (self.stage_error_probability(logic_fraction) * stages as f64).min(1.0)
    }

    /// Expected timing-error probability for a checker whose time at
    /// each normalized frequency level is given by `histogram` (level
    /// `i` = `(i+1)/10 f`, the Fig. 7 output). Running at `0.6 f`
    /// stretches the cycle so logic fills only 60% of it.
    ///
    /// # Panics
    ///
    /// Panics if the histogram does not sum to ~1.
    pub fn checker_error_probability(&self, histogram: &[f64; 10], stages: u32) -> f64 {
        let sum: f64 = histogram.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "histogram must be a distribution, sums to {sum}"
        );
        histogram
            .iter()
            .enumerate()
            .map(|(i, &frac)| {
                let logic_fraction = (i + 1) as f64 / 10.0;
                frac * self.pipeline_error_probability(logic_fraction, stages)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_tail_reference_points() {
        assert!((normal_tail(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_tail(1.0) - 0.158655).abs() < 1e-4);
        assert!((normal_tail(2.0) - 0.022750).abs() < 1e-4);
        assert!((normal_tail(-1.0) - 0.841345).abs() < 1e-4);
        assert!(normal_tail(6.0) < 1e-8);
    }

    #[test]
    fn zero_margin_errors_half_the_time() {
        let m = TimingModel::for_node(TechNode::N65);
        let p = m.stage_error_probability(1.0);
        assert!((p - 0.5).abs() < 1e-9, "no slack => coin flip, got {p}");
    }

    #[test]
    fn slack_collapses_error_probability() {
        let m = TimingModel::for_node(TechNode::N65);
        let full = m.stage_error_probability(0.95);
        let checker = m.stage_error_probability(0.6);
        assert!(
            checker < full / 1e3,
            "0.6f checker must be orders safer: {checker} vs {full}"
        );
    }

    #[test]
    fn older_node_is_safer_at_equal_slack() {
        // §4: 90 nm has less performance variability than 65 nm.
        let m90 = TimingModel::for_node(TechNode::N90);
        let m65 = TimingModel::for_node(TechNode::N65);
        assert!(m90.sigma_fraction() < m65.sigma_fraction());
        assert!(m90.stage_error_probability(0.8) < m65.stage_error_probability(0.8));
    }

    #[test]
    fn histogram_weighted_probability() {
        let m = TimingModel::for_node(TechNode::N65);
        let mut all_at_full = [0.0; 10];
        all_at_full[9] = 1.0;
        let mut all_at_06 = [0.0; 10];
        all_at_06[5] = 1.0;
        let p_full = m.checker_error_probability(&all_at_full, 10);
        let p_06 = m.checker_error_probability(&all_at_06, 10);
        assert!(p_06 < p_full, "0.6f operation is safer: {p_06} vs {p_full}");
    }

    #[test]
    #[should_panic(expected = "distribution")]
    fn bad_histogram_panics() {
        let m = TimingModel::for_node(TechNode::N65);
        let h = [0.0; 10];
        let _ = m.checker_error_probability(&h, 10);
    }

    #[test]
    fn pipeline_union_bound_clamps() {
        let m = TimingModel::for_node(TechNode::N32);
        assert!(m.pipeline_error_probability(1.0, 1000) <= 1.0);
    }
}
