//! Regenerates the paper's Tables 4-8 and benchmarks their generators.
//!
//! Run with `cargo bench -p rmt3d-bench --bench tables`. Each table is
//! printed in the paper's layout before the timing loops run; compare
//! against `EXPERIMENTS.md`.

use rmt3d::experiments::tables;
use rmt3d_bench::bench;
use rmt3d_interconnect::{BandwidthConfig, D2dViaModel};
use rmt3d_power::pipeline::relative_power;
use rmt3d_power::tech::scaling_ratio;
use rmt3d_units::TechNode;
use std::hint::black_box;

fn print_tables() {
    println!("\n{}", tables::table4_text());
    println!("{}", tables::table5_text());
    println!("{}", tables::table6_text());
    println!("{}", tables::table7_text());
    println!("{}", tables::table8_text());
    let vias = D2dViaModel::paper();
    let cfg = BandwidthConfig::paper();
    println!(
        "Table 4 electricals: {} vias, {:.2} mW, {:.3} mm^2\n",
        cfg.total_vias(),
        vias.total_power(cfg.total_vias()).milliwatts(),
        vias.total_area(cfg.total_vias()).0
    );
}

fn main() {
    print_tables();

    bench("table4_d2d_bandwidth", 20, || {
        let cfg = BandwidthConfig::paper();
        black_box(cfg.core_vias() + cfg.total_vias())
    });
    bench("table5_pipeline_power", 20, || {
        let mut acc = 0.0;
        for fo4 in [18.0, 14.0, 10.0, 6.0, 12.0, 8.5] {
            acc += relative_power(black_box(fo4)).total();
        }
        black_box(acc)
    });
    bench("table8_tech_scaling", 20, || {
        let r = scaling_ratio(black_box(TechNode::N90), TechNode::N65).unwrap();
        black_box(r.dynamic + r.leakage)
    });
}
