//! Property-based tests over the core data structures and models.
//!
//! Each test draws its cases from a seeded [`SplitMix64`] stream, so
//! every failure is reproducible bit-for-bit without any external
//! property-testing dependency.

use rmt3d::cache::{CacheConfig, NucaLayout, NucaPolicy, SetAssocCache};
use rmt3d::power::pipeline::relative_power;
use rmt3d::power::DvfsPoint;
use rmt3d::reliability::{mbu_probability, normal_tail};
use rmt3d::rmt::{DfsConfig, DfsController};
use rmt3d::units::{Celsius, DegreesDelta, NormalizedFrequency, Watts};
use rmt3d::workload::{Benchmark, MicroOp, OpClass, SplitMix64, TraceGenerator};

const CASES: usize = 64;

// ---- units ----

#[test]
fn watts_addition_is_commutative() {
    let mut rng = SplitMix64::new(0x57a7);
    for _ in 0..CASES {
        let a = rng.range_f64(0.0, 1e3);
        let b = rng.range_f64(0.0, 1e3);
        assert_eq!(Watts(a) + Watts(b), Watts(b) + Watts(a));
    }
}

#[test]
fn temperature_delta_round_trip() {
    let mut rng = SplitMix64::new(0xc0de);
    for _ in 0..CASES {
        let t = rng.range_f64(-50.0, 150.0);
        let d = rng.range_f64(-40.0, 40.0);
        let c = Celsius(t);
        let back = (c + DegreesDelta(d)) - DegreesDelta(d);
        assert!((back.0 - t).abs() < 1e-9);
    }
}

#[test]
fn normalized_frequency_quantize_is_idempotent() {
    let mut rng = SplitMix64::new(0xf00d);
    for _ in 0..CASES {
        let f = rng.range_f64(0.0, 1.5);
        let q = NormalizedFrequency::new(f).quantize(0.1);
        let qq = q.quantize(0.1);
        assert!((q.fraction() - qq.fraction()).abs() < 1e-12);
        assert!(q.fraction() >= 0.1 - 1e-12 && q.fraction() <= 1.0 + 1e-12);
    }
}

// ---- workload ----

#[test]
fn traces_are_structurally_valid() {
    let mut rng = SplitMix64::new(0x7ace);
    for _ in 0..CASES {
        let seed = rng.below(32);
        let len = rng.range_u64(100, 800) as usize;
        let mut profile = Benchmark::ALL[(seed % 19) as usize].profile();
        profile.seed ^= seed;
        let ops: Vec<MicroOp> = TraceGenerator::new(profile).take_ops(len);
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.seq, i as u64);
            assert_eq!(op.kind.writes_register(), op.dest.is_some());
            assert_eq!(op.kind.is_memory(), op.mem().is_some());
            assert_eq!(op.kind == OpClass::Branch, op.branch().is_some());
            for (d, r) in [(op.src1_dist, op.src1_reg), (op.src2_dist, op.src2_reg)] {
                if let Some(d) = d {
                    let d = d.get() as usize;
                    assert!(d >= 1 && d <= i);
                    assert_eq!(ops[i - d].dest, r);
                }
            }
        }
    }
}

#[test]
fn result_function_is_injective_in_operand_bits() {
    let mut rng = SplitMix64::new(0xb17);
    for _ in 0..CASES {
        let s1 = rng.next_u64();
        let s2 = rng.next_u64();
        let bit = rng.below(64) as u8;
        let op = TraceGenerator::new(Benchmark::Gzip.profile()).next_op();
        let a = op.compute_result(s1, s2);
        let b = op.compute_result(s1 ^ (1 << bit), s2);
        assert_ne!(a, b, "bit flips must be observable");
    }
}

// ---- cache ----

#[test]
fn cache_hits_after_access() {
    let mut rng = SplitMix64::new(0xcac4e);
    for _ in 0..CASES {
        let n = rng.range_u64(1, 200) as usize;
        let addrs: Vec<u64> = (0..n).map(|_| rng.below(1_000_000)).collect();
        let mut c = SetAssocCache::new(CacheConfig::new(32 * 1024, 2, 64, 1).unwrap());
        for &a in &addrs {
            c.access(a, false);
            assert!(c.probe(a), "line just accessed must be resident");
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, s.accesses);
    }
}

#[test]
fn nuca_policies_agree_on_hit_count_order_of_magnitude() {
    let mut rng = SplitMix64::new(0x2ca);
    for _ in 0..16 {
        let n = rng.range_u64(50, 300) as usize;
        let lines: Vec<u64> = (0..n).map(|_| rng.below(4096)).collect();
        // Both policies cache the same working set; repeated access must
        // hit in both.
        let mut sets =
            rmt3d::cache::NucaCache::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets);
        let mut ways =
            rmt3d::cache::NucaCache::new(NucaLayout::two_d_a(), NucaPolicy::DistributedWays);
        for &l in &lines {
            sets.access(l * 64, false);
            ways.access(l * 64, false);
        }
        for &l in &lines {
            assert!(sets.access(l * 64, false).hit);
            assert!(ways.access(l * 64, false).hit);
        }
    }
}

// ---- DFS ----

#[test]
fn dfs_stays_in_bounds_under_arbitrary_fill() {
    let mut rng = SplitMix64::new(0xdf5);
    for _ in 0..CASES {
        let cap = rng.range_f64(0.3, 1.0);
        let n = rng.range_u64(10, 500) as usize;
        let mut d = DfsController::new(DfsConfig::paper().with_frequency_cap(cap));
        for _ in 0..n {
            let f = rng.next_f64();
            for _ in 0..40 {
                d.tick(f);
            }
            let cur = d.current().fraction();
            assert!(cur >= 0.1 - 1e-9 && cur <= cap + 1e-9, "f={cur} cap={cap}");
        }
        let total: f64 = d.histogram_fractions().iter().sum();
        assert!(d.intervals() == 0 || (total - 1.0).abs() < 1e-9);
    }
}

// ---- power / reliability ----

#[test]
fn dvfs_factors_are_monotone() {
    let mut rng = SplitMix64::new(0xd0f5);
    for _ in 0..CASES {
        let f = rng.range_f64(0.05, 1.0);
        let p = DvfsPoint::from_frequency_linear_vdd(f);
        assert!(p.dynamic_factor() <= 1.0 + 1e-12);
        assert!(p.leakage_factor() <= 1.0 + 1e-12);
        let slower = DvfsPoint::from_frequency_linear_vdd(f * 0.9);
        assert!(slower.dynamic_factor() < p.dynamic_factor());
    }
}

#[test]
fn pipeline_power_is_monotone_in_depth() {
    let mut rng = SplitMix64::new(0x9199);
    for _ in 0..CASES {
        let a = rng.range_f64(6.0, 18.0);
        let b = rng.range_f64(6.0, 18.0);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        // Fewer FO4 per stage (deeper pipe) never costs less power.
        assert!(relative_power(lo).total() >= relative_power(hi).total() - 1e-9);
    }
}

#[test]
fn normal_tail_is_a_valid_survival_function() {
    let mut rng = SplitMix64::new(0x7a11);
    for _ in 0..CASES {
        let z1 = rng.range_f64(-6.0, 6.0);
        let z2 = rng.range_f64(-6.0, 6.0);
        let (lo, hi) = if z1 < z2 { (z1, z2) } else { (z2, z1) };
        let (plo, phi) = (normal_tail(lo), normal_tail(hi));
        assert!((0.0..=1.0).contains(&plo));
        assert!(phi <= plo + 1e-9, "survival function decreases");
    }
}

#[test]
fn mbu_probability_is_monotone_decreasing() {
    let mut rng = SplitMix64::new(0x3b0);
    for _ in 0..CASES {
        let q1 = rng.range_f64(0.1, 20.0);
        let q2 = rng.range_f64(0.1, 20.0);
        let (lo, hi) = if q1 < q2 { (q1, q2) } else { (q2, q1) };
        assert!(mbu_probability(lo) >= mbu_probability(hi) - 1e-12);
    }
}
