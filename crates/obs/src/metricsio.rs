//! `metrics.json`: a run's final [`MetricsRegistry`] snapshot on disk.
//!
//! The registry itself renders human tables and a flat JSONL summary
//! line; this module adds a structured document the dashboard (and any
//! external tooling) can consume without string-splitting dotted keys:
//!
//! ```json
//! {
//!   "series": {"ipc": {"count":76,"min":…,"mean":…,"p50":…,"p99":…,"max":…}},
//!   "hist":   {"job_wall_nanos": {"samples":70,"mean":…,
//!               "buckets": [[lo, hi, count], …]}}
//! }
//! ```
//!
//! Histogram buckets are the non-empty [`Log2Histogram`] buckets as
//! inclusive `[lo, hi, count]` triples. Everything round-trips through
//! [`ParsedMetrics`] for rendering.

use rmt3d_telemetry::json::{parse, JsonObject, JsonValue};
use rmt3d_telemetry::{Log2Histogram, MetricsRegistry};

/// Summary of one series as stored in `metrics.json`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SeriesData {
    /// Sample count.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

/// One histogram as stored in `metrics.json`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramData {
    /// Total samples.
    pub samples: u64,
    /// Mean sample value.
    pub mean: f64,
    /// Non-empty buckets as inclusive `(lo, hi, count)`.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// A parsed `metrics.json`, preserving the document's key order as
/// written (sorted, since the parser stores objects in a `BTreeMap`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParsedMetrics {
    /// Named series summaries.
    pub series: Vec<(String, SeriesData)>,
    /// Named histograms.
    pub hists: Vec<(String, HistogramData)>,
}

impl ParsedMetrics {
    /// Looks up one series by name.
    pub fn series(&self, name: &str) -> Option<&SeriesData> {
        self.series.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Looks up one histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistogramData> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Series whose names start with `prefix`, with the prefix
    /// stripped — used to pull `cpi_leader_*` stacks out of a profile
    /// run's metrics.
    pub fn series_with_prefix(&self, prefix: &str) -> Vec<(&str, &SeriesData)> {
        self.series
            .iter()
            .filter_map(|(n, s)| n.strip_prefix(prefix).map(|rest| (rest, s)))
            .collect()
    }
}

/// Serializes a registry as the `metrics.json` document.
pub fn metrics_to_json(registry: &MetricsRegistry) -> String {
    let mut series = JsonObject::new();
    for (name, s) in registry.summaries() {
        let mut o = JsonObject::new();
        o.u64("count", s.count)
            .f64("min", s.min)
            .f64("mean", s.mean)
            .f64("p50", s.p50)
            .f64("p99", s.p99)
            .f64("max", s.max);
        series.raw(name, &o.finish());
    }
    let mut hists = JsonObject::new();
    for name in registry.histogram_names() {
        let h = registry.histogram(name).expect("name came from registry");
        let mut buckets = String::from("[");
        let mut first = true;
        for b in 0..=64 {
            let count = h.count(b);
            if count == 0 {
                continue;
            }
            if !first {
                buckets.push(',');
            }
            first = false;
            let (lo, hi) = Log2Histogram::bucket_range(b);
            buckets.push_str(&format!("[{lo},{hi},{count}]"));
        }
        buckets.push(']');
        let mut o = JsonObject::new();
        o.u64("samples", h.samples())
            .f64("mean", h.mean())
            .raw("buckets", &buckets);
        hists.raw(name, &o.finish());
    }
    let mut doc = JsonObject::new();
    doc.raw("series", &series.finish())
        .raw("hist", &hists.finish());
    doc.finish()
}

/// Parses a document written by [`metrics_to_json`].
pub fn parse_metrics(text: &str) -> Result<ParsedMetrics, String> {
    let v = parse(text)?;
    Ok(metrics_from_value(&v))
}

/// Reads a [`metrics_to_json`] document out of an already-parsed JSON
/// node — the daemon time-series embeds one per sample line, and
/// re-serializing just to re-parse would be wasted work.
pub fn metrics_from_value(v: &JsonValue) -> ParsedMetrics {
    let f = |node: &JsonValue, key: &str| -> f64 {
        node.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
    };
    let mut out = ParsedMetrics::default();
    if let Some(JsonValue::Obj(series)) = v.get("series") {
        for (name, s) in series {
            out.series.push((
                name.clone(),
                SeriesData {
                    count: s.get("count").and_then(JsonValue::as_u64).unwrap_or(0),
                    min: f(s, "min"),
                    mean: f(s, "mean"),
                    p50: f(s, "p50"),
                    p99: f(s, "p99"),
                    max: f(s, "max"),
                },
            ));
        }
    }
    if let Some(JsonValue::Obj(hists)) = v.get("hist") {
        for (name, h) in hists {
            let mut data = HistogramData {
                samples: h.get("samples").and_then(JsonValue::as_u64).unwrap_or(0),
                mean: f(h, "mean"),
                buckets: Vec::new(),
            };
            if let Some(JsonValue::Arr(buckets)) = h.get("buckets") {
                for b in buckets {
                    if let JsonValue::Arr(triple) = b {
                        if let [lo, hi, count] = triple.as_slice() {
                            data.buckets.push((
                                lo.as_u64().unwrap_or(0),
                                hi.as_u64().unwrap_or(0),
                                count.as_u64().unwrap_or(0),
                            ));
                        }
                    }
                }
            }
            out.hists.push((name.clone(), data));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_round_trip() {
        let mut reg = MetricsRegistry::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            reg.record("ipc", v);
        }
        reg.record("cpi_leader_base", 0.8);
        for v in [0, 1, 5, 5, 1000] {
            reg.record_hist("job_wall_nanos", v);
        }
        let text = metrics_to_json(&reg);
        let m = parse_metrics(&text).unwrap();
        let ipc = m.series("ipc").unwrap();
        assert_eq!(ipc.count, 4);
        assert_eq!(ipc.mean, 2.5);
        assert_eq!(ipc.min, 1.0);
        assert_eq!(ipc.max, 4.0);
        let h = m.hist("job_wall_nanos").unwrap();
        assert_eq!(h.samples, 5);
        // Buckets: {0}=1, [1,1]=1, [4,7]=2, [512,1023]=1.
        assert_eq!(
            h.buckets,
            vec![(0, 0, 1), (1, 1, 1), (4, 7, 2), (512, 1023, 1)]
        );
        assert_eq!(
            m.series_with_prefix("cpi_leader_"),
            vec![("base", m.series("cpi_leader_base").unwrap())]
        );
    }

    #[test]
    fn empty_registry_serializes_cleanly() {
        let text = metrics_to_json(&MetricsRegistry::new());
        assert_eq!(text, r#"{"series":{},"hist":{}}"#);
        let m = parse_metrics(&text).unwrap();
        assert!(m.series.is_empty());
        assert!(m.hists.is_empty());
        assert!(m.series("nope").is_none());
        assert!(m.hist("nope").is_none());
    }

    #[test]
    fn parse_tolerates_missing_sections() {
        let m = parse_metrics("{}").unwrap();
        assert_eq!(m, ParsedMetrics::default());
    }
}
