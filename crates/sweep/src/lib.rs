//! # rmt3d-sweep
//!
//! A std-only parallel design-space-exploration engine for the rmt3d
//! experiment suite.
//!
//! The paper's results are an embarrassingly-parallel sweep — 19
//! benchmarks × processor models × checker-power/frequency/process
//! axes — that the original drivers ran serially. This crate turns
//! that into a job engine:
//!
//! 1. **Declarative specs** ([`SweepSpec`]): axes over
//!    [`ProcessorModel`](rmt3d::ProcessorModel),
//!    [`Benchmark`](rmt3d_workload::Benchmark), leader frequency,
//!    checker frequency cap, and NUCA policy expand into a
//!    deterministic [`JobSpec`] list.
//! 2. **Parallel execution** ([`run_sweep`]): a `std::thread` pool
//!    pulls jobs from a shared cursor; a panicking job is isolated and
//!    reported as failed while the sweep completes.
//! 3. **Deterministic aggregation** ([`SweepReport`]): records come
//!    back in spec order, so parallel output is bit-identical to
//!    serial.
//! 4. **Result cache** ([`ResultStore`]): each job persists to a
//!    content-addressed JSON entry (key = stable FNV-1a hash of the
//!    full job configuration + crate version); re-runs skip completed
//!    jobs and interrupted sweeps resume.
//! 5. **Telemetry**: job started / finished / cache-hit / stalled
//!    events with an ETA, plus end-of-run pool utilization and cache
//!    counters, stream through any [`rmt3d_telemetry::Sink`]. An
//!    optional heartbeat watchdog
//!    ([`SweepOptions::watchdog`](SweepOptions)) flags jobs that run
//!    far past the median without finishing.
//!
//! [`ParallelSimulator`] plugs the engine into the experiment drivers
//! (`fig4::run_with`, `fig5::run_with`, `iso_thermal::run_with`)
//! through the [`rmt3d::Simulator`] trait.
//!
//! ```no_run
//! use rmt3d::{ProcessorModel, RunScale};
//! use rmt3d_sweep::{run_sweep, SweepOptions, SweepSpec};
//! use rmt3d_workload::Benchmark;
//!
//! let spec = SweepSpec::paper_suite(RunScale::paper());
//! let report = run_sweep(
//!     spec.expand(),
//!     &SweepOptions::default(), // all cores, no cache
//!     &mut rmt3d_telemetry::NullSink,
//! )
//! .unwrap();
//! for record in &report.records {
//!     let perf = record.outcome.as_ref().unwrap();
//!     println!("{}: IPC {:.3}", record.job.label(), perf.ipc());
//! }
//! ```

pub mod codec;
mod engine;
mod pool;
mod spec;
mod store;

pub use engine::{run_sweep, CacheMode, JobRecord, ParallelSimulator, SweepOptions, SweepReport};
pub use pool::{eta_nanos, panic_message, run_pool, PoolEvent, PoolRecord, PoolStatsSummary};
pub use spec::{JobSpec, SweepSpec, CACHE_VERSION};
pub use store::{CacheCounters, EvictionReport, IndexEntry, ResultStore, INDEX_FILE};
