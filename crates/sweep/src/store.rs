//! On-disk content-addressed result cache.
//!
//! One file per job, named by the job's [`cache key`](crate::JobSpec::cache_key)
//! in hex, holding a single JSON line `{"key": <canonical>, "result": {…}}`.
//! The canonical configuration text is stored alongside the result and
//! re-verified on load, so a 64-bit hash collision degrades to a cache
//! miss instead of serving the wrong result. Writes go through a
//! temporary file and an atomic rename, so a sweep killed mid-write
//! leaves no partial entry and `--resume` picks up cleanly.
//!
//! The store also keeps observability state: in-memory hit/miss/verify
//! counters (snapshot via [`ResultStore::stats`]) and a usage index —
//! `index.json` in the cache directory, mapping each entry to its size,
//! last-used stamp, and hit count. The index drives size-bounded LRU
//! eviction ([`ResultStore::evict_to`]); it is advisory metadata —
//! losing or corrupting it costs nothing but the usage history (a
//! subsequent eviction then treats unindexed entries as least recently
//! used) — and it is excluded from [`ResultStore::len`] and entry
//! totals.

use crate::codec;
use crate::spec::JobSpec;
use rmt3d::PerfResult;
use rmt3d_obs::ledger::{unix_now_ms, write_atomic};
use rmt3d_telemetry::json::{parse, JsonObject, JsonValue};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// File name of the usage index inside the cache directory. Not a
/// cache entry: excluded from [`ResultStore::len`] and
/// [`ResultStore::totals`].
pub const INDEX_FILE: &str = "index.json";

/// Snapshot of a store's lookup counters since it was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups satisfied from disk.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Entries rejected because the stored canonical key did not match
    /// the probing job (hash collision or corruption); counted *in
    /// addition* to the miss they degrade into.
    pub verify_failures: u64,
}

/// Per-entry usage metadata held in `index.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexEntry {
    /// Entry file size in bytes at last write.
    pub bytes: u64,
    /// Unix milliseconds of the last load or save that touched the
    /// entry (wall clock; advisory).
    pub last_used_unix_ms: u64,
    /// Loads served from this entry since it was first indexed.
    pub hits: u64,
}

/// What one [`ResultStore::evict_to`] pass removed and kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictionReport {
    /// Entry files deleted.
    pub evicted_entries: u64,
    /// Bytes those files held on disk.
    pub evicted_bytes: u64,
    /// Entry bytes still on disk after the pass.
    pub remaining_bytes: u64,
}

/// A directory of cached job results.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    verify_failures: Arc<AtomicU64>,
    index: Arc<Mutex<BTreeMap<String, IndexEntry>>>,
}

impl ResultStore {
    /// Opens (creating if necessary) a cache directory. An existing
    /// usage index is loaded; a missing or corrupt one starts empty.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn open(dir: &Path) -> io::Result<ResultStore> {
        fs::create_dir_all(dir)?;
        let index = fs::read_to_string(dir.join(INDEX_FILE))
            .ok()
            .and_then(|text| parse_index(&text))
            .unwrap_or_default();
        Ok(ResultStore {
            dir: dir.to_path_buf(),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            verify_failures: Arc::new(AtomicU64::new(0)),
            index: Arc::new(Mutex::new(index)),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for a job.
    pub fn entry_path(&self, job: &JobSpec) -> PathBuf {
        self.dir.join(entry_name(job))
    }

    /// Loads a cached result. Returns `None` on a missing entry, and
    /// treats corrupt, truncated, or colliding entries as misses (the
    /// job simply re-runs and overwrites them).
    pub fn load(&self, job: &JobSpec) -> Option<PerfResult> {
        let Ok(text) = fs::read_to_string(self.entry_path(job)) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let canonical = job.canonical();
        let verified = parse(text.trim())
            .ok()
            .filter(|v| v.get("key").and_then(JsonValue::as_str) == Some(canonical.as_str()));
        let Some(v) = verified else {
            self.verify_failures.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let decoded = v.get("result").and_then(|r| codec::decode(&render(r)).ok());
        match decoded {
            Some(result) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.touch(&entry_name(job), text.len() as u64, true);
                Some(result)
            }
            None => {
                self.verify_failures.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persists a job's result atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error hit while writing.
    pub fn save(&self, job: &JobSpec, result: &PerfResult) -> io::Result<()> {
        let final_path = self.entry_path(job);
        let tmp_path = final_path.with_extension(format!("tmp.{}", std::process::id()));
        let mut line = String::from("{\"key\":");
        write_json_str(&mut line, &job.canonical());
        line.push_str(",\"result\":");
        line.push_str(&codec::encode(result));
        line.push_str("}\n");
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(line.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)?;
        self.touch(&entry_name(job), line.len() as u64, false);
        Ok(())
    }

    /// Number of entries currently on disk (any `.json` file except the
    /// usage index).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory is unreadable.
    pub fn len(&self) -> io::Result<usize> {
        Ok(self.totals()?.0 as usize)
    }

    /// True when the store holds no entries.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory is unreadable.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Entry count and total entry bytes on disk, excluding the usage
    /// index and in-flight temp files.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory is unreadable.
    pub fn totals(&self) -> io::Result<(u64, u64)> {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "json")
                && path.file_name().is_some_and(|n| n != INDEX_FILE)
            {
                entries += 1;
                bytes += entry.metadata()?.len();
            }
        }
        Ok((entries, bytes))
    }

    /// Lookup counters accumulated since this store (or a clone sharing
    /// its state) was opened.
    pub fn stats(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            verify_failures: self.verify_failures.load(Ordering::Relaxed),
        }
    }

    /// Usage metadata for one entry file name, if indexed.
    pub fn index_entry(&self, name: &str) -> Option<IndexEntry> {
        self.index.lock().ok()?.get(name).copied()
    }

    /// Number of entries the in-memory usage index currently tracks.
    pub fn index_len(&self) -> usize {
        self.index.lock().map(|ix| ix.len()).unwrap_or(0)
    }

    /// Writes the usage index to `index.json` atomically. Best-effort
    /// callers may ignore the result: the index is advisory.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the write fails.
    pub fn flush_index(&self) -> io::Result<()> {
        let rendered = {
            let ix = self
                .index
                .lock()
                .map_err(|_| io::Error::other("index mutex poisoned"))?;
            let mut obj = JsonObject::new();
            for (name, e) in ix.iter() {
                let mut entry = JsonObject::new();
                entry
                    .u64("bytes", e.bytes)
                    .u64("last_used_unix_ms", e.last_used_unix_ms)
                    .u64("hits", e.hits);
                obj.raw(name, &entry.finish());
            }
            obj.finish()
        };
        write_atomic(&self.dir.join(INDEX_FILE), &rendered)
    }

    /// Evicts least-recently-used entries until the on-disk entry
    /// bytes fit in `max_bytes`, then flushes the pruned usage index.
    ///
    /// Recency comes from the usage index; an entry the index does not
    /// know (lost or corrupt `index.json`) is treated as least recently
    /// used and evicted first, with the file name as a deterministic
    /// tie-break. Lookup counters are untouched — a future load of an
    /// evicted entry is an ordinary miss. Index rows whose files have
    /// vanished are dropped as a side effect, so the index cannot grow
    /// without bound either.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory is
    /// unreadable, a delete fails, or the index flush fails.
    pub fn evict_to(&self, max_bytes: u64) -> io::Result<EvictionReport> {
        // Snapshot the disk, not the index: the disk is the truth.
        let mut on_disk: Vec<(String, u64)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "json")
                && path.file_name().is_some_and(|n| n != INDEX_FILE)
            {
                let name = entry.file_name().to_string_lossy().into_owned();
                on_disk.push((name, entry.metadata()?.len()));
            }
        }
        let mut total: u64 = on_disk.iter().map(|(_, b)| b).sum();
        let recency = |name: &str| {
            self.index
                .lock()
                .ok()
                .and_then(|ix| ix.get(name).map(|e| e.last_used_unix_ms))
                .unwrap_or(0)
        };
        let mut victims: Vec<(u64, String, u64)> = on_disk
            .into_iter()
            .map(|(name, bytes)| (recency(&name), name, bytes))
            .collect();
        victims.sort();
        let mut report = EvictionReport::default();
        let mut surviving: BTreeSet<String> = BTreeSet::new();
        for (_, name, bytes) in victims {
            if total > max_bytes {
                fs::remove_file(self.dir.join(&name))?;
                total -= bytes;
                report.evicted_entries += 1;
                report.evicted_bytes += bytes;
            } else {
                surviving.insert(name);
            }
        }
        report.remaining_bytes = total;
        let pruned = match self.index.lock() {
            Ok(mut ix) => {
                let before = ix.len();
                ix.retain(|name, _| surviving.contains(name));
                before != ix.len()
            }
            Err(_) => false,
        };
        if pruned || report.evicted_entries > 0 {
            self.flush_index()?;
        }
        Ok(report)
    }

    fn touch(&self, name: &str, bytes: u64, hit: bool) {
        if let Ok(mut ix) = self.index.lock() {
            let e = ix.entry(name.to_string()).or_default();
            e.bytes = bytes;
            e.last_used_unix_ms = unix_now_ms();
            if hit {
                e.hits += 1;
            }
        }
    }
}

fn entry_name(job: &JobSpec) -> String {
    format!("{:016x}.json", job.cache_key())
}

fn parse_index(text: &str) -> Option<BTreeMap<String, IndexEntry>> {
    let JsonValue::Obj(map) = parse(text.trim()).ok()? else {
        return None;
    };
    let mut out = BTreeMap::new();
    for (name, v) in map {
        let field = |k: &str| v.get(k).and_then(JsonValue::as_u64);
        out.insert(
            name,
            IndexEntry {
                bytes: field("bytes")?,
                last_used_unix_ms: field("last_used_unix_ms")?,
                hits: field("hits")?,
            },
        );
    }
    Some(out)
}

fn write_json_str(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Re-renders a parsed JSON subtree to text so the result decoder can
/// consume it. Only the shapes the codec emits (objects, arrays,
/// numbers, strings) need to round-trip.
fn render(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".into(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(n) => format!("{n}"),
        JsonValue::Str(s) => {
            let mut out = String::new();
            write_json_str(&mut out, s);
            out
        }
        JsonValue::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(","))
        }
        JsonValue::Obj(map) => {
            let inner: Vec<String> = map
                .iter()
                .map(|(k, val)| {
                    let mut key = String::new();
                    write_json_str(&mut key, k);
                    format!("{key}:{}", render(val))
                })
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use rmt3d::{simulate, ProcessorModel, RunScale};
    use rmt3d_workload::Benchmark;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rmt3d-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn one_job() -> JobSpec {
        SweepSpec::new(
            &[ProcessorModel::TwoDA],
            &[Benchmark::Gzip],
            RunScale {
                warmup_instructions: 2_000,
                instructions: 20_000,
                thermal_grid: 25,
            },
        )
        .expand()
        .remove(0)
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmp("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        let job = one_job();
        assert!(store.load(&job).is_none(), "empty store misses");
        let r = simulate(&job.cfg, job.benchmark);
        store.save(&job, &r).unwrap();
        let back = store.load(&job).expect("hit after save");
        assert_eq!(codec::encode(&back), codec::encode(&r));
        assert_eq!(store.len().unwrap(), 1);
        assert_eq!(
            store.stats(),
            CacheCounters {
                hits: 1,
                misses: 1,
                verify_failures: 0
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_mismatched_entries_miss() {
        let dir = tmp("corrupt");
        let store = ResultStore::open(&dir).unwrap();
        let job = one_job();
        let r = simulate(&job.cfg, job.benchmark);
        store.save(&job, &r).unwrap();

        // Truncate the entry: must degrade to a miss, not an error.
        let path = store.entry_path(&job);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(store.load(&job).is_none());

        // Same file name, different canonical key: collision guard.
        let fake = text.replace("|bench=gzip|", "|bench=mcf|");
        fs::write(&path, fake).unwrap();
        assert!(store.load(&job).is_none());
        let stats = store.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.verify_failures, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn usage_index_tracks_size_and_hits_and_survives_reopen() {
        let dir = tmp("index");
        let store = ResultStore::open(&dir).unwrap();
        let job = one_job();
        let r = simulate(&job.cfg, job.benchmark);
        store.save(&job, &r).unwrap();
        store.load(&job).unwrap();
        store.load(&job).unwrap();

        let name = format!("{:016x}.json", job.cache_key());
        let e = store.index_entry(&name).expect("entry indexed");
        assert_eq!(e.hits, 2);
        assert!(e.bytes > 0);
        assert!(e.last_used_unix_ms > 0);
        let disk = fs::metadata(store.entry_path(&job)).unwrap().len();
        assert_eq!(e.bytes, disk, "indexed size matches the file");

        store.flush_index().unwrap();
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.index_entry(&name), Some(e), "index persisted");
        assert_eq!(reopened.index_len(), 1);

        // The index file itself is not a cache entry.
        assert_eq!(reopened.len().unwrap(), 1);
        let (entries, bytes) = reopened.totals().unwrap();
        assert_eq!(entries, 1);
        assert_eq!(bytes, disk);

        // A corrupt index is discarded, not fatal.
        fs::write(dir.join(INDEX_FILE), "{not json").unwrap();
        let again = ResultStore::open(&dir).unwrap();
        assert_eq!(again.index_len(), 0);
        assert!(again.load(&job).is_some(), "entries unaffected");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Four synthetic 100-byte entries whose index stamps make the
    /// eviction order fully deterministic.
    fn seeded_store(dir: &Path) -> ResultStore {
        for name in ["aaaa.json", "bbbb.json", "cccc.json", "dddd.json"] {
            fs::create_dir_all(dir).unwrap();
            fs::write(dir.join(name), vec![b'x'; 100]).unwrap();
        }
        // cccc is oldest, then aaaa, then dddd; bbbb is unindexed and
        // therefore treated as least recently used of all.
        fs::write(
            dir.join(INDEX_FILE),
            concat!(
                "{\"aaaa.json\":{\"bytes\":100,\"last_used_unix_ms\":200,\"hits\":1},",
                "\"cccc.json\":{\"bytes\":100,\"last_used_unix_ms\":100,\"hits\":9},",
                "\"dddd.json\":{\"bytes\":100,\"last_used_unix_ms\":300,\"hits\":0}}",
            ),
        )
        .unwrap();
        ResultStore::open(dir).unwrap()
    }

    #[test]
    fn eviction_removes_least_recently_used_first() {
        let dir = tmp("evict-order");
        let store = seeded_store(&dir);

        // 400 bytes on disk; fitting 250 must drop the two LRU entries:
        // unindexed bbbb first, then cccc (oldest stamp). Hit counts do
        // not matter — cccc's 9 hits don't save it.
        let report = store.evict_to(250).unwrap();
        assert_eq!(report.evicted_entries, 2);
        assert_eq!(report.evicted_bytes, 200);
        assert_eq!(report.remaining_bytes, 200);
        assert!(!dir.join("bbbb.json").exists());
        assert!(!dir.join("cccc.json").exists());
        assert!(dir.join("aaaa.json").exists());
        assert!(dir.join("dddd.json").exists());

        // The pruned index was flushed and holds only the survivors.
        let reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.index_len(), 2);
        assert!(reopened.index_entry("cccc.json").is_none());
        assert!(reopened.index_entry("aaaa.json").is_some());

        // Already within budget: a second pass is a no-op.
        let report = store.evict_to(250).unwrap();
        assert_eq!(
            report,
            EvictionReport {
                evicted_entries: 0,
                evicted_bytes: 0,
                remaining_bytes: 200,
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_tolerates_corrupt_index() {
        let dir = tmp("evict-corrupt");
        seeded_store(&dir);
        fs::write(dir.join(INDEX_FILE), "not an index at all").unwrap();
        let store = ResultStore::open(&dir).unwrap();
        // With no usable recency data every entry is equally evictable;
        // a zero budget must still clear the disk without erroring.
        let report = store.evict_to(0).unwrap();
        assert_eq!(report.evicted_entries, 4);
        assert_eq!(report.remaining_bytes, 0);
        assert_eq!(store.totals().unwrap(), (0, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_keeps_counters_consistent() {
        let dir = tmp("evict-counters");
        let store = ResultStore::open(&dir).unwrap();
        let job = one_job();
        let r = simulate(&job.cfg, job.benchmark);
        store.save(&job, &r).unwrap();
        store.load(&job).unwrap();
        let before = store.stats();
        assert_eq!(before.hits, 1);

        let report = store.evict_to(0).unwrap();
        assert_eq!(report.evicted_entries, 1);
        // Eviction itself is not a lookup: counters are untouched...
        assert_eq!(store.stats(), before);
        // ...and a load of the evicted entry is an ordinary miss.
        assert!(store.load(&job).is_none());
        let after = store.stats();
        assert_eq!(after.hits, before.hits);
        assert_eq!(after.misses, before.misses + 1);
        assert_eq!(after.verify_failures, before.verify_failures);
        let _ = fs::remove_dir_all(&dir);
    }

    /// `evict_to` racing a concurrent writer: the store may evict or
    /// keep any entry caught mid-race, but it must never error, never
    /// corrupt `index.json`, and a quiescent eviction pass must never
    /// claim an in-budget, just-written entry.
    #[test]
    fn eviction_racing_a_writer_keeps_the_store_consistent() {
        let dir = tmp("evict-race");
        let store = ResultStore::open(&dir).unwrap();
        let jobs = SweepSpec::new(
            &ProcessorModel::ALL,
            &[Benchmark::Gzip, Benchmark::Mcf],
            RunScale {
                warmup_instructions: 2_000,
                instructions: 20_000,
                thermal_grid: 25,
            },
        )
        .expand();
        let result = simulate(&jobs[0].cfg, jobs[0].benchmark);

        std::thread::scope(|s| {
            let writer = s.spawn(|| {
                for _ in 0..12 {
                    for job in &jobs {
                        store.save(job, &result).unwrap();
                    }
                }
            });
            // Hammer evictions (including mid-rename snapshots) while
            // the writer keeps repopulating the same keys.
            for _ in 0..40 {
                store.evict_to(0).unwrap();
            }
            writer.join().unwrap();
        });

        // Quiescent tail: clear the disk, write one entry, run an
        // eviction pass with room for it — the entry must survive.
        store.evict_to(0).unwrap();
        store.save(&jobs[0], &result).unwrap();
        let report = store.evict_to(u64::MAX).unwrap();
        assert_eq!(report.evicted_entries, 0, "in-budget entry evicted");
        assert!(
            store.load(&jobs[0]).is_some(),
            "just-written entry lost after eviction pass"
        );

        // The usage index survived the crossfire: it still parses on a
        // fresh open and still tracks the surviving entry.
        store.flush_index().unwrap();
        let reopened = ResultStore::open(&dir).unwrap();
        assert!(reopened.load(&jobs[0]).is_some());
        assert_eq!(reopened.len().unwrap(), 1);
        let name = store
            .entry_path(&jobs[0])
            .file_name()
            .unwrap()
            .to_string_lossy()
            .into_owned();
        assert!(
            reopened.index_entry(&name).is_some(),
            "index.json lost the surviving entry"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
