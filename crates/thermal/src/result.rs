//! Solved temperature fields and block-level queries.

use rmt3d_floorplan::{BlockId, ChipFloorplan};
use rmt3d_units::Celsius;

/// The steady-state temperature solution for a chip.
#[derive(Debug, Clone)]
pub struct ThermalResult {
    plan: ChipFloorplan,
    grid: usize,
    /// Active-layer temperature fields, one per die, row-major
    /// `grid x grid`, in °C.
    die_fields: Vec<Vec<f64>>,
    ambient: Celsius,
    iterations: usize,
}

impl ThermalResult {
    pub(crate) fn new(
        plan: ChipFloorplan,
        grid: usize,
        die_fields: Vec<Vec<f64>>,
        ambient: Celsius,
        iterations: usize,
    ) -> ThermalResult {
        ThermalResult {
            plan,
            grid,
            die_fields,
            ambient,
            iterations,
        }
    }

    /// Grid resolution.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Ambient temperature used in the solve.
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// SOR sweeps used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The chip-wide peak temperature (the paper's Fig. 4/5 metric).
    pub fn peak(&self) -> Celsius {
        let m = self
            .die_fields
            .iter()
            .flatten()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        Celsius(m)
    }

    /// Peak temperature on one die.
    ///
    /// # Panics
    ///
    /// Panics if `die` is out of range.
    pub fn die_peak(&self, die: usize) -> Celsius {
        let m = self.die_fields[die]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        Celsius(m)
    }

    /// Mean active-layer temperature across all dies.
    pub fn mean(&self) -> Celsius {
        let (sum, count) = self
            .die_fields
            .iter()
            .flatten()
            .fold((0.0, 0usize), |(s, c), &t| (s + t, c + 1));
        Celsius(sum / count.max(1) as f64)
    }

    /// Peak temperature within one block's footprint.
    ///
    /// Returns `None` when the block does not exist on this chip.
    pub fn block_peak(&self, id: BlockId) -> Option<Celsius> {
        let (die_idx, block) = self.plan.find(id)?;
        let die = &self.plan.dies[die_idx];
        let n = self.grid;
        let cw = die.width / n as f64;
        let ch = die.height / n as f64;
        let i0 = (block.rect.x / cw).floor() as usize;
        let i1 = ((block.rect.right() / cw).ceil() as usize).min(n);
        let j0 = (block.rect.y / ch).floor() as usize;
        let j1 = ((block.rect.top() / ch).ceil() as usize).min(n);
        let mut m = f64::NEG_INFINITY;
        for j in j0..j1 {
            for i in i0..i1 {
                m = m.max(self.die_fields[die_idx][j * n + i]);
            }
        }
        Some(Celsius(m))
    }

    /// The raw active-layer temperature field of one die (row-major
    /// `grid x grid`, °C) — for plotting and heat-map rendering.
    ///
    /// # Panics
    ///
    /// Panics if `die` is out of range.
    pub fn die_field(&self, die: usize) -> &[f64] {
        &self.die_fields[die]
    }

    /// The hottest cell's `(die, x cell, y cell)` location.
    pub fn hottest_cell(&self) -> (usize, usize, usize) {
        let mut best = (0, 0, 0);
        let mut best_t = f64::NEG_INFINITY;
        for (d, field) in self.die_fields.iter().enumerate() {
            for (k, &t) in field.iter().enumerate() {
                if t > best_t {
                    best_t = t;
                    best = (d, k % self.grid, k / self.grid);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(fields: Vec<Vec<f64>>, grid: usize) -> ThermalResult {
        let plan = if fields.len() == 1 {
            ChipFloorplan::two_d_a()
        } else {
            ChipFloorplan::three_d_2a()
        };
        ThermalResult::new(plan, grid, fields, Celsius(47.0), 1)
    }

    #[test]
    fn peak_and_mean() {
        let r = result_with(vec![vec![50.0, 60.0, 70.0, 80.0]], 2);
        assert_eq!(r.peak(), Celsius(80.0));
        assert_eq!(r.mean(), Celsius(65.0));
        assert_eq!(r.die_peak(0), Celsius(80.0));
    }

    #[test]
    fn hottest_cell_location() {
        let r = result_with(vec![vec![50.0, 60.0, 70.0, 80.0]], 2);
        assert_eq!(r.hottest_cell(), (0, 1, 1));
    }

    #[test]
    fn missing_block_returns_none() {
        let r = result_with(vec![vec![50.0; 4]], 2);
        // 2d-a has no checker.
        assert!(r.block_peak(BlockId::Checker).is_none());
    }

    #[test]
    fn multi_die_peak_spans_dies() {
        let r = result_with(vec![vec![50.0; 4], vec![55.0, 90.0, 55.0, 55.0]], 2);
        assert_eq!(r.peak(), Celsius(90.0));
        assert_eq!(r.die_peak(0), Celsius(50.0));
        assert_eq!(r.die_peak(1), Celsius(90.0));
    }
}
