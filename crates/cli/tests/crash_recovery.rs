//! Memento-style kill testing of `rmt3d campaign --journal`: the real
//! binary is SIGKILLed at seeded random instants — during startup,
//! mid-trial, mid-journal-write, between checkpoints — and resumed
//! with `--resume` until it finally completes. The surviving report
//! must be byte-identical to a golden uninterrupted run, which is the
//! paper's own standard applied to the platform: detection is nothing
//! without recovery that restores provably correct state.

mod killtest;

use killtest::{kill_after, SCHEDULES};
use rmt3d_campaign::{journal, CampaignSpec, JOURNAL_FILE};
use rmt3d_rmt::{EccConfig, FaultSite};
use rmt3d_workload::{Benchmark, SplitMix64};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// CLI arguments of the campaign under test; `spec()` is its
/// library-side mirror, used to replay the final journal.
const CAMPAIGN_ARGS: [&str; 12] = [
    "campaign",
    "--sites",
    "all",
    "--benchmarks",
    "gzip,mcf",
    "--faults-per-site",
    "6",
    "--seed",
    "97",
    "--instructions",
    "8000",
    "--quiet",
];

fn spec() -> CampaignSpec {
    CampaignSpec {
        sites: FaultSite::ALL.to_vec(),
        benchmarks: vec![Benchmark::Gzip, Benchmark::Mcf],
        faults_per_cell: 6,
        seed: 97,
        instructions: 8_000,
        ecc: EccConfig::paper(),
    }
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rmt3d-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn campaign(out_dir: &Path, resume: bool) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rmt3d"));
    cmd.args(CAMPAIGN_ARGS)
        .args(["--jobs", "2", "--no-ledger", "--out-dir"])
        .arg(out_dir)
        .arg(if resume { "--resume" } else { "--journal" })
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd
}

#[test]
fn sigkilled_campaigns_resume_byte_identical() {
    let root = tmp("harness");

    // Golden: one uninterrupted journaled run. Its wall time calibrates
    // the kill schedules, keeping each regime aimed at the same phase
    // of the run regardless of simulator or host speed.
    let golden_dir = root.join("golden");
    let golden_start = std::time::Instant::now();
    let status = campaign(&golden_dir, false)
        .status()
        .expect("golden campaign runs");
    let golden_time = golden_start.elapsed();
    assert!(status.success(), "golden campaign exited {status}");
    let golden = std::fs::read(golden_dir.join("campaign.jsonl")).expect("golden report");

    for sched in &SCHEDULES {
        let work = root.join(sched.name);
        let mut rng = SplitMix64::new(sched.seed);
        let mut kills = 0u64;
        loop {
            // `--resume` from the first attempt: an absent journal
            // degrades to a fresh run, so the loop needs no special
            // first iteration.
            let mut child = campaign(&work, true).spawn().expect("campaign spawns");
            match kill_after(&mut child, sched.delay(&mut rng, kills, golden_time)) {
                Some(status) => {
                    assert!(
                        status.success(),
                        "[{}] resumed campaign exited {status}",
                        sched.name
                    );
                    break;
                }
                None => kills += 1,
            }
            assert!(
                kills < 60,
                "[{}] campaign never outran the killer",
                sched.name
            );
        }
        assert!(
            kills >= 1,
            "[{}] never killed the campaign — delays too long for this grid",
            sched.name
        );

        let resumed = std::fs::read(work.join("campaign.jsonl")).expect("resumed report");
        assert_eq!(
            resumed, golden,
            "[{}] resumed report differs from the uninterrupted golden after {kills} kills",
            sched.name
        );

        // The surviving journal must replay clean: every trial
        // completed, nothing discarded.
        let text = std::fs::read_to_string(work.join(JOURNAL_FILE)).expect("journal survives");
        let replay = journal::replay(&text, &spec());
        assert!(replay.discarded.is_none(), "{:?}", replay.discarded);
        assert_eq!(replay.completed.len(), spec().total_trials());
        assert!(replay.in_flight.is_empty());
    }

    let _ = std::fs::remove_dir_all(&root);
}
