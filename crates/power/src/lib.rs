//! Power models for the `rmt3d` simulator: Wattch-lite activity-based
//! core power, ITRS technology scaling (paper Tables 7-8), DVFS
//! operating points, and the Srinivasan pipeline-depth power model
//! (paper Table 5).
//!
//! # Examples
//!
//! Reproducing a Table 8 entry from the Table 7 device data:
//!
//! ```
//! use rmt3d_power::tech;
//! use rmt3d_units::TechNode;
//!
//! let r = tech::scaling_ratio(TechNode::N90, TechNode::N65)?;
//! assert!((r.dynamic - 2.21).abs() < 0.02); // Table 8, row 90/65
//! # Ok::<(), rmt3d_power::tech::UnsupportedNodeError>(())
//! ```

pub mod dvfs;
pub mod pipeline;
pub mod tech;
mod wattch;

pub use dvfs::DvfsPoint;
pub use wattch::{CheckerPowerModel, CoreBlock, CorePowerModel, PowerBreakdown};
