//! Performance simulation of one (model, benchmark) pair.

use crate::model::{ProcessorModel, RunScale};
use rmt3d_cache::{CacheHierarchy, HierarchyStats, NucaPolicy, NucaStats};
use rmt3d_cpu::{ActivityCounters, CoreConfig, OooCore};
use rmt3d_rmt::{DfsConfig, RmtConfig, RmtSystem, DFS_LEVELS};
use rmt3d_units::Gigahertz;
use rmt3d_workload::{Benchmark, TraceGenerator};

/// Everything a performance run produces — the raw material for the
/// Fig. 4-7 and §3.3/§4 analyses.
#[derive(Debug, Clone)]
pub struct PerfResult {
    /// Model simulated.
    pub model: ProcessorModel,
    /// Benchmark simulated.
    pub benchmark: Benchmark,
    /// Leading-core clock used (2 GHz nominal).
    pub frequency: Gigahertz,
    /// Leading-core activity over the measured window.
    pub leader: ActivityCounters,
    /// Checker activity (zeroed for 2d-a).
    pub trailer: ActivityCounters,
    /// Cache-hierarchy counters.
    pub caches: HierarchyStats,
    /// L2 NUCA statistics (per-bank accesses for power maps).
    pub l2: NucaStats,
    /// DFS frequency histogram (Fig. 7); zeros for 2d-a.
    pub dfs_histogram: [f64; DFS_LEVELS],
    /// Mean normalized checker frequency.
    pub mean_checker_fraction: f64,
    /// Leader cycles including recovery stalls.
    pub total_cycles: u64,
}

impl PerfResult {
    /// End-to-end instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.leader.committed as f64 / self.total_cycles as f64
        }
    }

    /// L2 misses per 10 000 instructions (§3.3 metric).
    pub fn l2_misses_per_10k(&self) -> f64 {
        self.caches.l2_misses_per_10k()
    }
}

/// Configuration for one run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Processor organization.
    pub model: ProcessorModel,
    /// Overrides the model's NUCA bank layout (used by the §4
    /// heterogeneous study, whose upper die holds only 4 banks).
    pub layout: Option<rmt3d_cache::NucaLayout>,
    /// NUCA placement policy (paper default: distributed sets).
    pub policy: NucaPolicy,
    /// Leading-core clock. Scaling this below 2 GHz models the §3.3
    /// iso-thermal DVFS point: memory latency is constant in
    /// nanoseconds, so the cycle-denominated latency shrinks.
    pub frequency: Gigahertz,
    /// Cap on the checker's normalized frequency (1.0 same-process;
    /// 0.7 for the §4 90 nm checker die).
    pub checker_peak_fraction: f64,
    /// Simulation lengths.
    pub scale: RunScale,
}

impl SimConfig {
    /// The paper's nominal configuration for a model.
    pub fn nominal(model: ProcessorModel, scale: RunScale) -> SimConfig {
        SimConfig {
            model,
            layout: None,
            policy: NucaPolicy::DistributedSets,
            frequency: Gigahertz(2.0),
            checker_peak_fraction: 1.0,
            scale,
        }
    }
}

/// Memory latency in leader cycles at clock `f` (150 ns constant).
fn memory_cycles(f: Gigahertz) -> u32 {
    (150.0 * f.value()).round() as u32
}

/// Runs one (model, benchmark) performance simulation.
pub fn simulate(cfg: &SimConfig, benchmark: Benchmark) -> PerfResult {
    let layout = cfg
        .layout
        .clone()
        .unwrap_or_else(|| cfg.model.nuca_layout());
    let mut hierarchy = CacheHierarchy::new(layout, cfg.policy);
    hierarchy.set_memory_cycles(memory_cycles(cfg.frequency));
    let leader = OooCore::new(
        CoreConfig::leading_ev7_like(),
        TraceGenerator::new(benchmark.profile()),
        hierarchy,
    );

    if cfg.model.has_checker() {
        let rmt_cfg = RmtConfig {
            dfs: DfsConfig::paper().with_frequency_cap(cfg.checker_peak_fraction),
            ..RmtConfig::paper()
        };
        let mut sys = RmtSystem::new(leader, rmt_cfg);
        sys.prefill_caches();
        sys.run_instructions(cfg.scale.warmup_instructions);
        // Reset is not exposed on the composite; measure the delta
        // window instead.
        let start_leader = *sys.leader().activity();
        let start_trailer = *sys.trailer().activity();
        let start_cycles = sys.total_cycles();
        sys.run_instructions(cfg.scale.instructions);
        let mut leader_act = *sys.leader().activity();
        let mut trailer_act = *sys.trailer().activity();
        diff(&mut leader_act, &start_leader);
        diff(&mut trailer_act, &start_trailer);
        PerfResult {
            model: cfg.model,
            benchmark,
            frequency: cfg.frequency,
            leader: leader_act,
            trailer: trailer_act,
            caches: sys.leader().caches().stats(),
            l2: sys.leader().caches().l2().stats().clone(),
            dfs_histogram: sys.frequency_histogram(),
            mean_checker_fraction: sys.dfs().mean_fraction(),
            total_cycles: sys.total_cycles() - start_cycles,
        }
    } else {
        let mut core = leader;
        core.prefill_caches();
        core.run_instructions(cfg.scale.warmup_instructions);
        core.reset_stats();
        core.run_instructions(cfg.scale.instructions);
        PerfResult {
            model: cfg.model,
            benchmark,
            frequency: cfg.frequency,
            leader: *core.activity(),
            trailer: ActivityCounters::default(),
            caches: core.caches().stats(),
            l2: core.caches().l2().stats().clone(),
            dfs_histogram: [0.0; DFS_LEVELS],
            mean_checker_fraction: 0.0,
            total_cycles: core.activity().cycles,
        }
    }
}

/// Subtracts `start` from `acc` field-wise (window delta).
fn diff(acc: &mut ActivityCounters, start: &ActivityCounters) {
    acc.cycles -= start.cycles;
    acc.fetched -= start.fetched;
    acc.dispatched -= start.dispatched;
    acc.issued -= start.issued;
    acc.committed -= start.committed;
    acc.int_alu_ops -= start.int_alu_ops;
    acc.int_mul_ops -= start.int_mul_ops;
    acc.fp_alu_ops -= start.fp_alu_ops;
    acc.fp_mul_ops -= start.fp_mul_ops;
    acc.bpred_accesses -= start.bpred_accesses;
    acc.icache_accesses -= start.icache_accesses;
    acc.dcache_accesses -= start.dcache_accesses;
    acc.lsq_accesses -= start.lsq_accesses;
    acc.regfile_reads -= start.regfile_reads;
    acc.regfile_writes -= start.regfile_writes;
    acc.bypass_transfers -= start.bypass_transfers;
    acc.commit_stall_cycles -= start.commit_stall_cycles;
    acc.branch_mispredicts -= start.branch_mispredicts;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RunScale;

    #[test]
    fn baseline_and_3d_have_similar_ipc() {
        // §3.3: the checker imposes negligible overhead; 3d-checker
        // matches 2d-a.
        let quick = RunScale::quick();
        let a = simulate(
            &SimConfig::nominal(ProcessorModel::TwoDA, quick),
            Benchmark::Gzip,
        );
        let b = simulate(
            &SimConfig::nominal(ProcessorModel::ThreeDChecker, quick),
            Benchmark::Gzip,
        );
        let loss = 1.0 - b.ipc() / a.ipc();
        assert!(
            loss.abs() < 0.05,
            "3d-checker IPC {} vs 2d-a {} (loss {loss})",
            b.ipc(),
            a.ipc()
        );
    }

    #[test]
    fn lower_frequency_costs_less_than_proportionally() {
        // Memory latency is constant in ns, so a 10% slower clock loses
        // less than 10% IPC-seconds (§3.3).
        let quick = RunScale::quick();
        let full = simulate(
            &SimConfig::nominal(ProcessorModel::TwoDA, quick),
            Benchmark::Mcf,
        );
        let slow_cfg = SimConfig {
            frequency: Gigahertz(1.8),
            ..SimConfig::nominal(ProcessorModel::TwoDA, quick)
        };
        let slow = simulate(&slow_cfg, Benchmark::Mcf);
        // Work per second = IPC * f.
        let perf_full = full.ipc() * 2.0;
        let perf_slow = slow.ipc() * 1.8;
        let loss = 1.0 - perf_slow / perf_full;
        assert!(
            loss < 0.10 && loss > -0.02,
            "mcf at 1.8 GHz loses {loss} (memory-bound programs lose least)"
        );
    }

    #[test]
    fn checker_histogram_produced_for_rmt_models() {
        let r = simulate(
            &SimConfig::nominal(ProcessorModel::ThreeD2A, RunScale::quick()),
            Benchmark::Gap,
        );
        let sum: f64 = r.dfs_histogram.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(r.mean_checker_fraction > 0.2);
        assert!(r.trailer.committed > 0);
    }

    #[test]
    fn frequency_capped_checker_still_keeps_up_mostly() {
        // §4: the 1.4 GHz-capped checker slows the leader only ~3%.
        let quick = RunScale::quick();
        let free = simulate(
            &SimConfig::nominal(ProcessorModel::ThreeD2A, quick),
            Benchmark::Gzip,
        );
        let capped_cfg = SimConfig {
            checker_peak_fraction: 0.7,
            ..SimConfig::nominal(ProcessorModel::ThreeD2A, quick)
        };
        let capped = simulate(&capped_cfg, Benchmark::Gzip);
        let slowdown = 1.0 - capped.ipc() / free.ipc();
        assert!(
            slowdown < 0.12,
            "frequency-capped checker slowdown {slowdown}"
        );
        assert!(capped.mean_checker_fraction <= 0.7 + 1e-9);
    }
}
