//! Self-contained HTML run dashboard.
//!
//! [`render_html`] is a pure function from ledger documents
//! ([`Manifest`], [`RunStatus`], optional [`ParsedMetrics`]) to one
//! HTML file: no external scripts, stylesheets, fonts, or images, so
//! the report opens from `file://`, survives being mailed around, and
//! is pinned by a golden-file test. Being pure (no clock, no I/O), the
//! same inputs always render byte-identical output.
//!
//! Layout: stat tiles (progress, cache hit-rate, failures, elapsed) →
//! progress meter → worker timeline (lanes greedily packed from the
//! per-job wall intervals) → worker-pool utilization (busy/idle split
//! and steal counts) → job latency histogram (the log2 buckets from
//! `metrics.json`) → CPI stacks for profile runs → daemon panel
//! (queue-depth sparkline, cache hit-rate, and per-kind latency
//! histograms from the `daemon.metrics.jsonl` time-series, when given
//! via [`ReportOptions`]) → stall diagnostics → a collapsed per-job
//! table as the no-color fallback. [`ReportOptions::refresh_secs`]
//! adds a `<meta http-equiv="refresh">` tag so a regenerated report
//! self-refreshes in the browser — still zero scripts.
//!
//! Colors are the validated reference data-viz palette (adjacent-pair
//! CVD-safe in its fixed slot order, light and dark steps both
//! selected); marks follow its specs — thin bars, 2px surface gaps
//! between stacked segments, hairline grids, text in ink tokens rather
//! than series colors, native `<title>` tooltips on every mark, and a
//! legend whenever two or more series share a panel.

use crate::daemonseries::DaemonSeries;
use crate::ledger::{format_unix_ms, Manifest};
use crate::metricsio::{HistogramData, ParsedMetrics};
use crate::status::{fmt_nanos, JobPhase, RunStatus};
use std::fmt::Write as _;

/// Optional dashboard inputs beyond the run ledger documents.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReportOptions<'a> {
    /// Daemon time-series (`daemon.metrics.jsonl`); renders the fleet
    /// panel when non-empty.
    pub daemon: Option<&'a DaemonSeries>,
    /// Browser auto-reload interval for a report that is regenerated
    /// in place; emitted as a `<meta http-equiv="refresh">` tag.
    pub refresh_secs: Option<u64>,
}

/// HTML-escapes text interpolated into markup or attributes.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// `1234567` → `"1.2M"`, `"12.9K"`, `"123"`.
fn compact(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1}G", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.1}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Bytes with binary units: `"1.2 MiB"`.
fn fmt_bytes(n: u64) -> String {
    if n >= 1 << 20 {
        format!("{:.1} MiB", n as f64 / (1u64 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.1} KiB", n as f64 / 1024.0)
    } else {
        format!("{n} B")
    }
}

/// Fixed categorical slots (light, dark) in the palette's validated
/// order; color follows the entity, assigned by stable index.
const SERIES: [(&str, &str); 8] = [
    ("#2a78d6", "#3987e5"), // blue
    ("#eb6834", "#d95926"), // orange
    ("#1baf7a", "#199e70"), // aqua
    ("#eda100", "#c98500"), // yellow
    ("#e87ba4", "#d55181"), // magenta
    ("#008300", "#008300"), // green
    ("#4a3aa7", "#9085e9"), // violet
    ("#e34948", "#e66767"), // red
];

const STYLE: &str = r#"
:root { color-scheme: light dark; }
body.viz-root {
  margin: 0; padding: 24px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--ink);
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --track: #cde2fb;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  --s5: #e87ba4; --s6: #008300; --s7: #4a3aa7; --s8: #e34948;
  --good: #0ca30c; --warning: #fab219; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  body.viz-root {
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --track: #0d366b;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
    --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767;
  }
}
main { max-width: 960px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 14px; font-weight: 600; margin: 0 0 10px; }
.meta { color: var(--ink2); font-size: 13px; margin: 0 0 20px; }
.meta code { font-family: ui-monospace, monospace; font-size: 12px; }
.badge { display: inline-block; padding: 1px 8px; border-radius: 9px;
  font-size: 12px; font-weight: 600; border: 1px solid var(--border); }
.badge.ok { color: var(--good); }
.badge.failed { color: var(--critical); }
.badge.running { color: var(--ink2); }
section, .tile { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; }
section { padding: 16px; margin: 0 0 16px; }
.tiles { display: grid; grid-template-columns: repeat(auto-fit, minmax(130px, 1fr));
  gap: 12px; margin: 0 0 16px; }
.tile { padding: 12px 14px; }
.tile .label { font-size: 12px; color: var(--ink2); }
.tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
.tile .sub { font-size: 12px; color: var(--muted); margin-top: 2px; }
.meter { height: 10px; border-radius: 5px; background: var(--track);
  overflow: hidden; }
.meter > div { height: 100%; background: var(--s1); border-radius: 5px 0 0 5px; }
.legend { display: flex; flex-wrap: wrap; gap: 4px 14px; font-size: 12px;
  color: var(--ink2); margin-top: 8px; }
.legend .key { display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
svg text { font-family: system-ui, -apple-system, "Segoe UI", sans-serif; }
table { border-collapse: collapse; font-size: 13px; width: 100%; }
th, td { text-align: left; padding: 4px 10px 4px 0;
  border-bottom: 1px solid var(--grid); }
th { color: var(--ink2); font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
details > summary { cursor: pointer; color: var(--ink2); font-size: 13px; }
footer { color: var(--muted); font-size: 12px; margin: 24px 0 0; }
.note { color: var(--muted); font-size: 12px; margin-top: 8px; }
"#;

fn tile(out: &mut String, label: &str, value: &str, sub: &str) {
    let _ = write!(
        out,
        r#"<div class="tile"><div class="label">{}</div><div class="value">{}</div>"#,
        esc(label),
        esc(value)
    );
    if !sub.is_empty() {
        let _ = write!(out, r#"<div class="sub">{}</div>"#, esc(sub));
    }
    out.push_str("</div>\n");
}

/// A job's `(index, start_nanos, end_nanos)` interval on the timeline.
type JobSpan = (usize, u64, u64);

/// Greedy lane packing for the worker timeline: each job interval goes
/// to the first lane whose previous interval has ended. With accurate
/// timings this reconstructs per-worker lanes without needing worker
/// ids in the event schema.
fn pack_lanes(intervals: &[JobSpan]) -> Vec<Vec<JobSpan>> {
    let mut lanes: Vec<(u64, Vec<JobSpan>)> = Vec::new();
    let mut sorted = intervals.to_vec();
    sorted.sort_by_key(|&(_, start, _)| start);
    for (job, start, end) in sorted {
        match lanes
            .iter_mut()
            .find(|(busy_until, _)| *busy_until <= start)
        {
            Some((busy_until, lane)) => {
                *busy_until = end;
                lane.push((job, start, end));
            }
            None => lanes.push((end, vec![(job, start, end)])),
        }
    }
    lanes.into_iter().map(|(_, lane)| lane).collect()
}

/// Jobs drawn in the timeline before truncation (bounds file size for
/// huge campaigns; the cut is announced in the panel, never silent).
const TIMELINE_MAX_JOBS: usize = 300;

fn timeline_section(out: &mut String, status: &RunStatus) {
    let mut intervals = Vec::new();
    for i in 0..status.phases.len() {
        let (start, end, _) = status.job_wall(i);
        if end > start {
            intervals.push((i, start, end));
        }
        if intervals.len() == TIMELINE_MAX_JOBS {
            break;
        }
    }
    if intervals.is_empty() {
        return;
    }
    let truncated = status.phases.len() > TIMELINE_MAX_JOBS;
    let span = intervals
        .iter()
        .map(|&(_, _, e)| e)
        .max()
        .unwrap_or(1)
        .max(1);
    let lanes = pack_lanes(&intervals);
    const W: f64 = 912.0;
    const ROW: f64 = 18.0;
    const BAR: f64 = 14.0;
    let h = lanes.len() as f64 * ROW + 18.0;
    out.push_str("<section><h2>Worker timeline</h2>\n");
    let _ = write!(
        out,
        r#"<svg viewBox="0 0 {W} {h}" width="100%" role="img" aria-label="Per-lane job execution timeline">"#
    );
    // Hairline grid: quarters of the span.
    for q in 1..4 {
        let x = W * q as f64 / 4.0;
        let _ = write!(
            out,
            r#"<line x1="{x:.1}" y1="0" x2="{x:.1}" y2="{:.1}" stroke="var(--grid)" stroke-width="1"/>"#,
            h - 18.0
        );
        let _ = write!(
            out,
            r#"<text x="{x:.1}" y="{:.1}" font-size="10" fill="var(--muted)" text-anchor="middle">{}</text>"#,
            h - 4.0,
            fmt_nanos(span * q as u64 / 4)
        );
    }
    for (lane_idx, lane) in lanes.iter().enumerate() {
        let y = lane_idx as f64 * ROW;
        for &(job, start, end) in lane {
            let x = W * start as f64 / span as f64;
            let w = (W * (end - start) as f64 / span as f64).max(1.5);
            let phase = status.phases[job];
            let color = match phase {
                JobPhase::Failed => "var(--critical)",
                JobPhase::Cached => "var(--s3)",
                _ => "var(--s1)",
            };
            let label = &status.labels[job];
            let _ = write!(
                out,
                r#"<rect x="{x:.1}" y="{:.1}" width="{w:.1}" height="{BAR}" rx="3" fill="{color}"><title>job {job} {} — {} ({})</title></rect>"#,
                y + 1.0,
                esc(label),
                fmt_nanos(end - start),
                phase.as_str()
            );
        }
    }
    out.push_str("</svg>\n");
    // Three states share the panel: legend is mandatory.
    out.push_str(
        r#"<div class="legend"><span><span class="key" style="background:var(--s1)"></span>executed</span><span><span class="key" style="background:var(--s3)"></span>cache hit</span><span><span class="key" style="background:var(--critical)"></span>failed ✕</span></div>"#,
    );
    if truncated {
        let _ = write!(
            out,
            r#"<p class="note">Showing the first {TIMELINE_MAX_JOBS} of {} jobs.</p>"#,
            status.phases.len()
        );
    }
    out.push_str("</section>\n");
}

/// Millisecond values reuse the nanosecond formatter's unit ladder.
fn fmt_millis(ms: u64) -> String {
    fmt_nanos(ms.saturating_mul(1_000_000))
}

/// One log2-bucket histogram as an SVG bar chart: shared by the run's
/// job-latency panel and the daemon's per-kind latency panels, which
/// differ only in bucket units (`fmt`) and tooltip noun.
fn hist_svg(
    out: &mut String,
    h: &HistogramData,
    aria: &str,
    noun: &str,
    fmt: &dyn Fn(u64) -> String,
) {
    let peak = h.buckets.iter().map(|&(_, _, c)| c).max().unwrap_or(1);
    let n = h.buckets.len();
    const W: f64 = 912.0;
    const H: f64 = 150.0;
    const PLOT: f64 = 120.0;
    let slot = W / n as f64;
    let bar_w = (slot - 2.0).min(24.0); // 2px surface gap, 24px cap
    let _ = write!(
        out,
        r#"<svg viewBox="0 0 {W} {H}" width="100%" role="img" aria-label="{}">"#,
        esc(aria)
    );
    let _ = write!(
        out,
        r#"<line x1="0" y1="{PLOT}" x2="{W}" y2="{PLOT}" stroke="var(--baseline)" stroke-width="1"/>"#
    );
    for (i, &(lo, hi, count)) in h.buckets.iter().enumerate() {
        let x = i as f64 * slot + (slot - bar_w) / 2.0;
        let bar_h = (PLOT - 14.0) * count as f64 / peak as f64;
        let y = PLOT - bar_h;
        // 4px rounded data-end, square baseline: round the cap via a
        // clipped overshoot below the baseline.
        let _ = write!(
            out,
            r#"<path d="M{x:.1} {PLOT} V{:.1} q0 -4 4 -4 h{:.1} q4 0 4 4 V{PLOT} Z" fill="var(--s1)"><title>[{}, {}]: {count} {noun}</title></path>"#,
            (y + 4.0).min(PLOT),
            (bar_w - 8.0).max(0.0),
            fmt(lo),
            fmt(hi),
        );
        if count == peak {
            // Selective direct label: the modal bucket only.
            let _ = write!(
                out,
                r#"<text x="{:.1}" y="{:.1}" font-size="10" fill="var(--ink2)" text-anchor="middle">{}</text>"#,
                x + bar_w / 2.0,
                y - 4.0,
                compact(count)
            );
        }
        let _ = write!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="10" fill="var(--muted)" text-anchor="middle">{}</text>"#,
            x + bar_w / 2.0,
            H - 4.0,
            fmt(lo)
        );
    }
    out.push_str("</svg>\n");
}

fn histogram_section(out: &mut String, metrics: &ParsedMetrics) {
    let Some(h) = metrics.hist("job_wall_nanos") else {
        return;
    };
    if h.buckets.is_empty() {
        return;
    }
    out.push_str("<section><h2>Job latency</h2>\n");
    hist_svg(
        out,
        h,
        "Log-scale histogram of job wall times",
        "jobs",
        &fmt_nanos,
    );
    let _ = write!(
        out,
        r#"<p class="note">{} executed jobs, mean {}.</p>"#,
        compact(h.samples),
        fmt_nanos(h.mean as u64)
    );
    out.push_str("</section>\n");
}

/// Worker-pool utilization: the busy/idle wall split as a stacked bar
/// plus the steal count — the `PoolStatsSummary` fields the tiles only
/// hint at.
fn pool_section(out: &mut String, status: &RunStatus) {
    let Some(p) = &status.pool else {
        return;
    };
    let total = p.busy_nanos + p.idle_nanos;
    if total == 0 {
        return;
    }
    const W: f64 = 912.0;
    const BAR: f64 = 20.0;
    let busy_w = (W * p.busy_nanos as f64 / total as f64).max(0.5);
    out.push_str("<section><h2>Worker pool</h2>\n");
    let _ = write!(
        out,
        r#"<svg viewBox="0 0 {W} {BAR}" width="100%" height="20" role="img" aria-label="Worker busy versus idle wall time">"#
    );
    let _ = write!(
        out,
        r#"<rect x="0" y="0" width="{:.1}" height="{BAR}" rx="3" fill="var(--s1)"><title>busy {}</title></rect>"#,
        (busy_w - 2.0).max(0.5), // 2px surface gap between segments
        fmt_nanos(p.busy_nanos)
    );
    let _ = write!(
        out,
        r#"<rect x="{busy_w:.1}" y="0" width="{:.1}" height="{BAR}" rx="3" fill="var(--track)"><title>idle {}</title></rect>"#,
        (W - busy_w).max(0.5),
        fmt_nanos(p.idle_nanos)
    );
    out.push_str("</svg>\n");
    // Two states share the bar: legend is mandatory.
    out.push_str(
        r#"<div class="legend"><span><span class="key" style="background:var(--s1)"></span>busy</span><span><span class="key" style="background:var(--track)"></span>idle</span></div>"#,
    );
    let _ = write!(
        out,
        r#"<p class="note">{} workers · busy {} · idle {} · {} steals · {} executed, {} cached, {} failed · pool wall {}.</p>"#,
        p.workers,
        fmt_nanos(p.busy_nanos),
        fmt_nanos(p.idle_nanos),
        p.steals,
        p.executed,
        p.cache_hits,
        p.failed,
        fmt_nanos(p.wall_nanos),
    );
    out.push_str("</section>\n");
}

/// Pretty label for a daemon histogram name:
/// `daemon_queue_wait_ms_sweep` → `queue wait — sweep`.
fn daemon_hist_label(name: &str) -> String {
    let rest = name.strip_prefix("daemon_").unwrap_or(name);
    if let Some(kind) = rest.strip_prefix("queue_wait_ms_") {
        format!("queue wait — {kind}")
    } else if let Some(kind) = rest.strip_prefix("exec_ms_") {
        format!("execution — {kind}")
    } else {
        rest.to_string()
    }
}

/// The fleet panel: latest daemon gauges as tiles, queue depth over
/// time as a sparkline, and the per-kind latency histograms from the
/// newest sample's embedded cumulative metrics document.
fn daemon_section(out: &mut String, series: &DaemonSeries) {
    let Some(last) = series.latest() else {
        return;
    };
    out.push_str("<section><h2>Daemon</h2>\n<div class=\"tiles\">\n");
    tile(
        out,
        "Queue depth",
        &last.depth.to_string(),
        &format!("{} queued, {} running", last.queued, last.running),
    );
    tile(
        out,
        "Jobs done",
        &compact(last.done),
        &format!("{} failed, {} cancelled", last.failed, last.cancelled),
    );
    let probes = last.cache_hits + last.cache_misses;
    tile(
        out,
        "Cache hit-rate",
        &last
            .hit_rate()
            .map(|r| format!("{:.0}%", 100.0 * r))
            .unwrap_or_else(|| String::from("-")),
        &format!(
            "{} probes, {} evicted",
            compact(probes),
            last.cache_evictions
        ),
    );
    tile(
        out,
        "Clients",
        &last.connections.to_string(),
        &format!("{} watchers", last.watchers),
    );
    out.push_str("</div>\n");

    // Queue-depth sparkline: one point per ring sample.
    if series.samples.len() >= 2 {
        let n = series.samples.len();
        const W: f64 = 912.0;
        const H: f64 = 90.0;
        const PLOT: f64 = 74.0;
        let peak = series
            .samples
            .iter()
            .map(|s| s.depth)
            .max()
            .unwrap_or(1)
            .max(1);
        let xy = |i: usize, depth: u64| {
            (
                W * i as f64 / (n - 1) as f64,
                PLOT - (PLOT - 10.0) * depth as f64 / peak as f64,
            )
        };
        let _ = write!(
            out,
            r#"<svg viewBox="0 0 {W} {H}" width="100%" role="img" aria-label="Queue depth over time">"#
        );
        let _ = write!(
            out,
            r#"<line x1="0" y1="{PLOT}" x2="{W}" y2="{PLOT}" stroke="var(--baseline)" stroke-width="1"/>"#
        );
        let mut points = String::new();
        for (i, s) in series.samples.iter().enumerate() {
            let (x, y) = xy(i, s.depth);
            let _ = write!(points, "{x:.1},{y:.1} ");
        }
        let _ = write!(
            out,
            r#"<polyline points="{}" fill="none" stroke="var(--s1)" stroke-width="2"><title>queue depth, {n} samples, peak {peak}</title></polyline>"#,
            points.trim_end()
        );
        let (lx, ly) = xy(n - 1, last.depth);
        let _ = write!(
            out,
            r#"<circle cx="{lx:.1}" cy="{ly:.1}" r="3" fill="var(--s1)"/>"#
        );
        // Time axis: first and last sample stamps, text in ink tokens.
        let first = &series.samples[0];
        let _ = write!(
            out,
            r#"<text x="0" y="{:.1}" font-size="10" fill="var(--muted)">{}</text>"#,
            H - 4.0,
            format_unix_ms(first.unix_ms)
        );
        let _ = write!(
            out,
            r#"<text x="{W}" y="{:.1}" font-size="10" fill="var(--muted)" text-anchor="end">{}</text>"#,
            H - 4.0,
            format_unix_ms(last.unix_ms)
        );
        let _ = write!(
            out,
            r#"<text x="0" y="10" font-size="10" fill="var(--ink2)">peak {peak}</text>"#
        );
        out.push_str("</svg>\n");
    }

    // Per-kind daemon latency histograms from the cumulative document.
    if let Some(metrics) = &series.metrics {
        for (name, h) in &metrics.hists {
            if !name.starts_with("daemon_") || h.buckets.is_empty() {
                continue;
            }
            let _ = write!(
                out,
                r#"<p class="note">Latency: {} ({} jobs, mean {})</p>"#,
                esc(&daemon_hist_label(name)),
                compact(h.samples),
                fmt_millis(h.mean as u64),
            );
            hist_svg(
                out,
                h,
                &format!("Latency histogram: {}", daemon_hist_label(name)),
                "jobs",
                &fmt_millis,
            );
        }
    }
    if last.metrics_write_errors > 0 {
        let _ = write!(
            out,
            r#"<p class="note">⚠ {} metrics/artifact write failures — daemon telemetry may be incomplete.</p>"#,
            last.metrics_write_errors
        );
    }
    out.push_str("</section>\n");
}

fn cpi_section(out: &mut String, metrics: &ParsedMetrics) {
    let stacks: Vec<(&str, Vec<(&str, f64)>)> =
        [("leader", "cpi_leader_"), ("checker", "cpi_checker_")]
            .iter()
            .map(|&(who, prefix)| {
                let parts = metrics
                    .series_with_prefix(prefix)
                    .into_iter()
                    .map(|(name, s)| (name, s.mean))
                    .collect::<Vec<_>>();
                (who, parts)
            })
            .filter(|(_, parts)| !parts.is_empty())
            .collect();
    if stacks.is_empty() {
        return;
    }
    // Color follows the component name: stable slot per name across
    // both stacks, in first-seen (sorted-document) order.
    let mut components: Vec<&str> = Vec::new();
    for (_, parts) in &stacks {
        for &(name, _) in parts {
            if !components.contains(&name) {
                components.push(name);
            }
        }
    }
    let slot_of = |name: &str| components.iter().position(|c| *c == name).unwrap_or(0);
    let max_total: f64 = stacks
        .iter()
        .map(|(_, parts)| parts.iter().map(|(_, v)| v).sum::<f64>())
        .fold(0.0, f64::max);
    if max_total <= 0.0 {
        return;
    }
    const W: f64 = 912.0;
    const LABEL_W: f64 = 70.0;
    const ROW: f64 = 30.0;
    const BAR: f64 = 20.0;
    let h = stacks.len() as f64 * ROW;
    out.push_str("<section><h2>CPI stacks</h2>\n");
    let _ = write!(
        out,
        r#"<svg viewBox="0 0 {W} {h}" width="100%" role="img" aria-label="Cycles-per-instruction breakdown">"#
    );
    for (row, (who, parts)) in stacks.iter().enumerate() {
        let y = row as f64 * ROW + (ROW - BAR) / 2.0;
        let _ = write!(
            out,
            r#"<text x="0" y="{:.1}" font-size="12" fill="var(--ink2)">{who}</text>"#,
            y + BAR - 5.0
        );
        let mut x = LABEL_W;
        let total: f64 = parts.iter().map(|(_, v)| v).sum();
        for &(name, value) in parts {
            if value <= 0.0 {
                continue;
            }
            let w = (W - LABEL_W - 60.0) * value / max_total;
            let slot = SERIES[slot_of(name) % SERIES.len()];
            let _ = write!(
                out,
                r#"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{BAR}" rx="2" fill="{}" class="cpi-{}"><title>{who} {name}: {value:.4} CPI</title></rect>"#,
                (w - 2.0).max(0.5), // 2px surface gap between segments
                slot.0,
                slot_of(name) + 1
            );
            x += w;
        }
        // Value at the bar tip (text token, not series color).
        let _ = write!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="12" fill="var(--ink)">{total:.3}</text>"#,
            x + 6.0,
            y + BAR - 5.0
        );
    }
    out.push_str("</svg>\n");
    out.push_str(r#"<div class="legend">"#);
    for name in &components {
        let _ = write!(
            out,
            r#"<span><span class="key" style="background:{}"></span>{}</span>"#,
            SERIES[slot_of(name) % SERIES.len()].0,
            esc(name)
        );
    }
    out.push_str("</div>\n</section>\n");
}

fn stalls_section(out: &mut String, status: &RunStatus) {
    if status.stalls.is_empty() {
        return;
    }
    out.push_str("<section><h2>Watchdog stalls</h2>\n<table><thead><tr><th>job</th><th>label</th><th class=\"num\">silent for</th><th class=\"num\">median job</th></tr></thead><tbody>\n");
    for s in &status.stalls {
        let _ = write!(
            out,
            r#"<tr><td>⚠ {}</td><td>{}</td><td class="num">{}</td><td class="num">{}</td></tr>"#,
            s.job,
            esc(&s.label),
            fmt_nanos(s.elapsed_nanos),
            fmt_nanos(s.median_nanos)
        );
        out.push('\n');
    }
    out.push_str("</tbody></table></section>\n");
}

fn jobs_table(out: &mut String, status: &RunStatus) {
    if status.phases.is_empty() {
        return;
    }
    out.push_str("<section><details><summary>Per-job table</summary>\n<table><thead><tr><th class=\"num\">job</th><th>label</th><th>state</th><th class=\"num\">wall</th></tr></thead><tbody>\n");
    for i in 0..status.phases.len() {
        let (_, _, wall) = status.job_wall(i);
        let _ = write!(
            out,
            r#"<tr><td class="num">{i}</td><td>{}</td><td>{}</td><td class="num">{}</td></tr>"#,
            esc(&status.labels[i]),
            status.phases[i].as_str(),
            fmt_nanos(wall)
        );
        out.push('\n');
    }
    out.push_str("</tbody></table></details></section>\n");
}

/// Renders the full dashboard with default options; see the module
/// docs. Pure: identical inputs produce identical bytes.
pub fn render_html(
    manifest: &Manifest,
    status: &RunStatus,
    metrics: Option<&ParsedMetrics>,
) -> String {
    render_html_with(manifest, status, metrics, &ReportOptions::default())
}

/// [`render_html`] plus the daemon panel and self-refresh options.
/// Still pure: identical inputs produce identical bytes.
pub fn render_html_with(
    manifest: &Manifest,
    status: &RunStatus,
    metrics: Option<&ParsedMetrics>,
    opts: &ReportOptions<'_>,
) -> String {
    let mut out = String::with_capacity(16 * 1024);
    let _ = write!(
        out,
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n",
    );
    if let Some(secs) = opts.refresh_secs {
        let _ = writeln!(out, "<meta http-equiv=\"refresh\" content=\"{secs}\">");
    }
    let _ = write!(
        out,
        "<title>rmt3d run {}</title>\n<style>{STYLE}</style></head>\n<body class=\"viz-root\"><main>\n",
        esc(&manifest.run_id)
    );
    let badge_class = match manifest.outcome.as_str() {
        "ok" => "ok",
        "running" => "running",
        _ => "failed",
    };
    let badge_icon = match manifest.outcome.as_str() {
        "ok" => "✓",
        "running" => "◌",
        _ => "✕",
    };
    let _ = write!(
        out,
        r#"<h1>{} <span class="badge {badge_class}">{badge_icon} {}</span></h1>"#,
        esc(&manifest.run_id),
        esc(&manifest.outcome)
    );
    out.push('\n');
    let _ = write!(
        out,
        r#"<p class="meta">{} · {} · started {} · finished {} · spec <code>{}</code></p>"#,
        esc(&manifest.kind),
        esc(&manifest.version),
        format_unix_ms(manifest.started_unix_ms),
        format_unix_ms(manifest.finished_unix_ms),
        esc(&manifest.spec_hash)
    );
    out.push('\n');

    // Stat tiles: the headline numbers.
    out.push_str("<div class=\"tiles\">\n");
    let pct = if status.total == 0 {
        100.0
    } else {
        100.0 * status.done as f64 / status.total as f64
    };
    tile(
        &mut out,
        "Progress",
        &format!("{pct:.0}%"),
        &format!("{}/{} jobs", status.done, status.total),
    );
    tile(
        &mut out,
        "Executed",
        &compact(status.executed),
        &format!("{} failed", status.failures),
    );
    let probes = status.cache.map(|c| c.hits + c.misses).unwrap_or(0);
    let hit_rate = if probes == 0 {
        String::from("-")
    } else {
        format!(
            "{:.0}%",
            100.0 * status.cache.map(|c| c.hits).unwrap_or(0) as f64 / probes as f64
        )
    };
    tile(
        &mut out,
        "Cache hit-rate",
        &hit_rate,
        &status
            .cache
            .map(|c| format!("{} entries, {}", compact(c.entries), fmt_bytes(c.bytes)))
            .unwrap_or_default(),
    );
    tile(
        &mut out,
        "Elapsed",
        &fmt_nanos(status.elapsed_nanos),
        &status
            .pool
            .map(|p| format!("{} workers", p.workers))
            .unwrap_or_default(),
    );
    if let Some(p) = &status.pool {
        let busy = p.busy_nanos + p.idle_nanos;
        let util = if busy == 0 {
            String::from("-")
        } else {
            format!("{:.0}%", 100.0 * p.busy_nanos as f64 / busy as f64)
        };
        tile(
            &mut out,
            "Worker busy",
            &util,
            &format!("{} steals", p.steals),
        );
    }
    out.push_str("</div>\n");

    // Progress meter: accent fill on a lighter step of the same ramp.
    let _ = write!(
        out,
        r#"<section><h2>Progress</h2><div class="meter"><div style="width:{pct:.1}%"></div></div><p class="note">{} executed, {} cached, {} failed, {} pending.</p></section>"#,
        status.executed,
        status.cache_hits,
        status.failures,
        status.total.saturating_sub(status.done),
    );
    out.push('\n');

    timeline_section(&mut out, status);
    pool_section(&mut out, status);
    if let Some(m) = metrics {
        histogram_section(&mut out, m);
        cpi_section(&mut out, m);
    }
    if let Some(series) = opts.daemon {
        daemon_section(&mut out, series);
    }
    stalls_section(&mut out, status);
    jobs_table(&mut out, status);

    let _ = write!(
        out,
        "<footer>rmt3d run ledger · {} · single-file report, no external assets</footer>\n</main></body></html>\n",
        esc(&manifest.version)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metricsio::parse_metrics;
    use crate::status::StallInfo;

    fn manifest() -> Manifest {
        Manifest {
            run_id: "sweep-20260808-120000-00c0ffee".into(),
            kind: "sweep".into(),
            version: "rmt3d/0.1.0".into(),
            spec_hash: "00000000c0ffee00".into(),
            total_jobs: 3,
            outcome: "ok".into(),
            config: vec![("workers".into(), "2".into())],
            started_unix_ms: 1_786_147_200_000,
            finished_unix_ms: 1_786_147_260_000,
        }
    }

    #[test]
    fn report_is_self_contained_and_escaped() {
        let mut status = RunStatus::new("sweep-x", "sweep", 2);
        status.labels[0] = "3d-2a/<mcf> & \"co\"".into();
        status.phases[0] = JobPhase::Done;
        status.done = 1;
        status.executed = 1;
        let html = render_html(&manifest(), &status, None);
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("&lt;mcf&gt; &amp; &quot;co&quot;"));
        assert!(!html.contains("3d-2a/<mcf>"));
        // Self-contained: no external fetches of any kind.
        for needle in ["http://", "https://", "<script src", "<link "] {
            assert!(!html.contains(needle), "external reference: {needle}");
        }
    }

    #[test]
    fn report_renders_every_section_when_data_exists() {
        let mut status = RunStatus::new("r", "profile", 2);
        status.phases = vec![JobPhase::Done, JobPhase::Failed];
        status.labels = vec!["a".into(), "b".into()];
        status.done = 2;
        status.executed = 2;
        status.failures = 1;
        status.stalls.push(StallInfo {
            job: 1,
            label: "b".into(),
            elapsed_nanos: 5_000_000_000,
            median_nanos: 1_000_000_000,
        });
        let metrics = parse_metrics(
            r#"{"series":{"cpi_leader_base":{"count":1,"min":0.8,"mean":0.8,"p50":0.8,"p99":0.8,"max":0.8},
                "cpi_leader_mem":{"count":1,"min":0.4,"mean":0.4,"p50":0.4,"p99":0.4,"max":0.4},
                "cpi_checker_base":{"count":1,"min":0.5,"mean":0.5,"p50":0.5,"p99":0.5,"max":0.5}},
               "hist":{"job_wall_nanos":{"samples":2,"mean":1500.0,"buckets":[[1024,2047,2]]}}}"#,
        )
        .unwrap();
        let html = render_html(&manifest(), &status, Some(&metrics));
        for needle in [
            "Progress",
            "Job latency",
            "CPI stacks",
            "Watchdog stalls",
            "Per-job table",
            "checker",
        ] {
            assert!(html.contains(needle), "missing section: {needle}");
        }
    }

    #[test]
    fn pool_section_surfaces_busy_idle_and_steals() {
        use crate::status::PoolTotals;
        let mut status = RunStatus::new("r", "sweep", 1);
        status.pool = Some(PoolTotals {
            workers: 4,
            executed: 7,
            cache_hits: 2,
            failed: 1,
            steals: 3,
            busy_nanos: 9_000_000_000,
            idle_nanos: 3_000_000_000,
            wall_nanos: 3_100_000_000,
        });
        let html = render_html(&manifest(), &status, None);
        assert!(html.contains("Worker pool"));
        assert!(html.contains("3 steals"));
        assert!(html.contains("busy 9.0s"));
        assert!(html.contains("idle 3.0s"));
    }

    #[test]
    fn daemon_panel_and_refresh_render_self_contained() {
        let ring = concat!(
            r#"{"unix_ms":1786147200000,"queued":2,"running":1,"done":0,"failed":0,"#,
            r#""cancelled":0,"depth":3,"watchers":1,"connections":2,"cache_hits":0,"#,
            r#""cache_misses":1,"cache_evictions":0,"metrics_write_errors":0}"#,
            "\n",
            r#"{"unix_ms":1786147201000,"queued":0,"running":1,"done":2,"failed":0,"#,
            r#""cancelled":0,"depth":1,"watchers":1,"connections":1,"cache_hits":3,"#,
            r#""cache_misses":1,"cache_evictions":2,"metrics_write_errors":1,"#,
            r#""metrics":{"series":{},"hist":{"daemon_exec_ms_sweep":"#,
            r#"{"samples":2,"mean":12.0,"buckets":[[8,15,2]]}}}}"#,
            "\n",
        );
        let series = DaemonSeries::parse(ring);
        let status = RunStatus::new("r", "sweep", 1);
        let html = render_html_with(
            &manifest(),
            &status,
            None,
            &ReportOptions {
                daemon: Some(&series),
                refresh_secs: Some(5),
            },
        );
        assert!(html.contains(r#"<meta http-equiv="refresh" content="5">"#));
        for needle in [
            "Daemon",
            "Queue depth",
            "execution — sweep",
            "Queue depth over time",
            "1 metrics/artifact write failures",
        ] {
            assert!(html.contains(needle), "missing daemon content: {needle}");
        }
        // The panel must not break self-containment.
        for needle in ["http://", "https://", "<script src", "<link "] {
            assert!(!html.contains(needle), "external reference: {needle}");
        }
        // Without options nothing daemon-related appears.
        let plain = render_html(&manifest(), &status, None);
        assert!(!plain.contains("http-equiv"));
        assert!(!plain.contains("<h2>Daemon</h2>"));
    }

    #[test]
    fn daemon_hist_labels_and_millis_formatting() {
        assert_eq!(
            daemon_hist_label("daemon_queue_wait_ms_sweep"),
            "queue wait — sweep"
        );
        assert_eq!(
            daemon_hist_label("daemon_exec_ms_campaign"),
            "execution — campaign"
        );
        assert_eq!(daemon_hist_label("daemon_other"), "other");
        assert_eq!(fmt_millis(1500), fmt_nanos(1_500_000_000));
    }

    #[test]
    fn rendering_is_pure() {
        let status = RunStatus::new("r", "sweep", 1);
        let a = render_html(&manifest(), &status, None);
        let b = render_html(&manifest(), &status, None);
        assert_eq!(a, b);
    }

    #[test]
    fn lane_packing_reuses_freed_lanes() {
        // Two overlapping jobs need two lanes; a third starting after
        // the first ends reuses lane 0.
        let lanes = pack_lanes(&[(0, 0, 10), (1, 5, 15), (2, 12, 20)]);
        assert_eq!(lanes.len(), 2);
        assert_eq!(lanes[0], vec![(0, 0, 10), (2, 12, 20)]);
        assert_eq!(lanes[1], vec![(1, 5, 15)]);
    }

    #[test]
    fn compact_and_bytes_formatting() {
        assert_eq!(compact(999), "999");
        assert_eq!(compact(12_900), "12.9K");
        assert_eq!(compact(1_200_000), "1.2M");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
    }
}
