//! Strict argument consumer shared by every `rmt3d` subcommand.
//!
//! Commands pull out the flags they know, and [`Args::finish`] rejects
//! anything left over instead of silently ignoring it.

pub struct Args {
    args: Vec<String>,
    used: Vec<bool>,
}

impl Args {
    pub fn new(args: &[String]) -> Args {
        Args {
            args: args.to_vec(),
            used: vec![false; args.len()],
        }
    }

    /// Consumes a boolean `--flag`.
    pub fn flag(&mut self, name: &str) -> bool {
        match self.args.iter().position(|a| a == name) {
            Some(i) => {
                self.used[i] = true;
                true
            }
            None => false,
        }
    }

    /// Consumes `--flag value`; errors when the flag is present without
    /// a value.
    pub fn opt(&mut self, name: &str) -> Result<Option<String>, String> {
        let Some(i) = self.args.iter().position(|a| a == name) else {
            return Ok(None);
        };
        self.used[i] = true;
        match self.args.get(i + 1) {
            Some(v) if !v.starts_with("--") => {
                self.used[i + 1] = true;
                Ok(Some(v.clone()))
            }
            _ => Err(format!("{name} requires a value")),
        }
    }

    /// Consumes `--flag value` and parses it.
    pub fn parsed<T: std::str::FromStr>(&mut self, name: &str) -> Result<Option<T>, String> {
        match self.opt(name)? {
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for {name}: {v}")),
            None => Ok(None),
        }
    }

    /// Consumes the next unused positional (non-flag) argument.
    pub fn positional(&mut self) -> Option<String> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] && !a.starts_with("--") {
                self.used[i] = true;
                return Some(a.clone());
            }
        }
        None
    }

    /// Errors on any argument no consumer claimed (typo'd or misplaced
    /// flags).
    pub fn finish(self) -> Result<(), String> {
        let leftover: Vec<&str> = self
            .args
            .iter()
            .zip(&self.used)
            .filter(|(_, used)| !**used)
            .map(|(a, _)| a.as_str())
            .collect();
        if leftover.is_empty() {
            Ok(())
        } else {
            Err(format!("unrecognized arguments: {}", leftover.join(" ")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::new(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn flags_options_and_positionals_consume() {
        let mut a = args(&["fig4", "--paper", "--jobs", "4"]);
        assert_eq!(a.positional().as_deref(), Some("fig4"));
        assert!(a.flag("--paper"));
        assert_eq!(a.parsed::<usize>("--jobs").unwrap(), Some(4));
        assert!(a.finish().is_ok());
    }

    #[test]
    fn leftover_arguments_are_errors() {
        let mut a = args(&["--model", "3d-2a", "--typo"]);
        assert_eq!(a.opt("--model").unwrap().as_deref(), Some("3d-2a"));
        let err = a.finish().unwrap_err();
        assert!(err.contains("--typo"), "{err}");
    }

    #[test]
    fn option_without_value_is_an_error() {
        let mut a = args(&["--out-dir", "--resume"]);
        assert!(a.opt("--out-dir").is_err());
    }

    #[test]
    fn parse_failure_names_the_flag() {
        let mut a = args(&["--jobs", "many"]);
        let err = a.parsed::<usize>("--jobs").unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
    }
}
