//! Full reproduction run: every table and figure, all 19 benchmarks.
//!
//! ```sh
//! cargo run --release -p rmt3d-cli --example paper_run | tee paper_results.txt
//! ```
//!
//! Takes on the order of 15-30 minutes serially; the heavy sweeps
//! (Fig. 4, Fig. 5, iso-thermal) run on the `rmt3d-sweep` parallel
//! engine, one worker per available core. `EXPERIMENTS.md` records one
//! such run against the paper's numbers.

use rmt3d::experiments::{
    fig4, fig5, fig6, fig7, heterogeneous, interconnect, iso_thermal, rmt_summary, tables,
};
use rmt3d::RunScale;
use rmt3d_reliability::{critical_charge_fc, mbu_probability_at, per_bit_ser, relative_chip_ser};
use rmt3d_sweep::ParallelSimulator;
use rmt3d_units::TechNode;
use rmt3d_workload::Benchmark;

fn main() {
    let scale = RunScale {
        warmup_instructions: 100_000,
        instructions: 500_000,
        thermal_grid: 50,
    };
    let all = Benchmark::ALL;
    // One worker per core; results are bit-identical to the serial run.
    let sim = ParallelSimulator::new(0);

    println!("==== rmt3d full reproduction run ====");
    println!(
        "scale: {} instructions/benchmark, {}x{} thermal grid, 19 benchmarks\n",
        scale.instructions, scale.thermal_grid, scale.thermal_grid
    );

    println!("{}", tables::table4_text());
    println!("{}", tables::table5_text());
    println!("{}", tables::table6_text());
    println!("{}", tables::table7_text());
    println!("{}", tables::table8_text());

    println!("== Fig. 8: SRAM SER scaling ==");
    println!("node    neutron  alpha  per-bit  chip-relative");
    for n in [TechNode::N180, TechNode::N130, TechNode::N90, TechNode::N65] {
        let s = per_bit_ser(n);
        println!(
            "{:7} {:7.2} {:6.2} {:8.2} {:10.2}",
            n.to_string(),
            s.neutron,
            s.alpha,
            s.total(),
            relative_chip_ser(n)
        );
    }
    println!("\n== Fig. 9: MBU probability vs critical charge ==");
    for n in TechNode::ALL {
        println!(
            "{:7} Qcrit {:4.1} fC  P(MBU) {:.4}",
            n.to_string(),
            critical_charge_fc(n),
            mbu_probability_at(n)
        );
    }

    println!("\n== Fig. 6 (full suite) ==");
    let f6 = fig6::run(&all, scale);
    print!("{}", f6.to_table());

    println!("\n== Fig. 7 (full suite) ==");
    let f7 = fig7::run(&all, scale);
    print!("{}", f7.to_table());
    println!(
        "timing-error improvement vs full speed: {:.0}x (65nm), {:.0}x (90nm)",
        f7.timing_error_improvement(TechNode::N65, 12),
        f7.timing_error_improvement(TechNode::N90, 12)
    );

    println!("\n== Fig. 5 (full suite) ==");
    let f5 = fig5::run_with(&sim, &all, scale).expect("fig5");
    print!("{}", f5.to_table());
    println!(
        "suite means: 2d-a {:.1}, 2d-2a@7 {:.1}, 3d-2a@7 {:.1}, 2d-2a@15 {:.1}, 3d-2a@15 {:.1}",
        f5.mean_baseline().0,
        f5.mean_of(|r| r.two_d_2a_7w).0,
        f5.mean_of(|r| r.three_d_2a_7w).0,
        f5.mean_of(|r| r.two_d_2a_15w).0,
        f5.mean_of(|r| r.three_d_2a_15w).0
    );

    println!("\n== Fig. 4 (full suite) ==");
    let f4 = fig4::run_with(&sim, &all, scale).expect("fig4");
    print!("{}", f4.to_table());

    println!("\n== Sec 3.3: iso-thermal ==");
    for w in [7.0, 15.0] {
        let p = iso_thermal::run_with(&sim, w, &all, scale).expect("iso-thermal");
        println!(
            "{:4.0} W checker: {:.2} GHz to match 2d-a ({:.1} C), perf loss {:.1}%",
            w,
            p.matched_frequency.value(),
            p.baseline_temp.0,
            100.0 * p.performance_loss
        );
    }

    println!("\n== Sec 3.4: interconnect ==");
    print!("{}", interconnect::run().to_table());

    println!("\n== Sec 4: heterogeneous die ==");
    print!(
        "{}",
        heterogeneous::run(&all, scale).expect("hetero").to_table()
    );

    println!("\n== Fig. 1 summary ==");
    print!("{}", rmt_summary::run(&all, scale).to_table());
}
