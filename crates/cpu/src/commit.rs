//! Committed-instruction records: the payload the leading core sends to
//! the checker through the RVQ/LVQ/BOQ (Fig. 1).

use rmt3d_workload::MicroOp;

/// Everything the leading core communicates about one committed
/// instruction.
///
/// Per §2.1, the leader forwards the *result*, both *input operands*
/// (enabling register value prediction in the trailer), *load values*
/// (so the trailer never touches the D-cache) and *branch outcomes*. The
/// paper's Table 4 sizes the die-to-die via bundles from exactly these
/// fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommittedOp {
    /// The architectural micro-op.
    pub op: MicroOp,
    /// Result value written to the destination register (0 for ops with
    /// no destination).
    pub result: u64,
    /// Value of source operand 1 at commit.
    pub src1_value: u64,
    /// Value of source operand 2 at commit.
    pub src2_value: u64,
    /// The value loaded from memory (loads only).
    pub load_value: Option<u64>,
    /// The value stored (stores only; goes to the StB).
    pub store_value: Option<u64>,
    /// Leading-core cycle at which the instruction committed.
    pub commit_cycle: u64,
}

impl CommittedOp {
    /// True when the checker must compare a register result for this op.
    pub fn needs_value_check(&self) -> bool {
        self.op.dest.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt3d_workload::{ArchReg, OpClass};

    fn op(kind: OpClass, dest: Option<ArchReg>) -> MicroOp {
        MicroOp {
            seq: 0,
            pc: 0x400_000,
            kind,
            dest,
            src1_dist: None,
            src2_dist: None,
            src1_reg: None,
            src2_reg: None,
            imm: 1,
            mem: None,
            branch: None,
        }
    }

    #[test]
    fn value_check_follows_destination() {
        let with_dest = CommittedOp {
            op: op(OpClass::IntAlu, Some(ArchReg::new(1))),
            result: 42,
            src1_value: 0,
            src2_value: 0,
            load_value: None,
            store_value: None,
            commit_cycle: 0,
        };
        assert!(with_dest.needs_value_check());
        let store = CommittedOp {
            op: op(OpClass::Store, None),
            ..with_dest
        };
        assert!(!store.needs_value_check());
    }
}
