//! Plain-text rendering helpers for the experiment harness: aligned
//! horizontal bar charts and grouped-series charts, so `paper_run`, the
//! examples and the Criterion benches can show each figure's *shape*
//! directly in the terminal.

/// Renders a horizontal bar chart. Values are scaled so the largest bar
/// spans `width` characters; each line is `label value bar`.
///
/// # Examples
///
/// ```
/// use rmt3d::report::bar_chart;
///
/// let chart = bar_chart(&[("gzip", 1.93), ("mcf", 0.25)], 20);
/// assert!(chart.contains("gzip"));
/// assert!(chart.lines().count() == 2);
/// ```
pub fn bar_chart(rows: &[(&str, f64)], width: usize) -> String {
    let max = rows
        .iter()
        .map(|&(_, v)| sanitize(v))
        .fold(f64::MIN_POSITIVE, f64::max);
    let label_w = rows.iter().map(|&(l, _)| l.len()).max().unwrap_or(0);
    let mut s = String::new();
    for &(label, v) in rows {
        let v = sanitize(v);
        let n = ((v / max) * width as f64).round().max(0.0) as usize;
        s.push_str(&format!(
            "{label:label_w$} {v:8.2} {}\n",
            "#".repeat(n.min(width))
        ));
    }
    s
}

/// Treats non-finite values as 0 so a NaN produced upstream (e.g. a 0/0
/// rate) renders as an empty bar instead of poisoning the scale and the
/// printed numbers.
fn sanitize(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Renders a grouped bar chart: one block per row, one bar per series.
/// Useful for the Fig. 5/6 per-benchmark, per-model layouts.
pub fn grouped_chart(
    row_labels: &[&str],
    series_labels: &[&str],
    values: &[Vec<f64>],
    width: usize,
) -> String {
    assert_eq!(row_labels.len(), values.len(), "one value row per label");
    let max = values
        .iter()
        .flatten()
        .map(|&v| sanitize(v))
        .fold(f64::MIN_POSITIVE, f64::max);
    let label_w = row_labels
        .iter()
        .chain(series_labels.iter())
        .map(|l| l.len())
        .max()
        .unwrap_or(0);
    let mut s = String::new();
    for (row, vals) in row_labels.iter().zip(values) {
        assert_eq!(
            vals.len(),
            series_labels.len(),
            "one value per series in row {row}"
        );
        s.push_str(&format!("{row}\n"));
        for (series, &v) in series_labels.iter().zip(vals) {
            let v = sanitize(v);
            let n = ((v / max) * width as f64).round().max(0.0) as usize;
            s.push_str(&format!(
                "  {series:label_w$} {v:8.2} {}\n",
                "#".repeat(n.min(width))
            ));
        }
    }
    s
}

/// Renders a compact histogram line for distributions like Fig. 7
/// (values should sum to ~1).
pub fn histogram_line(bins: &[f64]) -> String {
    const GLYPHS: [char; 8] = [
        ' ', '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
    ];
    let max = bins
        .iter()
        .map(|&b| sanitize(b))
        .fold(f64::MIN_POSITIVE, f64::max);
    bins.iter()
        .map(|&b| {
            let i = ((sanitize(b) / max) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[i.min(GLYPHS.len() - 1)]
        })
        .collect()
}

/// Renders a temperature field as an ASCII heat map: one character per
/// cell (downsampled by `step`), shaded from `.` (coolest) to `@`
/// (hottest).
///
/// # Panics
///
/// Panics if `field.len() != grid * grid` or `step == 0`.
pub fn heatmap(field: &[f64], grid: usize, step: usize) -> String {
    assert_eq!(field.len(), grid * grid, "field must be grid x grid");
    assert!(step > 0, "step must be positive");
    const SHADES: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];
    let lo = field.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = field.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    let mut s = String::new();
    // Render top row last-in-first: floorplan y grows upward.
    for j in (0..grid).step_by(step).rev() {
        for i in (0..grid).step_by(step) {
            let t = field[j * grid + i];
            let k = (((t - lo) / span) * (SHADES.len() - 1) as f64).round() as usize;
            s.push(SHADES[k.min(SHADES.len() - 1)]);
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_width() {
        let c = bar_chart(&[("a", 10.0), ("b", 5.0), ("c", 0.0)], 10);
        let lines: Vec<&str> = c.lines().collect();
        assert!(lines[0].ends_with(&"#".repeat(10)));
        assert!(lines[1].ends_with(&"#".repeat(5)));
        assert!(!lines[2].contains('#'));
    }

    #[test]
    fn grouped_chart_shapes() {
        let c = grouped_chart(
            &["gzip", "mcf"],
            &["2d-a", "3d-2a"],
            &[vec![1.9, 1.9], vec![0.25, 0.26]],
            20,
        );
        assert!(c.contains("gzip"));
        assert!(c.contains("3d-2a"));
        assert_eq!(c.lines().count(), 6);
    }

    #[test]
    #[should_panic(expected = "one value row per label")]
    fn grouped_chart_validates() {
        let _ = grouped_chart(&["a"], &["x"], &[], 10);
    }

    #[test]
    fn histogram_line_peaks_at_mode() {
        let h = histogram_line(&[0.0, 0.1, 0.5, 0.1, 0.0]);
        let chars: Vec<char> = h.chars().collect();
        assert_eq!(chars.len(), 5);
        assert!(chars[2] > chars[1] && chars[2] > chars[3]);
    }

    #[test]
    fn heatmap_shades_hot_cells() {
        // 4x4 field with one hot corner.
        let mut field = vec![50.0; 16];
        field[15] = 90.0; // j=3, i=3: top-right
        let m = heatmap(&field, 4, 1);
        let lines: Vec<&str> = m.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].ends_with('@'), "hot corner renders darkest: {m}");
        assert!(lines[3].starts_with('.'), "cool cells render light");
    }

    #[test]
    #[should_panic(expected = "grid x grid")]
    fn heatmap_validates_dimensions() {
        let _ = heatmap(&[1.0; 10], 4, 1);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(bar_chart(&[], 10), "");
        assert_eq!(histogram_line(&[]), "");
        assert_eq!(grouped_chart(&[], &[], &[], 10), "");
    }

    #[test]
    fn non_finite_values_render_as_empty_bars() {
        let c = bar_chart(&[("ok", 4.0), ("nan", f64::NAN), ("inf", f64::INFINITY)], 8);
        let lines: Vec<&str> = c.lines().collect();
        assert!(lines[0].ends_with(&"#".repeat(8)), "finite bar sets scale");
        assert!(!lines[1].contains('#'), "NaN renders empty: {c}");
        assert!(!lines[2].contains('#'), "inf renders empty: {c}");
        assert!(lines[1].contains("0.00"), "NaN prints as 0: {c}");
        assert!(lines[2].contains("0.00"), "inf prints as 0: {c}");
    }

    #[test]
    fn all_nan_bar_chart_is_well_formed() {
        let c = bar_chart(&[("a", f64::NAN), ("b", f64::NAN)], 8);
        assert_eq!(c.lines().count(), 2);
        assert!(!c.contains('#'));
    }

    #[test]
    fn grouped_chart_tolerates_nan() {
        let c = grouped_chart(&["row"], &["x", "y"], &[vec![f64::NAN, 2.0]], 10);
        assert_eq!(c.lines().count(), 3);
        assert!(!c.contains("NaN"));
    }

    #[test]
    fn histogram_line_tolerates_nan() {
        let h = histogram_line(&[f64::NAN, 0.5, 0.0]);
        assert_eq!(h.chars().count(), 3);
        let chars: Vec<char> = h.chars().collect();
        assert_eq!(chars[0], ' ', "NaN bin renders blank");
    }
}
