//! End-to-end ledger flow through the real binary: a sweep registers a
//! run, `status` and `report --html` read it back, and ledger chatter
//! never touches stdout (cold and cached runs print identical result
//! lines).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn rmt3d(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rmt3d"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rmt3d-cli-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn sweep_args<'a>(runs: &'a str, cache: &'a str) -> Vec<&'a str> {
    vec![
        "sweep",
        "--models",
        "2d-a",
        "--benchmarks",
        "gzip,mcf",
        "--instructions",
        "15000",
        "--jobs",
        "2",
        "--out-dir",
        cache,
        "--runs-root",
        runs,
    ]
}

#[test]
fn sweep_registers_a_run_and_status_and_report_read_it_back() {
    let runs = tmp("ledger");
    let cache = tmp("ledger-cache");
    let runs_s = runs.to_str().unwrap();
    let cache_s = cache.to_str().unwrap();

    let cold = rmt3d(&sweep_args(runs_s, cache_s));
    assert!(cold.status.success(), "sweep failed: {cold:?}");

    // The ledger root has a latest pointer to a parseable manifest and
    // status, both with terminal outcomes.
    let latest = std::fs::read_to_string(runs.join("latest")).expect("latest pointer");
    let run_id = latest.trim();
    let run_dir = runs.join(run_id);
    let manifest = rmt3d_obs::Manifest::from_json(
        &std::fs::read_to_string(run_dir.join("manifest.json")).expect("manifest exists"),
    )
    .expect("manifest parses");
    assert_eq!(manifest.kind, "sweep");
    assert_eq!(manifest.outcome, "ok");
    assert_eq!(manifest.total_jobs, 2);
    let status = rmt3d_obs::RunStatus::from_json(
        &std::fs::read_to_string(run_dir.join("status.json")).expect("status exists"),
    )
    .expect("status parses");
    assert_eq!(status.state, "ok");
    assert_eq!(status.done, 2);
    assert!(
        std::fs::read_to_string(run_dir.join("metrics.json"))
            .expect("metrics exists")
            .starts_with('{'),
        "metrics.json is a JSON document"
    );

    // Ledger chatter is stderr-only: a cached rerun prints the same
    // result lines (the trailing summary line carries wall time and
    // hit counts, so it legitimately differs).
    let cached = rmt3d(&sweep_args(runs_s, cache_s));
    assert!(cached.status.success(), "cached sweep failed: {cached:?}");
    let strip_summary = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("jobs in"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_summary(&stdout(&cold)),
        strip_summary(&stdout(&cached)),
        "result lines must be byte-identical with a warm cache"
    );

    // `status` resolves the latest run (the cached rerun) and prints a
    // finished progress bar.
    let st = rmt3d(&["status", "--runs-root", runs_s]);
    assert!(st.status.success(), "status failed: {st:?}");
    let text = stdout(&st);
    assert!(
        text.contains("state=ok"),
        "unexpected status output: {text}"
    );
    assert!(
        text.contains("2/2 done"),
        "unexpected status output: {text}"
    );

    // `status --run ID` resolves the first run explicitly.
    let st = rmt3d(&["status", "--run", run_id, "--runs-root", runs_s]);
    assert!(stdout(&st).contains(run_id));

    // `report --html` renders a self-contained dashboard into the run
    // directory.
    let rp = rmt3d(&["report", "--html", "--run", run_id, "--runs-root", runs_s]);
    assert!(rp.status.success(), "report failed: {rp:?}");
    let html = std::fs::read_to_string(run_dir.join("report.html")).expect("report written");
    assert!(html.starts_with("<!doctype html>"));
    assert!(html.contains(run_id));
    assert!(!html.contains("src="), "dashboard must be dependency-free");

    let _ = std::fs::remove_dir_all(&runs);
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn no_ledger_opt_out_leaves_the_runs_root_untouched() {
    let runs = tmp("optout");
    let cache = tmp("optout-cache");
    let mut args = sweep_args(runs.to_str().unwrap(), cache.to_str().unwrap());
    args.push("--no-ledger");
    let out = rmt3d(&args);
    assert!(out.status.success(), "sweep failed: {out:?}");
    assert!(!Path::new(&runs).exists(), "runs root must not be created");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn status_on_an_empty_ledger_fails_cleanly() {
    let runs = tmp("empty");
    std::fs::create_dir_all(&runs).unwrap();
    let out = rmt3d(&["status", "--runs-root", runs.to_str().unwrap()]);
    assert!(!out.status.success(), "no runs to resolve");
    let _ = std::fs::remove_dir_all(&runs);
}
