//! Parameter variability across technology nodes (paper Table 6, ITRS).

use rmt3d_units::TechNode;

/// Projected +/- variability (as a fraction of nominal) at one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variability {
    /// Node.
    pub node: TechNode,
    /// Threshold-voltage variability.
    pub vth: f64,
    /// Circuit performance (delay) variability.
    pub performance: f64,
    /// Circuit power variability.
    pub power: f64,
}

/// Table 6 of the paper (ITRS 2005 projections).
pub const VARIABILITY_TABLE: [Variability; 4] = [
    Variability {
        node: TechNode::N80,
        vth: 0.26,
        performance: 0.41,
        power: 0.55,
    },
    Variability {
        node: TechNode::N65,
        vth: 0.33,
        performance: 0.45,
        power: 0.56,
    },
    Variability {
        node: TechNode::N45,
        vth: 0.42,
        performance: 0.50,
        power: 0.58,
    },
    Variability {
        node: TechNode::N32,
        vth: 0.58,
        performance: 0.57,
        power: 0.59,
    },
];

/// Looks up (or interpolates toward the nearest tabulated node) the
/// variability for `node`. The 90/130/180 nm nodes clamp to the oldest
/// (least variable) table row, consistent with the trend.
pub fn variability(node: TechNode) -> Variability {
    if let Some(v) = VARIABILITY_TABLE.iter().find(|v| v.node == node) {
        return *v;
    }
    // Outside the table: clamp to the nearest end by feature size.
    let f = node.feature_nm();
    let first = VARIABILITY_TABLE[0];
    let last = VARIABILITY_TABLE[VARIABILITY_TABLE.len() - 1];
    let v = if f >= first.node.feature_nm() {
        first
    } else {
        last
    };
    Variability { node, ..v }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_values() {
        let v = variability(TechNode::N65);
        assert_eq!((v.vth, v.performance, v.power), (0.33, 0.45, 0.56));
        let v = variability(TechNode::N32);
        assert_eq!((v.vth, v.performance, v.power), (0.58, 0.57, 0.59));
    }

    #[test]
    fn variability_grows_with_scaling() {
        for w in VARIABILITY_TABLE.windows(2) {
            assert!(w[1].vth > w[0].vth);
            assert!(w[1].performance > w[0].performance);
            assert!(w[1].power >= w[0].power);
        }
    }

    #[test]
    fn older_nodes_clamp_low() {
        let v90 = variability(TechNode::N90);
        assert_eq!(v90.node, TechNode::N90);
        assert!(v90.vth <= variability(TechNode::N65).vth);
    }
}
