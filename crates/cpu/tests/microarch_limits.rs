//! Targeted microarchitecture tests: drive the out-of-order core with
//! degenerate instruction mixes and verify the pipeline saturates at
//! exactly the bound the Table 1 resources impose.

use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
use rmt3d_cpu::{CoreConfig, OooCore};
use rmt3d_workload::{InstructionMix, MemoryProfile, TraceGenerator, WorkloadProfile};

fn profile(mix: InstructionMix, dep_mean: f64) -> WorkloadProfile {
    WorkloadProfile {
        name: "synthetic",
        seed: 7,
        mix,
        dep_mean,
        static_branches: 16,
        predictability: 1.0,
        memory: MemoryProfile::new(8, 64, 1.0, 0.0, 4).expect("valid"),
    }
}

fn steady_ipc(p: WorkloadProfile) -> f64 {
    let mut core = OooCore::new(
        CoreConfig::leading_ev7_like(),
        TraceGenerator::new(p),
        CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
    );
    core.prefill_caches();
    core.run_instructions(5_000);
    core.reset_stats();
    core.run_instructions(40_000);
    core.activity().ipc()
}

#[test]
fn independent_alu_ops_saturate_the_width() {
    // Pure 1-cycle ALU work with far-apart dependences: bounded only by
    // the 4-wide front end / commit.
    let mix = InstructionMix::new(1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0).unwrap();
    let ipc = steady_ipc(profile(mix, 40.0));
    assert!(
        (3.3..=4.0).contains(&ipc),
        "independent ALU stream should run near width 4, got {ipc}"
    );
}

#[test]
fn serial_dependence_chain_runs_at_one_ipc() {
    // Every op consumes its predecessor: latency-1 chain => IPC ~= 1.
    let mix = InstructionMix::new(1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0).unwrap();
    let ipc = steady_ipc(profile(mix, 1.0));
    assert!(
        (0.85..=1.15).contains(&ipc),
        "serial chain must serialize to ~1 IPC, got {ipc}"
    );
}

#[test]
fn integer_multipliers_bound_mul_throughput() {
    // Independent multiplies: 2 pipelined multipliers => IPC <= 2.
    let mix = InstructionMix::new(0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0).unwrap();
    let ipc = steady_ipc(profile(mix, 40.0));
    assert!(
        (1.6..=2.05).contains(&ipc),
        "2 int multipliers cap IPC at 2, got {ipc}"
    );
}

#[test]
fn single_fp_adder_bounds_fp_throughput() {
    // Independent FP adds: 1 pipelined FP adder => IPC <= 1.
    let mix = InstructionMix::new(0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0).unwrap();
    let ipc = steady_ipc(profile(mix, 40.0));
    assert!(
        (0.8..=1.05).contains(&ipc),
        "1 FP adder caps IPC at 1, got {ipc}"
    );
}

#[test]
fn serial_multiply_chain_pays_full_latency() {
    // Dependent multiplies: 3-cycle latency chain => IPC ~= 1/3.
    let mix = InstructionMix::new(0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0).unwrap();
    let ipc = steady_ipc(profile(mix, 1.0));
    assert!(
        (0.28..=0.40).contains(&ipc),
        "dependent 3-cycle muls run at ~1/3 IPC, got {ipc}"
    );
}

#[test]
fn l1_resident_load_stream_is_bounded_by_agen_ports() {
    // Pure loads hitting L1: loads share the 4 integer ALUs for address
    // generation; the LSQ (40 entries) and 2-cycle L1 pipeline allow
    // near-width throughput.
    let mix = InstructionMix::new(0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0).unwrap();
    let ipc = steady_ipc(profile(mix, 40.0));
    assert!(
        (2.5..=4.0).contains(&ipc),
        "L1-resident loads should stream, got {ipc}"
    );
}

#[test]
fn mixed_fp_program_interleaves_units() {
    // 50% FP add + 50% FP mul: two independent unit classes can overlap,
    // giving up to 2 IPC where either class alone gives 1.
    let mix = InstructionMix::new(0.0, 0.0, 0.5, 0.5, 0.0, 0.0, 0.0).unwrap();
    let ipc = steady_ipc(profile(mix, 40.0));
    assert!(
        (1.4..=2.05).contains(&ipc),
        "fp add/mul should overlap to ~2 IPC, got {ipc}"
    );
}

#[test]
fn perfectly_biased_branches_cost_nothing() {
    // All-taken branches with predictability 1.0 (periodic): after
    // training, fetch groups end at taken branches but the predictor
    // never redirects. 50% branches halves the fetch group, so IPC sits
    // near the fetch-group bound, well above the mispredict-bound case.
    let mix = InstructionMix::new(0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5).unwrap();
    let predictable = steady_ipc(profile(mix, 40.0));
    let mut random = profile(mix, 40.0);
    random.predictability = 0.0;
    random.seed = 9;
    let unpredictable = steady_ipc(random);
    assert!(
        predictable > unpredictable * 1.1,
        "prediction must matter: {predictable} vs {unpredictable}"
    );
}
