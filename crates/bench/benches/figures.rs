//! Regenerates the paper's Figures 4-9 and benchmarks their core
//! computational kernels.
//!
//! Run with `cargo bench -p rmt3d-bench --bench figures`. Set
//! `RMT3D_PAPER=1` to regenerate with all 19 benchmarks at full scale
//! (takes tens of minutes); the default uses a representative subset.

use rmt3d::experiments::{fig4, fig5, fig6, fig7};
use rmt3d::thermal::{solve, PowerMap, ThermalConfig};
use rmt3d::{simulate, ProcessorModel, RunScale, SimConfig};
use rmt3d_bench::bench;
use rmt3d_reliability::{mbu_probability_at, per_bit_ser, relative_chip_ser};
use rmt3d_units::{TechNode, Watts};
use rmt3d_workload::Benchmark;
use std::hint::black_box;

fn suite() -> (Vec<Benchmark>, RunScale) {
    if std::env::var("RMT3D_PAPER").is_ok() {
        (Benchmark::ALL.to_vec(), RunScale::paper())
    } else {
        (
            vec![
                Benchmark::Gzip,
                Benchmark::Mcf,
                Benchmark::Swim,
                Benchmark::Eon,
                Benchmark::Vpr,
            ],
            RunScale {
                warmup_instructions: 50_000,
                instructions: 250_000,
                thermal_grid: 50,
            },
        )
    }
}

fn print_figures() {
    let (benchmarks, scale) = suite();

    println!("\n== Fig. 6 ==");
    print!("{}", fig6::run(&benchmarks, scale).to_table());

    println!("\n== Fig. 4 ==");
    print!(
        "{}",
        fig4::run(&benchmarks, scale).expect("fig4").to_table()
    );

    println!("\n== Fig. 5 ==");
    print!(
        "{}",
        fig5::run(&benchmarks, scale).expect("fig5").to_table()
    );

    println!("\n== Fig. 7 ==");
    print!("{}", fig7::run(&benchmarks, scale).to_table());

    println!("\n== Fig. 8: SRAM per-bit SER scaling ==");
    println!("node    neutron  alpha  per-bit  chip-relative");
    for n in [TechNode::N180, TechNode::N130, TechNode::N90, TechNode::N65] {
        let s = per_bit_ser(n);
        println!(
            "{:7} {:7.2} {:6.2} {:8.2} {:10.2}",
            n.to_string(),
            s.neutron,
            s.alpha,
            s.total(),
            relative_chip_ser(n)
        );
    }

    println!("\n== Fig. 9: multi-bit upset probability ==");
    println!("node    Qcrit(fC)  P(MBU)");
    for n in [
        TechNode::N180,
        TechNode::N130,
        TechNode::N90,
        TechNode::N65,
        TechNode::N45,
        TechNode::N32,
    ] {
        println!(
            "{:7} {:9.1} {:8.4}",
            n.to_string(),
            rmt3d_reliability::critical_charge_fc(n),
            mbu_probability_at(n)
        );
    }
    println!();
}

fn main() {
    print_figures();

    // Thermal solve kernel (the Fig. 4/5 workhorse).
    {
        let plan = ProcessorModel::ThreeD2A.floorplan();
        let mut map = PowerMap::new();
        for die in &plan.dies {
            for blk in &die.blocks {
                map.set(blk.id, Watts(1.0));
            }
        }
        let cfg = ThermalConfig::fast();
        bench("fig4_thermal_solve_25x25", 10, || {
            black_box(solve(&plan, &map, &cfg).unwrap().peak())
        });
    }

    // Co-simulation kernel (the Fig. 6/7 workhorse): 20K instructions
    // through the coupled RMT system.
    {
        let scale = RunScale {
            warmup_instructions: 1_000,
            instructions: 20_000,
            thermal_grid: 25,
        };
        let cfg = SimConfig::nominal(ProcessorModel::ThreeD2A, scale);
        bench("fig6_cosim_20k_instructions", 10, || {
            black_box(simulate(&cfg, Benchmark::Gzip).ipc())
        });
    }

    // Substrate kernels: the building blocks every figure rests on.
    bench("substrate_trace_generation_10k_ops", 10, || {
        use rmt3d_workload::TraceGenerator;
        let mut g = TraceGenerator::new(Benchmark::Gzip.profile());
        let mut acc = 0u64;
        for _ in 0..10_000 {
            acc ^= g.next_op().imm;
        }
        black_box(acc)
    });

    {
        use rmt3d_cache::{CacheConfig, SetAssocCache};
        let mut cache = SetAssocCache::new(CacheConfig::l1_32k_2way());
        let mut addr = 0u64;
        bench("substrate_l1_cache_10k_accesses", 10, || {
            let mut hits = 0u32;
            for _ in 0..10_000 {
                addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
                hits += cache.access(addr % (64 * 1024), false) as u32;
            }
            black_box(hits)
        });
    }

    {
        use rmt3d_cpu::CombinedPredictor;
        let mut p = CombinedPredictor::table1();
        let mut x = 1u64;
        bench("substrate_branch_predictor_10k", 10, || {
            let mut hits = 0u32;
            for i in 0..10_000u64 {
                x ^= x << 13;
                x ^= x >> 7;
                hits += p.predict_and_train(0x40_0000 + (i % 256) * 16, x & 3 != 0) as u32;
            }
            black_box(hits)
        });
    }

    // Reliability model kernels (Figs. 8-9).
    bench("fig8_fig9_reliability_models", 10, || {
        let mut acc = 0.0;
        for n in TechNode::ALL {
            acc += relative_chip_ser(black_box(n)) + mbu_probability_at(n);
        }
        black_box(acc)
    });
}
