//! In-order trailing (checker) core (paper §2.1).
//!
//! The trailer re-executes the leader's committed instruction stream with
//! perfect branch prediction (BOQ), no D-cache accesses (LVQ) and —
//! optionally — register value prediction (RVP): operands are read from
//! the RVQ instead of the register file, removing every data-dependence
//! stall so ILP is bounded only by fetch bandwidth and functional units.
//! Each instruction is *verified* before it commits: the recomputed
//! result is compared against the leader's, and with RVP the predicted
//! operands are compared against the trailer's own register file.

use crate::activity::ActivityCounters;
use crate::commit::CommittedOp;
use crate::config::TrailerConfig;
use rmt3d_telemetry::{emit, CpiComponent, CpiStack, Event, NullSink, Sink};
use rmt3d_workload::OpClass;
use std::collections::VecDeque;

/// Outcome of verifying one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Values agree.
    Ok,
    /// The recomputed result differs from the leader's result — a fault
    /// in either core's datapath or in the RVQ payload.
    ResultMismatch,
    /// An RVP operand disagrees with the trailer's register file — a
    /// fault upstream of this instruction.
    OperandMismatch,
}

/// A completed verification, emitted at trailer commit.
///
/// The record is deliberately small (it is copied once per verified
/// instruction on the hot path): recovery and TMR voting need the full
/// checked payload only for *failed* checks, so those items are parked
/// in a side buffer on the core ([`InOrderCore::drain_error_items_into`],
/// [`InOrderCore::pop_error_item`]) instead of riding along here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verification {
    /// Sequence number of the checked instruction.
    pub seq: u64,
    /// The trailer's recomputed result value.
    pub result: u64,
    /// Kind of the checked instruction (for queue-slot accounting).
    pub kind: OpClass,
    /// Check result.
    pub outcome: CheckOutcome,
}

impl Verification {
    /// True when an error was detected.
    pub fn is_error(&self) -> bool {
        self.outcome != CheckOutcome::Ok
    }
}

/// The in-order checker pipeline.
///
/// Drive it one trailer-clock cycle at a time with [`InOrderCore::step_cycle`],
/// feeding instructions from the RVQ; verified instructions come back in
/// order. The caller owns the clock-domain crossing (GALS) and the DFS
/// policy — see the `rmt3d-rmt` crate.
///
/// Pipeline state is struct-of-arrays: payloads and completion cycles
/// live in parallel rings indexed by two monotone cursors
/// (`pipe_head..pipe_tail` is the occupied window, oldest first). The
/// ring capacity is the configured pipeline depth rounded up to a power
/// of two, so slot indexing is a mask instead of a modulo.
#[derive(Debug)]
pub struct InOrderCore<S: Sink = NullSink> {
    cfg: TrailerConfig,
    cycle: u64,
    regfile: [u64; 64],
    pipe_items: Box<[CommittedOp]>,
    pipe_complete: Box<[u64]>,
    pipe_mask: u64,
    pipe_head: u64,
    pipe_tail: u64,
    /// Payloads of failed checks, in verification order; drained by
    /// recovery (replay) and TMR voting (repair). Empty on the fault-free
    /// fast path.
    error_items: VecDeque<CommittedOp>,
    activity: ActivityCounters,
    cpi: CpiStack,
    sink: S,
}

impl InOrderCore {
    /// Creates an idle checker core with telemetry disabled
    /// ([`NullSink`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(cfg: TrailerConfig) -> InOrderCore {
        InOrderCore::with_sink(cfg, NullSink)
    }
}

impl<S: Sink> InOrderCore<S> {
    /// Creates an idle checker core that reports each detected mismatch
    /// to `sink` (as an [`Event::Counter`] named `checker_mismatch`).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn with_sink(cfg: TrailerConfig, sink: S) -> InOrderCore<S> {
        cfg.validate().expect("invalid trailer configuration");
        let cap = (cfg.pipeline_depth as usize).next_power_of_two();
        InOrderCore {
            cfg,
            cycle: 0,
            regfile: [0; 64],
            pipe_items: vec![CommittedOp::EMPTY; cap].into_boxed_slice(),
            pipe_complete: vec![0; cap].into_boxed_slice(),
            pipe_mask: cap as u64 - 1,
            pipe_head: 0,
            pipe_tail: 0,
            error_items: VecDeque::new(),
            activity: ActivityCounters::default(),
            cpi: CpiStack::new(),
            sink,
        }
    }

    #[inline]
    fn pipe_len(&self) -> usize {
        (self.pipe_tail - self.pipe_head) as usize
    }

    /// Current trailer cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Accumulated activity counters.
    pub fn activity(&self) -> &ActivityCounters {
        &self.activity
    }

    /// Instructions currently in the trailer pipeline (dispatched but not
    /// yet verified).
    pub fn in_flight(&self) -> usize {
        self.pipe_len()
    }

    /// Injects a single-bit flip into the trailer's register file. Used
    /// by the fault-injection harness to model the §3.5 concern: errors
    /// in the checker's own state.
    pub fn flip_regfile_bit(&mut self, reg: u8, bit: u8) {
        self.regfile[reg as usize % 64] ^= 1u64 << (bit % 64);
    }

    /// CPI stack over trailer-clock ticks. Only populated when the sink
    /// is enabled; when populated, the components sum exactly to
    /// [`ActivityCounters::cycles`].
    pub fn cpi_stack(&self) -> &CpiStack {
        &self.cpi
    }

    /// Resets statistics, keeping architectural state.
    pub fn reset_stats(&mut self) {
        self.activity = ActivityCounters::default();
        self.cpi = CpiStack::new();
    }

    /// Read-only view of the trailer's architectural register file — the
    /// system's recovery point (§2: "the register file state of the
    /// trailing thread is used to initiate recovery").
    pub fn regfile(&self) -> &[u64; 64] {
        &self.regfile
    }

    /// Overwrites the architectural register file (TMR repair: an
    /// outvoted checker is restored from the winner's state).
    pub fn restore_regfile(&mut self, rf: &[u64; 64]) {
        self.regfile = *rf;
    }

    /// Appends the payloads of every failed check since the last drain
    /// (in verification order) to `out` and clears the side buffer.
    /// Recovery replays these before the still-queued backlog.
    pub fn drain_error_items_into(&mut self, out: &mut Vec<CommittedOp>) {
        out.extend(self.error_items.drain(..));
    }

    /// Removes and returns the payload of the oldest undrained failed
    /// check. TMR voting consumes one per non-Ok verification, keeping
    /// the buffer in lockstep with the verification stream.
    ///
    /// # Panics
    ///
    /// Panics if no failed-check payload is buffered.
    pub fn pop_error_item(&mut self) -> CommittedOp {
        self.error_items
            .pop_front()
            .expect("a non-Ok verification parks its payload")
    }

    /// Re-executes one instruction architecturally from the trailer's
    /// own register state (ignoring the possibly-corrupt queue payload)
    /// and retires it. This is the recovery path: it produces the value
    /// a full re-execution from the trailer's checkpoint would produce.
    /// Returns the recomputed result.
    pub fn architectural_replay(&mut self, item: &CommittedOp) -> u64 {
        let op = item.op;
        let s1 = op.src1_reg.map_or(0, |r| self.regfile[r.index() as usize]);
        let s2 = op.src2_reg.map_or(0, |r| self.regfile[r.index() as usize]);
        let result = match op.kind {
            OpClass::Load => crate::ooo::load_memory_value(op.mem_addr),
            OpClass::Store | OpClass::Branch => 0,
            _ => op.compute_result(s1, s2),
        };
        if let Some(d) = op.dest {
            self.regfile[d.index() as usize] = result;
        }
        result
    }

    /// Empties the execution pipeline, returning the in-flight payloads
    /// oldest-first (recovery squash: the caller replays them).
    pub fn drain_pipe(&mut self) -> Vec<CommittedOp> {
        let mut out = Vec::with_capacity(self.pipe_len());
        self.drain_pipe_into(&mut out);
        out
    }

    /// Like [`drain_pipe`](Self::drain_pipe) but appends into a
    /// caller-owned buffer, so recovery paths can reuse scratch storage
    /// instead of allocating per flush.
    pub fn drain_pipe_into(&mut self, out: &mut Vec<CommittedOp>) {
        while self.pipe_head != self.pipe_tail {
            out.push(self.pipe_items[(self.pipe_head & self.pipe_mask) as usize]);
            self.pipe_head += 1;
        }
    }

    /// Advances one trailer cycle: verifies up to `verify_ports` oldest
    /// completed instructions (appending results to `out`), then
    /// dispatches up to `width` new instructions from `input`.
    ///
    /// Returns the number of instructions verified this cycle.
    pub fn step_cycle(
        &mut self,
        input: &mut VecDeque<CommittedOp>,
        out: &mut Vec<Verification>,
    ) -> u32 {
        let verified = self.do_verify(out);
        self.do_dispatch(input);
        // Cycle attribution is profiling-only: gated on the sink so the
        // NullSink build stays identical to the uninstrumented core.
        if S::ENABLED {
            self.cpi.add(self.classify_cycle(verified, input));
        }
        self.cycle += 1;
        self.activity.cycles += 1;
        if S::ENABLED {
            debug_assert_eq!(
                self.cpi.total(),
                self.activity.cycles,
                "CPI stack must sum to total cycles"
            );
        }
        verified
    }

    /// Attributes the trailer tick that just executed to one stall
    /// class. The trailer never misses in a cache (LVQ/BOQ) so its
    /// taxonomy is small: verifying is progress, an empty pipe with an
    /// empty RVQ is fetch starvation, a full pipe is a structural
    /// stall, and everything else is execute/dependence latency.
    fn classify_cycle(&self, verified: u32, input: &VecDeque<CommittedOp>) -> CpiComponent {
        if verified > 0 {
            return CpiComponent::BaseIssue;
        }
        if self.pipe_head == self.pipe_tail {
            if input.is_empty() {
                CpiComponent::FetchStarved
            } else {
                CpiComponent::BaseIssue
            }
        } else if self.pipe_len() >= self.cfg.pipeline_depth as usize {
            CpiComponent::StructFull
        } else {
            CpiComponent::BaseIssue
        }
    }

    fn do_verify(&mut self, out: &mut Vec<Verification>) -> u32 {
        let mut n = 0;
        while n < self.cfg.verify_ports {
            if self.pipe_head == self.pipe_tail {
                break;
            }
            let slot = (self.pipe_head & self.pipe_mask) as usize;
            if self.pipe_complete[slot] > self.cycle {
                break;
            }
            let item = self.pipe_items[slot];
            self.pipe_head += 1;
            let op = item.op;

            // Operand check (RVP only): predicted operands must match the
            // trailer's own architectural state.
            let mut outcome = CheckOutcome::Ok;
            if self.cfg.rvp {
                let s1_ok = op
                    .src1_reg
                    .is_none_or(|r| self.regfile[r.index() as usize] == item.src1_value);
                let s2_ok = op
                    .src2_reg
                    .is_none_or(|r| self.regfile[r.index() as usize] == item.src2_value);
                if !(s1_ok && s2_ok) {
                    outcome = CheckOutcome::OperandMismatch;
                }
            }

            // Recompute the result from the trailer's view of the
            // operands.
            let (s1, s2) = if self.cfg.rvp {
                (item.src1_value, item.src2_value)
            } else {
                (
                    op.src1_reg.map_or(0, |r| self.regfile[r.index() as usize]),
                    op.src2_reg.map_or(0, |r| self.regfile[r.index() as usize]),
                )
            };
            let result = match op.kind {
                OpClass::Load => item.mem_value, // from the LVQ
                OpClass::Store | OpClass::Branch => 0,
                _ => op.compute_result(s1, s2),
            };
            if outcome == CheckOutcome::Ok && op.dest.is_some() && result != item.result {
                outcome = CheckOutcome::ResultMismatch;
            }

            if outcome == CheckOutcome::Ok {
                if let Some(d) = op.dest {
                    self.regfile[d.index() as usize] = result;
                    self.activity.regfile_writes += 1;
                }
                self.activity.committed += 1;
            }
            // On a mismatch the trailer register file is left untouched:
            // it is the recovery point (paper §2).
            self.activity.regfile_reads +=
                op.src1_reg.is_some() as u64 + op.src2_reg.is_some() as u64;
            if outcome != CheckOutcome::Ok {
                let cycle = self.cycle;
                emit(&mut self.sink, || Event::Counter {
                    name: "checker_mismatch",
                    cycle,
                    value: 1.0,
                });
                self.error_items.push_back(item);
            }
            out.push(Verification {
                seq: op.seq,
                result,
                kind: op.kind,
                outcome,
            });
            n += 1;
        }
        n
    }

    fn do_dispatch(&mut self, input: &mut VecDeque<CommittedOp>) {
        let mut int_alu = self.cfg.int_alu;
        let mut int_mul = self.cfg.int_mul;
        let mut fp_alu = self.cfg.fp_alu;
        let mut fp_mul = self.cfg.fp_mul;
        for _ in 0..self.cfg.width {
            if self.pipe_len() >= self.cfg.pipeline_depth as usize {
                break;
            }
            let Some(front) = input.front() else { break };
            let op = front.op;
            // In-order: a structural or data stall blocks younger ops.
            let unit = match op.kind {
                OpClass::IntAlu | OpClass::Load | OpClass::Store | OpClass::Branch => &mut int_alu,
                OpClass::IntMul => &mut int_mul,
                OpClass::FpAlu => &mut fp_alu,
                OpClass::FpMul => &mut fp_mul,
            };
            if *unit == 0 {
                break;
            }
            if !self.cfg.rvp && !self.operands_ready(&op) {
                break;
            }
            *unit -= 1;
            let item = input.pop_front().expect("front exists");
            let lat = match item.op.kind {
                OpClass::Load => 1, // LVQ read: no cache access
                k => k.execute_latency() as u64,
            };
            let complete = self.cycle + lat;
            let slot = (self.pipe_tail & self.pipe_mask) as usize;
            self.pipe_items[slot] = item;
            self.pipe_complete[slot] = complete;
            self.pipe_tail += 1;
            self.activity.dispatched += 1;
            self.activity.issued += 1;
            match op.kind {
                OpClass::IntMul => self.activity.int_mul_ops += 1,
                OpClass::FpAlu => self.activity.fp_alu_ops += 1,
                OpClass::FpMul => self.activity.fp_mul_ops += 1,
                _ => self.activity.int_alu_ops += 1,
            }
        }
    }

    fn operands_ready(&self, op: &rmt3d_workload::MicroOp) -> bool {
        for dist in [op.src1_dist, op.src2_dist].into_iter().flatten() {
            let producer = op.seq - dist.get() as u64;
            // If the producer is still in the pipe and not complete, stall.
            let mut i = self.pipe_head;
            while i != self.pipe_tail {
                let slot = (i & self.pipe_mask) as usize;
                if self.pipe_items[slot].op.seq == producer && self.pipe_complete[slot] > self.cycle
                {
                    return false;
                }
                i += 1;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use crate::ooo::OooCore;
    use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
    use rmt3d_workload::{Benchmark, TraceGenerator};

    /// Produces a committed stream from a real leading core.
    fn committed_stream(n: usize) -> Vec<CommittedOp> {
        committed_stream_of(Benchmark::Gzip, n)
    }

    fn committed_stream_of(b: Benchmark, n: usize) -> Vec<CommittedOp> {
        let mut c = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(b.profile()),
            CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
        );
        let mut out = Vec::new();
        while out.len() < n {
            c.step_cycle(&mut out);
        }
        out.truncate(n);
        out
    }

    fn run_trailer(cfg: TrailerConfig, stream: &[CommittedOp]) -> (Vec<Verification>, u64) {
        let mut t = InOrderCore::new(cfg);
        let mut q: VecDeque<CommittedOp> = stream.iter().copied().collect();
        let mut out = Vec::new();
        while out.len() < stream.len() {
            t.step_cycle(&mut q, &mut out);
            assert!(
                t.cycle() < 10 * stream.len() as u64 + 1000,
                "trailer wedged"
            );
        }
        (out, t.cycle())
    }

    #[test]
    fn fault_free_stream_verifies_clean() {
        let stream = committed_stream(5000);
        let (ver, _) = run_trailer(TrailerConfig::checker(), &stream);
        assert_eq!(ver.len(), 5000);
        assert!(ver.iter().all(|v| v.outcome == CheckOutcome::Ok));
        // In-order verification.
        for w in ver.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
    }

    #[test]
    fn rvp_gives_higher_throughput_than_no_rvp() {
        // mcf's short dependence chains stall an in-order pipeline that
        // must wait for real operands; RVP removes those stalls.
        let stream = committed_stream_of(Benchmark::Mcf, 8000);
        let (_, cyc_rvp) = run_trailer(TrailerConfig::checker(), &stream);
        let (_, cyc_plain) = run_trailer(TrailerConfig::checker_no_rvp(), &stream);
        assert!(
            cyc_rvp < cyc_plain,
            "RVP {cyc_rvp} cycles should beat non-RVP {cyc_plain}"
        );
        // The paper's point: with RVP the checker sustains high ILP.
        let ipc = 8000.0 / cyc_rvp as f64;
        assert!(ipc > 1.8, "checker IPC with RVP {ipc}");
    }

    #[test]
    fn corrupted_result_is_detected_exactly_once_at_that_op() {
        let mut stream = committed_stream(2000);
        // Flip a result bit in transit (datapath/RVQ fault) on an op
        // that writes a register (stores/branches carry no result).
        let victim = (1000..)
            .find(|&i| stream[i].op.dest.is_some())
            .expect("register-writing op exists");
        stream[victim].result ^= 1 << 17;
        let (ver, _) = run_trailer(TrailerConfig::checker(), &stream);
        assert_eq!(ver[victim].outcome, CheckOutcome::ResultMismatch);
        let errors = ver.iter().filter(|v| v.is_error()).count();
        // The corrupted value never enters the trailer regfile, so later
        // operand checks may flag descendants that consumed the bad value
        // from the leader's RVQ payload.
        assert!(errors >= 1);
        assert_eq!(
            ver[..victim].iter().filter(|v| v.is_error()).count(),
            0,
            "no false positives before the fault"
        );
    }

    #[test]
    fn corrupted_operand_payload_is_detected() {
        let mut stream = committed_stream(2000);
        let mut victim = None;
        for (i, c) in stream.iter_mut().enumerate().skip(500) {
            if c.op.src1_reg.is_some() && c.op.kind == OpClass::IntAlu {
                c.src1_value ^= 1 << 3;
                victim = Some(i);
                break;
            }
        }
        let victim = victim.expect("stream contains int alu ops with sources");
        let (ver, _) = run_trailer(TrailerConfig::checker(), &stream);
        assert!(
            ver[victim].is_error(),
            "operand corruption must be flagged at op {victim}: {:?}",
            ver[victim]
        );
    }

    #[test]
    fn trailer_regfile_fault_is_detected_on_next_use() {
        let stream = committed_stream(3000);
        let mut t = InOrderCore::new(TrailerConfig::checker());
        let mut q: VecDeque<CommittedOp> = stream.iter().copied().collect();
        let mut out = Vec::new();
        // Let it run a while, then corrupt trailer state.
        for _ in 0..200 {
            t.step_cycle(&mut q, &mut out);
        }
        assert!(out.iter().all(|v| !v.is_error()));
        // A burst of upsets across the integer register file: corruption
        // only survives until the register is next written, so flipping
        // many registers guarantees at least one is read while corrupt.
        for r in 1..31 {
            t.flip_regfile_bit(r, 11);
        }
        while !q.is_empty() {
            t.step_cycle(&mut q, &mut out);
        }
        assert!(
            out.iter()
                .any(|v| v.outcome == CheckOutcome::OperandMismatch),
            "a corrupted trailer register must eventually fail an RVP \
             operand check"
        );
    }

    #[test]
    fn verify_ports_bound_throughput() {
        let stream = committed_stream(6000);
        let mut fast = TrailerConfig::checker();
        fast.verify_ports = 4;
        let mut slow = TrailerConfig::checker();
        slow.verify_ports = 1;
        let (_, cyc_fast) = run_trailer(fast, &stream);
        let (_, cyc_slow) = run_trailer(slow, &stream);
        assert!(cyc_slow >= 6000, "1 port caps IPC at 1");
        assert!(cyc_fast < cyc_slow);
    }

    #[test]
    fn cpi_stack_sums_to_cycles_under_enabled_sink() {
        let stream = committed_stream(4000);
        let mut t = InOrderCore::with_sink(
            TrailerConfig::checker(),
            rmt3d_telemetry::RecordingSink::new(),
        );
        let mut q: VecDeque<CommittedOp> = stream.iter().copied().collect();
        let mut out = Vec::new();
        while out.len() < stream.len() {
            t.step_cycle(&mut q, &mut out);
        }
        // Run on empty input to exercise the fetch-starved class.
        for _ in 0..10 {
            t.step_cycle(&mut q, &mut out);
        }
        assert_eq!(t.cpi_stack().total(), t.activity().cycles);
        assert!(t.cpi_stack().get(CpiComponent::BaseIssue) > 0);
        assert!(t.cpi_stack().get(CpiComponent::FetchStarved) >= 10);
    }

    #[test]
    fn cpi_stack_stays_zero_under_null_sink() {
        let stream = committed_stream(1000);
        let (_, _) = run_trailer(TrailerConfig::checker(), &stream);
        let t = InOrderCore::new(TrailerConfig::checker());
        assert!(t.cpi_stack().is_empty());
    }

    #[test]
    fn empty_input_idles() {
        let mut t = InOrderCore::new(TrailerConfig::checker());
        let mut q = VecDeque::new();
        let mut out = Vec::new();
        for _ in 0..10 {
            assert_eq!(t.step_cycle(&mut q, &mut out), 0);
        }
        assert!(out.is_empty());
        assert_eq!(t.in_flight(), 0);
    }
}
