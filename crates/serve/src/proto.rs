//! Newline-delimited JSON wire protocol.
//!
//! One request per line, one JSON object per request, in the same
//! hand-rolled codec style as `rmt3d_sweep::codec`: the daemon and the
//! client share [`parse_request`] / the response builders, so the two
//! sides cannot drift. Responses are also single JSON lines; the only
//! multi-line exchange is `watch`, which streams one event object per
//! line until a terminal `"event":"job_done"` line.
//!
//! Robustness contract (mirrored by the daemon tests): a truncated,
//! ill-typed, or oversized request line yields a structured
//! `{"ok":false,"error":…}` response — never a panic, never a dropped
//! daemon. Requests are bounded by [`MAX_REQUEST_LINE`]; responses are
//! unbounded (a `result` response carries whole cached results).

use rmt3d_telemetry::json::{parse, JsonValue};
use std::io::{self, BufRead};

/// Upper bound on one request line in bytes. Anything longer is
/// discarded up to the next newline and answered with a structured
/// error, so one hostile client cannot balloon daemon memory.
pub const MAX_REQUEST_LINE: usize = 64 * 1024;

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe; answered with `{"ok":true}`.
    Ping,
    /// Enqueue a job. `spec` is the kind-specific payload object.
    Submit {
        /// `"sweep"` or `"campaign"`.
        kind: String,
        /// Kind-specific spec object (validated by the payload parser).
        spec: JsonValue,
        /// Larger runs earlier; ties run in submission order.
        priority: u64,
    },
    /// List every job the queue knows (one response line).
    Jobs,
    /// Cancel a queued or in-flight job.
    Cancel {
        /// Job id from a `submit` response.
        job: String,
    },
    /// Stream a job's progress events until it reaches a terminal state.
    Watch {
        /// Job id from a `submit` response.
        job: String,
    },
    /// Fetch a finished sweep's cached results (or a campaign report).
    Result {
        /// Job id from a `submit` response.
        job: String,
    },
    /// Queue and cache counters.
    Stats,
    /// Stop accepting work, drain the in-flight job, persist the rest.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, a missing or
/// unknown `op`, or ill-typed fields; the daemon wraps it in a
/// `{"ok":false,"error":…}` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse(line.trim()).map_err(|e| format!("malformed request: {e}"))?;
    let op = v
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or("missing or non-string \"op\"")?;
    let job = |v: &JsonValue| -> Result<String, String> {
        v.get("job")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| "missing or non-string \"job\"".to_string())
    };
    match op {
        "ping" => Ok(Request::Ping),
        "jobs" => Ok(Request::Jobs),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "cancel" => Ok(Request::Cancel { job: job(&v)? }),
        "watch" => Ok(Request::Watch { job: job(&v)? }),
        "result" => Ok(Request::Result { job: job(&v)? }),
        "submit" => {
            let kind = v
                .get("kind")
                .map(|k| {
                    k.as_str()
                        .map(str::to_string)
                        .ok_or("non-string \"kind\"".to_string())
                })
                .unwrap_or_else(|| Ok("sweep".to_string()))?;
            if kind != "sweep" && kind != "campaign" {
                return Err(format!("unknown job kind {kind:?}"));
            }
            let spec = match v.get("spec") {
                None => JsonValue::Obj(Default::default()),
                Some(s @ JsonValue::Obj(_)) => s.clone(),
                Some(_) => return Err("\"spec\" must be an object".to_string()),
            };
            let priority = match v.get("priority") {
                None => 0,
                Some(p) => p
                    .as_u64()
                    .ok_or("\"priority\" must be a non-negative integer")?,
            };
            Ok(Request::Submit {
                kind,
                spec,
                priority,
            })
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// One request line read from a client.
#[derive(Debug)]
pub enum RequestLine {
    /// A complete line within [`MAX_REQUEST_LINE`].
    Text(String),
    /// The line exceeded the bound; its bytes were discarded up to the
    /// next newline so the connection can keep serving requests.
    Oversized,
}

/// Reads one newline-terminated request with a hard size bound.
/// Returns `Ok(None)` on a clean EOF before any bytes.
///
/// # Errors
///
/// Propagates the underlying socket read error.
pub fn read_request_line(r: &mut impl BufRead, max: usize) -> io::Result<Option<RequestLine>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overflow = false;
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            // EOF. A final unterminated line still counts as a request.
            return Ok(match (buf.is_empty(), overflow) {
                (true, false) => None,
                (_, true) => Some(RequestLine::Oversized),
                (false, false) => Some(RequestLine::Text(line_text(buf))),
            });
        }
        if let Some(i) = chunk.iter().position(|&b| b == b'\n') {
            if !overflow {
                buf.extend_from_slice(&chunk[..i]);
            }
            r.consume(i + 1);
            return Ok(Some(if overflow || buf.len() > max {
                RequestLine::Oversized
            } else {
                RequestLine::Text(line_text(buf))
            }));
        }
        if !overflow {
            buf.extend_from_slice(chunk);
            if buf.len() > max {
                overflow = true;
                buf = Vec::new();
            }
        }
        let n = chunk.len();
        r.consume(n);
    }
}

fn line_text(mut buf: Vec<u8>) -> String {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8_lossy(&buf).into_owned()
}

/// Renders a structured error response line (no trailing newline).
pub fn error_line(msg: &str) -> String {
    let mut out = String::from("{\"ok\":false,\"error\":");
    write_json_str(&mut out, msg);
    out.push('}');
    out
}

/// Appends a JSON string literal (with escapes) to `buf`.
pub fn write_json_str(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// A JSON string literal of `s`, escaped.
pub fn json_str(s: &str) -> String {
    let mut out = String::new();
    write_json_str(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn requests_parse_and_reject() {
        assert!(matches!(
            parse_request(r#"{"op":"ping"}"#).unwrap(),
            Request::Ping
        ));
        match parse_request(
            r#"{"op":"submit","kind":"sweep","priority":3,"spec":{"models":["2d-a"]}}"#,
        )
        .unwrap()
        {
            Request::Submit { kind, priority, .. } => {
                assert_eq!(kind, "sweep");
                assert_eq!(priority, 3);
            }
            other => panic!("wrong request: {other:?}"),
        }
        for bad in [
            "",
            "not json",
            r#"{"no":"op"}"#,
            r#"{"op":42}"#,
            r#"{"op":"teleport"}"#,
            r#"{"op":"cancel"}"#,
            r#"{"op":"watch","job":7}"#,
            r#"{"op":"submit","kind":"bogus"}"#,
            r#"{"op":"submit","spec":[1,2]}"#,
            r#"{"op":"submit","priority":-1}"#,
            r#"{"op":"submit","priority":"high"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn bounded_reader_survives_oversized_lines() {
        let long = "x".repeat(100);
        let input = format!("short\n{long}\nafter\n");
        let mut r = BufReader::with_capacity(8, input.as_bytes());
        assert!(matches!(
            read_request_line(&mut r, 32).unwrap(),
            Some(RequestLine::Text(s)) if s == "short"
        ));
        assert!(matches!(
            read_request_line(&mut r, 32).unwrap(),
            Some(RequestLine::Oversized)
        ));
        // The connection resynchronizes at the next newline.
        assert!(matches!(
            read_request_line(&mut r, 32).unwrap(),
            Some(RequestLine::Text(s)) if s == "after"
        ));
        assert!(read_request_line(&mut r, 32).unwrap().is_none());
    }

    #[test]
    fn error_lines_escape_payload() {
        let line = error_line("bad \"quote\"\nnewline");
        let v = rmt3d_telemetry::json::parse(&line).expect("error line parses");
        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(false));
        assert_eq!(
            v.get("error").and_then(|e| e.as_str()),
            Some("bad \"quote\"\nnewline")
        );
    }
}
