//! §4 — the heterogeneous checker die: fabricate the upper die at 90 nm.
//!
//! Consequences modelled (all from the paper):
//!
//! * the checker's dynamic power scales up by Table 8's 2.21 and its
//!   leakage down by 0.40 (14.5 W-class checker → ~24 W);
//! * the same die area now fits only ~5 MB of L2 whose leakage shrinks;
//! * checker area grows by (90/65)², *lowering* its power density, so
//!   peak temperature drops despite more total power;
//! * gate delay grows 500 ps → 714 ps, capping the checker at 1.4 GHz —
//!   the DFS controller saturates at 0.7 f and the leader slows ~3%;
//! * variability and SER both improve (Table 6, Figs. 8-9).

use crate::model::{ProcessorModel, RunScale};
use crate::powermap::{build_power_map, PowerMapConfig};
use crate::simulate::{simulate, SimConfig};
use rmt3d_cache::{CactiLite, NucaLayout};
use rmt3d_floorplan::ChipFloorplan;
use rmt3d_power::{tech, CheckerPowerModel};
use rmt3d_thermal::{solve, ThermalConfig, ThermalError};
use rmt3d_units::{Celsius, DegreesDelta, Gigahertz, Picoseconds, TechNode, Watts};
use rmt3d_workload::Benchmark;

/// The §4 heterogeneous-die report.
#[derive(Debug, Clone)]
pub struct HeteroReport {
    /// Checker-core power at 65 nm (the pessimistic 15 W-class core).
    pub checker_65: Watts,
    /// The same core's power at 90 nm (paper: ~23.7 W for its 14.5 W
    /// split).
    pub checker_90: Watts,
    /// Upper-die L2 power at 65 nm (9 banks; paper: ~3.5 W).
    pub upper_l2_65: Watts,
    /// Upper-die L2 power at 90 nm (4 banks; paper: ~1.2 W for 5 MB).
    pub upper_l2_90: Watts,
    /// Net checker-die power change (paper: +6.9 W).
    pub net_power_change: Watts,
    /// 90 nm peak checker frequency (paper: 1.4 GHz).
    pub checker_peak_frequency: Gigahertz,
    /// Mean checker frequency the workload actually needs (paper: the
    /// checker averages 1.26 GHz against a 2 GHz leader).
    pub needed_mean_frequency: Gigahertz,
    /// Leading-core slowdown caused by the 1.4 GHz cap (paper: ~3%).
    pub cap_slowdown: f64,
    /// Suite-mean peak temperature of the homogeneous 65 nm 3d-2a.
    pub temp_homogeneous: Celsius,
    /// Suite-mean peak temperature of the heterogeneous stack.
    pub temp_heterogeneous: Celsius,
    /// 2d-a baseline temperature.
    pub temp_baseline: Celsius,
}

impl HeteroReport {
    /// Temperature change from moving the checker die to 90 nm (paper:
    /// a *drop* of ~4 °C despite higher power).
    pub fn temp_drop(&self) -> DegreesDelta {
        self.temp_homogeneous - self.temp_heterogeneous
    }

    /// Overhead of the heterogeneous reliable chip versus the 2d-a
    /// baseline (paper summary: 3 °C).
    pub fn overhead_vs_baseline(&self) -> DegreesDelta {
        self.temp_heterogeneous - self.temp_baseline
    }

    /// Formats the report as text.
    pub fn to_table(&self) -> String {
        format!(
            "Sec 4 Heterogeneous checker die (90 nm upper die)\n\
             checker core: {:.1} W @65nm -> {:.1} W @90nm\n\
             upper-die L2: {:.1} W (9 MB @65nm) -> {:.1} W (4 MB @90nm)\n\
             net die power change: {:+.1} W\n\
             checker peak frequency: {:.2} GHz (needs {:.2} GHz mean)\n\
             leader slowdown from cap: {:.1}%\n\
             peak temp: homogeneous {:.1} C, heterogeneous {:.1} C (drop {:.1} C)\n\
             overhead vs 2d-a baseline: {:+.1} C\n",
            self.checker_65.0,
            self.checker_90.0,
            self.upper_l2_65.0,
            self.upper_l2_90.0,
            self.net_power_change.0,
            self.checker_peak_frequency.value(),
            self.needed_mean_frequency.value(),
            100.0 * self.cap_slowdown,
            self.temp_homogeneous.0,
            self.temp_heterogeneous.0,
            self.temp_drop().0,
            self.overhead_vs_baseline().0
        )
    }
}

/// Suite-mean peak temperature for a plan with a fixed checker power.
fn mean_peak(
    plan: &ChipFloorplan,
    model: ProcessorModel,
    layout: Option<NucaLayout>,
    benchmarks: &[Benchmark],
    checker_w: Watts,
    checker_cap: f64,
    scale: RunScale,
) -> Result<Celsius, ThermalError> {
    let tcfg = ThermalConfig {
        grid: scale.thermal_grid,
        ..ThermalConfig::paper()
    };
    let mut acc = 0.0;
    for &b in benchmarks {
        let cfg = SimConfig {
            layout: layout.clone(),
            checker_peak_fraction: checker_cap,
            ..SimConfig::nominal(model, scale)
        };
        let perf = simulate(&cfg, b);
        let mut chip = build_power_map(
            &perf,
            &PowerMapConfig::with_checker(CheckerPowerModel::with_peak(checker_w)),
        );
        crate::powermap::override_checker_power(&mut chip, checker_w);
        let r = solve(plan, &chip.map, &tcfg)?;
        acc += r.peak().0;
    }
    Ok(Celsius(acc / benchmarks.len() as f64))
}

/// Runs the §4 study with the pessimistic 15 W-class checker.
///
/// # Errors
///
/// Propagates thermal solver failures.
pub fn run(benchmarks: &[Benchmark], scale: RunScale) -> Result<HeteroReport, ThermalError> {
    // Power remap of the checker core (Table 8 arithmetic).
    let checker = CheckerPowerModel::pessimistic_15w();
    let (dyn65, leak65) = checker.split();
    let (dyn90, leak90) =
        tech::remap_power(dyn65.0, leak65.0, TechNode::N90).expect("90 nm is tabulated");
    let checker_90 = Watts(dyn90 + leak90);

    // Upper-die L2 power: 9 banks at 65 nm vs 4 banks at 90 nm, idle
    // (leakage + router floor) as the dominant term.
    let b65 = CactiLite::new(TechNode::N65);
    let b90 = CactiLite::new(TechNode::N90);
    let upper_l2_65 = (b65.bank_1mb().leakage + b65.router_power() * 0.15) * 9.0;
    let upper_l2_90 = (b90.bank_1mb().leakage + b90.router_power() * 0.15) * 4.0;
    let net = (checker_90 + upper_l2_90) - (Watts(15.0) + upper_l2_65);

    // Frequency cap from the gate-delay retarget: 500 ps -> 714 ps.
    let stage =
        tech::retargeted_stage_time(Picoseconds(500.0), TechNode::N90).expect("90 nm is tabulated");
    let peak_ghz = 1000.0 / stage.0;

    // Performance with the capped checker vs uncapped.
    let mut slow_acc = 0.0;
    let mut need_acc = 0.0;
    for &b in benchmarks {
        let free = simulate(&SimConfig::nominal(ProcessorModel::ThreeD2A, scale), b);
        let capped_cfg = SimConfig {
            layout: Some(NucaLayout::three_d_hetero_90nm()),
            checker_peak_fraction: peak_ghz / 2.0,
            ..SimConfig::nominal(ProcessorModel::ThreeD2A, scale)
        };
        let capped = simulate(&capped_cfg, b);
        slow_acc += 1.0 - capped.ipc() / free.ipc();
        need_acc += free.mean_checker_fraction * 2.0;
    }
    let cap_slowdown = slow_acc / benchmarks.len() as f64;
    let needed = Gigahertz(need_acc / benchmarks.len() as f64);

    // Thermals: homogeneous (65 nm checker, 15 W dense strip) versus
    // heterogeneous (90 nm checker, more power over more area).
    let temp_homogeneous = mean_peak(
        &ChipFloorplan::three_d_2a(),
        ProcessorModel::ThreeD2A,
        None,
        benchmarks,
        Watts(15.0),
        1.0,
        scale,
    )?;
    let temp_heterogeneous = mean_peak(
        &ChipFloorplan::three_d_2a_hetero_90nm(),
        ProcessorModel::ThreeD2A,
        Some(NucaLayout::three_d_hetero_90nm()),
        benchmarks,
        checker_90,
        peak_ghz / 2.0,
        scale,
    )?;
    let temp_baseline = mean_peak(
        &ChipFloorplan::two_d_a(),
        ProcessorModel::TwoDA,
        None,
        benchmarks,
        Watts::ZERO,
        1.0,
        scale,
    )?;

    Ok(HeteroReport {
        checker_65: Watts(15.0),
        checker_90,
        upper_l2_65,
        upper_l2_90,
        net_power_change: net,
        checker_peak_frequency: Gigahertz(peak_ghz),
        needed_mean_frequency: needed,
        cap_slowdown,
        temp_homogeneous,
        temp_heterogeneous,
        temp_baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HeteroReport {
        run(&[Benchmark::Gzip, Benchmark::Swim], RunScale::quick()).expect("hetero study")
    }

    #[test]
    fn power_remap_matches_section4() {
        let r = quick();
        // 15 W checker grows substantially at 90 nm (paper: 14.5 -> 23.7;
        // our 75/25 split gives ~26).
        assert!(
            (22.0..28.0).contains(&r.checker_90.0),
            "90nm checker {}",
            r.checker_90
        );
        // L2 shrinks and leaks less.
        assert!(r.upper_l2_90 < r.upper_l2_65);
        // Net die power increases (paper: +6.9 W).
        assert!(
            (4.0..12.0).contains(&r.net_power_change.0),
            "net change {}",
            r.net_power_change
        );
    }

    #[test]
    fn frequency_cap_is_14ghz_and_cheap() {
        let r = quick();
        assert!((r.checker_peak_frequency.value() - 1.4).abs() < 0.01);
        // Paper: needed mean ~1.26 GHz < 1.4 GHz cap.
        assert!(
            r.needed_mean_frequency.value() < 1.45,
            "needed {}",
            r.needed_mean_frequency
        );
        // Leader slowdown ~3% (paper); generous band.
        assert!(
            (-0.01..0.08).contains(&r.cap_slowdown),
            "cap slowdown {}",
            r.cap_slowdown
        );
    }

    #[test]
    fn older_process_runs_cooler_despite_more_power() {
        let r = quick();
        assert!(
            r.temp_heterogeneous < r.temp_homogeneous,
            "hetero {} vs homo {}",
            r.temp_heterogeneous,
            r.temp_homogeneous
        );
        // Paper: drop of up to 4 C; overhead vs baseline ~3 C.
        let drop = r.temp_drop().0;
        assert!((0.5..8.0).contains(&drop), "temp drop {drop}");
    }

    #[test]
    fn report_formats() {
        assert!(quick().to_table().contains("90 nm"));
    }
}
