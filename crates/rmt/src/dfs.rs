//! Dynamic frequency scaling controller for the checker core (§2.1).
//!
//! Implements the algorithm of Madan & Balasubramonian \[19\]: at a fixed
//! interval the controller samples the RVQ occupancy and steps the
//! trailer's frequency up when the queue is filling (the checker is
//! falling behind) or down when it is draining (the checker is wasting
//! power). The paper notes a frequency change costs a single cycle on
//! Intel's Montecito, so transitions are modelled as free.
//!
//! The controller also records the Fig. 7 histogram: the fraction of
//! intervals spent at each normalized frequency level.

use rmt3d_units::NormalizedFrequency;

/// Number of discrete frequency levels (`0.1 f` steps, Fig. 7's x-axis).
pub const DFS_LEVELS: usize = 10;

/// DFS policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfsConfig {
    /// Leader cycles between occupancy samples.
    pub interval: u64,
    /// Step up when RVQ fill exceeds this fraction.
    pub hi_threshold: f64,
    /// Step down when RVQ fill is below this fraction.
    pub lo_threshold: f64,
    /// Frequency step per decision.
    pub step: f64,
    /// Maximum normalized frequency. 1.0 for a same-process checker;
    /// 0.7 for the §4 90 nm checker (1.4 GHz cap against a 2 GHz
    /// leader).
    pub max_fraction: f64,
}

impl DfsConfig {
    /// The paper's less-aggressive heuristic (§4 Discussion): it prefers
    /// running the checker a little fast over ever stalling the leader,
    /// which costs some power/heat but protects leader IPC.
    pub fn paper() -> DfsConfig {
        DfsConfig {
            interval: 200,
            hi_threshold: 0.35,
            lo_threshold: 0.12,
            step: 0.1,
            max_fraction: 1.0,
        }
    }

    /// Same heuristic with a capped peak frequency (older-process
    /// checker die, §4).
    pub fn with_frequency_cap(mut self, max_fraction: f64) -> DfsConfig {
        self.max_fraction = max_fraction.clamp(0.1, 1.0);
        self
    }

    /// An aggressive variant that throttles harder (used in the §4
    /// Discussion ablation: lower temperature, but it can stall the
    /// leader).
    pub fn aggressive() -> DfsConfig {
        DfsConfig {
            interval: 1000,
            hi_threshold: 0.85,
            lo_threshold: 0.5,
            step: 0.1,
            max_fraction: 1.0,
        }
    }

    /// Validates thresholds.
    ///
    /// # Errors
    ///
    /// Returns an error message when thresholds are out of order or the
    /// interval/step is degenerate.
    pub fn validate(&self) -> Result<(), String> {
        if self.interval == 0 {
            return Err("interval must be positive".to_string());
        }
        if !(0.0..=1.0).contains(&self.lo_threshold)
            || !(0.0..=1.0).contains(&self.hi_threshold)
            || self.lo_threshold >= self.hi_threshold
        {
            return Err("need 0 <= lo < hi <= 1".to_string());
        }
        if self.step <= 0.0 || self.step > 1.0 {
            return Err("step must be in (0, 1]".to_string());
        }
        if !(0.1..=1.0).contains(&self.max_fraction) {
            return Err("max_fraction must be in [0.1, 1]".to_string());
        }
        Ok(())
    }
}

impl Default for DfsConfig {
    fn default() -> DfsConfig {
        DfsConfig::paper()
    }
}

/// The DFS controller state.
#[derive(Debug, Clone)]
pub struct DfsController {
    config: DfsConfig,
    current: NormalizedFrequency,
    since_decision: u64,
    /// Interval counts per level (Fig. 7). Bin `i` is frequency
    /// `(i+1) * 0.1 f`.
    histogram: [u64; DFS_LEVELS],
    intervals: u64,
}

impl DfsController {
    /// Creates a controller starting at the peak allowed frequency (the
    /// safe choice: the checker cannot start out behind).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: DfsConfig) -> DfsController {
        config.validate().expect("invalid DFS configuration");
        DfsController {
            config,
            current: NormalizedFrequency::new(config.max_fraction),
            since_decision: 0,
            histogram: [0; DFS_LEVELS],
            intervals: 0,
        }
    }

    /// The policy in force.
    pub fn config(&self) -> DfsConfig {
        self.config
    }

    /// The trailer's current normalized frequency.
    pub fn current(&self) -> NormalizedFrequency {
        self.current
    }

    /// Advances one leader cycle; when an interval boundary is reached
    /// the controller samples `rvq_fill` and possibly steps the
    /// frequency. Returns `true` when a decision was made.
    pub fn tick(&mut self, rvq_fill: f64) -> bool {
        self.since_decision += 1;
        if self.since_decision < self.config.interval {
            return false;
        }
        self.since_decision = 0;
        self.intervals += 1;
        let bin = ((self.current.fraction() * DFS_LEVELS as f64).round() as usize)
            .clamp(1, DFS_LEVELS)
            - 1;
        self.histogram[bin] += 1;

        let f = self.current.fraction();
        let next = if rvq_fill > self.config.hi_threshold {
            f + self.config.step
        } else if rvq_fill < self.config.lo_threshold {
            f - self.config.step
        } else {
            f
        };
        // Quantize to the DFS levels first, then enforce the cap: a cap
        // that is not itself a level multiple (e.g. 1.4 GHz / 2 GHz =
        // 0.7, or arbitrary test values) must never be exceeded.
        let q = NormalizedFrequency::new(next.max(self.config.step))
            .quantize(self.config.step)
            .fraction();
        let floor = self.config.step.min(self.config.max_fraction);
        self.current = NormalizedFrequency::new(q.min(self.config.max_fraction).max(floor));
        true
    }

    /// The Fig. 7 histogram as fractions of intervals per level
    /// (level `i` = `(i+1)/10 f`).
    pub fn histogram_fractions(&self) -> [f64; DFS_LEVELS] {
        let mut out = [0.0; DFS_LEVELS];
        if self.intervals > 0 {
            for (o, &h) in out.iter_mut().zip(&self.histogram) {
                *o = h as f64 / self.intervals as f64;
            }
        }
        out
    }

    /// Raw interval counts per level.
    pub fn histogram_counts(&self) -> [u64; DFS_LEVELS] {
        self.histogram
    }

    /// Mean normalized frequency over all recorded intervals (the §4
    /// "average frequency of only 1.26 GHz" metric when multiplied by
    /// the 2 GHz peak).
    pub fn mean_fraction(&self) -> f64 {
        if self.intervals == 0 {
            return self.current.fraction();
        }
        let mut acc = 0.0;
        for (i, &h) in self.histogram.iter().enumerate() {
            acc += (i + 1) as f64 / DFS_LEVELS as f64 * h as f64;
        }
        acc / self.intervals as f64
    }

    /// Decisions made so far.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(DfsConfig::paper().validate().is_ok());
        assert!(DfsConfig {
            lo_threshold: 0.5,
            hi_threshold: 0.4,
            ..DfsConfig::paper()
        }
        .validate()
        .is_err());
        assert!(DfsConfig {
            interval: 0,
            ..DfsConfig::paper()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn steps_up_when_queue_fills() {
        let mut d = DfsController::new(DfsConfig {
            max_fraction: 1.0,
            ..DfsConfig::paper()
        });
        // Force it down first.
        for _ in 0..20_000 {
            d.tick(0.0);
        }
        assert!(d.current().fraction() < 0.15);
        for _ in 0..20_000 {
            d.tick(0.9);
        }
        assert!((d.current().fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn holds_inside_the_deadband() {
        let mut d = DfsController::new(DfsConfig::paper());
        let start = d.current().fraction();
        for _ in 0..10_000 {
            d.tick(0.3); // between lo (0.15) and hi (0.45)
        }
        assert!((d.current().fraction() - start).abs() < 1e-9);
    }

    #[test]
    fn respects_frequency_cap() {
        let mut d = DfsController::new(DfsConfig::paper().with_frequency_cap(0.7));
        assert!((d.current().fraction() - 0.7).abs() < 1e-9, "starts at cap");
        for _ in 0..50_000 {
            d.tick(1.0); // screaming for more speed
        }
        assert!(
            d.current().fraction() <= 0.7 + 1e-9,
            "the 90nm checker tops out at 1.4 GHz / 2 GHz = 0.7 f"
        );
    }

    #[test]
    fn histogram_sums_to_one() {
        let mut d = DfsController::new(DfsConfig::paper());
        let mut fill = 0.0;
        for i in 0..100_000u64 {
            // Oscillating load.
            fill = if i % 7000 < 3500 { 0.6 } else { 0.05 };
            d.tick(fill);
        }
        let _ = fill;
        let total: f64 = d.histogram_fractions().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(d.intervals() > 0);
        let mean = d.mean_fraction();
        assert!(mean > 0.0 && mean <= 1.0);
    }

    #[test]
    fn never_drops_below_one_step() {
        let mut d = DfsController::new(DfsConfig::paper());
        for _ in 0..100_000 {
            d.tick(0.0);
        }
        assert!(d.current().fraction() >= 0.1 - 1e-9);
    }
}
