//! Property tests over the core pipelines: structural invariants must
//! hold for every benchmark profile and random configuration tweak.

use proptest::prelude::*;
use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
use rmt3d_cpu::{CheckOutcome, CoreConfig, InOrderCore, OooCore, TrailerConfig};
use rmt3d_workload::{Benchmark, TraceGenerator};
use std::collections::VecDeque;

fn any_benchmark() -> impl Strategy<Value = Benchmark> {
    (0usize..19).prop_map(|i| Benchmark::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn commits_are_in_order_and_complete(b in any_benchmark(), cycles in 500u64..3000) {
        let mut core = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(b.profile()),
            CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
        );
        let mut out = Vec::new();
        for _ in 0..cycles {
            core.step_cycle(&mut out);
        }
        for w in out.windows(2) {
            prop_assert_eq!(w[1].op.seq, w[0].op.seq + 1);
        }
        let a = core.activity();
        prop_assert!(a.committed <= a.dispatched);
        prop_assert!(a.dispatched <= a.fetched);
        prop_assert!(a.issued <= a.dispatched);
    }

    #[test]
    fn narrow_cores_are_never_faster(b in any_benchmark()) {
        let run = |cfg: CoreConfig| {
            let mut core = OooCore::new(
                cfg,
                TraceGenerator::new(b.profile()),
                CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
            );
            core.prefill_caches();
            core.run_instructions(15_000);
            core.activity().ipc()
        };
        let wide = run(CoreConfig::leading_ev7_like());
        let narrow = run(CoreConfig::checker_as_leader());
        prop_assert!(narrow <= wide * 1.02, "narrow {narrow} vs wide {wide}");
    }

    #[test]
    fn checker_verifies_any_committed_stream_clean(
        b in any_benchmark(),
        n in 500usize..3000,
        ports in 1u32..4,
    ) {
        let mut core = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(b.profile()),
            CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
        );
        let mut stream = Vec::new();
        while stream.len() < n {
            core.step_cycle(&mut stream);
        }
        stream.truncate(n);

        let mut cfg = TrailerConfig::checker();
        cfg.verify_ports = ports;
        let mut trailer = InOrderCore::new(cfg);
        let mut q: VecDeque<_> = stream.into_iter().collect();
        let mut out = Vec::new();
        let mut guard = 0;
        while out.len() < n {
            trailer.step_cycle(&mut q, &mut out);
            guard += 1;
            prop_assert!(guard < 50 * n + 1000, "trailer wedged");
        }
        // Fault-free stream: every verification passes, in order.
        for (i, v) in out.iter().enumerate() {
            prop_assert_eq!(v.outcome, CheckOutcome::Ok, "at {}", i);
            prop_assert_eq!(v.seq, i as u64);
        }
        // Port count bounds throughput.
        prop_assert!(trailer.cycle() + 64 >= n as u64 / ports as u64);
    }

    #[test]
    fn single_bit_flip_is_always_detected(
        b in any_benchmark(),
        victim_frac in 0.1f64..0.9,
        bit in 0u8..64,
    ) {
        let mut core = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(b.profile()),
            CacheHierarchy::new(NucaLayout::two_d_a(), NucaPolicy::DistributedSets),
        );
        let mut stream = Vec::new();
        while stream.len() < 1200 {
            core.step_cycle(&mut stream);
        }
        stream.truncate(1200);
        // Flip a result bit on the first register-writing op past the
        // chosen point.
        let start = (victim_frac * stream.len() as f64) as usize;
        let Some(victim) = (start..stream.len()).find(|&i| stream[i].op.dest.is_some()) else {
            return Ok(());
        };
        stream[victim].result ^= 1u64 << bit;

        let mut trailer = InOrderCore::new(TrailerConfig::checker());
        let mut q: VecDeque<_> = stream.into_iter().collect();
        let mut out = Vec::new();
        while out.len() < 1200 {
            trailer.step_cycle(&mut q, &mut out);
        }
        prop_assert!(
            out[victim].outcome != CheckOutcome::Ok,
            "flip of bit {bit} at op {victim} must be detected"
        );
        prop_assert!(
            out[..victim].iter().all(|v| v.outcome == CheckOutcome::Ok),
            "no false positives before the fault"
        );
    }
}
