//! TMR extension study (§4 mentions triple modular redundancy as the
//! alternative to an ECC-protected checker register file).
//!
//! Compares three protection schemes at equal fault pressure:
//!
//! * dual-core RMT with the paper's ECC set (the paper's design),
//! * dual-core RMT with no ECC (broken: recoveries can fail),
//! * TMR with no ECC (voting substitutes for ECC at the cost of a
//!   second checker's power).

use rmt3d_cache::{CacheHierarchy, NucaPolicy};
use rmt3d_cpu::{CoreConfig, OooCore};
use rmt3d_power::CheckerPowerModel;
use rmt3d_rmt::{EccConfig, RmtConfig, RmtSystem, TmrSystem};
use rmt3d_units::Watts;
use rmt3d_workload::{Benchmark, TraceGenerator};

/// Outcome of one protection scheme under fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeOutcome {
    /// Scheme name.
    pub name: &'static str,
    /// Campaigns (seeds) that ended architecturally clean.
    pub clean_campaigns: u32,
    /// Total campaigns.
    pub campaigns: u32,
    /// Estimated checker-side power cost.
    pub checker_power: Watts,
}

impl SchemeOutcome {
    /// Fraction of campaigns that ended clean.
    pub fn coverage(&self) -> f64 {
        self.clean_campaigns as f64 / self.campaigns as f64
    }
}

/// The TMR study results.
#[derive(Debug, Clone)]
pub struct TmrStudy {
    /// The three schemes.
    pub schemes: Vec<SchemeOutcome>,
}

impl TmrStudy {
    /// Looks up a scheme.
    pub fn scheme(&self, name: &str) -> Option<&SchemeOutcome> {
        self.schemes.iter().find(|s| s.name == name)
    }

    /// Formats as text.
    pub fn to_table(&self) -> String {
        let mut s = String::from(
            "TMR extension: protection scheme comparison\n\
             scheme             clean/campaigns  coverage  checker power\n",
        );
        for o in &self.schemes {
            s.push_str(&format!(
                "{:18} {:7}/{:<8} {:8.0}% {:9.1} W\n",
                o.name,
                o.clean_campaigns,
                o.campaigns,
                100.0 * o.coverage(),
                o.checker_power.0
            ));
        }
        s
    }
}

fn leader(benchmark: Benchmark) -> OooCore {
    OooCore::new(
        CoreConfig::leading_ev7_like(),
        TraceGenerator::new(benchmark.profile()),
        CacheHierarchy::new(
            rmt3d_cache::NucaLayout::three_d_2a(),
            NucaPolicy::DistributedSets,
        ),
    )
}

/// Runs the comparison: `campaigns` seeds per scheme at `rate` faults
/// per instruction over `instructions` committed instructions each.
pub fn run(benchmark: Benchmark, campaigns: u32, rate: f64, instructions: u64) -> TmrStudy {
    let checker_w = CheckerPowerModel::optimistic_7w().at_frequency(0.6);
    let mut schemes = Vec::new();

    for (name, ecc, tmr) in [
        ("dual + paper ECC", EccConfig::paper(), false),
        ("dual, no ECC", EccConfig::none(), false),
        ("TMR, no ECC", EccConfig::none(), true),
    ] {
        let mut clean = 0;
        for seed in 0..campaigns {
            let ok = if tmr {
                let mut sys =
                    TmrSystem::new(leader(benchmark)).with_fault_injection(seed as u64, rate, ecc);
                sys.prefill_caches();
                sys.run_instructions(instructions);
                sys.leader_matches_golden()
            } else {
                let mut sys = RmtSystem::new(leader(benchmark), RmtConfig::paper())
                    .with_fault_injection(seed as u64, rate, ecc);
                sys.prefill_caches();
                sys.run_instructions(instructions);
                sys.drain();
                sys.stats().unrecoverable == 0 && sys.leader_matches_golden()
            };
            if ok {
                clean += 1;
            }
        }
        schemes.push(SchemeOutcome {
            name,
            clean_campaigns: clean,
            campaigns,
            checker_power: if tmr { checker_w * 2.0 } else { checker_w },
        });
    }
    TmrStudy { schemes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tmr_matches_ecc_coverage_at_double_checker_power() {
        let study = run(Benchmark::Twolf, 6, 2e-3, 25_000);
        let ecc = study.scheme("dual + paper ECC").unwrap();
        let none = study.scheme("dual, no ECC").unwrap();
        let tmr = study.scheme("TMR, no ECC").unwrap();
        // The paper's design is fully covered.
        assert_eq!(ecc.coverage(), 1.0, "{study:?}");
        // Dropping ECC loses coverage in at least some campaigns.
        assert!(none.coverage() < 1.0, "no-ECC should fail sometimes");
        // TMR restores full coverage without ECC...
        assert_eq!(tmr.coverage(), 1.0, "{study:?}");
        // ...at twice the checker power.
        assert!((tmr.checker_power.0 / ecc.checker_power.0 - 2.0).abs() < 1e-9);
        assert!(study.to_table().contains("TMR"));
    }
}
