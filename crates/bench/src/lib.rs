//! Benchmark-harness crate: see `benches/` for the Criterion targets
//! that regenerate every table and figure of the paper.
//!
//! * `benches/tables.rs` — Tables 4-8.
//! * `benches/figures.rs` — Figures 4-9.
//! * `benches/experiments.rs` — §3.3 iso-thermal, §3.4 interconnect,
//!   §4 heterogeneous die, Fig. 1 summary.
//!
//! Set `RMT3D_PAPER=1` to run the full 19-benchmark suite at paper
//! scale.
