//! §3.2's cache-capacity motivation: "Hsu et al. show that for heavily
//! multi-threaded workloads, increasing the cache capacity by many
//! mega-bytes yields significantly lower cache miss rates" — the reason
//! manufacturers would not leave the top die's spare silicon inactive.
//!
//! This experiment interleaves the memory-reference streams of several
//! benchmarks through one shared NUCA L2 and measures miss rates at 6 MB
//! and 15 MB: a single SPEC2k program barely notices the larger cache
//! (Fig. 6's finding), but a multi-programmed mix — whose combined
//! working set overflows 6 MB — benefits substantially.

use rmt3d_cache::{NucaCache, NucaLayout, NucaPolicy};
use rmt3d_workload::{Benchmark, MemoryRegions, TraceGenerator};

/// Miss rates of one workload mix at the two cache sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedCacheRow {
    /// Programs in the mix.
    pub programs: Vec<Benchmark>,
    /// L2 misses per 10K references at 6 MB.
    pub misses_6mb: f64,
    /// L2 misses per 10K references at 15 MB.
    pub misses_15mb: f64,
}

impl SharedCacheRow {
    /// Relative miss reduction from the extra 9 MB.
    pub fn reduction(&self) -> f64 {
        if self.misses_6mb == 0.0 {
            0.0
        } else {
            1.0 - self.misses_15mb / self.misses_6mb
        }
    }
}

/// The shared-cache study.
#[derive(Debug, Clone)]
pub struct SharedCacheReport {
    /// One row per mix size.
    pub rows: Vec<SharedCacheRow>,
}

impl SharedCacheReport {
    /// Formats as text.
    pub fn to_table(&self) -> String {
        let mut s = String::from(
            "Sec 3.2 Shared-cache motivation (L2 misses per 10K refs)\n\
             threads  6MB      15MB     reduction\n",
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{:7} {:8.2} {:8.2} {:8.0}%\n",
                r.programs.len(),
                r.misses_6mb,
                r.misses_15mb,
                100.0 * r.reduction()
            ));
        }
        s
    }
}

/// Offsets each program's address space so co-scheduled programs do not
/// share data (multi-programmed, not multi-threaded).
fn offset_for(slot: usize) -> u64 {
    slot as u64 * 0x4_0000_0000
}

/// Runs one mix through a shared L2 of the given layout.
fn misses_per_10k(programs: &[Benchmark], layout: NucaLayout, refs_per_program: u64) -> f64 {
    let mut cache = NucaCache::new(layout, NucaPolicy::DistributedSets);
    let mut gens: Vec<TraceGenerator> = programs
        .iter()
        .map(|&b| TraceGenerator::new(b.profile()))
        .collect();
    // Warm: stream each program's resident regions through the cache.
    for (slot, b) in programs.iter().enumerate() {
        let r = MemoryRegions::of(&b.profile());
        for (base, bytes) in [r.warm, r.hot] {
            let mut addr = base;
            while addr < base + bytes {
                cache.access(addr + offset_for(slot), false);
                addr += 64;
            }
        }
    }
    cache.reset_stats();
    // Round-robin the reference streams (a fair shared-cache schedule).
    let mut remaining = vec![refs_per_program; programs.len()];
    let mut active = programs.len();
    while active > 0 {
        for (slot, g) in gens.iter_mut().enumerate() {
            if remaining[slot] == 0 {
                continue;
            }
            // Pull ops until this program issues one memory reference.
            loop {
                let op = g.next_op();
                if let Some(m) = op.mem() {
                    cache.access(
                        m.addr + offset_for(slot),
                        op.kind == rmt3d_workload::OpClass::Store,
                    );
                    remaining[slot] -= 1;
                    if remaining[slot] == 0 {
                        active -= 1;
                    }
                    break;
                }
            }
        }
    }
    let s = cache.stats();
    s.misses as f64 * 10_000.0 / s.accesses.max(1) as f64
}

/// Runs the study: 1, 2 and 4 co-scheduled programs.
pub fn run(refs_per_program: u64) -> SharedCacheReport {
    let mixes: Vec<Vec<Benchmark>> = vec![
        vec![Benchmark::Mcf],
        vec![Benchmark::Mcf, Benchmark::Art],
        vec![
            Benchmark::Mcf,
            Benchmark::Art,
            Benchmark::Twolf,
            Benchmark::Equake,
        ],
    ];
    let rows = mixes
        .into_iter()
        .map(|programs| SharedCacheRow {
            misses_6mb: misses_per_10k(&programs, NucaLayout::two_d_a(), refs_per_program),
            misses_15mb: misses_per_10k(&programs, NucaLayout::three_d_2a(), refs_per_program),
            programs,
        })
        .collect();
    SharedCacheReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiprogramming_amplifies_the_value_of_capacity() {
        let r = run(60_000);
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            // The bigger cache never hurts.
            assert!(
                row.misses_15mb <= row.misses_6mb + 1e-9,
                "{:?}",
                row.programs
            );
        }
        // The four-program mix overflows 6 MB much harder than a single
        // program, so the 15 MB cache buys a larger absolute reduction —
        // the Hsu et al. effect the paper cites.
        let single = &r.rows[0];
        let quad = &r.rows[2];
        let single_gain = single.misses_6mb - single.misses_15mb;
        let quad_gain = quad.misses_6mb - quad.misses_15mb;
        assert!(
            quad_gain > single_gain * 2.0,
            "quad gain {quad_gain} vs single gain {single_gain}"
        );
        assert!(r.to_table().contains("reduction"));
    }
}
