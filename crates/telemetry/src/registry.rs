//! Metrics registry: named scalar series with summary statistics.

use crate::json::JsonObject;
use std::fmt::Write as _;

/// Summary statistics over one recorded series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesSummary {
    /// Number of finite samples.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

#[derive(Debug, Clone, Default)]
struct Series {
    name: String,
    values: Vec<f64>,
}

/// Accumulates named f64 series and reports per-series summaries.
///
/// Series appear in first-recorded order, so summaries are stable for a
/// deterministic run. Non-finite samples are dropped at the door — they
/// would poison every statistic downstream.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    series: Vec<Series>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one sample to the named series, creating it on first use.
    pub fn record(&mut self, name: &str, value: f64) {
        if !value.is_finite() {
            return;
        }
        match self.series.iter_mut().find(|s| s.name == name) {
            Some(s) => s.values.push(value),
            None => self.series.push(Series {
                name: name.to_string(),
                values: vec![value],
            }),
        }
    }

    /// Series names in first-recorded order.
    pub fn names(&self) -> Vec<&str> {
        self.series.iter().map(|s| s.name.as_str()).collect()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Summary for one series, or `None` if it was never recorded.
    pub fn summary(&self, name: &str) -> Option<SeriesSummary> {
        let s = self.series.iter().find(|s| s.name == name)?;
        Some(summarize(&s.values))
    }

    /// All summaries, in first-recorded order.
    pub fn summaries(&self) -> Vec<(&str, SeriesSummary)> {
        self.series
            .iter()
            .map(|s| (s.name.as_str(), summarize(&s.values)))
            .collect()
    }

    /// Renders the registry as an aligned human-readable table for
    /// stderr.
    pub fn format_human(&self) -> String {
        if self.series.is_empty() {
            return String::from("metrics: no samples recorded\n");
        }
        let width = self
            .series
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(0)
            .max("series".len());
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:width$}  {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "series", "count", "min", "mean", "p50", "p99", "max"
        );
        for (name, s) in self.summaries() {
            let _ = writeln!(
                out,
                "{name:width$}  {:>8} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
                s.count, s.min, s.mean, s.p50, s.p99, s.max
            );
        }
        out
    }

    /// Serializes every summary as one flat JSON line tagged
    /// `"event":"summary"`, suitable as the final record of a trace.
    pub fn to_json_line(&self) -> String {
        let mut o = JsonObject::new();
        o.str("event", "summary");
        for (name, s) in self.summaries() {
            o.u64(&format!("{name}.count"), s.count)
                .f64(&format!("{name}.min"), s.min)
                .f64(&format!("{name}.max"), s.max)
                .f64(&format!("{name}.mean"), s.mean)
                .f64(&format!("{name}.p50"), s.p50)
                .f64(&format!("{name}.p99"), s.p99);
        }
        o.finish()
    }
}

fn summarize(values: &[f64]) -> SeriesSummary {
    if values.is_empty() {
        return SeriesSummary {
            count: 0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            p50: 0.0,
            p99: 0.0,
        };
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let count = sorted.len();
    let sum: f64 = sorted.iter().sum();
    let rank = |p: f64| -> f64 {
        // Nearest-rank percentile on the sorted samples.
        let idx = ((p * count as f64).ceil() as usize).clamp(1, count) - 1;
        sorted[idx]
    };
    SeriesSummary {
        count: count as u64,
        min: sorted[0],
        max: sorted[count - 1],
        mean: sum / count as f64,
        p50: rank(0.50),
        p99: rank(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn summary_statistics() {
        let mut reg = MetricsRegistry::new();
        for v in 1..=100 {
            reg.record("x", f64::from(v));
        }
        let s = reg.summary("x").unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p99, 99.0);
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut reg = MetricsRegistry::new();
        reg.record("x", f64::NAN);
        reg.record("x", f64::INFINITY);
        reg.record("x", 2.0);
        let s = reg.summary("x").unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn series_keep_first_recorded_order() {
        let mut reg = MetricsRegistry::new();
        reg.record("zeta", 1.0);
        reg.record("alpha", 1.0);
        reg.record("zeta", 2.0);
        assert_eq!(reg.names(), vec!["zeta", "alpha"]);
    }

    #[test]
    fn missing_series_is_none() {
        assert!(MetricsRegistry::new().summary("nope").is_none());
    }

    #[test]
    fn json_summary_line_parses() {
        let mut reg = MetricsRegistry::new();
        reg.record("ipc", 1.5);
        reg.record("ipc", 2.5);
        let line = reg.to_json_line();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("event").unwrap().as_str(), Some("summary"));
        assert_eq!(v.get("ipc.count").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("ipc.mean").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn human_table_lists_every_series() {
        let mut reg = MetricsRegistry::new();
        reg.record("ipc", 1.0);
        reg.record("rvq_occupancy", 30.0);
        let table = reg.format_human();
        assert!(table.contains("ipc"));
        assert!(table.contains("rvq_occupancy"));
        assert!(table.contains("p99"));
    }
}
