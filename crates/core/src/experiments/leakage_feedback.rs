//! §3.2 leakage-temperature coupling.
//!
//! "We also modeled the effect of temperature on leakage power in L2
//! cache banks. ... We found the overall impact of temperature on
//! leakage power of caches to be negligible." This experiment closes
//! the loop — solve thermals, re-evaluate each bank's leakage at its own
//! temperature, re-solve — and verifies convergence to a peak shift of
//! well under a degree.

use crate::model::{ProcessorModel, RunScale};
use crate::powermap::{build_power_map, PowerMapConfig};
use crate::simulate::{simulate, SimConfig};
use rmt3d_cache::CactiLite;
use rmt3d_floorplan::BlockId;
use rmt3d_power::CheckerPowerModel;
use rmt3d_thermal::{solve, ThermalConfig, ThermalError};
use rmt3d_units::{Celsius, TechNode, Watts};
use rmt3d_workload::Benchmark;

/// Result of the coupled iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageFeedback {
    /// Peak temperature with temperature-independent bank leakage.
    pub open_loop_peak: Celsius,
    /// Peak temperature after the leakage-temperature fixpoint.
    pub closed_loop_peak: Celsius,
    /// Total extra leakage power the feedback added.
    pub extra_leakage: Watts,
    /// Fixpoint iterations used.
    pub iterations: u32,
}

impl LeakageFeedback {
    /// The peak-temperature shift caused by the coupling (the paper's
    /// "negligible" quantity).
    pub fn peak_shift(&self) -> f64 {
        self.closed_loop_peak.0 - self.open_loop_peak.0
    }
}

/// Runs the coupled solve for one benchmark on the 3d-2a chip.
///
/// # Errors
///
/// Propagates thermal solver failures.
pub fn run(benchmark: Benchmark, scale: RunScale) -> Result<LeakageFeedback, ThermalError> {
    let model = ProcessorModel::ThreeD2A;
    let perf = simulate(&SimConfig::nominal(model, scale), benchmark);
    let base = build_power_map(
        &perf,
        &PowerMapConfig::with_checker(CheckerPowerModel::optimistic_7w()),
    );
    let tcfg = ThermalConfig {
        grid: scale.thermal_grid,
        ..ThermalConfig::paper()
    };
    let plan = model.floorplan();
    let bank = CactiLite::new(TechNode::N65).bank_1mb();

    let open_loop = solve(&plan, &base.map, &tcfg)?;
    let mut map = base.map.clone();
    let mut prev_peak = open_loop.peak();
    let mut extra;
    let mut iterations = 0;
    loop {
        iterations += 1;
        // Re-evaluate each bank's leakage at its solved temperature.
        let solved = solve(&plan, &map, &tcfg)?;
        extra = Watts::ZERO;
        for die in &plan.dies {
            for b in &die.blocks {
                if matches!(b.id, BlockId::L2Bank { .. }) {
                    let t = solved.block_peak(b.id).expect("bank exists");
                    let delta = bank.leakage_at(t.0) - bank.leakage;
                    map.set(b.id, base.map.get(b.id) + delta);
                    if delta.0 > 0.0 {
                        extra += delta;
                    }
                }
            }
        }
        let peak = solved.peak();
        if (peak.0 - prev_peak.0).abs() < 0.05 || iterations >= 8 {
            return Ok(LeakageFeedback {
                open_loop_peak: open_loop.peak(),
                closed_loop_peak: peak,
                extra_leakage: extra,
                iterations,
            });
        }
        prev_peak = peak;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupling_is_negligible_as_the_paper_reports() {
        let r = run(Benchmark::Gzip, RunScale::quick()).expect("coupled solve");
        // Banks run *below* CACTI's 85 C reference here, so the coupling
        // can even be slightly negative; either way the paper's claim is
        // that it barely moves the peak.
        assert!(
            r.peak_shift().abs() < 1.0,
            "leakage-temperature coupling moved the peak {} C",
            r.peak_shift()
        );
        assert!(r.iterations <= 8);
        // The feedback magnitude itself is small relative to the chip.
        assert!(r.extra_leakage.0.abs() < 5.0);
    }
}
