//! Tables 4-8: thin, typed emitters over the substrate crates, so the
//! benchmark harness can print each table exactly as the paper lays it
//! out.

use rmt3d_interconnect::{BandwidthConfig, ViaBundle};
use rmt3d_power::pipeline::{PipelinePowerRow, PIPELINE_POWER_TABLE};
use rmt3d_power::tech::{device_params, scaling_ratio, DeviceParams, ScalingRatio};
use rmt3d_reliability::{Variability, VARIABILITY_TABLE};
use rmt3d_units::TechNode;

/// Table 4 — d2d interconnect bandwidth requirements.
pub fn table4() -> Vec<ViaBundle> {
    BandwidthConfig::paper().bundles()
}

/// Table 4 as text.
pub fn table4_text() -> String {
    let cfg = BandwidthConfig::paper();
    let mut s =
        String::from("Table 4: D2D interconnect bandwidth requirements\ndata  width  placement\n");
    for b in cfg.bundles() {
        s.push_str(&format!("{:16} {:5} {}\n", b.name, b.bits, b.placement));
    }
    s.push_str(&format!(
        "core-to-core vias: {}; total with L2 pillar: {}\n",
        cfg.core_vias(),
        cfg.total_vias()
    ));
    s
}

/// Table 5 — pipeline-depth power scaling.
pub fn table5() -> [PipelinePowerRow; 4] {
    PIPELINE_POWER_TABLE
}

/// Table 5 as text.
pub fn table5_text() -> String {
    let mut s = String::from(
        "Table 5: Impact of pipeline scaling on power overheads\n\
         FO4   dynamic  leakage  total\n",
    );
    for r in PIPELINE_POWER_TABLE {
        s.push_str(&format!(
            "{:4.0} {:8.2} {:8.2} {:6.2}\n",
            r.fo4,
            r.dynamic,
            r.leakage,
            r.total()
        ));
    }
    s
}

/// Table 6 — variability projections.
pub fn table6() -> [Variability; 4] {
    VARIABILITY_TABLE
}

/// Table 6 as text.
pub fn table6_text() -> String {
    let mut s = String::from(
        "Table 6: Impact of technology scaling on variability\n\
         node   Vth     perf    power\n",
    );
    for v in VARIABILITY_TABLE {
        s.push_str(&format!(
            "{:5} {:6.0}% {:6.0}% {:6.0}%\n",
            v.node.to_string(),
            v.vth * 100.0,
            v.performance * 100.0,
            v.power * 100.0
        ));
    }
    s
}

/// Table 7 — ITRS device parameters for 90/65/45 nm.
pub fn table7() -> Vec<DeviceParams> {
    [TechNode::N90, TechNode::N65, TechNode::N45]
        .into_iter()
        .map(|n| device_params(n).expect("tabulated"))
        .collect()
}

/// Table 7 as text.
pub fn table7_text() -> String {
    let mut s = String::from(
        "Table 7: Device characteristics across nodes\n\
         node   Vdd   Lgate(nm)  C/um(F)    Isub/um(uA)\n",
    );
    for d in table7() {
        s.push_str(&format!(
            "{:5} {:5.1} {:9.0} {:10.2e} {:10.2}\n",
            d.node.to_string(),
            d.vdd,
            d.gate_length_nm,
            d.cap_per_um,
            d.isub_per_um
        ));
    }
    s
}

/// Table 8 — relative power across node pairs, derived from Table 7.
pub fn table8() -> Vec<(TechNode, TechNode, ScalingRatio)> {
    [
        (TechNode::N90, TechNode::N65),
        (TechNode::N90, TechNode::N45),
        (TechNode::N65, TechNode::N45),
    ]
    .into_iter()
    .map(|(a, b)| (a, b, scaling_ratio(a, b).expect("tabulated")))
    .collect()
}

/// Table 8 as text.
pub fn table8_text() -> String {
    let mut s = String::from(
        "Table 8: Impact of technology scaling on power (derived)\n\
         nodes      dynamic  leakage\n",
    );
    for (a, b, r) in table8() {
        s.push_str(&format!(
            "{:>3.0}/{:<3.0} {:10.2} {:8.2}\n",
            a.feature_nm(),
            b.feature_nm(),
            r.dynamic,
            r.leakage
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_reproduces_paper_totals() {
        let t = table4_text();
        assert!(t.contains("1025"));
        assert!(t.contains("1409"));
    }

    #[test]
    fn table5_reproduces_paper_rows() {
        let rows = table5();
        assert!((rows[0].total() - 1.3).abs() < 1e-9);
        assert!((rows[3].total() - 3.98).abs() < 1e-9);
        assert!(table5_text().contains("3.98"));
    }

    #[test]
    fn table6_reproduces_itrs_rows() {
        assert!(table6_text().contains("58%"), "{}", table6_text());
    }

    #[test]
    // The paper's Table 8 dynamic-power ratio happens to be 3.14; it is
    // not the circle constant.
    #[allow(clippy::approx_constant)]
    fn table8_reproduces_derived_ratios() {
        let t = table8();
        assert!((t[0].2.dynamic - 2.21).abs() < 0.02);
        assert!((t[1].2.dynamic - 3.14).abs() < 0.02);
        assert!((t[2].2.dynamic - 1.41).abs() < 0.02);
        assert!((t[0].2.leakage - 0.40).abs() < 0.01);
    }

    #[test]
    fn table7_has_three_nodes() {
        assert_eq!(table7().len(), 3);
        assert!(table7_text().contains("65 nm"));
    }
}
