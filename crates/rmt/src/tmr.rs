//! Triple modular redundancy — the §4 extension.
//!
//! The paper notes that if the checker is as error-prone as the leader,
//! guaranteed recovery needs an ECC-protected checker register file "and
//! possibly even a third core to implement triple modular redundancy
//! (TMR)". This module provides that third core: two identical in-order
//! checkers verify the leading core, and disagreements are resolved by
//! majority vote instead of rollback:
//!
//! * both checkers agree with the leader — verified;
//! * one checker disagrees — the leader + other checker outvote it; the
//!   losing checker's register file is repaired from the winner's
//!   (forward recovery: **zero leader stall**, no ECC needed);
//! * both checkers disagree with the leader — the leader is outvoted;
//!   its register file is restored from the checkers' agreed state.
//!
//! TMR thus tolerates checker-state corruption that the dual-core
//! system can only handle with ECC, at the price of a second checker's
//! power and die area.

use crate::dfs::{DfsConfig, DfsController};
use crate::fault::{DrawnFault, EccConfig, FaultInjector, FaultSite};
use rmt3d_cpu::{
    load_memory_value, CheckOutcome, CommittedOp, InOrderCore, OooCore, TrailerConfig, Verification,
};
use rmt3d_workload::OpClass;
use std::collections::VecDeque;

/// TMR statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TmrStats {
    /// Instructions verified by both checkers.
    pub verified: u64,
    /// Votes where one checker was outvoted and repaired.
    pub checker_outvoted: u64,
    /// Votes where the leader was outvoted and restored.
    pub leader_outvoted: u64,
    /// Three-way disagreements (unresolvable by vote; counted, then
    /// resolved pessimistically from checker 0).
    pub unresolved: u64,
}

/// A leading core checked by two voting in-order cores.
#[derive(Debug)]
pub struct TmrSystem {
    leader: OooCore,
    checkers: [InOrderCore; 2],
    streams: [VecDeque<CommittedOp>; 2],
    dfs: DfsController,
    injector: Option<FaultInjector>,
    accum: f64,
    golden: [u64; 64],
    stats: TmrStats,
    rvq_capacity: usize,
    commit_buf: Vec<CommittedOp>,
    vbuf: [Vec<Verification>; 2],
    /// Pending verifications awaiting their sibling, keyed implicitly by
    /// arrival order (identical checkers run in lockstep).
    pending: [VecDeque<Verification>; 2],
}

impl TmrSystem {
    /// Builds a TMR system around a leading core.
    pub fn new(leader: OooCore) -> TmrSystem {
        let cfg = TrailerConfig::checker();
        TmrSystem {
            leader,
            checkers: [InOrderCore::new(cfg), InOrderCore::new(cfg)],
            streams: [VecDeque::new(), VecDeque::new()],
            dfs: DfsController::new(DfsConfig::paper()),
            injector: None,
            accum: 0.0,
            golden: [0; 64],
            stats: TmrStats::default(),
            rvq_capacity: 200,
            commit_buf: Vec::with_capacity(8),
            vbuf: [Vec::new(), Vec::new()],
            pending: [VecDeque::new(), VecDeque::new()],
        }
    }

    /// Enables fault injection. TMR is typically exercised with
    /// [`EccConfig::none`]: voting replaces ECC.
    pub fn with_fault_injection(mut self, seed: u64, rate: f64, ecc: EccConfig) -> TmrSystem {
        self.injector = Some(FaultInjector::new(seed, rate, ecc));
        self
    }

    /// The leading core.
    pub fn leader(&self) -> &OooCore {
        &self.leader
    }

    /// Voting statistics.
    pub fn stats(&self) -> TmrStats {
        self.stats
    }

    /// True when the leader's architectural state matches the fault-free
    /// golden execution.
    pub fn leader_matches_golden(&self) -> bool {
        self.leader.regfile() == &self.golden
    }

    /// Warms the leader's caches.
    pub fn prefill_caches(&mut self) {
        self.leader.prefill_caches();
    }

    fn update_golden(&mut self, item: &CommittedOp) {
        let op = item.op;
        let s1 = op.src1_reg.map_or(0, |r| self.golden[r.index() as usize]);
        let s2 = op.src2_reg.map_or(0, |r| self.golden[r.index() as usize]);
        let result = match op.kind {
            OpClass::Load => load_memory_value(op.mem_addr),
            OpClass::Store | OpClass::Branch => 0,
            _ => op.compute_result(s1, s2),
        };
        if let Some(d) = op.dest {
            self.golden[d.index() as usize] = result;
        }
    }

    fn apply_fault(&mut self, fault: DrawnFault, item: &mut [CommittedOp; 2]) {
        match fault.site {
            FaultSite::TrailerRegfile => {
                // Strike one checker's register file (alternating by bit
                // parity to spread strikes).
                let victim = (fault.bit & 1) as usize;
                self.checkers[victim].flip_regfile_bit(fault.reg, fault.bit);
            }
            FaultSite::LeaderResult => {
                // A leader datapath fault corrupts the value seen by
                // *both* checkers (it is the committed result).
                FaultInjector::apply_to_payload(fault, &mut item[0]);
                FaultInjector::apply_to_payload(fault, &mut item[1]);
            }
            _ => {
                // Queue/transit faults strike one copy.
                let victim = (fault.bit & 1) as usize;
                FaultInjector::apply_to_payload(fault, &mut item[victim]);
            }
        }
    }

    /// Advances one leading-core cycle.
    pub fn step(&mut self) {
        let full = self.streams[0].len() + 4 > self.rvq_capacity
            || self.streams[1].len() + 4 > self.rvq_capacity;
        self.leader.set_commit_stall(full);
        self.commit_buf.clear();
        self.leader.step_cycle(&mut self.commit_buf);
        for i in 0..self.commit_buf.len() {
            let item = self.commit_buf[i];
            self.update_golden(&item);
            let mut copies = [item, item];
            if let Some(fault) = self.injector.as_mut().and_then(FaultInjector::draw) {
                self.apply_fault(fault, &mut copies);
            }
            self.streams[0].push_back(copies[0]);
            self.streams[1].push_back(copies[1]);
        }

        self.dfs
            .tick(self.streams[0].len() as f64 / self.rvq_capacity as f64);
        self.accum += self.dfs.current().fraction();
        while self.accum >= 1.0 {
            self.accum -= 1.0;
            for c in 0..2 {
                self.vbuf[c].clear();
            }
            let (c0, c1) = self.checkers.split_at_mut(1);
            let (s0, s1) = self.streams.split_at_mut(1);
            let (v0, v1) = self.vbuf.split_at_mut(1);
            c0[0].step_cycle(&mut s0[0], &mut v0[0]);
            c1[0].step_cycle(&mut s1[0], &mut v1[0]);
            for c in 0..2 {
                let drained: Vec<Verification> = self.vbuf[c].drain(..).collect();
                self.pending[c].extend(drained);
            }
            self.vote();
        }
    }

    /// Majority voting over paired verifications.
    fn vote(&mut self) {
        while !self.pending[0].is_empty() && !self.pending[1].is_empty() {
            let a = self.pending[0].pop_front().expect("nonempty");
            let b = self.pending[1].pop_front().expect("nonempty");
            debug_assert_eq!(a.seq, b.seq, "checkers verify in lockstep");
            // A non-Ok verification parks its payload on the emitting
            // checker; pop it to keep the side buffers in lockstep.
            match (a.outcome == CheckOutcome::Ok, b.outcome == CheckOutcome::Ok) {
                (true, true) => self.stats.verified += 1,
                (true, false) => {
                    // Checker 1 outvoted: repair it from checker 0.
                    let _ = self.checkers[1].pop_error_item();
                    self.repair_checker(1, &b);
                    self.stats.checker_outvoted += 1;
                }
                (false, true) => {
                    let _ = self.checkers[0].pop_error_item();
                    self.repair_checker(0, &a);
                    self.stats.checker_outvoted += 1;
                }
                (false, false) => {
                    let disputed = self.checkers[0].pop_error_item();
                    let _ = self.checkers[1].pop_error_item();
                    debug_assert_eq!(disputed.op.seq, a.seq);
                    if a.result == b.result {
                        // The checkers agree with each other: the leader
                        // (payload) was wrong. Restore the leader.
                        self.repair_leader(&disputed);
                        self.stats.leader_outvoted += 1;
                    } else {
                        // Three-way split: resolve from checker 0 (and
                        // count it — the paper's unresolvable case).
                        self.repair_leader(&disputed);
                        self.stats.unresolved += 1;
                    }
                }
            }
        }
    }

    /// Repairs an outvoted checker: replay the disputed instruction
    /// architecturally on the *winner*, then copy its register file into
    /// the loser. Forward recovery — the leader never stalls.
    fn repair_checker(&mut self, loser: usize, loser_v: &Verification) {
        let winner = 1 - loser;
        // The winner already retired this instruction; the loser refused
        // to. Replay it on the loser from the winner's state.
        let rf = *self.checkers[winner].regfile();
        self.checkers[loser].restore_regfile(&rf);
        let _ = loser_v;
    }

    /// Resolves a leader-outvoted instruction: the checkers replay it
    /// architecturally from their own (checked, correct) state and
    /// retire it with the agreed value. The disputed value lived only in
    /// the transit payload; the leading core's own architectural state
    /// is untouched — checker regfiles lag the leader, so copying them
    /// upward would rewind correct state and cascade false mismatches.
    /// (A persistent fault in the leader's register file itself needs
    /// the rollback recovery of `RmtSystem`, which TMR can trigger just
    /// as well; the vote merely localizes the faulty component first.)
    fn repair_leader(&mut self, disputed: &CommittedOp) {
        self.checkers[0].architectural_replay(disputed);
        let rf = *self.checkers[0].regfile();
        self.checkers[1].restore_regfile(&rf);
    }

    /// Runs until `n` instructions commit.
    pub fn run_instructions(&mut self, n: u64) {
        let start = self.leader.activity().committed;
        while self.leader.activity().committed - start < n {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
    use rmt3d_cpu::CoreConfig;
    use rmt3d_workload::{Benchmark, TraceGenerator};

    fn tmr(rate: f64, seed: u64) -> TmrSystem {
        let leader = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(Benchmark::Gzip.profile()),
            CacheHierarchy::new(NucaLayout::three_d_2a(), NucaPolicy::DistributedSets),
        );
        let mut sys = TmrSystem::new(leader);
        if rate > 0.0 {
            sys = sys.with_fault_injection(seed, rate, EccConfig::none());
        }
        sys.prefill_caches();
        sys
    }

    #[test]
    fn clean_run_verifies_everything() {
        let mut s = tmr(0.0, 0);
        s.run_instructions(20_000);
        assert!(s.stats().verified > 15_000);
        assert_eq!(s.stats().checker_outvoted, 0);
        assert_eq!(s.stats().leader_outvoted, 0);
        assert!(s.leader_matches_golden());
    }

    #[test]
    fn tmr_survives_without_any_ecc() {
        // The dual-core design needs trailer-regfile ECC; TMR votes
        // instead and must stay architecturally clean with ECC off.
        let mut s = tmr(1e-3, 11);
        s.run_instructions(60_000);
        let st = s.stats();
        assert!(
            st.checker_outvoted + st.leader_outvoted > 0,
            "faults produced votes: {st:?}"
        );
        assert!(s.leader_matches_golden(), "TMR must mask everything");
    }

    #[test]
    fn checker_faults_never_stall_the_leader() {
        let mut s = tmr(2e-3, 3);
        s.run_instructions(40_000);
        // Forward recovery: no recovery-stall mechanism exists at all,
        // so commit stalls come only from queue back-pressure.
        let a = s.leader().activity();
        assert!(
            (a.commit_stall_cycles as f64) < 0.1 * a.cycles as f64,
            "stalls {} of {}",
            a.commit_stall_cycles,
            a.cycles
        );
        assert!(s.leader_matches_golden());
    }

    #[test]
    fn vote_statistics_are_consistent() {
        let mut s = tmr(5e-3, 19);
        s.run_instructions(30_000);
        let st = s.stats();
        let total = st.verified + st.checker_outvoted + st.leader_outvoted + st.unresolved;
        assert!(total >= 29_000, "every instruction gets a vote: {st:?}");
    }
}
