//! §4 "Discussion" — the DFS heuristic trade-off.
//!
//! The paper observes that an *aggressive* throttling heuristic lowers
//! checker power and temperature but "can stall the main core more
//! frequently and result in performance loss compared to an unreliable
//! 2D baseline", whereas their less-aggressive heuristic protects leader
//! IPC at the cost of some extra heat. This experiment measures both
//! policies.

use crate::model::{ProcessorModel, RunScale};
use rmt3d_cache::{CacheHierarchy, NucaPolicy};
use rmt3d_cpu::{CoreConfig, OooCore};
use rmt3d_rmt::{DfsConfig, RmtConfig, RmtSystem};
use rmt3d_workload::{Benchmark, TraceGenerator};

/// Measured behaviour of one DFS policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyOutcome {
    /// Policy name.
    pub name: &'static str,
    /// Mean checker frequency fraction (lower = less checker power).
    pub mean_fraction: f64,
    /// Fraction of leader cycles stalled by queue back-pressure.
    pub leader_stall_fraction: f64,
    /// Leader IPC under this policy.
    pub ipc: f64,
}

/// The §4-Discussion comparison.
#[derive(Debug, Clone)]
pub struct DfsAblation {
    /// The paper's less-aggressive policy.
    pub paper: PolicyOutcome,
    /// The aggressive throttler.
    pub aggressive: PolicyOutcome,
}

impl DfsAblation {
    /// Formats as text.
    pub fn to_table(&self) -> String {
        let mut s = String::from(
            "Sec 4 Discussion: DFS heuristic trade-off\n\
             policy        mean_f  leader_stall  IPC\n",
        );
        for p in [&self.paper, &self.aggressive] {
            s.push_str(&format!(
                "{:12} {:7.2} {:12.3} {:6.3}\n",
                p.name, p.mean_fraction, p.leader_stall_fraction, p.ipc
            ));
        }
        s
    }
}

fn measure(
    name: &'static str,
    dfs: DfsConfig,
    benchmarks: &[Benchmark],
    scale: RunScale,
) -> PolicyOutcome {
    let mut frac = 0.0;
    let mut stall = 0.0;
    let mut ipc = 0.0;
    for &b in benchmarks {
        let leader = OooCore::new(
            CoreConfig::leading_ev7_like(),
            TraceGenerator::new(b.profile()),
            CacheHierarchy::new(
                ProcessorModel::ThreeD2A.nuca_layout(),
                NucaPolicy::DistributedSets,
            ),
        );
        let mut sys = RmtSystem::new(
            leader,
            RmtConfig {
                dfs,
                ..RmtConfig::paper()
            },
        );
        sys.prefill_caches();
        sys.run_instructions(scale.warmup_instructions + scale.instructions);
        let a = sys.leader().activity();
        frac += sys.dfs().mean_fraction();
        stall += a.commit_stall_cycles as f64 / a.cycles as f64;
        ipc += sys.effective_ipc();
    }
    let n = benchmarks.len() as f64;
    PolicyOutcome {
        name,
        mean_fraction: frac / n,
        leader_stall_fraction: stall / n,
        ipc: ipc / n,
    }
}

/// Runs the ablation.
pub fn run(benchmarks: &[Benchmark], scale: RunScale) -> DfsAblation {
    DfsAblation {
        paper: measure("paper", DfsConfig::paper(), benchmarks, scale),
        aggressive: measure("aggressive", DfsConfig::aggressive(), benchmarks, scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggressive_policy_saves_power_but_stalls_the_leader() {
        let r = run(&[Benchmark::Gzip, Benchmark::Gap], RunScale::quick());
        // The aggressive throttler runs the checker slower on average...
        assert!(
            r.aggressive.mean_fraction < r.paper.mean_fraction + 0.02,
            "aggressive {} vs paper {}",
            r.aggressive.mean_fraction,
            r.paper.mean_fraction
        );
        // ...but stalls the leader more.
        assert!(
            r.aggressive.leader_stall_fraction > r.paper.leader_stall_fraction,
            "aggressive stall {} vs paper {}",
            r.aggressive.leader_stall_fraction,
            r.paper.leader_stall_fraction
        );
        // The paper policy keeps leader stalls negligible.
        assert!(r.paper.leader_stall_fraction < 0.05);
        assert!(r.to_table().contains("aggressive"));
    }
}
