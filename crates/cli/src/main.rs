//! `rmt3d` command-line interface.
//!
//! ```text
//! rmt3d list
//! rmt3d simulate  --model 3d-2a --benchmark mcf [--instructions N] [--ways]
//!                 [--trace-out run.jsonl] [--csv-out samples.csv]
//!                 [--sample-interval N] [--metrics] [--quiet]
//! rmt3d thermal   --model 3d-2a --benchmark gzip --checker-watts 15
//! rmt3d experiment <name> [--paper] [--jobs N]
//! rmt3d sweep     [--models M,..|all] [--benchmarks B,..|all]
//!                 [--instructions N] [--jobs N] [--out-dir DIR]
//!                 [--cache-max-bytes N] [--resume] [--no-cache]
//!                 [--quiet] [--trace-out FILE]
//! rmt3d campaign  [--sites S,..|all] [--benchmarks B,..|all]
//!                 [--faults-per-site N] [--seed N] [--instructions N]
//!                 [--jobs N] [--out-dir DIR] [--sabotage SITE]
//!                 [--journal] [--resume] [--quiet] [--trace-out FILE]
//! rmt3d profile   --model 3d-2a --benchmark gzip [--instructions N]
//!                 [--sample-interval N] [--out-dir DIR] [--quiet]
//! rmt3d trace-report --in run.jsonl [--chrome-out FILE]
//! rmt3d bench-gate --baseline FILE --current FILE [--tolerance PCT]
//!                 [--json]
//! rmt3d status    [--run ID] [--follow] [--interval MS]
//!                 [--runs-root DIR]
//! rmt3d report    --html [--run ID] [--out FILE] [--runs-root DIR]
//!                 [--daemon-metrics FILE] [--refresh SECS]
//! rmt3d serve     [--listen ADDR] [--state-dir DIR] [--out-dir DIR]
//!                 [--jobs N] [--cache-max-bytes N] [--runs-root DIR]
//!                 [--no-ledger] [--quiet]
//! rmt3d submit    [--addr ADDR] [--kind sweep|campaign] [--priority N]
//!                 [--spec JSON | axis flags] [--wait] [--quiet]
//! rmt3d jobs      [--addr ADDR]
//! rmt3d cancel    JOB [--addr ADDR]
//! rmt3d watch     JOB [--addr ADDR]
//! rmt3d stats     [--addr ADDR]
//! rmt3d top       [--watch] [--interval MS] [--addr ADDR]
//! rmt3d shutdown  [--addr ADDR]
//! ```
//!
//! `sweep`, `campaign`, and `profile` additionally accept
//! `--runs-root DIR` / `--no-ledger` (run-ledger registration, stderr
//! announcements only) and — for the pool-driven commands —
//! `--stall-factor F` (heartbeat watchdog).
//!
//! Experiment names: `tables`, `fig4`, `fig5`, `fig6`, `fig7`,
//! `iso-thermal`, `interconnect`, `heterogeneous`, `margins`,
//! `dfs-ablation`, `hard-error`, `summary`, `tmr`, `interrupts`,
//! `resilience`, `shared-cache`, `leakage`.
//!
//! Unknown flags are errors; every argument must be consumed by the
//! selected command.

mod args;
mod profile;
mod runctl;
mod servecmd;

use args::Args;
use rmt3d::experiments::{
    dfs_ablation, dtm, fig4, fig5, fig6, fig7, hard_error, heterogeneous, interconnect, interrupts,
    iso_thermal, leakage_feedback, margins, resilience, rmt_summary, shared_cache, tables,
    tmr_study,
};
use rmt3d::power::CheckerPowerModel;
use rmt3d::telemetry::{write_samples_csv, CollectorSink, Event, JsonlSink, Sink};
use rmt3d::thermal::{solve, ThermalConfig};
use rmt3d::{
    build_power_map, override_checker_power, simulate, simulate_traced, PowerMapConfig,
    ProcessorModel, RunScale, SerialSimulator, SimConfig, Simulator,
};
use rmt3d_cache::NucaPolicy;
use rmt3d_campaign::{
    run_campaign_with, shrink, write_fixture, CampaignOptions, CampaignSpec, DEFAULT_BENCHMARKS,
    JOURNAL_FILE,
};
use rmt3d_obs::WatchdogConfig;
use rmt3d_rmt::{EccConfig, FaultSite};
use rmt3d_sweep::{run_sweep, CacheMode, ParallelSimulator, ResultStore, SweepOptions, SweepSpec};
use rmt3d_units::{TechNode, Watts};
use rmt3d_workload::Benchmark;
use std::fs::File;
use std::io::{self, Write};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: rmt3d <command>\n\
         \n\
         commands:\n\
           list                               benchmarks and models\n\
           simulate   --model M --benchmark B [--instructions N] [--ways]\n\
                      [--trace-out FILE.jsonl] [--csv-out FILE.csv]\n\
                      [--sample-interval N] [--metrics] [--quiet]\n\
           thermal    --model M --benchmark B [--checker-watts W]\n\
           experiment <name> [--paper] [--jobs N]   regenerate a paper result\n\
           sweep      [--models M1,M2|all] [--benchmarks B1,B2|all]\n\
                      [--instructions N] [--jobs N] [--out-dir DIR]\n\
                      [--cache-max-bytes N] [--resume] [--no-cache]\n\
                      [--quiet] [--trace-out FILE.jsonl]\n\
           campaign   [--sites S1,S2|all] [--benchmarks B1,B2|all]\n\
                      [--faults-per-site N] [--seed N] [--instructions N]\n\
                      [--jobs N] [--out-dir DIR] [--sabotage SITE]\n\
                      [--journal] [--resume] [--quiet]\n\
                      [--trace-out FILE.jsonl]\n\
           profile    --model M --benchmark B [--instructions N]\n\
                      [--sample-interval N] [--out-dir DIR] [--quiet]\n\
                      CPI stacks, histograms, Perfetto .trace.json\n\
           trace-report --in FILE.jsonl [--chrome-out FILE]\n\
                      rebuild the report offline; --chrome-out renders\n\
                      the events as a Perfetto-loadable .trace.json\n\
           bench-gate --baseline FILE --current FILE [--tolerance PCT]\n\
                      [--json]   fail on wall-clock or deterministic-\n\
                      stat regression; --json prints one result line\n\
           status     [--run ID] [--follow] [--interval MS]\n\
                      [--runs-root DIR]\n\
                      live progress of a ledgered run (default: latest)\n\
           report     --html [--run ID] [--out FILE] [--runs-root DIR]\n\
                      [--daemon-metrics FILE] [--refresh SECS]\n\
                      self-contained HTML dashboard for a ledgered run;\n\
                      --daemon-metrics adds the daemon fleet panel,\n\
                      --refresh embeds a browser auto-reload tag\n\
           serve      [--listen ADDR] [--state-dir DIR] [--out-dir DIR]\n\
                      [--jobs N] [--cache-max-bytes N] [--runs-root DIR]\n\
                      [--no-ledger] [--quiet]\n\
                      job daemon: persistent priority queue over the\n\
                      shared result cache (default 127.0.0.1:7733)\n\
           submit     [--addr ADDR] [--kind sweep|campaign] [--priority N]\n\
                      [--spec JSON | --models/--benchmarks/--sites/...]\n\
                      [--wait] [--quiet]   enqueue a job on the daemon;\n\
                      --wait streams progress and prints the results\n\
           jobs       [--addr ADDR]        one-line JSON job listing\n\
           cancel     JOB [--addr ADDR]    cancel a queued/running job\n\
           watch      JOB [--addr ADDR]    stream a job's event lines\n\
           stats      [--addr ADDR]        one-line JSON daemon metrics\n\
           top        [--watch] [--interval MS] [--addr ADDR]\n\
                      human daemon health view; --watch redraws\n\
           shutdown   [--addr ADDR]        drain the daemon and exit it\n\
         \n\
         models: 2d-a, 2d-2a, 3d-2a, 3d-checker\n\
         experiments: tables fig4 fig5 fig6 fig7 iso-thermal interconnect\n\
                      heterogeneous margins dfs-ablation hard-error summary\n\
                      tmr interrupts resilience shared-cache leakage dtm\n\
         \n\
         fault sites: leader_result, rvq_operand, lvq_value, boq_outcome,\n\
                      trailer_regfile\n\
         \n\
         sweep caches each job's result under --out-dir (default\n\
         target/sweep-cache) and skips cached jobs on re-runs;\n\
         --cache-max-bytes N evicts least-recently-used entries after\n\
         the run to keep the cache under N bytes.\n\
         sweep, campaign, and profile register every invocation in the\n\
         run ledger (default target/runs; --runs-root DIR overrides,\n\
         --no-ledger disables) with a live status.json; --stall-factor F\n\
         (sweep/campaign) flags jobs running F x the median duration.\n\
         campaign writes a JSONL coverage report (and, on violations, a\n\
         minimized regression fixture) under --out-dir (default\n\
         target/campaign) and exits non-zero unless coverage is 100%.\n\
         campaign --journal appends a crash-safe write-ahead journal\n\
         (campaign.journal.jsonl, fsynced per trial) under --out-dir;\n\
         campaign --resume replays it, skips completed trials, and\n\
         produces a report byte-identical to an uninterrupted run.\n\
         validation errors:\n\
           --jobs must be at least 1\n\
           --resume and --no-cache are mutually exclusive\n\
           --resume requires an existing --out-dir cache directory"
    );
    ExitCode::FAILURE
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n");
    usage()
}

fn parse_model(s: &str) -> Option<ProcessorModel> {
    s.parse().ok()
}

/// Parses a comma-separated `--models`/`--benchmarks` list, where the
/// keyword `all` (also the default) selects the whole axis.
fn parse_list<T: Copy>(
    spec: Option<String>,
    all: &[T],
    parse: impl Fn(&str) -> Option<T>,
    what: &str,
) -> Result<Vec<T>, String> {
    match spec.as_deref() {
        None | Some("all") => Ok(all.to_vec()),
        Some(list) => {
            let items: Vec<&str> = list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            if items.is_empty() {
                return Err(format!("{what} list is empty"));
            }
            items
                .into_iter()
                .map(|s| parse(s).ok_or_else(|| format!("unknown {what}: {s}")))
                .collect()
        }
    }
}

/// Streams sweep progress to stderr as the engine emits job events.
struct ProgressSink {
    quiet: bool,
}

impl Sink for ProgressSink {
    fn record(&mut self, event: &Event) {
        if self.quiet {
            return;
        }
        match event {
            Event::JobStarted { job, total, label } => {
                eprintln!("[{}/{total}] start  {label}", job + 1);
            }
            Event::JobCacheHit { job, total, label } => {
                eprintln!("[{}/{total}] cached {label}", job + 1);
            }
            Event::JobFinished {
                job,
                total,
                ok,
                wall_nanos,
                eta_nanos,
            } => {
                eprintln!(
                    "[{}/{total}] {} in {:.1} s (eta {:.1} s)",
                    job + 1,
                    if *ok { "done  " } else { "FAILED" },
                    *wall_nanos as f64 / 1e9,
                    *eta_nanos as f64 / 1e9,
                );
            }
            _ => {}
        }
    }
}

/// Telemetry-related `simulate` flags.
struct TelemetryOpts {
    trace_out: Option<String>,
    csv_out: Option<String>,
    sample_interval: u64,
    metrics: bool,
}

impl TelemetryOpts {
    fn from_args(a: &mut Args) -> Result<TelemetryOpts, String> {
        Ok(TelemetryOpts {
            trace_out: a.opt("--trace-out")?,
            csv_out: a.opt("--csv-out")?,
            sample_interval: a.parsed("--sample-interval")?.unwrap_or(0),
            metrics: a.flag("--metrics"),
        })
    }

    fn enabled(&self) -> bool {
        self.trace_out.is_some()
            || self.csv_out.is_some()
            || self.sample_interval > 0
            || self.metrics
    }
}

/// Runs the simulation with the configured exporters attached and
/// writes the artifacts; on I/O failure returns the error message.
fn run_traced(
    cfg: &SimConfig,
    bench: Benchmark,
    opts: &TelemetryOpts,
) -> Result<rmt3d::PerfResult, String> {
    let writer: Box<dyn Write> = match &opts.trace_out {
        Some(path) => Box::new(io::BufWriter::new(
            File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        )),
        None => Box::new(io::sink()),
    };
    let jsonl = JsonlSink::new(writer);
    let collector = CollectorSink::new();
    let result = simulate_traced(
        cfg,
        bench,
        opts.sample_interval,
        (collector.clone(), jsonl.clone()),
    );
    let snapshot = collector.snapshot();
    let mut jsonl = jsonl;
    jsonl.write_summary(&snapshot.registry);
    jsonl
        .finish()
        .map_err(|e| format!("trace write failed: {e}"))?;
    if let Some(path) = &opts.csv_out {
        let mut f = io::BufWriter::new(
            File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        );
        write_samples_csv(&mut f, snapshot.ring.iter())
            .map_err(|e| format!("csv write failed: {e}"))?;
    }
    if opts.metrics {
        let (injected, corrected) = snapshot.fault_counts();
        let (recoveries, unrecoverable) = snapshot.recovery_counts();
        eprintln!("-- metrics --");
        eprint!("{}", snapshot.registry.format_human());
        eprintln!(
            "samples: {} retained ({} dropped), dfs transitions: {}",
            snapshot.ring.len(),
            snapshot.ring.dropped(),
            snapshot.dfs_transitions(),
        );
        eprintln!(
            "faults: {injected} injected ({corrected} ECC-corrected), \
             recoveries: {recoveries} ({unrecoverable} unrecoverable)"
        );
    }
    Ok(result)
}

/// The `rmt3d sweep` subcommand: expand a declarative spec and run it
/// on the parallel engine with the on-disk result cache.
fn run_sweep_command(mut a: Args) -> ExitCode {
    let models = match a
        .opt("--models")
        .and_then(|spec| parse_list(spec, &ProcessorModel::ALL, parse_model, "model"))
    {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    let benchmarks = match a
        .opt("--benchmarks")
        .and_then(|spec| parse_list(spec, &Benchmark::ALL, |s| s.parse().ok(), "benchmark"))
    {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    let instructions = match a.parsed("--instructions") {
        Ok(n) => n.unwrap_or(250_000),
        Err(e) => return fail(&e),
    };
    let jobs = match a.parsed::<usize>("--jobs") {
        Ok(Some(0)) => return fail("--jobs must be at least 1"),
        Ok(Some(n)) => n,
        Ok(None) => 0, // auto: one worker per available core
        Err(e) => return fail(&e),
    };
    let resume = a.flag("--resume");
    let no_cache = a.flag("--no-cache");
    let out_dir = match a.opt("--out-dir") {
        Ok(d) => PathBuf::from(d.unwrap_or_else(|| "target/sweep-cache".into())),
        Err(e) => return fail(&e),
    };
    let cache_max_bytes = match a.parsed::<u64>("--cache-max-bytes") {
        Ok(b) => b,
        Err(e) => return fail(&e),
    };
    let quiet = a.flag("--quiet");
    let trace_out = match a.opt("--trace-out") {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let stall_factor = match a.parsed::<f64>("--stall-factor") {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let ledger_opts = match runctl::LedgerOpts::from_args(&mut a) {
        Ok(l) => l,
        Err(e) => return fail(&e),
    };
    if let Err(e) = a.finish() {
        return fail(&e);
    }
    if resume && no_cache {
        return fail("--resume and --no-cache are mutually exclusive");
    }
    if cache_max_bytes.is_some() && no_cache {
        return fail("--cache-max-bytes has no effect with --no-cache");
    }
    if stall_factor.is_some_and(|f| f.is_nan() || f <= 1.0) {
        return fail("--stall-factor must be greater than 1");
    }
    let cache = if no_cache {
        CacheMode::Disabled
    } else {
        if resume && !out_dir.is_dir() {
            return fail(&format!(
                "--resume requires an existing cache directory, but {} does not exist",
                out_dir.display()
            ));
        }
        CacheMode::Dir(out_dir)
    };

    let scale = RunScale {
        warmup_instructions: instructions / 10,
        instructions,
        thermal_grid: 50,
    };
    let spec = SweepSpec::new(&models, &benchmarks, scale);
    let opts = SweepOptions {
        jobs,
        cache,
        watchdog: stall_factor.map(|multiplier| WatchdogConfig {
            multiplier,
            ..WatchdogConfig::default()
        }),
        cancel: None,
    };
    if !quiet {
        eprintln!(
            "sweep: {} jobs ({} models x {} benchmarks, {} instructions) on {} workers",
            spec.job_count(),
            models.len(),
            benchmarks.len(),
            instructions,
            opts.worker_count(),
        );
    }

    let sweep_jobs = spec.expand();
    let canonicals: Vec<String> = sweep_jobs.iter().map(|j| j.canonical()).collect();
    let config = vec![
        (
            "models".to_string(),
            models
                .iter()
                .map(|m| m.name())
                .collect::<Vec<_>>()
                .join(","),
        ),
        (
            "benchmarks".to_string(),
            benchmarks
                .iter()
                .map(|b| b.name())
                .collect::<Vec<_>>()
                .join(","),
        ),
        ("instructions".to_string(), instructions.to_string()),
        ("workers".to_string(), opts.worker_count().to_string()),
        (
            "cache".to_string(),
            match &opts.cache {
                CacheMode::Disabled => "disabled".to_string(),
                CacheMode::Dir(d) => d.display().to_string(),
            },
        ),
    ];
    let mut tracker = runctl::RunTracker::start(
        &ledger_opts,
        "sweep",
        rmt3d_obs::spec_hash(canonicals.iter().map(String::as_str)),
        sweep_jobs.len() as u64,
        &config,
        quiet,
    );

    let writer: Box<dyn Write> = match &trace_out {
        Some(path) => match File::create(path) {
            Ok(f) => Box::new(io::BufWriter::new(f)),
            Err(e) => return fail(&format!("cannot create {path}: {e}")),
        },
        None => Box::new(io::sink()),
    };
    let jsonl = JsonlSink::new(writer);
    let mut sink = (
        ProgressSink { quiet },
        (
            jsonl.clone(),
            runctl::ObserverSink(tracker.as_mut().map(|t| &mut t.observer)),
        ),
    );
    let report = match run_sweep(sweep_jobs, &opts, &mut sink) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    drop(sink);
    let mut jsonl = jsonl;
    if let Err(e) = jsonl.finish() {
        return fail(&format!("trace write failed: {e}"));
    }
    if let Some(tracker) = tracker {
        tracker.finish(if report.failures > 0 { "failed" } else { "ok" }, None);
    }
    if let (Some(max), CacheMode::Dir(dir)) = (cache_max_bytes, &opts.cache) {
        match ResultStore::open(dir).and_then(|store| store.evict_to(max)) {
            Ok(ev) if ev.evicted_entries > 0 && !quiet => eprintln!(
                "sweep: cache evicted {} entr{} ({} bytes), {} bytes retained",
                ev.evicted_entries,
                if ev.evicted_entries == 1 { "y" } else { "ies" },
                ev.evicted_bytes,
                ev.remaining_bytes,
            ),
            Ok(_) => {}
            Err(e) => eprintln!("sweep: warning: cache eviction failed: {e}"),
        }
    }

    for record in &report.records {
        match &record.outcome {
            Ok(r) => println!(
                "{:28} IPC {:.3}  L2 {:5.2} misses/10K  checker {:.2} f",
                record.job.label(),
                r.ipc(),
                r.l2_misses_per_10k(),
                r.mean_checker_fraction,
            ),
            Err(e) => println!("{:28} FAILED: {e}", record.job.label()),
        }
    }
    println!("{}", report.summary());
    if report.failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The `rmt3d campaign` subcommand: expand a fault-injection grid, run
/// it on the parallel engine, write the JSONL coverage report, and — on
/// a violation — minimize the first one into a regression fixture.
fn run_campaign_command(mut a: Args) -> ExitCode {
    let sites = match a.opt("--sites").and_then(|spec| {
        parse_list(
            spec,
            &FaultSite::ALL,
            |s| FaultSite::parse(s).ok(),
            "fault site",
        )
    }) {
        Ok(s) => s,
        Err(e) => return fail(&e),
    };
    let benchmarks = match a.opt("--benchmarks") {
        // The curated default slice differs from `all`: five profiles
        // spanning branchy and memory-bound behaviour.
        Ok(None) => DEFAULT_BENCHMARKS.to_vec(),
        Ok(spec) => match parse_list(spec, &Benchmark::ALL, |s| s.parse().ok(), "benchmark") {
            Ok(b) => b,
            Err(e) => return fail(&e),
        },
        Err(e) => return fail(&e),
    };
    let faults_per_cell = match a.parsed::<usize>("--faults-per-site") {
        Ok(n) => n.unwrap_or(40),
        Err(e) => return fail(&e),
    };
    let seed = match a.parsed::<u64>("--seed") {
        Ok(n) => n.unwrap_or(42),
        Err(e) => return fail(&e),
    };
    let instructions = match a.parsed::<u64>("--instructions") {
        Ok(n) => n.unwrap_or(20_000),
        Err(e) => return fail(&e),
    };
    let jobs = match a.parsed::<usize>("--jobs") {
        Ok(Some(0)) => return fail("--jobs must be at least 1"),
        Ok(Some(n)) => n,
        Ok(None) => 0, // auto: one worker per available core
        Err(e) => return fail(&e),
    };
    let out_dir = match a.opt("--out-dir") {
        Ok(d) => PathBuf::from(d.unwrap_or_else(|| "target/campaign".into())),
        Err(e) => return fail(&e),
    };
    let sabotage = match a.opt("--sabotage") {
        Ok(None) => None,
        Ok(Some(s)) => match FaultSite::parse(&s) {
            Ok(site) => Some(site),
            Err(e) => return fail(&e),
        },
        Err(e) => return fail(&e),
    };
    let journal = a.flag("--journal");
    let resume = a.flag("--resume");
    let quiet = a.flag("--quiet");
    let trace_out = match a.opt("--trace-out") {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };
    let stall_factor = match a.parsed::<f64>("--stall-factor") {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let ledger_opts = match runctl::LedgerOpts::from_args(&mut a) {
        Ok(l) => l,
        Err(e) => return fail(&e),
    };
    if let Err(e) = a.finish() {
        return fail(&e);
    }
    if stall_factor.is_some_and(|f| f.is_nan() || f <= 1.0) {
        return fail("--stall-factor must be greater than 1");
    }

    let mut spec = CampaignSpec {
        sites,
        benchmarks,
        faults_per_cell,
        seed,
        instructions,
        ecc: EccConfig::paper(),
    };
    if let Some(site) = sabotage {
        spec = match spec.sabotage(site) {
            Ok(s) => s,
            Err(e) => return fail(&e),
        };
    }
    if let Err(e) = spec.validate() {
        return fail(&e);
    }
    if !quiet {
        eprintln!(
            "campaign: {} trials ({} sites x {} benchmarks x {} faults, \
             {} instructions, seed {}){}",
            spec.total_trials(),
            spec.sites.len(),
            spec.benchmarks.len(),
            spec.faults_per_cell,
            spec.instructions,
            spec.seed,
            if sabotage.is_some() {
                " [ECC SABOTAGED]"
            } else {
                ""
            },
        );
    }

    let campaign_canonical = spec.canonical();
    let config = vec![
        (
            "sites".to_string(),
            spec.sites
                .iter()
                .map(|s| s.name())
                .collect::<Vec<_>>()
                .join(","),
        ),
        (
            "benchmarks".to_string(),
            spec.benchmarks
                .iter()
                .map(|b| b.name())
                .collect::<Vec<_>>()
                .join(","),
        ),
        (
            "faults_per_site".to_string(),
            spec.faults_per_cell.to_string(),
        ),
        ("seed".to_string(), spec.seed.to_string()),
        ("instructions".to_string(), spec.instructions.to_string()),
    ];
    let mut tracker = runctl::RunTracker::start(
        &ledger_opts,
        "campaign",
        rmt3d_obs::spec_hash(std::iter::once(campaign_canonical.as_str())),
        spec.total_trials() as u64,
        &config,
        quiet,
    );

    let writer: Box<dyn Write> = match &trace_out {
        Some(path) => match File::create(path) {
            Ok(f) => Box::new(io::BufWriter::new(f)),
            Err(e) => return fail(&format!("cannot create {path}: {e}")),
        },
        None => Box::new(io::sink()),
    };
    let jsonl = JsonlSink::new(writer);
    let mut sink = (
        ProgressSink { quiet },
        (
            jsonl.clone(),
            runctl::ObserverSink(tracker.as_mut().map(|t| &mut t.observer)),
        ),
    );
    let watchdog = stall_factor.map(|multiplier| WatchdogConfig {
        multiplier,
        ..WatchdogConfig::default()
    });
    let opts = CampaignOptions {
        jobs,
        watchdog,
        journal: (journal || resume).then(|| out_dir.join(JOURNAL_FILE)),
        resume,
    };
    let run = match run_campaign_with(&spec, &opts, &mut sink) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    if !quiet {
        if let Some(reason) = &run.journal_discarded {
            eprintln!("campaign: journal discarded ({reason}); starting fresh");
        }
        if run.resumed > 0 || run.requeued > 0 {
            eprintln!(
                "campaign: resumed {} completed trials from the journal, re-queued {}",
                run.resumed, run.requeued
            );
        }
    }
    let report = run.report;
    drop(sink);
    let mut jsonl = jsonl;
    if let Err(e) = jsonl.finish() {
        return fail(&format!("trace write failed: {e}"));
    }
    if let Some(tracker) = tracker {
        tracker.finish(
            if report.violations().is_empty() {
                "ok"
            } else {
                "failed"
            },
            None,
        );
    }

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        return fail(&format!("cannot create {}: {e}", out_dir.display()));
    }
    let report_path = out_dir.join("campaign.jsonl");
    if let Err(e) = std::fs::write(&report_path, report.to_jsonl()) {
        return fail(&format!("cannot write {}: {e}", report_path.display()));
    }

    for s in report.site_summaries() {
        println!(
            "{:16} {:4} trials: {:4} corrected, {:4} detected, {:4} masked, \
             {:2} violations | detect latency p50 {} p90 {} p99 {} max {} cycles",
            s.site.name(),
            s.trials,
            s.corrected,
            s.detected,
            s.masked,
            s.violations + s.failed,
            s.latency.p50,
            s.latency.p90,
            s.latency.p99,
            s.latency.max,
        );
    }
    println!("{}", report.summary());
    println!("report: {}", report_path.display());

    let violations = report.violations();
    if let Some(victim) = violations.first() {
        if let Some(violation) = victim.outcome.as_ref().ok().and_then(|t| t.violation) {
            if !quiet {
                eprintln!("minimizing first violation: {}", victim.spec.label());
            }
            match shrink(&victim.spec, 300) {
                Ok(shrunk) => {
                    match write_fixture(&out_dir.join("fixtures"), &shrunk.spec, violation) {
                        Ok(path) => println!(
                            "minimized fixture ({} attempts, {} reductions): {}",
                            shrunk.attempts,
                            shrunk.accepted,
                            path.display()
                        ),
                        Err(e) => eprintln!("fixture write failed: {e}"),
                    }
                }
                Err(e) => eprintln!("shrink failed: {e}"),
            }
        }
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let mut a = Args::new(&args[1..]);
    match cmd.as_str() {
        "list" => {
            if let Err(e) = a.finish() {
                return fail(&e);
            }
            println!("models:");
            for m in ProcessorModel::ALL {
                println!(
                    "  {:11} {} MB L2, checker: {}",
                    m.name(),
                    m.nuca_layout().bank_count(),
                    if m.has_checker() { "yes" } else { "no" }
                );
            }
            println!("benchmarks:");
            for b in Benchmark::ALL {
                println!("  {:8} ({})", b.name(), b.suite());
            }
            ExitCode::SUCCESS
        }
        "simulate" => {
            let model = match a.opt("--model") {
                Ok(Some(m)) => match parse_model(&m) {
                    Some(m) => m,
                    None => return fail(&format!("unknown model: {m}")),
                },
                Ok(None) => return fail("--model is required"),
                Err(e) => return fail(&e),
            };
            let bench: Benchmark = match a.opt("--benchmark") {
                Ok(Some(b)) => match b.parse() {
                    Ok(b) => b,
                    Err(_) => return fail(&format!("unknown benchmark: {b}")),
                },
                Ok(None) => return fail("--benchmark is required"),
                Err(e) => return fail(&e),
            };
            let instructions = match a.parsed("--instructions") {
                Ok(n) => n.unwrap_or(500_000),
                Err(e) => return fail(&e),
            };
            let ways = a.flag("--ways");
            let quiet = a.flag("--quiet");
            let telemetry = match TelemetryOpts::from_args(&mut a) {
                Ok(t) => t,
                Err(e) => return fail(&e),
            };
            if let Err(e) = a.finish() {
                return fail(&e);
            }
            let mut cfg = SimConfig::nominal(
                model,
                RunScale {
                    warmup_instructions: instructions / 10,
                    instructions,
                    thermal_grid: 50,
                },
            );
            if ways {
                cfg.policy = NucaPolicy::DistributedWays;
            }
            let r = if telemetry.enabled() {
                match run_traced(&cfg, bench, &telemetry) {
                    Ok(r) => r,
                    Err(e) => return fail(&e),
                }
            } else {
                simulate(&cfg, bench)
            };
            if !quiet {
                println!(
                    "model {} benchmark {} ({} instructions)",
                    model, bench, instructions
                );
                println!("IPC: {:.3}", r.ipc());
                println!(
                    "L2: {:.1}-cycle mean hit, {:.2} misses/10K",
                    r.l2.mean_hit_cycles(),
                    r.l2_misses_per_10k()
                );
                if model.has_checker() {
                    println!("checker mean frequency: {:.2} f", r.mean_checker_fraction);
                }
            }
            ExitCode::SUCCESS
        }
        "thermal" => {
            let model = match a.opt("--model") {
                Ok(Some(m)) => match parse_model(&m) {
                    Some(m) => m,
                    None => return fail(&format!("unknown model: {m}")),
                },
                Ok(None) => return fail("--model is required"),
                Err(e) => return fail(&e),
            };
            let bench: Benchmark = match a.opt("--benchmark") {
                Ok(Some(b)) => match b.parse() {
                    Ok(b) => b,
                    Err(_) => return fail(&format!("unknown benchmark: {b}")),
                },
                Ok(None) => return fail("--benchmark is required"),
                Err(e) => return fail(&e),
            };
            let watts = match a.parsed("--checker-watts") {
                Ok(w) => w.unwrap_or(7.0),
                Err(e) => return fail(&e),
            };
            let quiet = a.flag("--quiet");
            if let Err(e) = a.finish() {
                return fail(&e);
            }
            let perf = simulate(
                &SimConfig::nominal(
                    model,
                    RunScale {
                        warmup_instructions: 50_000,
                        instructions: 300_000,
                        thermal_grid: 50,
                    },
                ),
                bench,
            );
            let mut chip = build_power_map(
                &perf,
                &PowerMapConfig::with_checker(CheckerPowerModel::with_peak(Watts(watts))),
            );
            if model.has_checker() {
                override_checker_power(&mut chip, Watts(watts));
            }
            let r = solve(&model.floorplan(), &chip.map, &ThermalConfig::paper())
                .expect("thermal solve");
            if !quiet {
                println!("model {} benchmark {} checker {} W", model, bench, watts);
                println!("chip power: {:.1} W", chip.total().0);
                println!("peak temperature: {}", r.peak());
                for (d, _) in model.floorplan().dies.iter().enumerate() {
                    println!("  die {d}: {}", r.die_peak(d));
                }
            }
            ExitCode::SUCCESS
        }
        "experiment" => {
            let Some(name) = a.positional() else {
                return fail("experiment requires a name");
            };
            let paper = a.flag("--paper");
            let sim: Box<dyn Simulator> = match a.parsed::<usize>("--jobs") {
                Ok(Some(0)) => return fail("--jobs must be at least 1"),
                Ok(Some(1)) | Ok(None) => Box::new(SerialSimulator),
                Ok(Some(n)) => Box::new(ParallelSimulator::new(n)),
                Err(e) => return fail(&e),
            };
            if let Err(e) = a.finish() {
                return fail(&e);
            }
            let (benchmarks, scale): (Vec<Benchmark>, RunScale) = if paper {
                (Benchmark::ALL.to_vec(), RunScale::paper())
            } else {
                (
                    vec![Benchmark::Gzip, Benchmark::Mcf, Benchmark::Swim],
                    RunScale {
                        warmup_instructions: 50_000,
                        instructions: 250_000,
                        thermal_grid: 50,
                    },
                )
            };
            match name.as_str() {
                "tables" => {
                    print!("{}", tables::table4_text());
                    print!("{}", tables::table5_text());
                    print!("{}", tables::table6_text());
                    print!("{}", tables::table7_text());
                    print!("{}", tables::table8_text());
                }
                "fig4" => print!(
                    "{}",
                    fig4::run_with(sim.as_ref(), &benchmarks, scale)
                        .expect("fig4")
                        .to_table()
                ),
                "fig5" => print!(
                    "{}",
                    fig5::run_with(sim.as_ref(), &benchmarks, scale)
                        .expect("fig5")
                        .to_table()
                ),
                "fig6" => print!("{}", fig6::run(&benchmarks, scale).to_table()),
                "fig7" => print!("{}", fig7::run(&benchmarks, scale).to_table()),
                "iso-thermal" => {
                    for w in [7.0, 15.0] {
                        let p = iso_thermal::run_with(sim.as_ref(), w, &benchmarks, scale)
                            .expect("iso-thermal");
                        println!(
                            "{:4.0} W checker: {:.2} GHz, perf loss {:.1}%",
                            w,
                            p.matched_frequency.value(),
                            100.0 * p.performance_loss
                        );
                    }
                }
                "interconnect" => print!("{}", interconnect::run().to_table()),
                "heterogeneous" => print!(
                    "{}",
                    heterogeneous::run(&benchmarks, scale)
                        .expect("heterogeneous")
                        .to_table()
                ),
                "margins" => {
                    let f7 = fig7::run(&benchmarks, scale);
                    print!("{}", margins::run(&f7, TechNode::N65, 12).to_table());
                }
                "dfs-ablation" => print!("{}", dfs_ablation::run(&benchmarks, scale).to_table()),
                "hard-error" => print!("{}", hard_error::run(&benchmarks, scale).to_table()),
                "summary" => print!("{}", rmt_summary::run(&benchmarks, scale).to_table()),
                "tmr" => print!(
                    "{}",
                    tmr_study::run(Benchmark::Twolf, if paper { 20 } else { 6 }, 2e-3, 30_000)
                        .to_table()
                ),
                "interrupts" => {
                    print!("{}", interrupts::run(&benchmarks, 10_000, scale).to_table())
                }
                "resilience" => print!("{}", resilience::run(&benchmarks, scale).to_table()),
                "dtm" => print!(
                    "{}",
                    dtm::run(rmt3d_units::Celsius(82.0), &benchmarks, scale)
                        .expect("dtm study")
                        .to_table()
                ),
                "shared-cache" => print!(
                    "{}",
                    shared_cache::run(if paper { 400_000 } else { 80_000 }).to_table()
                ),
                "leakage" => {
                    let r = leakage_feedback::run(Benchmark::Gzip, scale).expect("coupled solve");
                    println!(
                        "leakage-temperature coupling: open-loop peak {:.2} C,                          closed-loop {:.2} C (shift {:+.3} C in {} iterations) — negligible,                          as the paper reports",
                        r.open_loop_peak.0,
                        r.closed_loop_peak.0,
                        r.peak_shift(),
                        r.iterations
                    );
                }
                other => return fail(&format!("unknown experiment: {other}")),
            }
            ExitCode::SUCCESS
        }
        "sweep" => run_sweep_command(a),
        "campaign" => run_campaign_command(a),
        "profile" => profile::run_profile_command(a),
        "trace-report" => profile::run_trace_report_command(a),
        "bench-gate" => profile::run_bench_gate_command(a),
        "status" => runctl::run_status_command(a),
        "report" => runctl::run_report_command(a),
        "serve" => servecmd::run_serve_command(a),
        "submit" => servecmd::run_submit_command(a),
        "jobs" => servecmd::run_jobs_command(a),
        "cancel" => servecmd::run_cancel_command(a),
        "watch" => servecmd::run_watch_command(a),
        "stats" => servecmd::run_stats_command(a),
        "top" => servecmd::run_top_command(a),
        "shutdown" => servecmd::run_shutdown_command(a),
        other => fail(&format!("unknown command: {other}")),
    }
}
