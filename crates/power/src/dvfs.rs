//! Dynamic voltage/frequency scaling points.
//!
//! Two scaling regimes appear in the paper:
//!
//! * the checker's **DFS** (frequency only — dynamic power scales
//!   linearly with f, §2.1),
//! * the iso-thermal study's **DVFS** (voltage scales linearly with
//!   frequency over the relevant range, following \[2\]; dynamic power
//!   then scales as `f·V²` and leakage as `V`, §3.3).

/// One voltage/frequency operating point, expressed relative to nominal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsPoint {
    freq_scale: f64,
    vdd_scale: f64,
}

impl DvfsPoint {
    /// Nominal operation (2 GHz, 1 V at 65 nm).
    pub fn nominal() -> DvfsPoint {
        DvfsPoint {
            freq_scale: 1.0,
            vdd_scale: 1.0,
        }
    }

    /// Frequency-only scaling (the checker's DFS).
    ///
    /// # Panics
    ///
    /// Panics if `freq_scale` is not positive.
    pub fn frequency_only(freq_scale: f64) -> DvfsPoint {
        assert!(freq_scale > 0.0, "frequency scale must be positive");
        DvfsPoint {
            freq_scale,
            vdd_scale: 1.0,
        }
    }

    /// Combined scaling with voltage tracking frequency linearly (§3.3
    /// methodology, after \[2\]).
    ///
    /// # Panics
    ///
    /// Panics if `freq_scale` is not positive.
    pub fn from_frequency_linear_vdd(freq_scale: f64) -> DvfsPoint {
        assert!(freq_scale > 0.0, "frequency scale must be positive");
        DvfsPoint {
            freq_scale,
            vdd_scale: freq_scale,
        }
    }

    /// Explicit point.
    ///
    /// # Panics
    ///
    /// Panics if either scale is not positive.
    pub fn new(freq_scale: f64, vdd_scale: f64) -> DvfsPoint {
        assert!(
            freq_scale > 0.0 && vdd_scale > 0.0,
            "scales must be positive"
        );
        DvfsPoint {
            freq_scale,
            vdd_scale,
        }
    }

    /// Relative frequency.
    pub fn frequency(&self) -> f64 {
        self.freq_scale
    }

    /// Relative supply voltage.
    pub fn vdd(&self) -> f64 {
        self.vdd_scale
    }

    /// Multiplier on dynamic power: `f · V²`.
    pub fn dynamic_factor(&self) -> f64 {
        self.freq_scale * self.vdd_scale * self.vdd_scale
    }

    /// Multiplier on leakage power: `V` (first-order sub-threshold
    /// dependence over the small voltage range considered).
    pub fn leakage_factor(&self) -> f64 {
        self.vdd_scale
    }
}

impl Default for DvfsPoint {
    fn default() -> DvfsPoint {
        DvfsPoint::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_identity() {
        let p = DvfsPoint::nominal();
        assert_eq!(p.dynamic_factor(), 1.0);
        assert_eq!(p.leakage_factor(), 1.0);
    }

    #[test]
    fn dfs_scales_linearly() {
        let p = DvfsPoint::frequency_only(0.6);
        assert!((p.dynamic_factor() - 0.6).abs() < 1e-12);
        assert_eq!(p.leakage_factor(), 1.0);
    }

    #[test]
    fn dvfs_scales_cubically() {
        // 1.9 GHz / 2 GHz with V tracking f: dynamic scales by 0.95^3.
        let p = DvfsPoint::from_frequency_linear_vdd(0.95);
        assert!((p.dynamic_factor() - 0.95f64.powi(3)).abs() < 1e-12);
        assert!((p.leakage_factor() - 0.95).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_panics() {
        let _ = DvfsPoint::frequency_only(0.0);
    }
}
