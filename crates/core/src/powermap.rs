//! Building thermal power maps from performance results (§3.1: Wattch
//! activity power + CACTI/Orion cache power + interconnect power feed
//! the HotSpot model).

use crate::simulate::PerfResult;
use rmt3d_cache::CactiLite;
use rmt3d_floorplan::BlockId;
use rmt3d_interconnect::{wire_report, BandwidthConfig, WireModel, WireReport};
use rmt3d_power::{CheckerPowerModel, CorePowerModel, DvfsPoint};
use rmt3d_thermal::PowerMap;
use rmt3d_units::{TechNode, Watts};

/// Power-map builder options.
#[derive(Debug, Clone, Copy)]
pub struct PowerMapConfig {
    /// Checker-core power model (the Fig. 4 sweep parameter).
    pub checker: CheckerPowerModel,
    /// DVFS point of the whole chip (§3.3 iso-thermal runs).
    pub dvfs: DvfsPoint,
    /// Technology of the checker die (§4 heterogeneity; 65 nm default).
    pub checker_node: TechNode,
    /// Scale the checker's dynamic power by its DFS utilization instead
    /// of charging peak (the paper's Fig. 4/5 charge the *parameter*
    /// power directly; set false to reproduce those).
    pub throttle_checker_by_dfs: bool,
}

impl PowerMapConfig {
    /// Paper defaults with a given checker power parameter.
    pub fn with_checker(checker: CheckerPowerModel) -> PowerMapConfig {
        PowerMapConfig {
            checker,
            dvfs: DvfsPoint::nominal(),
            checker_node: TechNode::N65,
            throttle_checker_by_dfs: false,
        }
    }
}

/// Power budget summary alongside the block map.
#[derive(Debug, Clone)]
pub struct ChipPower {
    /// Per-block map for the thermal solver.
    pub map: PowerMap,
    /// Leading-core total.
    pub leader: Watts,
    /// Checker total (zero for 2d-a).
    pub checker: Watts,
    /// All L2 banks (array dynamic + leakage + router).
    pub l2: Watts,
    /// Wire/NoC power (§3.4).
    pub interconnect: Watts,
    /// Wire-length report used.
    pub wires: WireReport,
}

impl ChipPower {
    /// Total chip power.
    pub fn total(&self) -> Watts {
        self.map.total()
    }
}

/// Builds the thermal power map for a simulated window.
pub fn build_power_map(perf: &PerfResult, cfg: &PowerMapConfig) -> ChipPower {
    let plan = perf.model.floorplan();
    let mut map = PowerMap::new();

    // Leading core: Wattch-lite breakdown of the measured activity.
    let core_model = CorePowerModel::ev7_like_65nm();
    let breakdown = core_model.breakdown(&perf.leader, cfg.dvfs);
    let mut leader_total = Watts::ZERO;
    for &(block, dyn_w, leak_w) in &breakdown.blocks {
        map.set(BlockId::Leader(block), dyn_w + leak_w);
        leader_total += dyn_w + leak_w;
    }

    // Checker core.
    let mut checker_total = Watts::ZERO;
    if perf.model.has_checker() {
        let fraction = if cfg.throttle_checker_by_dfs {
            perf.mean_checker_fraction.max(0.1)
        } else {
            1.0
        };
        // Chip-level DVFS (§3.3) scales the checker with everything
        // else: dynamic by f*V^2, leakage by V.
        let (dyn_w, leak_w) = cfg.checker.split();
        let p = Watts(
            dyn_w.0 * fraction * cfg.dvfs.dynamic_factor() + leak_w.0 * cfg.dvfs.leakage_factor(),
        );
        map.set(BlockId::Checker, p);
        checker_total = p;
        map.set(BlockId::IntercoreBuffers, Watts(0.4));
    }

    // L2 banks: CACTI-lite leakage + measured per-bank dynamic + router.
    let cacti = CactiLite::new(TechNode::N65);
    let bank = cacti.bank_1mb();
    let router = cacti.router_power();
    let seconds = perf.total_cycles as f64 / perf.frequency.hertz();
    let mut l2_total = Watts::ZERO;
    let mut bank_cursor = 0usize;
    for (die_idx, die) in plan.dies.iter().enumerate() {
        for b in &die.blocks {
            if let BlockId::L2Bank { .. } = b.id {
                let accesses = perf.l2.bank_accesses.get(bank_cursor).copied().unwrap_or(0);
                bank_cursor += 1;
                let rate = if seconds > 0.0 {
                    accesses as f64 / seconds
                } else {
                    0.0
                };
                let dyn_w = bank.dynamic_power(rate) * cfg.dvfs.dynamic_factor();
                let leak = bank.leakage * cfg.dvfs.leakage_factor();
                let util = (rate / perf.frequency.hertz()).min(1.0);
                let r = router * (0.1 + 0.9 * util);
                let p = dyn_w + leak + r;
                map.set(b.id, p);
                l2_total += p;
                let _ = die_idx;
            }
        }
    }

    // Interconnect power, spread over the blocks the wires fly over:
    // L2-network power across the bank tiles and controller, inter-core
    // wire power onto the buffers block.
    let wires = wire_report(&plan, &BandwidthConfig::paper());
    let wm = WireModel::paper();
    let l2_wire = wires.l2_power(&wm) * cfg.dvfs.dynamic_factor();
    let core_wire = wires.intercore_power(&wm) * cfg.dvfs.dynamic_factor();
    let nbanks = plan.total_banks().max(1);
    for die in &plan.dies {
        for b in &die.blocks {
            if matches!(b.id, BlockId::L2Bank { .. }) {
                map.add(b.id, l2_wire / nbanks as f64);
            }
        }
    }
    map.set(BlockId::L2Controller, Watts(0.3) + l2_wire * 0.02);
    if perf.model.has_checker() {
        // Repeaters and latches of the inter-core wires sit along the
        // route (§3): charge the endpoints and the fly-over region, not
        // a single block.
        map.add(BlockId::IntercoreBuffers, core_wire * 0.5);
        use rmt3d_power::CoreBlock;
        map.add(BlockId::Leader(CoreBlock::Lsq), core_wire * 0.2);
        map.add(BlockId::Leader(CoreBlock::RegfileInt), core_wire * 0.2);
        map.add(BlockId::Leader(CoreBlock::Bpred), core_wire * 0.1);
    }
    let interconnect = l2_wire + core_wire;
    l2_total += l2_wire;

    ChipPower {
        map,
        leader: leader_total,
        checker: checker_total,
        l2: l2_total,
        interconnect,
        wires,
    }
}

/// Replaces the checker power in an existing map (the Fig. 4 sweep
/// re-uses one simulated activity window across checker power values).
pub fn override_checker_power(chip: &mut ChipPower, power: Watts) {
    let old = chip.map.get(BlockId::Checker);
    chip.map.set(BlockId::Checker, power);
    chip.checker = power;
    let _ = old;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ProcessorModel, RunScale};
    use crate::simulate::{simulate, SimConfig};
    use rmt3d_workload::Benchmark;

    fn perf(model: ProcessorModel) -> PerfResult {
        simulate(
            &SimConfig::nominal(model, RunScale::quick()),
            Benchmark::Gzip,
        )
    }

    #[test]
    fn baseline_chip_power_is_in_band() {
        // 35 W core + ~3 W L2 array + ~5 W wires => ~40-50 W chip.
        let p = build_power_map(
            &perf(ProcessorModel::TwoDA),
            &PowerMapConfig::with_checker(CheckerPowerModel::optimistic_7w()),
        );
        let total = p.total().0;
        assert!((30.0..60.0).contains(&total), "2d-a total {total} W");
        assert_eq!(p.checker.0, 0.0, "2d-a has no checker");
    }

    #[test]
    fn checker_power_parameter_flows_through() {
        let r = perf(ProcessorModel::ThreeD2A);
        let p7 = build_power_map(
            &r,
            &PowerMapConfig::with_checker(CheckerPowerModel::optimistic_7w()),
        );
        let p15 = build_power_map(
            &r,
            &PowerMapConfig::with_checker(CheckerPowerModel::pessimistic_15w()),
        );
        assert!((p7.checker.0 - 7.0).abs() < 1e-9);
        assert!((p15.checker.0 - 15.0).abs() < 1e-9);
        assert!((p15.total() - p7.total()).0 > 7.9);
    }

    #[test]
    fn dfs_throttling_reduces_checker_draw() {
        let r = perf(ProcessorModel::ThreeD2A);
        let mut cfg = PowerMapConfig::with_checker(CheckerPowerModel::pessimistic_15w());
        cfg.throttle_checker_by_dfs = true;
        let p = build_power_map(&r, &cfg);
        assert!(
            p.checker.0 < 15.0,
            "DFS-throttled checker draws {} W",
            p.checker.0
        );
    }

    #[test]
    fn override_rewrites_only_checker() {
        let r = perf(ProcessorModel::ThreeD2A);
        let mut p = build_power_map(
            &r,
            &PowerMapConfig::with_checker(CheckerPowerModel::optimistic_7w()),
        );
        let before = p.total().0;
        override_checker_power(&mut p, Watts(25.0));
        assert!((p.total().0 - before - 18.0).abs() < 1e-9);
        assert_eq!(p.map.get(BlockId::Checker), Watts(25.0));
    }

    #[test]
    fn three_d_l2_spans_both_dies() {
        let p = build_power_map(
            &perf(ProcessorModel::ThreeD2A),
            &PowerMapConfig::with_checker(CheckerPowerModel::optimistic_7w()),
        );
        // Banks on die 1 must have power assigned.
        assert!(p.map.get(BlockId::L2Bank { die: 1, index: 0 }).0 > 0.0);
        assert!(p.l2.0 > 3.0, "15 banks of leakage+wires: {}", p.l2.0);
    }
}
