//! Chrome/Perfetto `trace_event` export.
//!
//! [`TraceEventSink`] streams every [`Event`] as a record in the
//! standard [trace-event JSON format], so a run's `.trace.json` loads
//! directly in `ui.perfetto.dev` or `chrome://tracing`. Timestamps are
//! the leader cycle interpreted as microseconds — no wall clock is ever
//! read, so two identical runs produce byte-identical traces.
//!
//! Track layout (one process, four threads):
//! - tid 1 `leader`: counter samples and fault/recovery instants
//! - tid 2 `checker`: counter series whose name starts with `checker`
//! - tid 3 `driver`: phase spans (`warmup`, `measure`, …), sweep-job
//!   and campaign instants, thermal-solver residuals
//! - tid 4 `daemon`: job-lifecycle spans from `rmt3d serve`, rendered
//!   as *async* events (`"ph":"b"`/`"e"`, `"cat":"job"`, `"id"` = job
//!   sequence) so overlapping jobs each get their own nested lane
//!
//! [trace-event JSON format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! The sink is clonable (clones share the writer) and finalizes the
//! JSON document exactly once: call [`TraceEventSink::finish`] to close
//! the array and surface I/O errors, or rely on the drop guard, which
//! best-effort terminates the document when the last clone goes away —
//! an early CLI error path still leaves a parseable trace behind.

use crate::json::JsonObject;
use crate::sink::Sink;
use crate::Event;
use std::cell::RefCell;
use std::io::{self, Write};
use std::rc::Rc;

const PID: u64 = 1;
const TID_LEADER: u64 = 1;
const TID_CHECKER: u64 = 2;
const TID_DRIVER: u64 = 3;
const TID_DAEMON: u64 = 4;

/// Streams events in Chrome/Perfetto `trace_event` JSON format.
#[derive(Debug)]
pub struct TraceEventSink<W: Write> {
    state: Rc<RefCell<TraceState<W>>>,
}

// Manual impl: clones share the writer through the `Rc`, so `W` does
// not need to be `Clone` (mirrors `JsonlSink`).
impl<W: Write> Clone for TraceEventSink<W> {
    fn clone(&self) -> Self {
        TraceEventSink {
            state: Rc::clone(&self.state),
        }
    }
}

#[derive(Debug)]
struct TraceState<W: Write> {
    out: W,
    first: bool,
    finished: bool,
    error: Option<io::Error>,
}

impl<W: Write> TraceState<W> {
    fn write_record(&mut self, json: &str) {
        let sep: &[u8] = if self.first { b"\n" } else { b",\n" };
        self.first = false;
        let r = self
            .out
            .write_all(sep)
            .and_then(|()| self.out.write_all(json.as_bytes()));
        if let Err(e) = r {
            self.note_error(e);
        }
    }

    fn terminate(&mut self) -> io::Result<()> {
        if !self.finished {
            self.finished = true;
            self.out.write_all(b"\n]}\n")?;
            self.out.flush()?;
        }
        Ok(())
    }

    fn note_error(&mut self, e: io::Error) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }
}

impl<W: Write> Drop for TraceState<W> {
    fn drop(&mut self) {
        // Best-effort: a sink dropped without `finish()` (early-return
        // error path) still leaves a complete JSON document behind.
        let _ = self.terminate();
    }
}

impl<W: Write> TraceEventSink<W> {
    /// Wraps a writer and emits the document header plus the
    /// process/thread-name metadata records.
    pub fn new(out: W) -> Self {
        let sink = TraceEventSink {
            state: Rc::new(RefCell::new(TraceState {
                out,
                first: true,
                finished: false,
                error: None,
            })),
        };
        {
            let mut st = sink.state.borrow_mut();
            if let Err(e) = st.out.write_all(b"{\"traceEvents\":[") {
                st.note_error(e);
            }
            let meta = [
                (0, "process_name", "rmt3d"),
                (TID_LEADER, "thread_name", "leader"),
                (TID_CHECKER, "thread_name", "checker"),
                (TID_DRIVER, "thread_name", "driver"),
                (TID_DAEMON, "thread_name", "daemon"),
            ];
            for (tid, kind, name) in meta {
                let mut args = JsonObject::new();
                args.str("name", name);
                let mut o = JsonObject::new();
                o.str("name", kind).str("ph", "M").u64("pid", PID);
                if tid != 0 {
                    o.u64("tid", tid);
                }
                o.raw("args", &args.finish());
                st.write_record(&o.finish());
            }
        }
        sink
    }

    /// Closes the `traceEvents` array, flushes, and surfaces the first
    /// I/O error hit while streaming, if any. Idempotent; the drop
    /// guard covers paths that never get here.
    pub fn finish(&mut self) -> io::Result<()> {
        let mut st = self.state.borrow_mut();
        if let Err(e) = st.terminate() {
            st.note_error(e);
        }
        match st.error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn record_event(&mut self, event: &Event) {
        match event {
            Event::SpanBegin { name, cycle } => {
                self.span(name, "B", *cycle);
            }
            Event::SpanEnd { name, cycle, .. } => {
                // Wall-clock nanos are dropped: trace output must stay
                // byte-identical across runs.
                self.span(name, "E", *cycle);
            }
            Event::Counter { name, cycle, value } => {
                self.counter(name, *cycle, &[("value", *value)]);
            }
            Event::DfsTransition {
                cycle,
                to_level,
                fraction,
                ..
            } => {
                self.counter(
                    "checker_frequency",
                    *cycle,
                    &[("fraction", *fraction), ("level", f64::from(*to_level))],
                );
            }
            Event::FaultInjected {
                cycle,
                site,
                bit,
                corrected,
            } => {
                let mut args = JsonObject::new();
                args.str("site", site)
                    .u64("bit", u64::from(*bit))
                    .bool("corrected", *corrected);
                self.instant("fault", *cycle, TID_LEADER, &args.finish());
            }
            Event::Recovery {
                cycle,
                penalty_cycles,
                unrecoverable,
            } => {
                let mut args = JsonObject::new();
                args.u64("penalty_cycles", *penalty_cycles)
                    .bool("unrecoverable", *unrecoverable);
                self.instant("recovery", *cycle, TID_LEADER, &args.finish());
            }
            Event::SolverIteration {
                iteration,
                residual,
            } => {
                self.counter("solver_residual", *iteration, &[("kelvin", *residual)]);
            }
            Event::Interval(s) => {
                self.counter("ipc", s.cycle, &[("value", s.ipc)]);
                self.counter(
                    "slack_queues",
                    s.cycle,
                    &[
                        ("rvq", f64::from(s.rvq)),
                        ("lvq", f64::from(s.lvq)),
                        ("boq", f64::from(s.boq)),
                        ("stb", f64::from(s.stb)),
                    ],
                );
                self.counter(
                    "leader_occupancy",
                    s.cycle,
                    &[
                        ("rob", f64::from(s.rob)),
                        ("iq_int", f64::from(s.iq_int)),
                        ("iq_fp", f64::from(s.iq_fp)),
                        ("lsq", f64::from(s.lsq)),
                    ],
                );
                self.counter(
                    "checker_fraction",
                    s.cycle,
                    &[("value", s.checker_fraction)],
                );
            }
            Event::JobStarted { job, total, label } => {
                let mut args = JsonObject::new();
                args.u64("job", *job)
                    .u64("total", *total)
                    .str("label", label);
                self.instant("job_started", *job, TID_DRIVER, &args.finish());
            }
            Event::JobFinished { job, total, ok, .. } => {
                let mut args = JsonObject::new();
                args.u64("job", *job).u64("total", *total).bool("ok", *ok);
                self.instant("job_finished", *job, TID_DRIVER, &args.finish());
            }
            Event::JobCacheHit { job, total, label } => {
                let mut args = JsonObject::new();
                args.u64("job", *job)
                    .u64("total", *total)
                    .str("label", label);
                self.instant("job_cache_hit", *job, TID_DRIVER, &args.finish());
            }
            Event::PoolStats {
                workers,
                executed,
                cache_hits,
                failed,
                ..
            } => {
                // Wall-clock and schedule-dependent fields are dropped:
                // trace output must stay byte-identical across runs.
                let mut args = JsonObject::new();
                args.u64("workers", *workers)
                    .u64("executed", *executed)
                    .u64("cache_hits", *cache_hits)
                    .u64("failed", *failed);
                self.instant("pool_stats", 0, TID_DRIVER, &args.finish());
            }
            Event::CacheStats {
                hits,
                misses,
                verify_failures,
                entries,
                bytes,
            } => {
                let mut args = JsonObject::new();
                args.u64("hits", *hits)
                    .u64("misses", *misses)
                    .u64("verify_failures", *verify_failures)
                    .u64("entries", *entries)
                    .u64("bytes", *bytes);
                self.instant("cache_stats", 0, TID_DRIVER, &args.finish());
            }
            Event::JobStalled {
                job, total, label, ..
            } => {
                let mut args = JsonObject::new();
                args.u64("job", *job)
                    .u64("total", *total)
                    .str("label", label);
                self.instant("job_stalled", *job, TID_DRIVER, &args.finish());
            }
            Event::JobSpanBegin { job, phase, ts } => {
                self.async_span(phase, "b", *job, *ts);
            }
            Event::JobSpanEnd { job, phase, ts, .. } => {
                // Wall-clock nanos are dropped: trace output must stay
                // byte-identical across runs.
                self.async_span(phase, "e", *job, *ts);
            }
            Event::CampaignTrial {
                trial,
                site,
                fate,
                detect_cycles,
                ok,
            } => {
                let mut args = JsonObject::new();
                args.str("site", site)
                    .str("fate", fate)
                    .u64("detect_cycles", *detect_cycles)
                    .bool("ok", *ok);
                self.instant("campaign_trial", *trial, TID_DRIVER, &args.finish());
            }
        }
    }

    /// Re-renders an event decoded from a JSONL file. This is how
    /// `rmt3d trace-report --chrome-out` turns a daemon's raw event log
    /// into a Chrome/Perfetto trace offline: the daemon (multi-threaded,
    /// so it cannot hold this `Rc`-based sink) appends codec lines, and
    /// the converter replays them through the same rendering used for
    /// live events. Lifecycle and counter events render exactly as
    /// their in-memory counterparts; the trailing `summary` line has no
    /// trace representation and is skipped.
    pub fn record_parsed(&mut self, event: &crate::ParsedEvent) {
        use crate::ParsedEvent as P;
        match event {
            P::SpanBegin { name, cycle } => self.span(name, "B", *cycle),
            P::SpanEnd { name, cycle, .. } => self.span(name, "E", *cycle),
            P::Counter { name, cycle, value } => self.counter(name, *cycle, &[("value", *value)]),
            P::DfsTransition {
                cycle,
                to_level,
                fraction,
                ..
            } => self.counter(
                "checker_frequency",
                *cycle,
                &[("fraction", *fraction), ("level", f64::from(*to_level))],
            ),
            P::FaultInjected {
                cycle,
                site,
                bit,
                corrected,
            } => {
                let mut args = JsonObject::new();
                args.str("site", site)
                    .u64("bit", u64::from(*bit))
                    .bool("corrected", *corrected);
                self.instant("fault", *cycle, TID_LEADER, &args.finish());
            }
            P::Recovery {
                cycle,
                penalty_cycles,
                unrecoverable,
            } => {
                let mut args = JsonObject::new();
                args.u64("penalty_cycles", *penalty_cycles)
                    .bool("unrecoverable", *unrecoverable);
                self.instant("recovery", *cycle, TID_LEADER, &args.finish());
            }
            P::SolverIteration {
                iteration,
                residual,
            } => self.counter("solver_residual", *iteration, &[("kelvin", *residual)]),
            P::Interval(s) => self.record_event(&Event::Interval(*s)),
            P::JobStarted { job, total, label } => {
                let mut args = JsonObject::new();
                args.u64("job", *job)
                    .u64("total", *total)
                    .str("label", label);
                self.instant("job_started", *job, TID_DRIVER, &args.finish());
            }
            P::JobFinished { job, total, ok, .. } => {
                let mut args = JsonObject::new();
                args.u64("job", *job).u64("total", *total).bool("ok", *ok);
                self.instant("job_finished", *job, TID_DRIVER, &args.finish());
            }
            P::JobCacheHit { job, total, label } => {
                let mut args = JsonObject::new();
                args.u64("job", *job)
                    .u64("total", *total)
                    .str("label", label);
                self.instant("job_cache_hit", *job, TID_DRIVER, &args.finish());
            }
            P::PoolStats {
                workers,
                executed,
                cache_hits,
                failed,
                ..
            } => {
                let mut args = JsonObject::new();
                args.u64("workers", *workers)
                    .u64("executed", *executed)
                    .u64("cache_hits", *cache_hits)
                    .u64("failed", *failed);
                self.instant("pool_stats", 0, TID_DRIVER, &args.finish());
            }
            P::CacheStats {
                hits,
                misses,
                verify_failures,
                entries,
                bytes,
            } => {
                let mut args = JsonObject::new();
                args.u64("hits", *hits)
                    .u64("misses", *misses)
                    .u64("verify_failures", *verify_failures)
                    .u64("entries", *entries)
                    .u64("bytes", *bytes);
                self.instant("cache_stats", 0, TID_DRIVER, &args.finish());
            }
            P::JobStalled {
                job, total, label, ..
            } => {
                let mut args = JsonObject::new();
                args.u64("job", *job)
                    .u64("total", *total)
                    .str("label", label);
                self.instant("job_stalled", *job, TID_DRIVER, &args.finish());
            }
            P::JobSpanBegin { job, phase, ts } => self.async_span(phase, "b", *job, *ts),
            P::JobSpanEnd { job, phase, ts, .. } => self.async_span(phase, "e", *job, *ts),
            P::CampaignTrial {
                trial,
                site,
                fate,
                detect_cycles,
                ok,
            } => {
                let mut args = JsonObject::new();
                args.str("site", site)
                    .str("fate", fate)
                    .u64("detect_cycles", *detect_cycles)
                    .bool("ok", *ok);
                self.instant("campaign_trial", *trial, TID_DRIVER, &args.finish());
            }
            P::Summary => {}
        }
    }

    fn span(&mut self, name: &str, ph: &str, ts: u64) {
        let mut o = JsonObject::new();
        o.str("name", name)
            .str("ph", ph)
            .str("cat", "phase")
            .u64("ts", ts)
            .u64("pid", PID)
            .u64("tid", TID_DRIVER);
        self.state.borrow_mut().write_record(&o.finish());
    }

    fn counter(&mut self, name: &str, ts: u64, values: &[(&str, f64)]) {
        let tid = if name.starts_with("checker") || name.starts_with("cpi_checker") {
            TID_CHECKER
        } else {
            TID_LEADER
        };
        let mut args = JsonObject::new();
        for (key, value) in values {
            args.f64(key, *value);
        }
        let mut o = JsonObject::new();
        o.str("name", name)
            .str("ph", "C")
            .u64("ts", ts)
            .u64("pid", PID)
            .u64("tid", tid)
            .raw("args", &args.finish());
        self.state.borrow_mut().write_record(&o.finish());
    }

    /// One half of a Chrome *async* span: grouped by `"cat"` + `"id"`
    /// (the daemon job sequence) rather than thread stack order, so
    /// spans of concurrently-queued jobs nest per job instead of
    /// corrupting one shared B/E stack.
    fn async_span(&mut self, name: &str, ph: &str, id: u64, ts: u64) {
        let mut o = JsonObject::new();
        o.str("name", name)
            .str("ph", ph)
            .str("cat", "job")
            .str("id", &format!("0x{id:x}"))
            .u64("ts", ts)
            .u64("pid", PID)
            .u64("tid", TID_DAEMON);
        self.state.borrow_mut().write_record(&o.finish());
    }

    fn instant(&mut self, name: &str, ts: u64, tid: u64, args: &str) {
        let mut o = JsonObject::new();
        o.str("name", name)
            .str("ph", "i")
            .str("s", "t")
            .u64("ts", ts)
            .u64("pid", PID)
            .u64("tid", tid)
            .raw("args", args);
        self.state.borrow_mut().write_record(&o.finish());
    }
}

impl<W: Write> Sink for TraceEventSink<W> {
    fn record(&mut self, event: &Event) {
        self.record_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};
    use crate::sample::IntervalSample;

    /// Shared byte buffer that outlives the sink, so tests can inspect
    /// output written by the drop guard.
    #[derive(Clone, Default)]
    struct SharedBuf(Rc<RefCell<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.borrow_mut().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn drive(sink: &mut TraceEventSink<SharedBuf>) {
        sink.record(&Event::SpanBegin {
            name: "measure",
            cycle: 0,
        });
        sink.record(&Event::Counter {
            name: "leader_commit_stall",
            cycle: 10,
            value: 1.0,
        });
        sink.record(&Event::Interval(IntervalSample {
            index: 0,
            cycle: 100,
            ipc: 1.25,
            rvq: 12,
            ..IntervalSample::default()
        }));
        sink.record(&Event::DfsTransition {
            cycle: 150,
            from_level: 4,
            to_level: 5,
            fraction: 0.6,
        });
        sink.record(&Event::FaultInjected {
            cycle: 180,
            site: "rvq_operand",
            bit: 3,
            corrected: false,
        });
        sink.record(&Event::SpanEnd {
            name: "measure",
            cycle: 200,
            wall_nanos: 123_456,
        });
    }

    fn trace_events(text: &str) -> Vec<JsonValue> {
        let doc = parse(text).unwrap_or_else(|e| panic!("invalid trace JSON: {e}\n{text}"));
        match doc.get("traceEvents") {
            Some(JsonValue::Arr(events)) => events.clone(),
            other => panic!("traceEvents missing or not an array: {other:?}"),
        }
    }

    #[test]
    fn finished_trace_is_valid_and_tracked() {
        let buf = SharedBuf::default();
        let mut sink = TraceEventSink::new(buf.clone());
        drive(&mut sink);
        sink.finish().unwrap();
        let text = String::from_utf8(buf.0.borrow().clone()).unwrap();
        let events = trace_events(&text);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(JsonValue::as_str))
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 5);
        assert_eq!(phases.iter().filter(|p| **p == "B").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "E").count(), 1);
        assert!(phases.iter().filter(|p| **p == "C").count() >= 5);
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 1);
        // The checker_frequency counter lands on the checker track.
        let dfs = events
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("checker_frequency"))
            .unwrap();
        assert_eq!(dfs.get("tid").unwrap().as_u64(), Some(2));
        assert_eq!(
            dfs.get("args").unwrap().get("fraction").unwrap().as_f64(),
            Some(0.6)
        );
        // Wall-clock fields never reach the trace.
        assert!(!text.contains("wall_nanos"));
    }

    #[test]
    fn identical_runs_are_byte_identical() {
        let render = || {
            let buf = SharedBuf::default();
            let mut sink = TraceEventSink::new(buf.clone());
            drive(&mut sink);
            sink.finish().unwrap();
            let bytes = buf.0.borrow().clone();
            bytes
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn drop_without_finish_still_terminates_the_document() {
        let buf = SharedBuf::default();
        {
            let sink = TraceEventSink::new(buf.clone());
            let mut clone = sink.clone();
            drive(&mut clone);
            // Both clones dropped here without finish(): simulates a CLI
            // error path bailing early.
        }
        let text = String::from_utf8(buf.0.borrow().clone()).unwrap();
        assert!(text.ends_with("]}\n"));
        assert!(!trace_events(&text).is_empty());
    }

    #[test]
    fn finish_is_idempotent_and_single_terminator() {
        let buf = SharedBuf::default();
        let mut sink = TraceEventSink::new(buf.clone());
        let mut clone = sink.clone();
        drive(&mut clone);
        sink.finish().unwrap();
        sink.finish().unwrap();
        drop(clone);
        drop(sink);
        let text = String::from_utf8(buf.0.borrow().clone()).unwrap();
        assert_eq!(text.matches("]}").count(), 1);
        trace_events(&text);
    }

    #[test]
    fn empty_trace_is_valid() {
        let buf = SharedBuf::default();
        TraceEventSink::new(buf.clone()).finish().unwrap();
        let text = String::from_utf8(buf.0.borrow().clone()).unwrap();
        assert_eq!(trace_events(&text).len(), 5, "metadata records only");
    }

    #[test]
    fn job_spans_render_as_async_events_keyed_by_job() {
        let buf = SharedBuf::default();
        let mut sink = TraceEventSink::new(buf.clone());
        // Two jobs with interleaved queued phases: a same-tid B/E stack
        // would mis-nest these; async ids keep them separate.
        sink.record(&Event::JobSpanBegin {
            job: 1,
            phase: "queued",
            ts: 10,
        });
        sink.record(&Event::JobSpanBegin {
            job: 2,
            phase: "queued",
            ts: 11,
        });
        sink.record(&Event::JobSpanEnd {
            job: 1,
            phase: "queued",
            ts: 20,
            wall_nanos: 99,
        });
        sink.record(&Event::JobSpanEnd {
            job: 2,
            phase: "queued",
            ts: 30,
            wall_nanos: 77,
        });
        sink.finish().unwrap();
        let text = String::from_utf8(buf.0.borrow().clone()).unwrap();
        let events = trace_events(&text);
        let spans: Vec<&JsonValue> = events
            .iter()
            .filter(|e| e.get("cat").and_then(JsonValue::as_str) == Some("job"))
            .collect();
        assert_eq!(spans.len(), 4);
        for span in &spans {
            let ph = span.get("ph").and_then(JsonValue::as_str).unwrap();
            assert!(ph == "b" || ph == "e", "async phases only, got {ph}");
            assert!(span.get("id").and_then(JsonValue::as_str).is_some());
            assert_eq!(span.get("tid").unwrap().as_u64(), Some(TID_DAEMON));
        }
        assert_eq!(spans[0].get("id").and_then(JsonValue::as_str), Some("0x1"));
        assert_eq!(spans[1].get("id").and_then(JsonValue::as_str), Some("0x2"));
        // Wall-clock fields never reach the trace.
        assert!(!text.contains("wall_nanos"));
    }

    #[test]
    fn record_parsed_matches_live_rendering() {
        // The offline converter (trace-report --chrome-out) must render
        // a decoded JSONL stream byte-identically to the live sink.
        let events = Event::examples();
        let live = {
            let buf = SharedBuf::default();
            let mut sink = TraceEventSink::new(buf.clone());
            for e in &events {
                sink.record(e);
            }
            sink.finish().unwrap();
            let bytes = buf.0.borrow().clone();
            bytes
        };
        let replayed = {
            let buf = SharedBuf::default();
            let mut sink = TraceEventSink::new(buf.clone());
            for e in &events {
                let parsed = crate::ParsedEvent::from_json_line(&e.to_json_line(false)).unwrap();
                sink.record_parsed(&parsed);
            }
            sink.finish().unwrap();
            let bytes = buf.0.borrow().clone();
            bytes
        };
        assert_eq!(live, replayed);
    }
}
