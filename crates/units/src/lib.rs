//! Typed physical quantities for the `rmt3d` simulator family.
//!
//! Every crate in the workspace exchanges power, temperature, geometry and
//! timing values. Raw `f64`s invite unit mistakes (milliwatts vs. watts,
//! Celsius vs. Kelvin), so this crate provides thin newtypes with the
//! arithmetic that is physically meaningful and nothing more
//! (C-NEWTYPE / C-CUSTOM-TYPE).
//!
//! # Examples
//!
//! ```
//! use rmt3d_units::{Watts, Celsius, SquareMillimeters};
//!
//! let core = Watts(35.0);
//! let cache = Watts(3.5);
//! let total = core + cache;
//! assert_eq!(total, Watts(38.5));
//!
//! let density = total / SquareMillimeters(19.6);
//! assert!(density.watts_per_mm2() > 1.9);
//!
//! let t = Celsius(47.0) + rmt3d_units::DegreesDelta(4.5);
//! assert_eq!(t, Celsius(51.5));
//! ```

mod quantity;
mod tech;
mod time;

pub use quantity::{
    Celsius, DegreesDelta, Joules, Kelvin, Micrometers, Millimeters, Nanometers, PowerDensity,
    SquareMillimeters, Watts,
};
pub use tech::TechNode;
pub use time::{Cycles, Gigahertz, NormalizedFrequency, Picoseconds, Seconds};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_module_composition() {
        // Energy = power x time.
        let e = Watts(2.0) * Seconds(3.0);
        assert_eq!(e, Joules(6.0));
        // Cycle time of a 2 GHz clock is 500 ps.
        let ct = Gigahertz(2.0).cycle_time();
        assert!((ct.0 - 500.0).abs() < 1e-9);
    }
}
