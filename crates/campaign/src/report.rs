//! Campaign aggregation: coverage counts, detection-latency
//! percentiles, and the JSONL report.

use crate::trial::{TrialFate, TrialResult, TrialSpec};
use rmt3d_rmt::FaultSite;
use rmt3d_telemetry::json::JsonObject;

/// One trial's spec and outcome (a panicking trial carries the panic
/// message instead of a result).
#[derive(Debug, Clone)]
pub struct TrialRecord {
    /// What ran.
    pub spec: TrialSpec,
    /// What happened.
    pub outcome: Result<TrialResult, String>,
}

impl TrialRecord {
    /// True when the trial ran and satisfied the coverage invariant.
    pub fn ok(&self) -> bool {
        self.outcome.as_ref().is_ok_and(TrialResult::ok)
    }
}

/// Running fate tallies accumulated in completion order — the payload
/// of the journal's `checkpoint` lines and the engine's cheap
/// aggregation cross-check during resume.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Strikes absorbed by ECC.
    pub corrected: u64,
    /// Strikes detected by the checker and recovered.
    pub detected: u64,
    /// Strikes that never reached an architectural comparison.
    pub masked: u64,
    /// Trials whose injector never found a target op.
    pub not_injected: u64,
    /// Coverage-invariant breaches.
    pub violations: u64,
    /// Trials that panicked.
    pub failed: u64,
}

impl Tally {
    /// Folds one trial outcome in.
    pub fn add(&mut self, outcome: &Result<TrialResult, String>) {
        match outcome {
            Err(_) => self.failed += 1,
            Ok(t) => {
                match t.fate {
                    TrialFate::CorrectedByEcc => self.corrected += 1,
                    TrialFate::DetectedRecovered => self.detected += 1,
                    TrialFate::MaskedHarmless => self.masked += 1,
                    TrialFate::NotInjected => self.not_injected += 1,
                }
                if t.violation.is_some() {
                    self.violations += 1;
                }
            }
        }
    }

    /// Outcomes folded in so far.
    pub fn total(&self) -> u64 {
        self.corrected + self.detected + self.masked + self.not_injected + self.failed
    }
}

/// Detection-latency distribution (leader cycles from strike to the
/// checker flagging it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Detected trials contributing samples.
    pub samples: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst observed.
    pub max: u64,
}

impl LatencyStats {
    /// Nearest-rank percentiles over the given latency samples.
    pub fn from_samples(mut samples: Vec<u64>) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let rank = |pct: usize| samples[(pct * (n - 1) + 50) / 100];
        LatencyStats {
            samples: n as u64,
            p50: rank(50),
            p90: rank(90),
            p99: rank(99),
            max: samples[n - 1],
        }
    }
}

/// Coverage tallies for one fault site.
#[derive(Debug, Clone)]
pub struct SiteSummary {
    /// The site.
    pub site: FaultSite,
    /// Trials run at this site.
    pub trials: u64,
    /// Strikes absorbed by ECC.
    pub corrected: u64,
    /// Strikes detected by the checker and recovered.
    pub detected: u64,
    /// Strikes that never reached an architectural comparison.
    pub masked: u64,
    /// Coverage-invariant breaches.
    pub violations: u64,
    /// Trials that panicked (harness failures, not coverage results).
    pub failed: u64,
    /// Detection-latency distribution over detected strikes.
    pub latency: LatencyStats,
}

/// The aggregated outcome of a campaign, in grid order.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// One record per trial, independent of worker count.
    pub records: Vec<TrialRecord>,
}

impl CampaignReport {
    /// Records that breached the invariant or panicked.
    pub fn violations(&self) -> Vec<&TrialRecord> {
        self.records.iter().filter(|r| !r.ok()).collect()
    }

    /// True when every trial injected, classified, and satisfied the
    /// invariant — the paper's coverage claim at campaign scale.
    pub fn full_coverage(&self) -> bool {
        self.records.iter().all(TrialRecord::ok)
    }

    /// Per-site tallies, in [`FaultSite::ALL`] order (sites with no
    /// trials are omitted).
    pub fn site_summaries(&self) -> Vec<SiteSummary> {
        FaultSite::ALL
            .into_iter()
            .filter_map(|site| {
                let recs: Vec<&TrialRecord> = self
                    .records
                    .iter()
                    .filter(|r| r.spec.site == site)
                    .collect();
                if recs.is_empty() {
                    return None;
                }
                let mut s = SiteSummary {
                    site,
                    trials: recs.len() as u64,
                    corrected: 0,
                    detected: 0,
                    masked: 0,
                    violations: 0,
                    failed: 0,
                    latency: LatencyStats::default(),
                };
                let mut latencies = Vec::new();
                for r in recs {
                    match &r.outcome {
                        Err(_) => s.failed += 1,
                        Ok(t) => {
                            match t.fate {
                                TrialFate::CorrectedByEcc => s.corrected += 1,
                                TrialFate::DetectedRecovered => {
                                    s.detected += 1;
                                    latencies.push(t.detect_cycles);
                                }
                                TrialFate::MaskedHarmless => s.masked += 1,
                                TrialFate::NotInjected => {}
                            }
                            if t.violation.is_some() {
                                s.violations += 1;
                            }
                        }
                    }
                }
                s.latency = LatencyStats::from_samples(latencies);
                Some(s)
            })
            .collect()
    }

    /// The full JSONL report: one `trial` line per record in grid
    /// order, one `site_summary` line per site, and a closing
    /// `campaign_summary` line. Contains no wall-clock fields, so
    /// parallel and serial runs of the same spec produce byte-identical
    /// reports.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let mut o = JsonObject::new();
            o.str("event", "trial")
                .u64("trial", r.spec.index as u64)
                .str("site", r.spec.site.name())
                .str("benchmark", r.spec.benchmark.name())
                .u64("inject_at", r.spec.inject_at)
                .u64("bit", u64::from(r.spec.bit))
                .u64("reg", u64::from(r.spec.reg));
            match &r.outcome {
                Ok(t) => {
                    o.str("fate", t.fate.name())
                        .bool("ok", t.ok())
                        .u64("detect_cycles", t.detect_cycles)
                        .u64("recoveries", t.recoveries);
                    if let Some(v) = t.violation {
                        o.str("violation", v.name());
                    }
                }
                Err(e) => {
                    o.str("fate", "panicked").bool("ok", false).str("error", e);
                }
            }
            out.push_str(&o.finish());
            out.push('\n');
        }
        for s in self.site_summaries() {
            let mut o = JsonObject::new();
            o.str("event", "site_summary")
                .str("site", s.site.name())
                .u64("trials", s.trials)
                .u64("corrected", s.corrected)
                .u64("detected", s.detected)
                .u64("masked", s.masked)
                .u64("violations", s.violations)
                .u64("failed", s.failed)
                .u64("latency_samples", s.latency.samples)
                .u64("latency_p50", s.latency.p50)
                .u64("latency_p90", s.latency.p90)
                .u64("latency_p99", s.latency.p99)
                .u64("latency_max", s.latency.max);
            out.push_str(&o.finish());
            out.push('\n');
        }
        let violations = self.violations().len() as u64;
        let mut o = JsonObject::new();
        o.str("event", "campaign_summary")
            .u64("trials", self.records.len() as u64)
            .u64("violations", violations)
            .bool("full_coverage", self.full_coverage());
        out.push_str(&o.finish());
        out.push('\n');
        out
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let sites = self.site_summaries();
        let corrected: u64 = sites.iter().map(|s| s.corrected).sum();
        let detected: u64 = sites.iter().map(|s| s.detected).sum();
        let masked: u64 = sites.iter().map(|s| s.masked).sum();
        let violations = self.violations().len();
        format!(
            "{} trials: corrected {}, detected {}, masked {}, violations {} — coverage {}",
            self.records.len(),
            corrected,
            detected,
            masked,
            violations,
            if self.full_coverage() {
                "100%"
            } else {
                "BROKEN"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::Violation;
    use rmt3d_rmt::EccConfig;
    use rmt3d_workload::Benchmark;

    fn record(site: FaultSite, fate: TrialFate, violation: Option<Violation>) -> TrialRecord {
        TrialRecord {
            spec: TrialSpec {
                index: 0,
                site,
                benchmark: Benchmark::Gzip,
                ecc: EccConfig::paper(),
                instructions: 8_000,
                inject_at: 2_000,
                bit: 1,
                reg: 1,
            },
            outcome: Ok(TrialResult {
                fate,
                violation,
                detect_cycles: 100,
                detections: 1,
                recoveries: 1,
                committed: 8_000,
            }),
        }
    }

    #[test]
    fn latency_percentiles_are_nearest_rank() {
        let stats = LatencyStats::from_samples((1..=100).collect());
        assert_eq!(stats.samples, 100);
        assert_eq!(stats.p50, 51);
        assert_eq!(stats.p90, 90);
        assert_eq!(stats.p99, 99);
        assert_eq!(stats.max, 100);
        assert_eq!(LatencyStats::from_samples(vec![]), LatencyStats::default());
        let one = LatencyStats::from_samples(vec![7]);
        assert_eq!((one.p50, one.p99, one.max), (7, 7, 7));
    }

    #[test]
    fn report_tallies_fates_per_site() {
        let report = CampaignReport {
            records: vec![
                record(FaultSite::LeaderResult, TrialFate::DetectedRecovered, None),
                record(FaultSite::LeaderResult, TrialFate::DetectedRecovered, None),
                record(FaultSite::LvqValue, TrialFate::CorrectedByEcc, None),
                record(FaultSite::BoqOutcome, TrialFate::MaskedHarmless, None),
            ],
        };
        assert!(report.full_coverage());
        let sites = report.site_summaries();
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].site, FaultSite::LeaderResult);
        assert_eq!(sites[0].detected, 2);
        assert_eq!(sites[0].latency.samples, 2);
        assert!(report.summary().contains("coverage 100%"));
    }

    #[test]
    fn violations_break_coverage_and_show_in_jsonl() {
        let report = CampaignReport {
            records: vec![
                record(FaultSite::LeaderResult, TrialFate::DetectedRecovered, None),
                record(
                    FaultSite::TrailerRegfile,
                    TrialFate::DetectedRecovered,
                    Some(Violation::UnrecoverableRecovery),
                ),
            ],
        };
        assert!(!report.full_coverage());
        assert_eq!(report.violations().len(), 1);
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains(r#""violation":"unrecoverable_recovery""#));
        assert!(jsonl.contains(r#""full_coverage":false"#));
        assert!(report.summary().contains("BROKEN"));
    }

    #[test]
    fn panicked_trials_are_reported_not_hidden() {
        let mut r = record(FaultSite::RvqOperand, TrialFate::DetectedRecovered, None);
        r.outcome = Err("boom".to_string());
        let report = CampaignReport { records: vec![r] };
        assert!(!report.full_coverage());
        assert_eq!(report.site_summaries()[0].failed, 1);
        assert!(report.to_jsonl().contains(r#""fate":"panicked""#));
    }
}
