//! # rmt3d-obs
//!
//! Run-level observability for the rmt3d experiment engines: every
//! `sweep`/`campaign`/`profile` invocation becomes an inspectable,
//! durable *run* instead of a black box between launch and final
//! report.
//!
//! The crate has four pieces:
//!
//! 1. **Run ledger** ([`RunLedger`], [`Manifest`]): an append-only
//!    directory of runs. Each run gets `runs/<run_id>/manifest.json`
//!    (spec hash, version, config, start/end, outcome) plus an
//!    append-only `runs/ledger.jsonl` index and a `latest` pointer.
//! 2. **Live status** ([`RunObserver`], [`RunStatus`]): a telemetry
//!    [`Sink`](rmt3d_telemetry::Sink) that aggregates job lifecycle
//!    events (including the ETA stream the pool emits) into
//!    `status.json`, rewritten atomically (temp file + rename) at a
//!    bounded interval so concurrent readers always see a parseable
//!    document.
//! 3. **Heartbeat watchdog** ([`Watchdog`]): jobs beat on claim (and
//!    may beat mid-flight); a monitor loop scans at a bounded interval
//!    and flags jobs whose silence exceeds a configurable multiple of
//!    the median completed-job duration, recording stall diagnostics
//!    into the ledger instead of hanging silently.
//! 4. **Dashboard** ([`render_html`]): a single-file, dependency-free
//!    HTML report (progress, CPI stacks, latency histograms, cache
//!    hit-rate, worker timeline) built from ledger + metrics, so any
//!    finished run is inspectable offline.
//!
//! **Determinism contract.** Everything here lives behind the zero-cost
//! sink gate: `NullSink` runs never construct events and never touch
//! the ledger. Manifest and status content is deterministic modulo the
//! explicitly-marked wall-clock sections — every schedule- or
//! clock-dependent field lives under a `"wall"` object (or carries a
//! `*_nanos`/`*_unix_ms` name), and `run_id` embeds the start stamp.

pub mod daemonseries;
pub mod ledger;
pub mod metricsio;
pub mod report;
pub mod status;
pub mod watchdog;

pub use daemonseries::{DaemonSample, DaemonSeries};
pub use ledger::{Manifest, RunLedger, RunSummary};
pub use metricsio::{metrics_to_json, parse_metrics, HistogramData, ParsedMetrics, SeriesData};
pub use report::{render_html, render_html_with, ReportOptions};
pub use status::{CacheTotals, JobPhase, PoolTotals, RunObserver, RunStatus, StallInfo};
pub use watchdog::{Stall, Watchdog, WatchdogConfig};

/// FNV-1a 64-bit over a byte string: tiny, dependency-free, stable
/// across platforms and compiler versions. Used for run spec hashes
/// (the sweep cache uses its own copy for cache keys).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Folds an iterator of canonical job descriptions into one spec hash.
pub fn spec_hash<'a>(canonicals: impl Iterator<Item = &'a str>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for c in canonicals {
        hash ^= fnv1a(c.as_bytes());
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The version string recorded in run manifests: `git describe` when
/// the binary runs inside a git checkout, else the crate version.
pub fn version_string() -> String {
    let git = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output();
    match git {
        Ok(out) if out.status.success() => {
            let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if text.is_empty() {
                fallback_version()
            } else {
                format!("{}+g{text}", fallback_version())
            }
        }
        _ => fallback_version(),
    }
}

fn fallback_version() -> String {
    concat!("rmt3d/", env!("CARGO_PKG_VERSION")).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable() {
        // Published FNV-1a test vector: the empty string hashes to the
        // offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn spec_hash_depends_on_every_member_and_order() {
        let a = spec_hash(["x", "y"].into_iter());
        let b = spec_hash(["y", "x"].into_iter());
        let c = spec_hash(["x"].into_iter());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, spec_hash(["x", "y"].into_iter()));
    }

    #[test]
    fn version_string_is_nonempty() {
        assert!(version_string().starts_with("rmt3d/"));
    }
}
