//! On-disk content-addressed result cache.
//!
//! One file per job, named by the job's [`cache key`](crate::JobSpec::cache_key)
//! in hex, holding a single JSON line `{"key": <canonical>, "result": {…}}`.
//! The canonical configuration text is stored alongside the result and
//! re-verified on load, so a 64-bit hash collision degrades to a cache
//! miss instead of serving the wrong result. Writes go through a
//! temporary file and an atomic rename, so a sweep killed mid-write
//! leaves no partial entry and `--resume` picks up cleanly.

use crate::codec;
use crate::spec::JobSpec;
use rmt3d::PerfResult;
use rmt3d_telemetry::json::{parse, JsonValue};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// A directory of cached job results.
#[derive(Debug, Clone)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if necessary) a cache directory.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn open(dir: &Path) -> io::Result<ResultStore> {
        fs::create_dir_all(dir)?;
        Ok(ResultStore {
            dir: dir.to_path_buf(),
        })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for a job.
    pub fn entry_path(&self, job: &JobSpec) -> PathBuf {
        self.dir.join(format!("{:016x}.json", job.cache_key()))
    }

    /// Loads a cached result. Returns `None` on a missing entry, and
    /// treats corrupt, truncated, or colliding entries as misses (the
    /// job simply re-runs and overwrites them).
    pub fn load(&self, job: &JobSpec) -> Option<PerfResult> {
        let text = fs::read_to_string(self.entry_path(job)).ok()?;
        let v = parse(text.trim()).ok()?;
        let stored_key = v.get("key")?.as_str()?;
        if stored_key != job.canonical() {
            return None;
        }
        let result = v.get("result")?;
        codec::decode(&render(result)).ok()
    }

    /// Persists a job's result atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns the first I/O error hit while writing.
    pub fn save(&self, job: &JobSpec, result: &PerfResult) -> io::Result<()> {
        let final_path = self.entry_path(job);
        let tmp_path = final_path.with_extension(format!("tmp.{}", std::process::id()));
        let mut line = String::from("{\"key\":");
        write_json_str(&mut line, &job.canonical());
        line.push_str(",\"result\":");
        line.push_str(&codec::encode(result));
        line.push_str("}\n");
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(line.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)
    }

    /// Number of entries currently on disk (any `.json` file).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory is unreadable.
    pub fn len(&self) -> io::Result<usize> {
        let mut n = 0;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|e| e == "json") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// True when the store holds no entries.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory is unreadable.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

fn write_json_str(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Re-renders a parsed JSON subtree to text so the result decoder can
/// consume it. Only the shapes the codec emits (objects, arrays,
/// numbers, strings) need to round-trip.
fn render(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".into(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(n) => format!("{n}"),
        JsonValue::Str(s) => {
            let mut out = String::new();
            write_json_str(&mut out, s);
            out
        }
        JsonValue::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(","))
        }
        JsonValue::Obj(map) => {
            let inner: Vec<String> = map
                .iter()
                .map(|(k, val)| {
                    let mut key = String::new();
                    write_json_str(&mut key, k);
                    format!("{key}:{}", render(val))
                })
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepSpec;
    use rmt3d::{simulate, ProcessorModel, RunScale};
    use rmt3d_workload::Benchmark;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rmt3d-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn one_job() -> JobSpec {
        SweepSpec::new(
            &[ProcessorModel::TwoDA],
            &[Benchmark::Gzip],
            RunScale {
                warmup_instructions: 2_000,
                instructions: 20_000,
                thermal_grid: 25,
            },
        )
        .expand()
        .remove(0)
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmp("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        let job = one_job();
        assert!(store.load(&job).is_none(), "empty store misses");
        let r = simulate(&job.cfg, job.benchmark);
        store.save(&job, &r).unwrap();
        let back = store.load(&job).expect("hit after save");
        assert_eq!(codec::encode(&back), codec::encode(&r));
        assert_eq!(store.len().unwrap(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_mismatched_entries_miss() {
        let dir = tmp("corrupt");
        let store = ResultStore::open(&dir).unwrap();
        let job = one_job();
        let r = simulate(&job.cfg, job.benchmark);
        store.save(&job, &r).unwrap();

        // Truncate the entry: must degrade to a miss, not an error.
        let path = store.entry_path(&job);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(store.load(&job).is_none());

        // Same file name, different canonical key: collision guard.
        let fake = text.replace("|bench=gzip|", "|bench=mcf|");
        fs::write(&path, fake).unwrap();
        assert!(store.load(&job).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
