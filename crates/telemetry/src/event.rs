//! Typed telemetry events emitted by the simulation stack.
//!
//! Events are flat, owned values (no lifetimes, no foreign types) so
//! every layer of the workspace can emit them without the telemetry
//! crate depending on the simulators. The JSONL schema of each variant
//! is documented on the variant itself; see `DESIGN.md` ("Observability")
//! for the complete schema reference.

use crate::sample::IntervalSample;

/// One telemetry event. Each variant maps to one JSON Lines record with
/// an `"event"` discriminator field.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A named phase started. JSONL: `{"event":"span_begin","name":…,"cycle":…}`.
    SpanBegin {
        /// Phase name (`"simulate"`, `"warmup"`, `"measure"`, `"thermal_solve"`, …).
        name: &'static str,
        /// Leader cycle (or solver iteration) at entry.
        cycle: u64,
    },
    /// A named phase ended. JSONL:
    /// `{"event":"span_end","name":…,"cycle":…,"wall_nanos":…}`.
    SpanEnd {
        /// Phase name, matching the corresponding [`Event::SpanBegin`].
        name: &'static str,
        /// Leader cycle (or solver iteration) at exit.
        cycle: u64,
        /// Wall-clock nanoseconds spent inside the span (0 when the
        /// sink is configured deterministic).
        wall_nanos: u64,
    },
    /// A scalar counter sample. JSONL:
    /// `{"event":"counter","name":…,"cycle":…,"value":…}`.
    Counter {
        /// Series name.
        name: &'static str,
        /// Leader cycle at the sample.
        cycle: u64,
        /// Sampled value.
        value: f64,
    },
    /// The DFS controller moved the checker to a new frequency level.
    /// JSONL: `{"event":"dfs_transition","cycle":…,"from_level":…,
    /// "to_level":…,"fraction":…}`.
    DfsTransition {
        /// Leader cycle of the decision.
        cycle: u64,
        /// Previous level index (0-based, `(i+1)*0.1 f`).
        from_level: u8,
        /// New level index.
        to_level: u8,
        /// New normalized frequency.
        fraction: f64,
    },
    /// A transient fault was injected into the datapath. JSONL:
    /// `{"event":"fault","cycle":…,"site":…,"bit":…,"corrected":…}`.
    FaultInjected {
        /// Leader cycle of the strike.
        cycle: u64,
        /// Strike site name (see `rmt3d_rmt::FaultSite`).
        site: &'static str,
        /// Bit position flipped.
        bit: u8,
        /// True when ECC absorbed the strike before it propagated.
        corrected: bool,
    },
    /// The checker flagged an error and the system executed a recovery.
    /// JSONL: `{"event":"recovery","cycle":…,"penalty_cycles":…,
    /// "unrecoverable":…}`.
    Recovery {
        /// Leader cycle of the recovery.
        cycle: u64,
        /// Stall cycles charged.
        penalty_cycles: u64,
        /// True when the restored state disagreed with the golden
        /// shadow (the §3.5 multi-error concern).
        unrecoverable: bool,
    },
    /// One thermal-solver SOR iteration. JSONL:
    /// `{"event":"solver_iteration","iteration":…,"residual":…}`.
    SolverIteration {
        /// Iteration number (1-based).
        iteration: u64,
        /// Max-norm residual in kelvin.
        residual: f64,
    },
    /// A periodic snapshot of the machine state (see [`IntervalSample`]).
    /// JSONL: `{"event":"interval",…}` with the sample's fields inlined.
    Interval(IntervalSample),
    /// A sweep job began simulating (emitted by `rmt3d-sweep`; cache
    /// hits skip straight to [`Event::JobCacheHit`]). JSONL:
    /// `{"event":"job_started","job":…,"total":…,"label":…}`.
    JobStarted {
        /// Zero-based job index in spec order.
        job: u64,
        /// Total jobs in the sweep.
        total: u64,
        /// Human-readable job description (`"3d-2a/mcf"`).
        label: String,
    },
    /// A sweep job finished simulating. JSONL:
    /// `{"event":"job_finished","job":…,"total":…,"ok":…,
    /// "wall_nanos":…,"eta_nanos":…}`.
    JobFinished {
        /// Zero-based job index in spec order.
        job: u64,
        /// Total jobs in the sweep.
        total: u64,
        /// False when the job panicked and was isolated.
        ok: bool,
        /// Wall-clock nanoseconds the job spent simulating (0 when the
        /// sink is configured deterministic).
        wall_nanos: u64,
        /// Estimated nanoseconds until the sweep completes, from the
        /// mean executed-job wall time (0 when deterministic).
        eta_nanos: u64,
    },
    /// A sweep job was satisfied from the on-disk result cache without
    /// simulating. JSONL:
    /// `{"event":"job_cache_hit","job":…,"total":…,"label":…}`.
    JobCacheHit {
        /// Zero-based job index in spec order.
        job: u64,
        /// Total jobs in the sweep.
        total: u64,
        /// Human-readable job description.
        label: String,
    },
    /// Aggregate statistics of one pool drain (emitted by the
    /// `rmt3d-sweep` engine once, after the last job completes). The
    /// schedule-dependent fields (`steals`, `busy_nanos`, `idle_nanos`,
    /// `wall_nanos`) are written as 0 by deterministic sinks. JSONL:
    /// `{"event":"pool_stats","workers":…,"executed":…,"cache_hits":…,
    /// "failed":…,"steals":…,"busy_nanos":…,"idle_nanos":…,
    /// "wall_nanos":…}`.
    PoolStats {
        /// Worker threads the pool ran.
        workers: u64,
        /// Jobs that executed (not served by the cache probe).
        executed: u64,
        /// Jobs satisfied by the cache probe.
        cache_hits: u64,
        /// Executed jobs that panicked.
        failed: u64,
        /// Jobs claimed off another worker's static round-robin slot —
        /// a proxy for work-stealing imbalance (0 when deterministic).
        steals: u64,
        /// Total wall-clock nanoseconds workers spent executing jobs
        /// (0 when deterministic).
        busy_nanos: u64,
        /// Total wall-clock nanoseconds workers sat idle — pool wall
        /// time × workers minus busy (0 when deterministic).
        idle_nanos: u64,
        /// Wall-clock nanoseconds from pool start to drain (0 when
        /// deterministic).
        wall_nanos: u64,
    },
    /// Result-cache statistics for one sweep (emitted by the
    /// `rmt3d-sweep` engine after the pool drains, when a cache is
    /// attached). JSONL: `{"event":"cache_stats","hits":…,"misses":…,
    /// "verify_failures":…,"entries":…,"bytes":…}`.
    CacheStats {
        /// Probes served from the on-disk store.
        hits: u64,
        /// Probes that missed (including corrupt/colliding entries).
        misses: u64,
        /// Entries whose stored canonical key failed verification —
        /// corruption or a 64-bit hash collision, degraded to a miss.
        verify_failures: u64,
        /// Entries on disk after the run.
        entries: u64,
        /// Total bytes of all entries on disk after the run.
        bytes: u64,
    },
    /// The heartbeat watchdog flagged a job as stalled: no heartbeat
    /// for longer than the configured multiple of the median job
    /// duration. The job may still complete — this is a diagnostic,
    /// not a kill. JSONL: `{"event":"job_stalled","job":…,"total":…,
    /// "label":…,"elapsed_nanos":…,"median_nanos":…}`.
    JobStalled {
        /// Zero-based job index in spec order.
        job: u64,
        /// Total jobs in the run.
        total: u64,
        /// Human-readable job description.
        label: String,
        /// Wall-clock nanoseconds since the job's last heartbeat when
        /// it was flagged (0 when deterministic).
        elapsed_nanos: u64,
        /// Median wall-clock nanoseconds of completed jobs at flag
        /// time — the baseline the threshold multiplies (0 when
        /// deterministic).
        median_nanos: u64,
    },
    /// A daemon job-lifecycle phase opened (emitted by `rmt3d serve`).
    /// Phases nest per job — `job` wraps `queued`, `leased`, `run`, and
    /// `store_write` — and render as Chrome *async* spans keyed by the
    /// job sequence number, so overlapping jobs do not corrupt each
    /// other's timelines. `ts` is a logical daemon tick (monotonic
    /// event counter, not wall clock), which keeps traces
    /// byte-deterministic for a fixed submission order. JSONL:
    /// `{"event":"job_span_begin","job":…,"phase":…,"ts":…}`.
    JobSpanBegin {
        /// Daemon job sequence number — the async-span id.
        job: u64,
        /// Phase name (`"job"`, `"queued"`, `"leased"`, `"run"`,
        /// `"store_write"`).
        phase: &'static str,
        /// Logical daemon tick at phase entry.
        ts: u64,
    },
    /// A daemon job-lifecycle phase closed, matching the
    /// [`Event::JobSpanBegin`] with the same `job` and `phase`. JSONL:
    /// `{"event":"job_span_end","job":…,"phase":…,"ts":…,
    /// "wall_nanos":…}`.
    JobSpanEnd {
        /// Daemon job sequence number — the async-span id.
        job: u64,
        /// Phase name, matching the corresponding begin.
        phase: &'static str,
        /// Logical daemon tick at phase exit.
        ts: u64,
        /// Wall-clock nanoseconds spent inside the phase (0 when the
        /// sink is configured deterministic).
        wall_nanos: u64,
    },
    /// One fault-injection campaign trial completed (emitted by
    /// `rmt3d-campaign`). JSONL: `{"event":"campaign_trial","trial":…,
    /// "site":…,"fate":…,"detect_cycles":…,"ok":…}`.
    CampaignTrial {
        /// Zero-based trial index in grid order.
        trial: u64,
        /// Strike site name (see `rmt3d_rmt::FaultSite`).
        site: &'static str,
        /// Observed fate label (`"corrected_by_ecc"`,
        /// `"detected_recovered"`, `"masked_harmless"`, or a violation
        /// label).
        fate: &'static str,
        /// Leader cycles from injection to checker detection (0 when
        /// the fault was corrected or masked).
        detect_cycles: u64,
        /// True when the trial satisfied the coverage invariant.
        ok: bool,
    },
}

impl Event {
    /// One representative of every variant, with every field set to a
    /// distinctive non-default value. The construction is paired with
    /// an exhaustive `match` in [`Event::examples_cover`]: adding a
    /// variant without extending this list is a compile error, so no
    /// variant can silently skip the codec round-trip tests (same
    /// pattern as `FaultSite::ALL` in `rmt3d-rmt`).
    pub fn examples() -> Vec<Event> {
        let examples = vec![
            Event::SpanBegin {
                name: "measure",
                cycle: 7,
            },
            Event::SpanEnd {
                name: "measure",
                cycle: 11,
                wall_nanos: 12_345,
            },
            Event::Counter {
                name: "ipc",
                cycle: 13,
                value: 1.25,
            },
            Event::DfsTransition {
                cycle: 17,
                from_level: 4,
                to_level: 5,
                fraction: 0.6,
            },
            Event::FaultInjected {
                cycle: 19,
                site: "rvq_operand",
                bit: 3,
                corrected: true,
            },
            Event::Recovery {
                cycle: 23,
                penalty_cycles: 200,
                unrecoverable: true,
            },
            Event::SolverIteration {
                iteration: 29,
                residual: 0.031,
            },
            Event::Interval(crate::sample::IntervalSample {
                index: 2,
                cycle: 31,
                committed: 37,
                ipc: 1.19,
                rob: 41,
                iq_int: 5,
                iq_fp: 2,
                lsq: 11,
                rvq: 13,
                lvq: 17,
                boq: 3,
                stb: 7,
                checker_fraction: 0.7,
                dl1_accesses: 43,
                dl1_misses: 6,
                l2_accesses: 9,
                l2_misses: 1,
                commit_stall_cycles: 8,
            }),
            Event::JobStarted {
                job: 1,
                total: 4,
                label: "3d-2a/mcf".into(),
            },
            Event::JobFinished {
                job: 1,
                total: 4,
                ok: false,
                wall_nanos: 5_000,
                eta_nanos: 15_000,
            },
            Event::JobCacheHit {
                job: 2,
                total: 4,
                label: "2d-a/gzip".into(),
            },
            Event::PoolStats {
                workers: 4,
                executed: 70,
                cache_hits: 6,
                failed: 1,
                steals: 9,
                busy_nanos: 80_000,
                idle_nanos: 20_000,
                wall_nanos: 25_000,
            },
            Event::CacheStats {
                hits: 6,
                misses: 70,
                verify_failures: 2,
                entries: 76,
                bytes: 123_456,
            },
            Event::JobStalled {
                job: 3,
                total: 4,
                label: "3d-2a/swim".into(),
                elapsed_nanos: 9_000_000,
                median_nanos: 1_000_000,
            },
            Event::JobSpanBegin {
                job: 53,
                phase: "queued",
                ts: 59,
            },
            Event::JobSpanEnd {
                job: 53,
                phase: "queued",
                ts: 61,
                wall_nanos: 67_000,
            },
            Event::CampaignTrial {
                trial: 47,
                site: "leader_result",
                fate: "detected_recovered",
                detect_cycles: 120,
                ok: true,
            },
        ];
        for e in &examples {
            Self::examples_cover(e);
        }
        examples
    }

    /// Exhaustiveness witness for [`Event::examples`]: no wildcard arm,
    /// so a new variant fails to compile here until `examples()` (and
    /// therefore the codec tests) know about it.
    fn examples_cover(event: &Event) {
        match event {
            Event::SpanBegin { .. }
            | Event::SpanEnd { .. }
            | Event::Counter { .. }
            | Event::DfsTransition { .. }
            | Event::FaultInjected { .. }
            | Event::Recovery { .. }
            | Event::SolverIteration { .. }
            | Event::Interval(_)
            | Event::JobStarted { .. }
            | Event::JobFinished { .. }
            | Event::JobCacheHit { .. }
            | Event::PoolStats { .. }
            | Event::CacheStats { .. }
            | Event::JobStalled { .. }
            | Event::JobSpanBegin { .. }
            | Event::JobSpanEnd { .. }
            | Event::CampaignTrial { .. } => {}
        }
    }

    /// The JSONL `"event"` discriminator for this variant.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SpanBegin { .. } => "span_begin",
            Event::SpanEnd { .. } => "span_end",
            Event::Counter { .. } => "counter",
            Event::DfsTransition { .. } => "dfs_transition",
            Event::FaultInjected { .. } => "fault",
            Event::Recovery { .. } => "recovery",
            Event::SolverIteration { .. } => "solver_iteration",
            Event::Interval(_) => "interval",
            Event::JobStarted { .. } => "job_started",
            Event::JobFinished { .. } => "job_finished",
            Event::JobCacheHit { .. } => "job_cache_hit",
            Event::PoolStats { .. } => "pool_stats",
            Event::CacheStats { .. } => "cache_stats",
            Event::JobStalled { .. } => "job_stalled",
            Event::JobSpanBegin { .. } => "job_span_begin",
            Event::JobSpanEnd { .. } => "job_span_end",
            Event::CampaignTrial { .. } => "campaign_trial",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let events = Event::examples();
        let mut kinds: Vec<&str> = events.iter().map(Event::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
    }

    #[test]
    fn examples_cover_every_variant_exactly_once() {
        let events = Event::examples();
        // One example per discriminator; `examples_cover`'s exhaustive
        // match guarantees no variant is missing at compile time.
        let mut kinds: Vec<&str> = events.iter().map(Event::kind).collect();
        let n = kinds.len();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), n, "duplicate example kinds");
    }
}
