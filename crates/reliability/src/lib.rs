//! Reliability models for the `rmt3d` simulator: SRAM soft-error scaling
//! (paper Fig. 8), multi-bit-upset probability (Fig. 9), ITRS parameter
//! variability (Table 6), and the dynamic timing-error model behind the
//! paper's conservative-timing-margin arguments (§3.5, §4).
//!
//! # Examples
//!
//! ```
//! use rmt3d_reliability::{mbu_probability_at, relative_chip_ser, TimingModel};
//! use rmt3d_units::TechNode;
//!
//! // Chip-level SER rises with scaling even as per-bit SER falls.
//! assert!(relative_chip_ser(TechNode::N65) > relative_chip_ser(TechNode::N90));
//! // A 90 nm checker sees far fewer multi-bit upsets than a 65 nm one.
//! assert!(mbu_probability_at(TechNode::N90) < mbu_probability_at(TechNode::N65));
//! // And a checker at 0.6 f has enormous timing slack.
//! let m = TimingModel::for_node(TechNode::N65);
//! assert!(m.stage_error_probability(0.6) < 1e-4);
//! ```

mod fit;
mod ser;
mod timing;
mod variability;

pub use fit::{ChipInventory, Protection, Structure};
pub use ser::{
    critical_charge_fc, mbu_probability, mbu_probability_at, per_bit_ser, relative_chip_ser,
    PerBitSer,
};
pub use timing::{normal_tail, TimingModel};
pub use variability::{variability, Variability, VARIABILITY_TABLE};
