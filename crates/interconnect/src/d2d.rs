//! Die-to-die via model (paper §3.4, Table 4).
//!
//! The inter-die traffic of Fig. 1 — register results + operands, load
//! values, branch outcomes, store values — sizes the via bundles; each
//! via is a short (5-20 µm) vertical wire whose worst-case coupling
//! capacitance the paper takes as 0.594 fF/µm.

use rmt3d_floorplan::BlockId;
use rmt3d_power::CoreBlock;
use rmt3d_units::{SquareMillimeters, Watts};

/// One bundle of die-to-die vias (a Table 4 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViaBundle {
    /// Signal name.
    pub name: &'static str,
    /// Number of vias (bits).
    pub bits: u32,
    /// Where the via pillar lands on the lower die (Table 4
    /// "placement" column).
    pub placement: BlockId,
}

/// Core widths that determine Table 4's bandwidth requirements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandwidthConfig {
    /// Loads issued per cycle.
    pub load_issue_width: u32,
    /// Stores issued per cycle.
    pub store_issue_width: u32,
    /// Branch predictor ports.
    pub branch_ports: u32,
    /// General issue width.
    pub issue_width: u32,
    /// Bits per register transfer group (result + both operands =
    /// 3 x 64 = 192, §2.1's register value prediction payload).
    pub register_group_bits: u32,
    /// L2 controller to stacked-banks bus: 64-bit address + 256-bit
    /// data + 64-bit control (§3.4).
    pub l2_bus_bits: u32,
}

impl BandwidthConfig {
    /// The paper's 4-wide core (Table 4: 1025 core-to-core vias + 384
    /// L2 vias).
    pub fn paper() -> BandwidthConfig {
        BandwidthConfig {
            load_issue_width: 2,
            store_issue_width: 2,
            branch_ports: 1,
            issue_width: 4,
            register_group_bits: 192,
            l2_bus_bits: 384,
        }
    }

    /// The Table 4 via bundles for this configuration.
    pub fn bundles(&self) -> Vec<ViaBundle> {
        vec![
            ViaBundle {
                name: "load-values",
                bits: self.load_issue_width * 64,
                placement: BlockId::Leader(CoreBlock::Lsq),
            },
            ViaBundle {
                name: "branch-outcomes",
                bits: self.branch_ports,
                placement: BlockId::Leader(CoreBlock::Bpred),
            },
            ViaBundle {
                name: "store-values",
                bits: self.store_issue_width * 64,
                placement: BlockId::Leader(CoreBlock::Lsq),
            },
            ViaBundle {
                name: "register-values",
                bits: self.issue_width * self.register_group_bits,
                placement: BlockId::Leader(CoreBlock::RegfileInt),
            },
            ViaBundle {
                name: "l2-transfer",
                bits: self.l2_bus_bits,
                placement: BlockId::L2Controller,
            },
        ]
    }

    /// Core-to-core via count (Table 4 without the L2 bus: 1025 for the
    /// paper config).
    pub fn core_vias(&self) -> u32 {
        self.bundles()
            .iter()
            .filter(|b| b.placement != BlockId::L2Controller)
            .map(|b| b.bits)
            .sum()
    }

    /// All vias including the L2 pillar (1409 for the paper config).
    pub fn total_vias(&self) -> u32 {
        self.bundles().iter().map(|b| b.bits).sum()
    }
}

impl Default for BandwidthConfig {
    fn default() -> BandwidthConfig {
        BandwidthConfig::paper()
    }
}

/// Electrical model of one die-to-die via (§3.4 constants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct D2dViaModel {
    /// Via length in µm (thin-die F2F bonding: 5-20 µm \[9\]).
    pub length_um: f64,
    /// Worst-case coupling capacitance per µm (surrounded by 8
    /// neighbours), in farads.
    pub cap_per_um: f64,
    /// Via width in µm \[9\].
    pub width_um: f64,
    /// Spacing between vias in µm.
    pub spacing_um: f64,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Switching frequency (Hz).
    pub freq: f64,
}

impl D2dViaModel {
    /// The paper's model: 10 µm via, 0.594 fF/µm, 5 µm width and
    /// spacing, 65 nm at 2 GHz / 1 V.
    pub fn paper() -> D2dViaModel {
        D2dViaModel {
            length_um: 10.0,
            cap_per_um: 0.594e-15,
            width_um: 5.0,
            spacing_um: 5.0,
            vdd: 1.0,
            freq: 2e9,
        }
    }

    /// Capacitance of one via (paper: 0.59e-14 F).
    pub fn capacitance(&self) -> f64 {
        self.cap_per_um * self.length_um
    }

    /// Worst-case dynamic power of one via (paper: 0.011 mW).
    pub fn power_per_via(&self) -> Watts {
        Watts(self.capacitance() * self.vdd * self.vdd * self.freq)
    }

    /// Total power of `count` vias (paper: 15.49 mW for 1409).
    pub fn total_power(&self, count: u32) -> Watts {
        self.power_per_via() * count as f64
    }

    /// Silicon area of `count` vias at the given width/spacing (paper:
    /// 0.07 mm² for 1409).
    pub fn total_area(&self, count: u32) -> SquareMillimeters {
        let per_via_um2 = self.width_um * (self.width_um + self.spacing_um);
        SquareMillimeters(count as f64 * per_via_um2 * 1e-6)
    }
}

impl Default for D2dViaModel {
    fn default() -> D2dViaModel {
        D2dViaModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_core_via_count() {
        let c = BandwidthConfig::paper();
        assert_eq!(c.core_vias(), 1025, "paper: 1025 core-to-core vias");
        assert_eq!(c.total_vias(), 1409, "paper: 1409 total with L2 pillar");
    }

    #[test]
    fn table4_bundle_widths() {
        let bundles = BandwidthConfig::paper().bundles();
        let bits = |name: &str| bundles.iter().find(|b| b.name == name).unwrap().bits;
        assert_eq!(bits("load-values"), 128);
        assert_eq!(bits("branch-outcomes"), 1);
        assert_eq!(bits("store-values"), 128);
        assert_eq!(bits("register-values"), 768);
        assert_eq!(bits("l2-transfer"), 384);
    }

    #[test]
    fn via_capacitance_matches_paper() {
        let m = D2dViaModel::paper();
        assert!((m.capacitance() - 0.59e-14).abs() < 0.01e-14);
    }

    #[test]
    fn via_power_matches_paper() {
        let m = D2dViaModel::paper();
        // 0.011 mW per via.
        assert!((m.power_per_via().milliwatts() - 0.0119).abs() < 0.001);
        // 15.49 mW for all 1409.
        let total = m.total_power(1409).milliwatts();
        assert!((total - 15.49).abs() < 1.5, "total via power {total} mW");
    }

    #[test]
    fn via_area_matches_paper() {
        let m = D2dViaModel::paper();
        let a = m.total_area(1409).0;
        assert!((a - 0.07).abs() < 0.005, "via area {a} mm^2");
    }

    #[test]
    fn wider_core_needs_more_vias() {
        let mut c = BandwidthConfig::paper();
        c.issue_width = 8;
        assert!(c.core_vias() > BandwidthConfig::paper().core_vias());
    }
}
