//! Integration tests of the paper's §2 fault model, exercised through
//! the full coupled system with the golden architectural oracle.

use rmt3d::rmt::{EccConfig, FaultFate, FaultSite, RmtConfig, RmtSystem};
use rmt3d::ProcessorModel;
use rmt3d_cache::{CacheHierarchy, NucaPolicy};
use rmt3d_cpu::{CoreConfig, OooCore};
use rmt3d_workload::{Benchmark, TraceGenerator};

fn system(benchmark: Benchmark) -> RmtSystem {
    let leader = OooCore::new(
        CoreConfig::leading_ev7_like(),
        TraceGenerator::new(benchmark.profile()),
        CacheHierarchy::new(
            ProcessorModel::ThreeD2A.nuca_layout(),
            NucaPolicy::DistributedSets,
        ),
    );
    RmtSystem::new(leader, RmtConfig::paper())
}

#[test]
fn paper_ecc_recovers_every_datapath_fault() {
    // §2: "detection of and recovery from a single transient fault".
    let mut sys = system(Benchmark::Gzip).with_fault_injection(99, 5e-4, EccConfig::paper());
    sys.prefill_caches();
    sys.run_instructions(120_000);
    sys.drain();
    assert!(sys.injector().unwrap().injected() > 10, "faults injected");
    assert!(sys.stats().detected > 0, "checker flagged errors");
    assert_eq!(
        sys.stats().unrecoverable,
        0,
        "with the paper's ECC set every recovery must restore golden state"
    );
    assert!(sys.leader_matches_golden(), "no silent corruption");
}

#[test]
fn ecc_protected_sites_never_corrupt_execution() {
    // LVQ and trailer-regfile strikes are corrected in place.
    let mut sys = system(Benchmark::Vpr).with_fault_injection(5, 1e-3, EccConfig::paper());
    sys.prefill_caches();
    sys.run_instructions(80_000);
    sys.drain();
    let corrected = sys.injector().unwrap().corrected();
    assert!(corrected > 0, "some strikes hit protected sites");
    // Corrected strikes never appear among the applied-fault fates.
    for &(site, _) in sys.fault_fates() {
        assert!(
            !matches!(site, FaultSite::LvqValue | FaultSite::TrailerRegfile),
            "protected site {site:?} leaked into the datapath"
        );
    }
}

#[test]
fn unprotected_trailer_regfile_can_lose_recoveries() {
    // Ablation: §2 requires the trailer register file to be
    // ECC-protected for guaranteed recovery. Remove it and some faults
    // become detected-but-unrecoverable or silently corrupt state.
    let mut bad_outcomes = 0;
    for seed in 0..8 {
        let mut sys = system(Benchmark::Twolf).with_fault_injection(seed, 2e-3, EccConfig::none());
        sys.prefill_caches();
        sys.run_instructions(60_000);
        sys.drain();
        if sys.stats().unrecoverable > 0 || !sys.leader_matches_golden() {
            bad_outcomes += 1;
        }
    }
    assert!(
        bad_outcomes > 0,
        "without ECC at least one campaign must fail to recover cleanly"
    );
}

#[test]
fn recovery_preserves_forward_progress() {
    let mut sys = system(Benchmark::Gap).with_fault_injection(3, 1e-3, EccConfig::paper());
    sys.prefill_caches();
    sys.run_instructions(100_000);
    assert!(sys.stats().recoveries > 0);
    assert!(
        sys.leader().activity().committed >= 100_000,
        "the system keeps committing through recoveries"
    );
    // Recovery stalls are visible but bounded at this fault rate.
    let stall_frac = sys.stats().recovery_stall_cycles as f64 / sys.total_cycles() as f64;
    assert!(stall_frac < 0.25, "recovery stalls {stall_frac}");
}

#[test]
fn fault_fates_are_classified() {
    let mut sys = system(Benchmark::Gzip).with_fault_injection(17, 1e-3, EccConfig::paper());
    sys.prefill_caches();
    sys.run_instructions(80_000);
    sys.drain();
    let fates = sys.fault_fates();
    assert!(!fates.is_empty());
    let recovered = fates
        .iter()
        .filter(|(_, f)| *f == FaultFate::DetectedRecovered)
        .count();
    assert!(recovered > 0, "some faults were detected and recovered");
    // BOQ flips are masked: outcomes are hints, never architectural.
    for (site, fate) in fates {
        if *site == FaultSite::BoqOutcome {
            assert!(
                matches!(fate, FaultFate::Masked | FaultFate::DetectedRecovered),
                "BOQ fault fate {fate:?}"
            );
        }
    }
}

#[test]
fn clean_run_has_zero_overhead_and_zero_errors() {
    let mut with = system(Benchmark::Gzip).with_fault_injection(1, 0.0, EccConfig::paper());
    with.prefill_caches();
    with.run_instructions(60_000);
    with.drain();
    assert_eq!(with.stats().detected, 0);
    assert_eq!(with.stats().recoveries, 0);
    assert_eq!(with.stats().recovery_stall_cycles, 0);
    assert!(with.leader_matches_golden());
}
