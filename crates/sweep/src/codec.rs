//! Lossless JSON serialization of [`PerfResult`] for the result cache.
//!
//! The workspace has no serde; writing composes the JSON text directly
//! and reading goes through `rmt3d_telemetry::json::parse`. Floats are
//! written with Rust's shortest-round-trip `Display`, so a decoded
//! result is bit-identical to the encoded one. Counters are `u64` but
//! the parser holds numbers as `f64`; every value this simulator
//! produces is far below 2^53, and the encoder asserts that bound so a
//! silent precision loss can never masquerade as a cache hit.

use rmt3d::PerfResult;
use rmt3d_cache::{CacheStats, HierarchyStats, NucaStats};
use rmt3d_cpu::ActivityCounters;
use rmt3d_telemetry::json::{parse, JsonValue};
use rmt3d_telemetry::{CpiComponent, CpiStack};
use std::fmt::Write as _;

/// Largest integer exactly representable in an f64; the JSON parser
/// reads all numbers as f64, so counters must stay below it.
const MAX_EXACT: u64 = 1 << 53;

fn push_u64(out: &mut String, key: &str, v: u64) {
    assert!(v < MAX_EXACT, "counter {key}={v} exceeds f64 precision");
    let _ = write!(out, "\"{key}\":{v},");
}

fn push_f64(out: &mut String, key: &str, v: f64) {
    // `{v}` is Rust's shortest representation that parses back exactly.
    let _ = write!(out, "\"{key}\":{v},");
}

fn close(out: &mut String) {
    if out.ends_with(',') {
        out.pop();
    }
    out.push('}');
}

/// Field list of [`ActivityCounters`]; `$op!(struct, field)` runs once
/// per field, keeping the encoder and decoder in lockstep with one
/// authoritative list.
macro_rules! for_each_counter {
    ($op:ident, $s:expr) => {
        $op!($s, cycles);
        $op!($s, fetched);
        $op!($s, dispatched);
        $op!($s, issued);
        $op!($s, committed);
        $op!($s, int_alu_ops);
        $op!($s, int_mul_ops);
        $op!($s, fp_alu_ops);
        $op!($s, fp_mul_ops);
        $op!($s, bpred_accesses);
        $op!($s, icache_accesses);
        $op!($s, dcache_accesses);
        $op!($s, lsq_accesses);
        $op!($s, regfile_reads);
        $op!($s, regfile_writes);
        $op!($s, bypass_transfers);
        $op!($s, commit_stall_cycles);
        $op!($s, branch_mispredicts);
    };
}

fn write_counters(out: &mut String, key: &str, c: &ActivityCounters) {
    let _ = write!(out, "\"{key}\":{{");
    macro_rules! field {
        ($s:expr, $f:ident) => {
            push_u64(out, stringify!($f), $s.$f)
        };
    }
    for_each_counter!(field, c);
    close(out);
    out.push(',');
}

fn write_cpi(out: &mut String, key: &str, s: &CpiStack) {
    let _ = write!(out, "\"{key}\":{{");
    for c in CpiComponent::ALL {
        push_u64(out, c.name(), s.get(c));
    }
    close(out);
    out.push(',');
}

fn read_cpi(v: &JsonValue, key: &str) -> Result<CpiStack, String> {
    let obj = need(v, key)?;
    let mut s = CpiStack::new();
    for c in CpiComponent::ALL {
        s.set(c, need_u64(obj, c.name())?);
    }
    Ok(s)
}

fn write_cache_stats(out: &mut String, key: &str, c: &CacheStats) {
    let _ = write!(out, "\"{key}\":{{");
    push_u64(out, "accesses", c.accesses);
    push_u64(out, "hits", c.hits);
    push_u64(out, "misses", c.misses);
    push_u64(out, "write_misses", c.write_misses);
    close(out);
    out.push(',');
}

/// Encodes a result as one JSON line (no trailing newline).
pub fn encode(r: &PerfResult) -> String {
    let mut out = String::with_capacity(1024);
    out.push('{');
    let _ = write!(out, "\"model\":\"{}\",", r.model);
    let _ = write!(out, "\"benchmark\":\"{}\",", r.benchmark);
    push_f64(&mut out, "frequency", r.frequency.value());
    write_counters(&mut out, "leader", &r.leader);
    write_counters(&mut out, "trailer", &r.trailer);
    write_cpi(&mut out, "leader_cpi", &r.leader_cpi);
    write_cpi(&mut out, "trailer_cpi", &r.trailer_cpi);
    out.push_str("\"caches\":{");
    write_cache_stats(&mut out, "l1i", &r.caches.l1i);
    write_cache_stats(&mut out, "l1d", &r.caches.l1d);
    push_u64(&mut out, "l2_accesses", r.caches.l2_accesses);
    push_u64(&mut out, "l2_misses", r.caches.l2_misses);
    push_u64(&mut out, "instructions", r.caches.instructions);
    close(&mut out);
    out.push(',');
    out.push_str("\"l2\":{");
    push_u64(&mut out, "accesses", r.l2.accesses);
    push_u64(&mut out, "hits", r.l2.hits);
    push_u64(&mut out, "misses", r.l2.misses);
    push_u64(&mut out, "total_hops", r.l2.total_hops);
    push_u64(&mut out, "tag_lookups", r.l2.tag_lookups);
    push_u64(&mut out, "hit_cycles_sum", r.l2.hit_cycles_sum);
    push_u64(&mut out, "migrations", r.l2.migrations);
    out.push_str("\"bank_accesses\":[");
    for (i, &b) in r.l2.bank_accesses.iter().enumerate() {
        assert!(b < MAX_EXACT, "bank access count exceeds f64 precision");
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{b}");
    }
    out.push(']');
    close(&mut out);
    out.push(',');
    out.push_str("\"dfs_histogram\":[");
    for (i, &h) in r.dfs_histogram.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{h}");
    }
    out.push_str("],");
    push_f64(&mut out, "mean_checker_fraction", r.mean_checker_fraction);
    push_u64(&mut out, "total_cycles", r.total_cycles);
    close(&mut out);
    out
}

fn need<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing \"{key}\""))
}

fn need_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    need(v, key)?
        .as_u64()
        .ok_or_else(|| format!("\"{key}\" is not an integer"))
}

fn need_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    need(v, key)?
        .as_f64()
        .ok_or_else(|| format!("\"{key}\" is not a number"))
}

fn need_arr<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], String> {
    match need(v, key)? {
        JsonValue::Arr(a) => Ok(a),
        _ => Err(format!("\"{key}\" is not an array")),
    }
}

fn read_counters(v: &JsonValue, key: &str) -> Result<ActivityCounters, String> {
    let obj = need(v, key)?;
    let mut c = ActivityCounters::default();
    macro_rules! field {
        ($s:expr, $f:ident) => {
            $s.$f = need_u64(obj, stringify!($f))?
        };
    }
    for_each_counter!(field, c);
    Ok(c)
}

fn read_cache_stats(v: &JsonValue, key: &str) -> Result<CacheStats, String> {
    let obj = need(v, key)?;
    Ok(CacheStats {
        accesses: need_u64(obj, "accesses")?,
        hits: need_u64(obj, "hits")?,
        misses: need_u64(obj, "misses")?,
        write_misses: need_u64(obj, "write_misses")?,
    })
}

/// Decodes a result from one JSON line. Errors describe the first
/// missing or ill-typed field.
pub fn decode(line: &str) -> Result<PerfResult, String> {
    let v = parse(line)?;
    let model = need(&v, "model")?
        .as_str()
        .ok_or("\"model\" is not a string")?
        .parse()
        .map_err(|e| format!("{e}"))?;
    let benchmark = need(&v, "benchmark")?
        .as_str()
        .ok_or("\"benchmark\" is not a string")?
        .parse()
        .map_err(|e| format!("{e}"))?;
    let caches_v = need(&v, "caches")?;
    let caches = HierarchyStats {
        l1i: read_cache_stats(caches_v, "l1i")?,
        l1d: read_cache_stats(caches_v, "l1d")?,
        l2_accesses: need_u64(caches_v, "l2_accesses")?,
        l2_misses: need_u64(caches_v, "l2_misses")?,
        instructions: need_u64(caches_v, "instructions")?,
    };
    let l2_v = need(&v, "l2")?;
    let l2 = NucaStats {
        accesses: need_u64(l2_v, "accesses")?,
        hits: need_u64(l2_v, "hits")?,
        misses: need_u64(l2_v, "misses")?,
        bank_accesses: need_arr(l2_v, "bank_accesses")?
            .iter()
            .map(|b| b.as_u64().ok_or("non-integer bank access count"))
            .collect::<Result<_, _>>()?,
        total_hops: need_u64(l2_v, "total_hops")?,
        tag_lookups: need_u64(l2_v, "tag_lookups")?,
        hit_cycles_sum: need_u64(l2_v, "hit_cycles_sum")?,
        migrations: need_u64(l2_v, "migrations")?,
    };
    let hist_v = need_arr(&v, "dfs_histogram")?;
    let mut dfs_histogram = [0.0; rmt3d::rmt::DFS_LEVELS];
    if hist_v.len() != dfs_histogram.len() {
        return Err(format!(
            "dfs_histogram has {} bins, expected {}",
            hist_v.len(),
            dfs_histogram.len()
        ));
    }
    for (slot, b) in dfs_histogram.iter_mut().zip(hist_v) {
        *slot = b.as_f64().ok_or("non-number histogram bin")?;
    }
    Ok(PerfResult {
        model,
        benchmark,
        frequency: rmt3d_units::Gigahertz(need_f64(&v, "frequency")?),
        leader: read_counters(&v, "leader")?,
        trailer: read_counters(&v, "trailer")?,
        leader_cpi: read_cpi(&v, "leader_cpi")?,
        trailer_cpi: read_cpi(&v, "trailer_cpi")?,
        caches,
        l2,
        dfs_histogram,
        mean_checker_fraction: need_f64(&v, "mean_checker_fraction")?,
        total_cycles: need_u64(&v, "total_cycles")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt3d::{simulate, ProcessorModel, RunScale, SimConfig};
    use rmt3d_workload::Benchmark;

    fn tiny() -> RunScale {
        RunScale {
            warmup_instructions: 2_000,
            instructions: 20_000,
            thermal_grid: 25,
        }
    }

    #[test]
    fn round_trip_is_lossless_for_both_model_kinds() {
        for (model, bench) in [
            (ProcessorModel::TwoDA, Benchmark::Gzip),
            (ProcessorModel::ThreeD2A, Benchmark::Mcf),
        ] {
            let r = simulate(&SimConfig::nominal(model, tiny()), bench);
            let line = encode(&r);
            let back = decode(&line).expect("decode");
            // Re-encoding the decoded value must be byte-identical —
            // the property the resume machinery rests on.
            assert_eq!(encode(&back), line, "{model}/{bench}");
            assert_eq!(back.ipc(), r.ipc());
            assert_eq!(back.dfs_histogram, r.dfs_histogram);
            assert_eq!(back.l2.bank_accesses, r.l2.bank_accesses);
        }
    }

    #[test]
    fn decode_rejects_truncated_and_ill_typed_input() {
        let r = simulate(
            &SimConfig::nominal(ProcessorModel::TwoDA, tiny()),
            Benchmark::Gzip,
        );
        let line = encode(&r);
        assert!(decode(&line[..line.len() / 2]).is_err());
        assert!(decode(&line.replace("\"total_cycles\":", "\"total_cyclez\":")).is_err());
        assert!(decode("{}").is_err());
    }
}
