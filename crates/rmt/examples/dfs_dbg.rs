//! Diagnostic: DFS controller trace — queue occupancies, checker
//! frequency trajectory and the Fig. 7 histogram for one benchmark.
use rmt3d_cache::{CacheHierarchy, NucaLayout, NucaPolicy};
use rmt3d_cpu::{CoreConfig, OooCore};
use rmt3d_rmt::{RmtConfig, RmtSystem};
use rmt3d_workload::{Benchmark, TraceGenerator};

fn main() {
    let leader = OooCore::new(
        CoreConfig::leading_ev7_like(),
        TraceGenerator::new(Benchmark::Gzip.profile()),
        CacheHierarchy::new(NucaLayout::three_d_2a(), NucaPolicy::DistributedSets),
    );
    let mut s = RmtSystem::new(leader, RmtConfig::paper());
    s.prefill_caches();
    for i in 0..10 {
        s.run_instructions(6000);
        let o = s.queues().occupancy();
        println!(
            "{i}: f={:.2} rvq={} lvq={} boq={} stb={} inflight={} stall={} committed={} tcyc={}",
            s.dfs().current().fraction(),
            o.rvq,
            o.lvq,
            o.boq,
            o.stb,
            s.trailer().in_flight(),
            s.leader().activity().commit_stall_cycles,
            s.leader().activity().committed,
            s.trailer().activity().cycles
        );
    }
    println!(
        "hist: {:?}",
        s.frequency_histogram().map(|f| (f * 100.0).round())
    );
    println!(
        "mean f = {:.3}, stallfrac = {:.3}, ipc = {:.3}",
        s.dfs().mean_fraction(),
        s.leader().activity().commit_stall_cycles as f64 / s.leader().activity().cycles as f64,
        s.effective_ipc()
    );
}
