//! Write-ahead journal for crash-safe campaigns.
//!
//! [`Journal`] appends one JSON line per event to
//! `campaign.journal.jsonl` inside the campaign's output directory: a
//! versioned header binding the file to one [`CampaignSpec`], a
//! `trial_started` line when a worker picks a trial up, a `trial_done`
//! line — flushed and fsynced *before* the trial is acknowledged — when
//! it finishes, and a `checkpoint` line with the running [`Tally`]
//! every [`CHECKPOINT_INTERVAL`] completions.
//!
//! [`replay`] is the read side: it rebuilds the set of completed
//! trials from whatever survived a crash. It never panics on corrupt
//! input. A line that fails to parse, carries ill-typed fields, or
//! points outside the grid is skipped (SIGKILL mid-write tears at most
//! the final line, so a skipped line only costs re-running that
//! trial). A header that is missing, unparsable, version-stale, or
//! bound to a different spec discards the whole journal — the run
//! restarts from scratch, which is slower but always correct.
//! Trials that started but never finished are the crash's in-flight
//! victims; the engine re-queues them.
//!
//! Because [`run_trial`](crate::run_trial) is deterministic and the
//! report carries no wall-clock fields, a resumed campaign's report is
//! byte-identical to an uninterrupted run no matter where the crash
//! landed — the invariant the kill-testing harness in `crates/cli`
//! proves with real SIGKILLs.

use crate::grid::CampaignSpec;
use crate::report::Tally;
use crate::trial::{TrialFate, TrialResult, Violation};
use rmt3d_telemetry::json::{parse, JsonObject, JsonValue};
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Journal file name inside the campaign output directory.
pub const JOURNAL_FILE: &str = "campaign.journal.jsonl";

/// Version tag in the journal header. Bumping the crate version or the
/// trailing schema revision invalidates old journals the same way
/// [`CACHE_VERSION`](rmt3d_sweep::CACHE_VERSION) invalidates sweep
/// caches: replay discards them and the campaign restarts.
pub const JOURNAL_VERSION: &str =
    concat!("rmt3d-campaign-journal/", env!("CARGO_PKG_VERSION"), "/1");

/// Completions between `checkpoint` lines.
pub const CHECKPOINT_INTERVAL: usize = 25;

/// Append-only writer for one campaign's journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Creates a fresh journal at `path`, truncating any existing
    /// file, and syncs the header line binding it to `spec`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn create(path: &Path, spec: &CampaignSpec) -> io::Result<Journal> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut j = Journal {
            file: File::create(path)?,
        };
        let mut o = JsonObject::new();
        o.str("event", "campaign_start")
            .str("journal", JOURNAL_VERSION)
            .str("spec", &spec.canonical())
            .u64("total", spec.total_trials() as u64);
        j.append(&o.finish(), true)?;
        Ok(j)
    }

    /// Reopens an existing journal at `path` for appending (the resume
    /// path, after [`replay`] accepted its header).
    ///
    /// A SIGKILL mid-write can leave the file ending in a torn partial
    /// line; that stub is terminated with a newline here so new
    /// records never glue onto it ([`replay`] skips the stub and its
    /// trial re-runs).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn open_append(path: &Path) -> io::Result<Journal> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = OpenOptions::new().read(true).append(true).open(path)?;
        let len = file.seek(SeekFrom::End(0))?;
        if len > 0 {
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            if last[0] != b'\n' {
                file.write_all(b"\n")?;
                file.flush()?;
            }
        }
        Ok(Journal { file })
    }

    fn append(&mut self, line: &str, sync: bool) -> io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.flush()?;
        if sync {
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Records that a worker began executing trial `index`. Flushed but
    /// not fsynced: losing it costs only the in-flight diagnostic.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn trial_started(&mut self, index: usize) -> io::Result<()> {
        let mut o = JsonObject::new();
        o.str("event", "trial_started").u64("trial", index as u64);
        self.append(&o.finish(), false)
    }

    /// Records trial `index`'s outcome, fsynced before returning — the
    /// durability point the resume guarantee rests on.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn trial_done(
        &mut self,
        index: usize,
        outcome: &Result<TrialResult, String>,
    ) -> io::Result<()> {
        let mut o = JsonObject::new();
        o.str("event", "trial_done").u64("trial", index as u64);
        match outcome {
            Ok(t) => {
                o.str("fate", t.fate.name())
                    .u64("detect_cycles", t.detect_cycles)
                    .u64("detections", t.detections)
                    .u64("recoveries", t.recoveries)
                    .u64("committed", t.committed);
                if let Some(v) = t.violation {
                    o.str("violation", v.name());
                }
            }
            Err(e) => {
                o.str("error", e);
            }
        }
        self.append(&o.finish(), true)
    }

    /// Records an aggregation checkpoint: `done` completions so far and
    /// the running fate tally, fsynced.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn checkpoint(&mut self, done: usize, tally: &Tally) -> io::Result<()> {
        let mut o = JsonObject::new();
        o.str("event", "checkpoint")
            .u64("done", done as u64)
            .u64("corrected", tally.corrected)
            .u64("detected", tally.detected)
            .u64("masked", tally.masked)
            .u64("not_injected", tally.not_injected)
            .u64("violations", tally.violations)
            .u64("failed", tally.failed);
        self.append(&o.finish(), true)
    }
}

/// What [`replay`] recovered from a journal.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Completed trials by grid index (panicked trials carry their
    /// message). Re-journaled duplicates resolve last-wins.
    pub completed: BTreeMap<usize, Result<TrialResult, String>>,
    /// Trials that started but never finished — the crash's in-flight
    /// victims, re-queued on resume.
    pub in_flight: Vec<usize>,
    /// Checkpoint lines that parsed and passed their consistency check.
    pub checkpoints: u64,
    /// Corrupt or ill-typed lines skipped (their trials re-run).
    pub skipped_lines: u64,
    /// When set, the journal as a whole was unusable (missing, corrupt
    /// header, stale version, different spec, or an inconsistent
    /// checkpoint) and every trial restarts; the reason is
    /// human-readable.
    pub discarded: Option<String>,
}

fn discard(reason: impl Into<String>) -> Replay {
    Replay {
        discarded: Some(reason.into()),
        ..Replay::default()
    }
}

fn decode_outcome(v: &JsonValue) -> Option<Result<TrialResult, String>> {
    if let Some(e) = v.get("error").and_then(JsonValue::as_str) {
        return Some(Err(e.to_string()));
    }
    let fate = TrialFate::parse(v.get("fate")?.as_str()?).ok()?;
    let violation = match v.get("violation") {
        None => None,
        Some(label) => Some(Violation::parse(label.as_str()?).ok()?),
    };
    Some(Ok(TrialResult {
        fate,
        violation,
        detect_cycles: v.get("detect_cycles")?.as_u64()?,
        detections: v.get("detections")?.as_u64()?,
        recoveries: v.get("recoveries")?.as_u64()?,
        committed: v.get("committed")?.as_u64()?,
    }))
}

/// Replays a journal's text against the spec it should belong to.
///
/// Never panics, whatever the input: the worst corruption can do is
/// discard the journal (see [`Replay::discarded`]) and re-run trials.
pub fn replay(text: &str, spec: &CampaignSpec) -> Replay {
    let total = spec.total_trials();
    let mut lines = text.lines();
    let Some(first) = lines.next() else {
        return discard("journal is empty");
    };
    let Ok(header) = parse(first) else {
        return discard("journal header is corrupt");
    };
    if header.get("event").and_then(JsonValue::as_str) != Some("campaign_start") {
        return discard("journal does not start with a campaign_start header");
    }
    match header.get("journal").and_then(JsonValue::as_str) {
        Some(v) if v == JOURNAL_VERSION => {}
        Some(stale) => return discard(format!("journal version {stale} != {JOURNAL_VERSION}")),
        None => return discard("journal header has no version tag"),
    }
    if header.get("spec").and_then(JsonValue::as_str) != Some(spec.canonical().as_str()) {
        return discard("journal belongs to a different campaign spec");
    }
    if header.get("total").and_then(JsonValue::as_u64) != Some(total as u64) {
        return discard("journal trial count disagrees with the spec");
    }

    let mut r = Replay::default();
    let mut started = BTreeSet::new();
    for line in lines {
        let Ok(v) = parse(line) else {
            r.skipped_lines += 1;
            continue;
        };
        let index = v.get("trial").and_then(JsonValue::as_u64);
        match v.get("event").and_then(JsonValue::as_str) {
            Some("trial_started") => match index {
                Some(i) if (i as usize) < total => {
                    started.insert(i as usize);
                }
                _ => r.skipped_lines += 1,
            },
            Some("trial_done") => match (index, decode_outcome(&v)) {
                (Some(i), Some(outcome)) if (i as usize) < total => {
                    r.completed.insert(i as usize, outcome);
                }
                _ => r.skipped_lines += 1,
            },
            Some("checkpoint") => match v.get("done").and_then(JsonValue::as_u64) {
                // Every completion a checkpoint counts has a trial_done
                // line strictly before it (old segment or just
                // appended), so `done` can never exceed the distinct
                // completions replayed so far. A violation means the
                // journal is lying about history — start over.
                Some(done) if done as usize <= r.completed.len() => r.checkpoints += 1,
                _ => {
                    return discard(
                        "checkpoint counts more completions than the journal holds".to_string(),
                    )
                }
            },
            _ => r.skipped_lines += 1,
        }
    }
    r.in_flight = started
        .into_iter()
        .filter(|i| !r.completed.contains_key(i))
        .collect();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt3d_rmt::{EccConfig, FaultSite};
    use rmt3d_workload::Benchmark;
    use std::path::PathBuf;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            sites: vec![FaultSite::LeaderResult, FaultSite::BoqOutcome],
            benchmarks: vec![Benchmark::Gzip],
            faults_per_cell: 3,
            seed: 9,
            instructions: 8_000,
            ecc: EccConfig::paper(),
        }
    }

    fn result() -> TrialResult {
        TrialResult {
            fate: TrialFate::DetectedRecovered,
            violation: None,
            detect_cycles: 120,
            detections: 1,
            recoveries: 1,
            committed: 8_000,
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rmt3d-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join(JOURNAL_FILE)
    }

    #[test]
    fn write_then_replay_roundtrips() {
        let path = tmp("roundtrip");
        let spec = spec();
        let mut j = Journal::create(&path, &spec).expect("journal creates");
        j.trial_started(0).unwrap();
        j.trial_done(0, &Ok(result())).unwrap();
        j.trial_started(1).unwrap();
        j.trial_started(2).unwrap();
        j.trial_done(2, &Err("boom".to_string())).unwrap();
        let mut tally = Tally::default();
        tally.add(&Ok(result()));
        tally.add(&Err("boom".to_string()));
        j.checkpoint(2, &tally).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let r = replay(&text, &spec);
        assert!(r.discarded.is_none(), "{:?}", r.discarded);
        assert_eq!(r.completed.len(), 2);
        assert_eq!(r.completed[&0], Ok(result()));
        assert_eq!(r.completed[&2], Err("boom".to_string()));
        assert_eq!(r.in_flight, vec![1]);
        assert_eq!(r.checkpoints, 1);
        assert_eq!(r.skipped_lines, 0);
    }

    #[test]
    fn open_append_terminates_a_torn_trailing_line() {
        let path = tmp("torn");
        let spec = spec();
        let mut j = Journal::create(&path, &spec).unwrap();
        j.trial_done(0, &Ok(result())).unwrap();
        j.trial_done(1, &Ok(result())).unwrap();
        drop(j);
        // Tear the last line mid-write, as a SIGKILL would.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 25]).unwrap();
        let mut j = Journal::open_append(&path).unwrap();
        j.trial_done(2, &Ok(result())).unwrap();
        let r = replay(&std::fs::read_to_string(&path).unwrap(), &spec);
        assert!(r.discarded.is_none(), "{:?}", r.discarded);
        assert_eq!(
            r.completed.keys().copied().collect::<Vec<_>>(),
            vec![0, 2],
            "torn trial 1 re-runs; the appended record must not glue onto its stub"
        );
        assert_eq!(r.skipped_lines, 1);
    }

    #[test]
    fn violations_and_reappends_survive_replay() {
        let path = tmp("violation");
        let spec = spec();
        let mut j = Journal::create(&path, &spec).expect("journal creates");
        let mut bad = result();
        bad.violation = Some(Violation::SilentCorruption);
        j.trial_done(4, &Ok(bad)).unwrap();
        // A re-run after resume appends again: last write wins.
        j.trial_done(4, &Ok(result())).unwrap();
        let r = replay(&std::fs::read_to_string(&path).unwrap(), &spec);
        assert_eq!(r.completed[&4], Ok(result()));
    }

    #[test]
    fn empty_missing_and_foreign_journals_are_discarded() {
        let spec = spec();
        assert!(replay("", &spec).discarded.is_some());
        assert!(replay("not json\n", &spec).discarded.is_some());
        let mut other = spec.clone();
        other.seed += 1;
        let path = tmp("foreign");
        Journal::create(&path, &other).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let r = replay(&text, &spec);
        assert!(r
            .discarded
            .as_deref()
            .is_some_and(|m| m.contains("different campaign")));
    }

    #[test]
    fn stale_version_discards_the_journal() {
        let spec = spec();
        let path = tmp("stale");
        Journal::create(&path, &spec).unwrap();
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace(JOURNAL_VERSION, "rmt3d-campaign-journal/0.0.0/0");
        let r = replay(&text, &spec);
        assert!(r
            .discarded
            .as_deref()
            .is_some_and(|m| m.contains("version")));
    }

    #[test]
    fn lying_checkpoint_discards_the_journal() {
        let spec = spec();
        let path = tmp("lying");
        let mut j = Journal::create(&path, &spec).unwrap();
        j.trial_done(0, &Ok(result())).unwrap();
        j.checkpoint(3, &Tally::default()).unwrap();
        let r = replay(&std::fs::read_to_string(&path).unwrap(), &spec);
        assert!(r
            .discarded
            .as_deref()
            .is_some_and(|m| m.contains("checkpoint")));
    }

    #[test]
    fn out_of_range_and_ill_typed_lines_are_skipped_not_fatal() {
        let spec = spec();
        let path = tmp("skip");
        let mut j = Journal::create(&path, &spec).unwrap();
        j.trial_done(1, &Ok(result())).unwrap();
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"event\":\"trial_done\",\"trial\":999,\"fate\":\"masked_harmless\",\"detect_cycles\":0,\"detections\":0,\"recoveries\":0,\"committed\":1}\n");
        text.push_str("{\"event\":\"trial_done\",\"trial\":\"two\",\"fate\":5}\n");
        text.push_str("{\"event\":\"trial_started\",\"trial\":-3}\n");
        text.push_str("{\"event\":\"mystery\"}\n");
        text.push_str("{\"event\":\"trial_done\",\"trial\":2,\"fate\":\"detected_");
        let r = replay(&text, &spec);
        assert!(r.discarded.is_none());
        assert_eq!(r.completed.len(), 1);
        assert_eq!(r.skipped_lines, 5);
    }
}
