//! Resume semantics: deleting one cached entry from a completed
//! sweep's directory makes exactly that one job re-execute, and the
//! final aggregate is unchanged.

use rmt3d::{ProcessorModel, RunScale};
use rmt3d_sweep::{codec, run_sweep, CacheMode, ResultStore, SweepOptions, SweepReport, SweepSpec};
use rmt3d_telemetry::{Event, NullSink, RecordingSink};
use rmt3d_workload::Benchmark;

fn aggregate_bytes(report: &SweepReport) -> String {
    report
        .records
        .iter()
        .map(|r| codec::encode(r.outcome.as_ref().expect("job succeeded")))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn deleting_one_entry_reruns_exactly_that_job() {
    let spec = SweepSpec::new(
        &[ProcessorModel::TwoDA, ProcessorModel::ThreeD2A],
        &[Benchmark::Gzip, Benchmark::Mcf, Benchmark::Gap],
        RunScale {
            warmup_instructions: 2_000,
            instructions: 15_000,
            thermal_grid: 25,
        },
    );
    let jobs = spec.expand();
    let total = jobs.len();
    let dir = std::env::temp_dir().join(format!("rmt3d-sweep-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = SweepOptions {
        jobs: 2,
        cache: CacheMode::Dir(dir.clone()),
        ..SweepOptions::default()
    };

    let first = run_sweep(jobs.clone(), &opts, &mut NullSink).unwrap();
    assert_eq!(first.executed, total);
    assert_eq!(first.failures, 0);

    // Simulate an interrupted sweep: one entry vanishes.
    let store = ResultStore::open(&dir).unwrap();
    assert_eq!(store.len().unwrap(), total);
    let victim = &jobs[2];
    std::fs::remove_file(store.entry_path(victim)).unwrap();
    assert_eq!(store.len().unwrap(), total - 1);

    let sink = RecordingSink::new();
    let resumed = run_sweep(jobs.clone(), &opts, &mut sink.clone()).unwrap();
    assert_eq!(resumed.executed, 1, "exactly one job re-executes");
    assert_eq!(resumed.cache_hits, total - 1);
    assert_eq!(
        aggregate_bytes(&first),
        aggregate_bytes(&resumed),
        "resume must not change the aggregate"
    );
    assert!(!resumed.records[2].cached);
    assert!(resumed
        .records
        .iter()
        .enumerate()
        .all(|(i, r)| r.cached || i == 2));

    // Telemetry agrees: one started/finished pair for the victim, a
    // cache hit for everything else.
    let events = sink.events();
    let started: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::JobStarted { job, .. } => Some(*job),
            _ => None,
        })
        .collect();
    assert_eq!(started, vec![victim.index as u64]);
    let hits = events
        .iter()
        .filter(|e| matches!(e, Event::JobCacheHit { .. }))
        .count();
    assert_eq!(hits, total - 1);

    // The re-executed entry landed back on disk: a third run is
    // entirely cache hits.
    let third = run_sweep(jobs, &opts, &mut NullSink).unwrap();
    assert_eq!(third.executed, 0);
    assert_eq!(third.cache_hits, total);

    let _ = std::fs::remove_dir_all(&dir);
}
